"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
