"""Property-based stability guarantees (Hypothesis).

The unit tests pin specific adversary configurations; the properties
here quantify over them.  For *any* strategy, seed and admissible
``(rho, w)`` with utilisation below one:

* every granted schedule stays inside the arrival curve
  ``rho * T + w`` over every window (checked exactly, sliding window);
* a single-member run with no shedder never exceeds the closed-form
  backlog bound ``ceil(w / (1 - rho * service)) + 1``;
* the drop ledger accounts every injected serial exactly once — no
  leaks, no double counting — and the metrics registry agrees.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments import run_adversary
from repro.faults import (
    STRATEGIES,
    AdversaryInjector,
    AdversarySpec,
    TargetView,
    closed_form_depth_bound,
)
from repro.faults.plan import FaultPlan
from repro.sim.world import SimWorld

STRATEGY_NAMES = sorted(STRATEGIES)

# Keep utilisation under one: service_us = 40 below, so rho <= 0.02
# gives u <= 0.8 and a finite closed-form bound.
admissible = st.fixed_dictionaries({
    "strategy": st.sampled_from(STRATEGY_NAMES),
    "seed": st.integers(min_value=0, max_value=2**16),
    "rho_per_us": st.floats(min_value=0.005, max_value=0.02,
                            allow_nan=False, allow_infinity=False),
    "w": st.integers(min_value=2, max_value=16),
})

SERVICE_US = 40.0


def run_once(params):
    return run_adversary(strategy=params["strategy"], scheduler="edf",
                         seed=params["seed"], members=1,
                         rho_per_us=params["rho_per_us"], w=params["w"],
                         duration_us=25_000.0, horizon_us=20_000.0,
                         service_us=SERVICE_US, shed=False,
                         queue_capacity=256)


class TestDepthBoundProperty:

    @settings(max_examples=15, deadline=None)
    @given(params=admissible)
    def test_depth_never_exceeds_closed_form_bound(self, params):
        bound = closed_form_depth_bound(params["rho_per_us"], params["w"],
                                        SERVICE_US)
        assert bound is not None  # admissible draws keep u < 1
        result = run_once(params)
        assert result.depth_bound == bound
        assert result.max_queue_depth <= bound
        assert result.verdict.ok

    @settings(max_examples=15, deadline=None)
    @given(params=admissible)
    def test_ledger_exact_and_metrics_reconciled(self, params):
        result = run_once(params)
        assert result.verdict.leaked == 0
        assert result.verdict.double_counted == 0
        accounted = (result.delivered + result.shed + result.overflowed
                     + result.end_of_run)
        assert accounted == result.injected
        assert result.metrics_reconciled

    @settings(max_examples=10, deadline=None)
    @given(params=admissible)
    def test_schedule_inside_envelope(self, params):
        """Drive the injector bare (no stack) and replay the exact
        sliding-window envelope check over whatever it produced."""
        spec = AdversarySpec(strategy=params["strategy"],
                             rho_per_us=params["rho_per_us"],
                             w=params["w"], duration_us=25_000.0)
        plan = FaultPlan(name="prop", seed=params["seed"], adversary=spec)
        world = SimWorld(seed=params["seed"])
        view = TargetView(now=lambda: world.engine.now,
                          member_depths=lambda: [(0, 0)],
                          flow_on_member=lambda flow: 0,
                          service_us=SERVICE_US,
                          drain_period_us=SERVICE_US,
                          cache_capacity=8)
        injector = AdversaryInjector(world.engine, spec, plan.rng(),
                                     inject=lambda event: None, view=view)
        injector.start()
        world.run_for(spec.duration_us + 1.0)
        assert injector.injected > 0
        injector.assert_envelope()  # raises on any window violation
