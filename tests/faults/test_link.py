"""The faulty wire: seeded per-frame drop/dup/corrupt/delay/reorder."""

from repro.faults import FaultPlan, FaultyLink, LinkFaults, profile
from repro.net.addresses import EthAddr
from repro.net.segment import Endpoint, EtherSegment
from repro.sim.engine import Engine

SENDER_MAC = EthAddr("02:00:00:00:00:0a")
CATCHER_MAC = EthAddr("02:00:00:00:00:0b")


class Catcher(Endpoint):
    def __init__(self, mac):
        super().__init__(mac)
        self.frames = []

    def receive(self, frame):
        self.frames.append(frame)


def make_wire():
    engine = Engine()
    segment = EtherSegment(engine)
    sender = Catcher(SENDER_MAC)
    catcher = Catcher(CATCHER_MAC)
    segment.attach(sender)
    segment.attach(catcher)
    return engine, segment, sender, catcher


def frame(n, size=64):
    """A distinguishable frame addressed sender -> catcher (>= 35 bytes so
    the corruption fault has payload past the protected 34 header bytes)."""
    payload = bytes((n + i) % 256 for i in range(size - 14))
    return (CATCHER_MAC.to_bytes() + SENDER_MAC.to_bytes()
            + b"\x08\x00" + payload)


def plan_with(seed=1, **rates):
    return FaultPlan(name="test", seed=seed, link=LinkFaults(**rates))


class TestPerFaultBehaviour:
    def test_drop_all(self):
        engine, segment, sender, catcher = make_wire()
        with FaultyLink(segment, plan_with(drop_rate=1.0)) as link:
            for n in range(5):
                sender.send(frame(n))
            engine.run()
        assert catcher.frames == []
        assert link.dropped == 5
        assert link.frames_seen == 5

    def test_duplicate_all(self):
        engine, segment, sender, catcher = make_wire()
        with FaultyLink(segment, plan_with(duplicate_rate=1.0)) as link:
            sender.send(frame(0))
            engine.run()
        assert catcher.frames == [frame(0), frame(0)]
        assert link.duplicated == 1

    def test_corruption_flips_one_payload_byte(self):
        engine, segment, sender, catcher = make_wire()
        original = frame(0)
        with FaultyLink(segment, plan_with(corrupt_rate=1.0)) as link:
            sender.send(original)
            engine.run()
        assert link.corrupted == 1
        (damaged,) = catcher.frames
        assert len(damaged) == len(original)
        assert damaged[:34] == original[:34]  # ETH+IP headers untouched
        diffs = [i for i, (a, b) in enumerate(zip(original, damaged))
                 if a != b]
        assert len(diffs) == 1 and diffs[0] >= 34

    def test_header_only_frame_left_alone(self):
        engine, segment, sender, catcher = make_wire()
        runt = frame(0, size=34)  # nothing past the protected prefix
        with FaultyLink(segment, plan_with(corrupt_rate=1.0)) as link:
            sender.send(runt)
            engine.run()
        assert link.corrupted == 0
        assert catcher.frames == [runt]

    def test_reorder_is_an_adjacent_swap(self):
        engine, segment, sender, catcher = make_wire()
        with FaultyLink(segment, plan_with(reorder_rate=1.0)) as link:
            sender.send(frame(0))  # held
            sender.send(frame(1))  # overtakes, releases frame 0
            engine.run()
        assert catcher.frames == [frame(1), frame(0)]
        assert link.reordered == 1

    def test_held_frame_flushed_when_nothing_overtakes(self):
        engine, segment, sender, catcher = make_wire()
        faults = plan_with(reorder_rate=1.0)
        with FaultyLink(segment, faults) as link:
            sender.send(frame(0))
            engine.run()
        assert catcher.frames == [frame(0)]
        assert link.flushed == 1
        assert link.reordered == 0
        assert engine.now >= faults.link.reorder_flush_us

    def test_delay_defers_but_delivers(self):
        engine, segment, sender, catcher = make_wire()
        plan = plan_with(delay_rate=1.0)
        with FaultyLink(segment, plan) as link:
            sender.send(frame(0))
            engine.run()
        assert catcher.frames == [frame(0)]
        assert link.delayed == 1
        assert engine.now >= plan.link.delay_us


class TestLifecycle:
    def test_uninstall_restores_and_flushes(self):
        engine, segment, sender, catcher = make_wire()
        pristine = segment.transmit
        link = FaultyLink(segment, plan_with(reorder_rate=1.0)).install()
        sender.send(frame(0))  # held
        link.uninstall()
        assert segment.transmit == pristine
        engine.run()
        assert catcher.frames == [frame(0)]  # held frame not lost
        # The wire is honest again.
        sender.send(frame(1))
        engine.run()
        assert catcher.frames[-1] == frame(1)
        assert link.frames_seen == 1

    def test_double_install_rejected(self):
        import pytest

        _, segment, _, _ = make_wire()
        link = FaultyLink(segment, plan_with()).install()
        with pytest.raises(RuntimeError, match="already installed"):
            link.install()
        link.uninstall()
        link.uninstall()  # idempotent


class TestDeterminism:
    def _run(self, seed):
        engine, segment, sender, catcher = make_wire()
        with FaultyLink(segment, profile("lossy", seed=seed)) as link:
            for n in range(40):
                sender.send(frame(n))
            engine.run()
        return catcher.frames, link.counters()

    def test_same_seed_same_trajectory(self):
        frames_a, counters_a = self._run(seed=5)
        frames_b, counters_b = self._run(seed=5)
        assert frames_a == frames_b
        assert counters_a == counters_b
        # and the profile actually did something
        assert counters_a["dropped"] > 0

    def test_different_seed_differs(self):
        frames_a, _ = self._run(seed=5)
        frames_b, _ = self._run(seed=6)
        assert frames_a != frames_b
