"""End-to-end self-healing: the acceptance criteria of the robustness PR.

* Under the seeded drop-10% + reorder profile, a TCP-over-IP path delivers
  every payload byte, byte-identically across two same-seed runs.
* A quietly stalled video path is detected by the watchdog within its
  budget, rebuilt, and resumes producing frames.
"""

import pytest

from repro.faults import FaultPlan, LinkFaults
from repro.experiments import run_tcp_recovery, run_watchdog_recovery


class TestTcpRecovery:
    def test_clean_wire_baseline(self):
        result = run_tcp_recovery("none", seed=1, payload_bytes=4_000)
        assert result.complete
        assert result.delivered_bytes == 4_000
        assert result.retransmissions == 0
        assert result.link["dropped"] == 0

    def test_acceptance_drop10_reorder_byte_identical(self):
        """ISSUE acceptance: all payload bytes delivered despite the
        faults, and two same-seed runs replay byte-identically (digest
        covers the delivered stream *and* the whole fault trajectory)."""
        first = run_tcp_recovery("drop10_reorder", seed=1,
                                 payload_bytes=16_000)
        second = run_tcp_recovery("drop10_reorder", seed=1,
                                  payload_bytes=16_000)
        assert first.complete and second.complete
        assert first.delivered_bytes == 16_000
        assert first.digest == second.digest
        assert first.link == second.link
        assert first.retransmissions == second.retransmissions
        # The wire really was hostile, and TCP really did the healing.
        assert first.link["dropped"] > 0
        assert first.link["reordered"] > 0
        assert first.retransmissions > 0
        assert first.retx_abandoned == 0

    def test_different_seed_different_trajectory(self):
        one = run_tcp_recovery("drop10_reorder", seed=1,
                               payload_bytes=16_000)
        two = run_tcp_recovery("drop10_reorder", seed=2,
                               payload_bytes=16_000)
        assert one.complete and two.complete  # healing works either way
        assert one.digest != two.digest       # but the runs are distinct

    def test_corruption_detected_and_recovered(self):
        """Flipped payload bytes must not reach the application: the TCP
        checksum rejects them and retransmission repairs the stream."""
        plan = FaultPlan(name="corrupt-heavy", seed=3,
                         link=LinkFaults(corrupt_rate=0.15))
        result = run_tcp_recovery(seed=3, payload_bytes=6_000, plan=plan)
        assert result.complete  # byte-identical despite the damage
        assert result.link["corrupted"] > 0
        assert result.retransmissions > 0

    def test_reorder_absorbed_without_data_loss(self):
        result = run_tcp_recovery("reorder", seed=2, payload_bytes=6_000)
        assert result.complete
        assert result.link["reordered"] > 0
        assert result.sink_ooo_segments > 0  # buffer, don't drop

    def test_duplicates_suppressed(self):
        result = run_tcp_recovery("dup5", seed=6, payload_bytes=6_000)
        assert result.complete
        assert result.link["duplicated"] > 0
        assert result.sink_dup_segments > 0
        assert result.delivered_bytes == 6_000  # duplicates not delivered


@pytest.mark.slow
class TestWatchdogRecovery:
    def test_stalled_video_path_detected_and_rebuilt(self):
        result = run_watchdog_recovery(seed=3, nframes=90, max_seconds=30.0)
        assert result.stalls_detected >= 1
        assert result.rebuilds >= 1
        # Detection within the stall budget (plus one check interval of
        # sampling slack).
        assert result.detection_latency_us is not None
        assert result.detection_latency_us <= result.stall_budget_us + 100_000
        # The rebuilt path actually resumed.
        assert result.recovery_latency_us is not None
        assert result.frames_after_rebuild > 0
        assert result.source_done
        # The source's window probe is what reopens the flow.
        assert result.window_probes >= 1
