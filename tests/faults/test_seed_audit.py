"""Seed-propagation audit for the adversarial subsystem.

Reproducibility is a *verdict precondition*: a stability counterexample
that cannot be replayed from its seed is worthless.  Two guarantees are
audited here:

* **behavioural** — two ``run_adversary`` calls with the same seed
  produce byte-identical digests (schedule digest + rendered verdict),
  and different seeds actually explore different schedules;
* **structural** — every random draw in ``repro.faults`` flows from a
  :class:`FaultPlan`'s generator.  The only ``default_rng`` call site in
  the package is ``plan.py``; nothing consults global NumPy/stdlib
  randomness, wall clocks, or PYTHONHASHSEED-dependent iteration.
"""

import pathlib

import pytest

from repro.experiments import run_adversary
from repro.experiments.adversary_exp import run_adversary_matrix

FAULTS_DIR = (pathlib.Path(__file__).resolve().parents[2]
              / "src" / "repro" / "faults")

RUN_KW = dict(strategy="queue_storm", scheduler="edf", members=2,
              duration_us=30_000.0, horizon_us=20_000.0)


class TestDigestDeterminism:

    def test_same_seed_same_digest(self):
        first = run_adversary(seed=7, **RUN_KW)
        second = run_adversary(seed=7, **RUN_KW)
        assert first.digest == second.digest
        assert first.injected == second.injected
        assert first.delivered == second.delivered
        assert first.max_queue_depth == second.max_queue_depth

    def test_different_seed_different_digest(self):
        digests = {run_adversary(seed=seed, **RUN_KW).digest
                   for seed in (1, 2, 3)}
        assert len(digests) == 3

    @pytest.mark.parametrize("strategy", ["deadline_cliff", "group_chaser"])
    def test_determinism_holds_per_strategy(self, strategy):
        kwargs = dict(RUN_KW, strategy=strategy)
        assert (run_adversary(seed=11, **kwargs).digest
                == run_adversary(seed=11, **kwargs).digest)


class TestSpecializationInvariance:
    """The execution tier is not allowed to be an input: the adversary
    matrix must produce byte-identical digests whether the paths run the
    compiled chains or exec-generated fused functions (DESIGN.md §15).
    A digest drift here would mean the specialized tier changed a drop,
    a queue depth, or a delivery order somewhere under worst-case load —
    exactly the regression the differential harness exists to catch."""

    MATRIX_KW = dict(members=2, duration_us=30_000.0,
                     horizon_us=20_000.0)

    def _matrix_digests(self, monkeypatch, enabled):
        monkeypatch.setenv("REPRO_SPECIALIZE", "1" if enabled else "0")
        results = run_adversary_matrix(
            strategies=("queue_storm", "deadline_cliff"),
            schedulers=("edf", "stride"), seed=7, **self.MATRIX_KW)
        return [(r.strategy, r.scheduler, r.digest, r.injected,
                 r.delivered, r.max_queue_depth) for r in results]

    def test_matrix_digests_identical_with_specialization_on_and_off(
            self, monkeypatch):
        assert self._matrix_digests(monkeypatch, enabled=False) \
            == self._matrix_digests(monkeypatch, enabled=True)

    def test_single_run_digest_unaffected_by_specialization(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE", "0")
        off = run_adversary(seed=7, **RUN_KW)
        monkeypatch.setenv("REPRO_SPECIALIZE", "1")
        on = run_adversary(seed=7, **RUN_KW)
        assert on.digest == off.digest
        assert (on.injected, on.delivered, on.max_queue_depth) \
            == (off.injected, off.delivered, off.max_queue_depth)


class TestSourceAudit:
    """Grep-level invariants over ``src/repro/faults``."""

    def _sources(self):
        return sorted(FAULTS_DIR.glob("*.py"))

    def test_package_is_where_we_think(self):
        names = {path.name for path in self._sources()}
        assert "adversary.py" in names and "plan.py" in names

    def test_default_rng_only_in_plan(self):
        offenders = [path.name for path in self._sources()
                     if "default_rng" in path.read_text()
                     and path.name != "plan.py"]
        assert offenders == []

    def test_no_global_randomness_or_clocks(self):
        banned = ("np.random.seed", "random.random(", "random.randint(",
                  "time.time(", "time.monotonic(", "datetime.now(")
        for path in self._sources():
            text = path.read_text()
            hits = [token for token in banned if token in text]
            assert not hits, f"{path.name} uses {hits}"

    def test_adversary_takes_rng_never_makes_one(self):
        text = (FAULTS_DIR / "adversary.py").read_text()
        assert "default_rng" not in text
        assert "import random" not in text
