"""Fault plans: seeded pure data, deterministic by construction."""

import pytest

from repro.faults import (
    FaultPlan,
    LinkFaults,
    PROFILES,
    QueueStorm,
    StageFault,
    profile,
    profile_names,
)


class TestPlans:
    def test_default_plan_is_quiet(self):
        plan = FaultPlan()
        assert not plan.link.any_active
        assert plan.stage_faults == ()
        assert plan.storms == ()

    def test_rng_replays_identically(self):
        plan = profile("drop10", seed=17)
        first = [float(plan.rng().random()) for _ in range(1)]
        second = [float(plan.rng().random()) for _ in range(1)]
        assert first == second

    def test_rng_streams_are_seed_dependent(self):
        a = profile("drop10", seed=1).rng().random()
        b = profile("drop10", seed=2).rng().random()
        assert a != b

    def test_with_seed_keeps_everything_else(self):
        plan = profile("lossy").with_seed(99)
        assert plan.seed == 99
        assert plan.name == "lossy"
        assert plan.link == PROFILES["lossy"].link

    def test_plans_are_immutable(self):
        plan = profile("none")
        with pytest.raises(AttributeError):
            plan.seed = 5


class TestStageFault:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown stage fault mode"):
            StageFault(router="X", mode="explode")

    def test_window_gating(self):
        fault = StageFault(router="X", mode="stall", start_us=100.0,
                           duration_us=50.0)
        assert not fault.active_at(99.0)
        assert fault.active_at(100.0)
        assert fault.active_at(149.0)
        assert not fault.active_at(150.0)

    def test_permanent_fault_never_ends(self):
        fault = StageFault(router="X", mode="crash")
        assert fault.active_at(1e15)


class TestProfiles:
    def test_known_names(self):
        for name in ("none", "drop10", "reorder", "drop10_reorder",
                     "lossy", "dup5", "corrupt5"):
            assert name in profile_names()

    def test_unknown_profile_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="known:"):
            profile("chaos-monkey")

    def test_queue_storm_shape(self):
        storm = QueueStorm(queue_role=2, start_us=10.0, duration_us=5.0)
        assert storm.clamp_len == 1

    def test_link_faults_any_active(self):
        assert LinkFaults(delay_rate=0.1).any_active
        assert not LinkFaults().any_active
