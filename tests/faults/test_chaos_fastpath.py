"""Chaos acceptance for the demux fast path: a video session whose path
is torn down and rebuilt by the watchdog while the degradation governor's
early-discard knob flips under load.  Through all of it the flow cache
must never serve a stale (non-ESTABLISHED) path — every reconfiguration
invalidates, and the next packet re-walks the full refinement chain.
"""

import pytest

from repro import params
from repro.core.path import ESTABLISHED
from repro.core.path_create import path_create
from repro.experiments.testbed import Testbed
from repro.faults import PathWatchdog, StageFault, StageFaultInjector
from repro.mpeg.clips import NEPTUNE


@pytest.mark.slow
class TestChaosFastPath:
    def test_no_stale_path_served_under_rebuild_and_governor_flips(self):
        testbed = Testbed(seed=3)
        source = testbed.add_video_source(
            NEPTUNE, dst_port=6100, seed=3, nframes=90,
            pace_fps=NEPTUNE.fps,
            probe_timeout_us=params.MFLOW_PROBE_TIMEOUT_US)
        kernel = testbed.build_scout(rate_limited_display=False)
        remote = (str(source.ip), source.src_port)
        session = kernel.start_video(NEPTUNE, remote, local_port=6100)

        injector = StageFaultInjector(testbed.world.engine)
        injector.apply(session.path,
                       StageFault(router="MFLOW", mode="stall",
                                  start_us=500_000.0))

        rebuilt = []

        def rebuild():
            attrs = kernel.build_video_attrs(NEPTUNE, remote,
                                             local_port=6100)
            path = path_create(kernel.display, attrs,
                               transforms=kernel.transforms,
                               admission=kernel.admission)
            rebuilt.append(kernel._attach_video_path(path))
            return path

        watchdog = PathWatchdog(testbed.world.engine, session.path, rebuild,
                                flow_cache=kernel.flow_cache).start()

        # Spy on every cache decision: a hit handing out a path in any
        # state but ESTABLISHED would be a stale fast-path delivery.
        served_states = []
        inner_lookup = kernel.flow_cache.lookup

        def spying_lookup(msg):
            path = inner_lookup(msg)
            if path is not None:
                served_states.append(path.state)
            return path

        kernel.flow_cache.lookup = spying_lookup

        # Governor-style early-discard flips on whatever path is live at
        # fire time (the watchdog swaps paths mid-run).
        def flip(modulus):
            kernel.set_frame_skip(watchdog.path, modulus)

        for index, when in enumerate(range(200_000, 2_000_001, 200_000)):
            testbed.world.engine.schedule(
                when, flip, 2 if index % 2 == 0 else 1)

        testbed.start_all()
        testbed.run_until_sources_done(max_seconds=30.0)
        watchdog.stop()

        # The chaos actually happened: a rebuild, resumed playback, and
        # repeated cache invalidation from delete + governor flips.
        assert watchdog.rebuilds >= 1
        assert sum(s.frames_presented for s in rebuilt) > 0
        assert kernel.flow_cache.invalidations > 0
        # The headline invariant: the fast path stayed hot (real hits)
        # and never once served anything but an ESTABLISHED path.
        assert kernel.flow_cache.hits > 0
        assert served_states, "flow cache never consulted under load"
        assert all(state == ESTABLISHED for state in served_states)
