"""Watchdog unit tests against a stub path with scriptable signatures."""

from repro.core.path import DELETED
from repro.faults import PathWatchdog
from repro.sim.engine import Engine


class FakePath:
    """Just enough of a Path for the watchdog: two counters and a state."""

    _next_pid = 1000

    def __init__(self):
        FakePath._next_pid += 1
        self.pid = FakePath._next_pid
        self.progress = 0
        self.demand = 0
        self.state = "created"

    def progress_signature(self):
        return self.progress

    def demand_signature(self):
        return self.demand

    def delete(self, drop_category="path_teardown"):
        self.delete_category = drop_category
        self.state = DELETED


def tick(engine, fn, every=10.0):
    """Run *fn* every *every* us of virtual time."""
    def fire():
        fn()
        engine.schedule(every, fire)
    engine.schedule(every, fire)


def make_watchdog(engine, path, rebuild, **overrides):
    kwargs = dict(check_interval_us=10.0, stall_budget_us=50.0,
                  backoff_base_us=5.0, backoff_max_us=40.0)
    kwargs.update(overrides)
    return PathWatchdog(engine, path, rebuild, **kwargs)


class TestDetection:
    def test_healthy_path_never_flagged(self):
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath).start()

        def work():
            path.demand += 1
            path.progress += 1
        tick(engine, work)
        engine.run_until(1_000.0)
        assert dog.stalls_detected == 0
        assert dog.events == []

    def test_idle_path_is_not_a_stall(self):
        """No demand, no progress: the path is idle, not hung."""
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath).start()
        engine.run_until(1_000.0)
        assert dog.stalls_detected == 0

    def test_stall_detected_within_budget(self):
        engine, path = Engine(), FakePath()
        replacements = []

        def rebuild():
            replacements.append(FakePath())
            return replacements[-1]

        dog = make_watchdog(engine, path, rebuild).start()
        tick(engine, lambda: setattr(path, "demand", path.demand + 1))
        engine.run_until(1_000.0)
        assert dog.stalls_detected == 1
        stall = dog.events[0]
        assert stall["type"] == "stall_detected"
        # Flat clock starts at the first demand-advancing check (t=10);
        # detection on the first check >= budget later.
        assert 50.0 <= stall["time_us"] <= 50.0 + 2 * dog.check_interval_us
        assert path.state == DELETED
        assert dog.rebuilds == 1
        assert dog.path is replacements[0]

    def test_drop_only_path_counts_as_stalled(self):
        """Demand rising with progress flat is a stall even if the path is
        'handling' messages by shedding them (drops are not progress)."""
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath).start()
        tick(engine, lambda: setattr(path, "demand", path.demand + 3))
        engine.run_until(200.0)
        assert dog.stalls_detected == 1

    def test_stop_cancels_monitoring(self):
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath).start()
        dog.stop()
        tick(engine, lambda: setattr(path, "demand", path.demand + 1))
        engine.run_until(1_000.0)
        assert dog.stalls_detected == 0


class TestRepair:
    def _stalling_world(self, rebuild_delay_progress=30.0):
        """A world where the watched path stalls and every replacement
        starts producing output *rebuild_delay_progress* us after birth."""
        engine = Engine()
        path = FakePath()
        replacements = []

        def rebuild():
            fresh = FakePath()
            replacements.append(fresh)

            def produce():
                fresh.demand += 1
                fresh.progress += 1
            tick(engine, produce, every=rebuild_delay_progress)
            return fresh

        dog = make_watchdog(engine, path, rebuild).start()
        tick(engine, lambda: setattr(path, "demand", path.demand + 1))
        return engine, path, dog, replacements

    def test_recovery_latency_measured(self):
        engine, _path, dog, replacements = self._stalling_world()
        engine.run_until(2_000.0)
        assert dog.rebuilds == 1
        assert len(dog.recovery_latencies_us) == 1
        kinds = [e["type"] for e in dog.events]
        assert kinds[:3] == ["stall_detected", "rebuilt", "recovered"]
        recovered = dog.events[2]
        # Latency spans detection -> first post-rebuild progress.
        assert recovered["latency_us"] == (
            recovered["time_us"] - dog.events[0]["time_us"])
        assert dog.last_recovery_latency_us == recovered["latency_us"]
        assert dog.path is replacements[0]

    def test_rebuild_failures_retry_with_backoff(self):
        engine, path = Engine(), FakePath()
        attempts = []

        def flaky_rebuild():
            attempts.append(engine.now)
            if len(attempts) < 3:
                raise OSError("no ports left")
            return FakePath()

        dog = make_watchdog(engine, path, flaky_rebuild).start()
        tick(engine, lambda: setattr(path, "demand", path.demand + 1))
        engine.run_until(2_000.0)
        assert dog.rebuild_failures == 2
        assert dog.rebuilds == 1
        kinds = [e["type"] for e in dog.events]
        assert kinds == ["stall_detected", "rebuild_failed",
                         "rebuild_failed", "rebuilt"]
        # Exponential backoff: gap doubles between consecutive attempts.
        first_gap = attempts[1] - attempts[0]
        second_gap = attempts[2] - attempts[1]
        assert second_gap == 2 * first_gap

    def test_repeat_stalls_each_recovered(self):
        engine = Engine()
        incarnations = []

        def rebuild():
            fresh = FakePath()
            incarnations.append(fresh)
            return fresh

        first = FakePath()
        incarnations.append(first)
        dog = make_watchdog(engine, first, rebuild).start()

        def drive():
            live = dog.path
            live.demand += 1
            # Every incarnation works for a while, then wedges.
            if live.progress < 5:
                live.progress += 1
        tick(engine, drive)
        engine.run_until(3_000.0)
        assert dog.stalls_detected >= 2
        assert dog.rebuilds == dog.stalls_detected
        assert len(dog.recovery_latencies_us) >= 2


class TestAdoption:
    def test_externally_deleted_path_waits_for_adopt(self):
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath).start()
        path.delete()  # e.g. stop_video behind the watchdog's back
        engine.run_until(500.0)
        assert dog.stalls_detected == 0  # dormant, not confused
        fresh = FakePath()
        dog.adopt(fresh)
        tick(engine, lambda: setattr(fresh, "demand", fresh.demand + 1))
        engine.run_until(1_500.0)
        assert dog.stalls_detected == 1  # monitoring the adopted path


class TestOverloadDiscrimination:
    """Flat progress under admission-confirmed overload is not a stall."""

    def test_overload_defers_instead_of_rebuilding(self):
        engine, path = Engine(), FakePath()
        overloaded = [True]
        dog = make_watchdog(engine, path, FakePath,
                            overload_check=lambda: overloaded[0]).start()
        tick(engine, lambda: setattr(path, "demand", path.demand + 1))
        engine.run_until(1_000.0)
        assert dog.overload_deferrals >= 2
        assert dog.stalls_detected == 0
        assert dog.rebuilds == 0
        assert path.state != DELETED
        assert any(e["type"] == "overload_deferred" for e in dog.events)

    def test_real_stall_repaired_once_overload_clears(self):
        engine, path = Engine(), FakePath()
        overloaded = [True]
        dog = make_watchdog(engine, path, FakePath,
                            overload_check=lambda: overloaded[0]).start()
        tick(engine, lambda: setattr(dog.path, "demand",
                                     dog.path.demand + 1))
        engine.schedule(300.0, lambda: overloaded.__setitem__(0, False))
        engine.run_until(1_000.0)
        assert dog.overload_deferrals >= 1  # while the shedder was on
        assert dog.stalls_detected >= 1     # flat + no overload = stall
        assert dog.rebuilds >= 1

    def test_deferral_restarts_the_stall_clock(self):
        """Each deferral resets _flat_since: the stall budget must elapse
        again in full before the next decision point."""
        engine, path = Engine(), FakePath()
        checks = []

        def check():
            checks.append(engine.now)
            return True
        dog = make_watchdog(engine, path, FakePath,
                            overload_check=check).start()
        tick(engine, lambda: setattr(path, "demand", path.demand + 1))
        engine.run_until(500.0)
        assert len(checks) >= 2
        gaps = [b - a for a, b in zip(checks, checks[1:])]
        assert all(gap >= dog.stall_budget_us for gap in gaps)


class TestRebuildStormPrevention:
    def test_cool_down_scales_with_stall_budget(self):
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath)
        from repro import params
        assert dog.min_rebuild_interval_us == (
            params.WATCHDOG_MIN_REBUILD_FACTOR * dog.stall_budget_us)
        explicit = make_watchdog(engine, path, FakePath,
                                 min_rebuild_interval_us=7.0)
        assert explicit.min_rebuild_interval_us == 7.0

    def test_rapid_restalls_are_suppressed_inside_cool_down(self):
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath,
                            min_rebuild_interval_us=100_000.0).start()
        # Demand forever, progress never: every incarnation wedges
        # instantly, which without the cool-down is a rebuild storm.
        tick(engine, lambda: setattr(dog.path, "demand",
                                     dog.path.demand + 1))
        engine.run_until(5_000.0)
        assert dog.rebuilds == 1  # the first repair
        assert dog.rebuilds_suppressed >= 2  # everything after waits

    def test_cool_down_expiry_allows_the_next_rebuild(self):
        engine, path = Engine(), FakePath()
        dog = make_watchdog(engine, path, FakePath,
                            min_rebuild_interval_us=300.0).start()
        tick(engine, lambda: setattr(dog.path, "demand",
                                     dog.path.demand + 1))
        engine.run_until(5_000.0)
        assert dog.rebuilds >= 3          # storms throttled, not stopped
        assert dog.rebuilds_suppressed >= 1
