"""Adversarial traffic subsystem: envelope, strategies, ledger, verdicts."""

import pytest

from repro.admission import BackpressureShedder
from repro.core.queues import PathQueue
from repro.faults import (
    ADVERSARY_OVERFLOW,
    BACKPRESSURE_SHED,
    DELIVERED,
    AdversaryInjector,
    AdversarySpec,
    ArrivalEnvelope,
    DropLedger,
    STRATEGIES,
    TargetView,
    VerdictEngine,
    closed_form_depth_bound,
    make_strategy,
    profile,
)
from repro.observe import StarvationDetector
from repro.sim.engine import Engine


def make_view(now=lambda: 0.0, depths=lambda: [], flow_of=lambda pid: None,
              service_us=40.0, drain_period_us=320.0, cache_capacity=32):
    return TargetView(now, depths, flow_of, service_us, drain_period_us,
                      cache_capacity)


def rng_of(seed=0):
    from repro.faults.plan import FaultPlan
    return FaultPlan(name="t", seed=seed).rng()


class TestEnvelope:
    def test_burst_then_sustained_rate(self):
        env = ArrivalEnvelope(rho_per_us=0.01, w=5)
        # The full burst is available immediately...
        grants = [env.grant(0.0) for _ in range(5)]
        assert grants == [0.0] * 5
        # ...after which requests are paced at exactly 1/rho.
        assert env.grant(0.0) == pytest.approx(100.0)
        assert env.grant(0.0) == pytest.approx(200.0)
        assert env.deferred == 2

    def test_idle_refills_up_to_w(self):
        env = ArrivalEnvelope(rho_per_us=0.01, w=3)
        for _ in range(3):
            env.grant(0.0)
        # A long quiet period refills the bucket, but never beyond w.
        grants = [env.grant(10_000.0) for _ in range(4)]
        assert grants[:3] == [10_000.0] * 3
        assert grants[3] == pytest.approx(10_100.0)

    def test_any_strategy_stays_inside_curve(self):
        spec = AdversarySpec(strategy="queue_storm", rho_per_us=0.05, w=8,
                             duration_us=20_000.0)
        engine = Engine()
        injector = AdversaryInjector(engine, spec, rng_of(3),
                                     inject=lambda event: None,
                                     view=make_view(now=lambda: engine.now))
        injector.start()
        engine.run_until(30_000.0)
        assert injector.injected > 8
        injector.assert_envelope()  # sliding-window check, exact

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalEnvelope(rho_per_us=0.0, w=4)
        with pytest.raises(ValueError):
            ArrivalEnvelope(rho_per_us=0.1, w=0)


class TestClosedFormBound:
    def test_stable_source_has_finite_bound(self):
        # u = 0.4: bound = ceil(8 / 0.6) + 1 = 15
        assert closed_form_depth_bound(0.01, 8, 40.0) == 15

    def test_overloaded_source_has_no_bound(self):
        assert closed_form_depth_bound(0.05, 8, 40.0) is None

    def test_bound_grows_with_utilization(self):
        bounds = [closed_form_depth_bound(rho, 8, 40.0)
                  for rho in (0.005, 0.01, 0.02)]
        assert bounds == sorted(bounds)


class TestStrategies:
    def test_registry_and_construction(self):
        assert set(STRATEGIES) == {"deadline_cliff", "stride_starve",
                                   "cache_thrash", "queue_storm",
                                   "group_chaser"}
        for name in STRATEGIES:
            spec = AdversarySpec(strategy=name)
            strategy = make_strategy(spec, rng_of())
            assert strategy.name == name
        with pytest.raises(ValueError):
            make_strategy(AdversarySpec(strategy="nope"), rng_of())

    def test_adversary_profiles_registered(self):
        for name in STRATEGIES:
            plan = profile(f"adv_{name}")
            assert plan.adversary is not None
            assert plan.adversary.strategy == name

    def test_deadline_cliff_shares_one_deadline_per_burst(self):
        spec = AdversarySpec(strategy="deadline_cliff", w=4)
        strategy = make_strategy(spec, rng_of())
        view = make_view(now=lambda: 1_000.0)
        strategy.next_delay(view)  # burst boundary: new cliff
        deadlines = {strategy.choose(view)[1] for _ in range(4)}
        assert deadlines == {1_000.0 + 2 * view.service_us}

    def test_stride_starve_hammers_one_flow(self):
        strategy = make_strategy(
            AdversarySpec(strategy="stride_starve"), rng_of())
        view = make_view()
        assert strategy.next_delay(view) == 0.0
        assert {strategy.choose(view)[0] for _ in range(10)} == {0}

    def test_cache_thrash_rotates_capacity_plus_one_keys(self):
        strategy = make_strategy(
            AdversarySpec(strategy="cache_thrash"), rng_of())
        view = make_view(cache_capacity=4)
        flows = [strategy.choose(view)[0] for _ in range(10)]
        assert len(set(flows)) == 5  # capacity + 1 distinct keys
        assert flows[:5] == flows[5:]  # strict rotation

    def test_group_chaser_targets_shallowest_member(self):
        strategy = make_strategy(
            AdversarySpec(strategy="group_chaser", flows=4), rng_of())
        pins = {7: 42}
        view = make_view(depths=lambda: [(7, 1), (9, 5)],
                         flow_of=pins.get)
        assert strategy.choose(view)[0] == 42  # reuse the pinned flow
        # No pin on the shallowest member: spend a fresh flow.
        view2 = make_view(depths=lambda: [(7, 9), (9, 2)],
                          flow_of=lambda pid: None)
        assert strategy.choose(view2)[0] > 4


class TestDropLedger:
    def test_exact_reconciliation(self):
        ledger = DropLedger()
        for serial in (1, 2, 3):
            ledger.inject(serial)
        ledger.account(1, DELIVERED)
        ledger.account(2, BACKPRESSURE_SHED)
        ledger.account(3, ADVERSARY_OVERFLOW)
        assert ledger.leaks() == []
        assert ledger.counts() == {DELIVERED: 1, BACKPRESSURE_SHED: 1,
                                   ADVERSARY_OVERFLOW: 1}
        assert sum(ledger.counts().values()) == ledger.injected

    def test_leak_detected(self):
        ledger = DropLedger()
        ledger.inject(1)
        ledger.inject(2)
        ledger.account(1, DELIVERED)
        assert ledger.leaks() == [2]

    def test_double_count_recorded_never_merged(self):
        ledger = DropLedger()
        ledger.inject(1)
        ledger.account(1, DELIVERED)
        ledger.account(1, ADVERSARY_OVERFLOW)
        assert ledger.double_counted == [(1, DELIVERED, ADVERSARY_OVERFLOW)]
        assert ledger.count(DELIVERED) == 1  # first category stands

    def test_duplicate_injection_rejected(self):
        ledger = DropLedger()
        ledger.inject(1)
        with pytest.raises(ValueError):
            ledger.inject(1)
        with pytest.raises(ValueError):
            ledger.account(99, DELIVERED)


class TestVerdictEngine:
    def _run(self, depth, bound, starved=(), leak=False):
        queue = PathQueue(maxlen=64, name="t")
        for _ in range(depth):
            queue.try_enqueue(object())
        ledger = DropLedger()
        ledger.inject(1)
        if not leak:
            ledger.account(1, DELIVERED)

        class Starvation:
            worst_gap_us = 10.0
            horizon_us = 100.0

            def starved_flows(self):
                return list(starved)

        engine = VerdictEngine([queue], ledger, Starvation(),
                               depth_bound=bound, queue_capacity=64)
        return engine.verdict("s", "edf", 0)

    def test_all_three_guarantees_hold(self):
        verdict = self._run(depth=3, bound=5)
        assert verdict.ok
        assert verdict.bounded_ok and verdict.starvation_ok \
            and verdict.ledger_ok
        assert "ok" in verdict.render()

    def test_depth_violation(self):
        verdict = self._run(depth=7, bound=5)
        assert not verdict.ok and not verdict.bounded_ok
        assert "VIOLATED" in verdict.render()

    def test_starvation_violation(self):
        verdict = self._run(depth=1, bound=5, starved=["flow0"])
        assert not verdict.ok and not verdict.starvation_ok

    def test_ledger_violation(self):
        verdict = self._run(depth=1, bound=5, leak=True)
        assert not verdict.ok and not verdict.ledger_ok
        assert verdict.leaked == 1


class TestStarvationDetector:
    def test_served_flow_never_starved(self):
        engine = Engine()
        detector = StarvationDetector(engine, horizon_us=100.0).start()
        for i in range(20):
            when = i * 30.0
            engine.schedule_at(when, detector.on_admit, "f")
            engine.schedule_at(when + 20.0, detector.on_deliver, "f")
        engine.run_until(1_000.0)
        assert detector.starved_flows() == []
        assert detector.worst_gap_us <= 100.0

    def test_stuck_flow_detected_within_horizon_and_a_quarter(self):
        engine = Engine()
        detector = StarvationDetector(engine, horizon_us=100.0).start()
        engine.schedule_at(0.0, detector.on_admit, "stuck")
        engine.run_until(130.0)
        assert detector.starved_flows() == ["stuck"]
        assert detector.violation_gaps()["stuck"] > 100.0

    def test_pending_counts_balance(self):
        engine = Engine()
        detector = StarvationDetector(engine, horizon_us=100.0)
        detector.on_admit("f")
        detector.on_admit("f")
        detector.on_deliver("f")
        assert detector.pending("f") == 1
        detector.on_deliver("f")
        assert detector.pending("f") == 0


class TestBackpressureShedder:
    def test_hysteresis_and_hard_bound(self):
        queue = PathQueue(maxlen=20, name="t")
        shedder = BackpressureShedder([queue], high_occupancy=0.75,
                                      low_occupancy=0.5)
        # Fill while admitted; the shedder trips at high occupancy.
        depths = []
        for _ in range(40):
            if shedder.admit():
                queue.try_enqueue(object())
            depths.append(len(queue))
        assert max(depths) <= shedder.depth_bound() == 16
        assert shedder.shedding and shedder.shed_count > 0
        # Shedding persists until occupancy falls below low (hysteresis).
        queue.dequeue()
        assert not shedder.admit()
        while len(queue) > 10:  # low = 0.5 * 20
            queue.dequeue()
        assert shedder.admit()
        assert not shedder.shedding

    def test_pressure_listeners_fire_on_transitions(self):
        queue = PathQueue(maxlen=4, name="t")
        shedder = BackpressureShedder([queue], high_occupancy=0.75,
                                      low_occupancy=0.25)
        seen = []
        shedder.on_pressure(seen.append)
        for _ in range(4):
            if shedder.admit():
                queue.try_enqueue(object())
        queue.drain()
        shedder.admit()
        assert seen == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            BackpressureShedder([], high_occupancy=0.3, low_occupancy=0.5)


class TestHarness:
    """End-to-end: the experiment harness upholds all three guarantees."""

    def test_overload_run_is_stable_with_distinct_drop_category(self):
        from repro.experiments.adversary_exp import run_adversary
        result = run_adversary(strategy="cache_thrash", scheduler="edf",
                               seed=2, members=1, duration_us=40_000.0)
        assert result.ok
        assert result.verdict.bounded_ok
        assert result.verdict.starvation_ok
        assert result.verdict.ledger_ok
        # rho=0.04 against one 40us consumer is overload: admission must
        # have shed, and whatever queue drops happened carry the
        # adversary's own category, never generic overflow.
        assert result.shed > 0
        assert "overflow" not in result.verdict.ledger
        assert "inq_overflow" not in result.verdict.ledger
        assert result.metrics_reconciled

    def test_adversarial_drops_attributed_on_path_stats(self):
        from repro.core.stage import BWD
        from repro.experiments.adversary_exp import run_adversary
        result = run_adversary(strategy="queue_storm", scheduler="stride",
                               seed=3, members=1, duration_us=40_000.0,
                               shed=False, queue_capacity=8,
                               service_us=60.0)
        # Without the shedder the queue itself rejects: those drops are
        # attributed under the adversary's category in the ledger.
        assert result.overflowed > 0
        assert result.verdict.ledger[ADVERSARY_OVERFLOW] == result.overflowed
        assert result.verdict.ledger_ok

    def test_watchdog_never_provoked_into_rebuilds(self):
        from repro.experiments.adversary_exp import run_adversary
        result = run_adversary(strategy="deadline_cliff", scheduler="edf",
                               seed=4, members=2, duration_us=60_000.0)
        assert result.watchdog_rebuilds == 0

    def test_unknown_scheduler_rejected(self):
        from repro.experiments.adversary_exp import run_adversary
        with pytest.raises(ValueError):
            run_adversary(scheduler="fifo")
