"""The degradation governor's feedback loop, against a scriptable path."""

from repro.core import PathQueue
from repro.core.path import DELETED
from repro.faults import DegradationGovernor
from repro.sim.engine import Engine


class FakeStats:
    def __init__(self):
        self.drops = 0
        self.drop_reasons = {}


class FakePath:
    def __init__(self, maxlen=4):
        self.pid = 1
        self.state = "created"
        self.stats = FakeStats()
        self._inq = PathQueue(maxlen=maxlen, name="inq")

    def input_queue(self, direction):
        return self._inq


class FakeKernel:
    def __init__(self):
        self.skips = {}

    def frame_skip(self, path):
        return self.skips.get(path.pid, 1)

    def set_frame_skip(self, path, skip):
        self.skips[path.pid] = skip


INTERVAL = 100.0


def make_governor(path=None, kernel=None, **overrides):
    engine = Engine()
    path = path if path is not None else FakePath()
    kernel = kernel if kernel is not None else FakeKernel()
    kwargs = dict(check_interval_us=INTERVAL, high_occupancy=0.75,
                  low_occupancy=0.25, drop_threshold=4, max_skip=8,
                  healthy_checks=3)
    kwargs.update(overrides)
    governor = DegradationGovernor(engine, kernel, path, **kwargs)
    return engine, path, kernel, governor


def run_checks(engine, n):
    engine.run_until(engine.now + n * INTERVAL + 1.0)


class TestEscalation:
    def test_high_occupancy_doubles_the_skip(self):
        engine, path, kernel, governor = make_governor()
        governor.start()
        for i in range(4):
            path._inq.enqueue(i)  # occupancy 1.0
        run_checks(engine, 1)
        assert governor.skip == 2
        assert governor.escalations == 1
        assert governor.events[0]["type"] == "escalate"

    def test_sustained_pressure_saturates_at_max_skip(self):
        engine, path, kernel, governor = make_governor()
        governor.start()
        for i in range(4):
            path._inq.enqueue(i)
        run_checks(engine, 10)
        assert governor.skip == 8  # 1 -> 2 -> 4 -> 8, capped
        assert governor.escalations == 3

    def test_drop_burst_is_pressure_even_with_empty_queue(self):
        engine, path, kernel, governor = make_governor()
        governor.start()
        path.stats.drops = 5  # >= drop_threshold new drops this period
        run_checks(engine, 1)
        assert governor.skip == 2

    def test_early_discards_are_not_pressure(self):
        """The governor's own medicine (early-discard drops) must not be
        read back as pressure, or the loop locks at max degradation."""
        engine, path, kernel, governor = make_governor()
        governor.start()
        path.stats.drops = 50
        path.stats.drop_reasons["early_discard"] = 50
        run_checks(engine, 3)
        assert governor.skip == 1
        assert governor.escalations == 0


class TestDeescalation:
    def test_eases_after_consecutive_calm_checks(self):
        engine, path, kernel, governor = make_governor()
        kernel.set_frame_skip(path, 8)
        governor.start()
        run_checks(engine, 2)
        assert governor.skip == 8  # only 2 calm samples: hold
        run_checks(engine, 1)
        assert governor.skip == 4  # third calm sample: ease one step
        run_checks(engine, 3)
        assert governor.skip == 2
        run_checks(engine, 3)
        assert governor.skip == 1  # floor
        run_checks(engine, 3)
        assert governor.skip == 1
        assert governor.deescalations == 3

    def test_pressure_resets_the_calm_streak(self):
        engine, path, kernel, governor = make_governor()
        kernel.set_frame_skip(path, 4)
        governor.start()
        run_checks(engine, 2)  # two calm samples...
        for i in range(4):
            path._inq.enqueue(i)
        run_checks(engine, 1)  # ...then pressure: streak resets, escalate
        assert governor.skip == 8
        path._inq.clear()
        path.stats.drop_reasons["early_discard"] = path.stats.drops
        run_checks(engine, 2)
        assert governor.skip == 8  # calm streak restarted from zero
        run_checks(engine, 1)
        assert governor.skip == 4

    def test_admission_floor_bounds_the_recovery(self):
        class FakeAdmission:
            def suggest_skip(self, profile, fps, max_skip=8):
                return 2

        engine, path, kernel, governor = make_governor(
            admission=FakeAdmission(), profile=object(), fps=30.0)
        kernel.set_frame_skip(path, 8)
        governor.start()
        run_checks(engine, 12)
        assert governor.skip == 2  # admission says full quality won't fit


class TestLifecycle:
    def test_stop_halts_the_loop(self):
        engine, path, kernel, governor = make_governor()
        governor.start()
        governor.stop()
        for i in range(4):
            path._inq.enqueue(i)
        run_checks(engine, 5)
        assert governor.escalations == 0

    def test_deleted_path_ends_monitoring(self):
        engine, path, kernel, governor = make_governor()
        governor.start()
        path.state = DELETED
        for i in range(4):
            path._inq.enqueue(i)
        run_checks(engine, 5)
        assert governor.escalations == 0


class TestExternalPressure:
    """The pressure_fn hook: backpressure shedding upstream counts as
    pressure even when this path's own queue and drops look calm."""

    def test_external_pressure_escalates(self):
        pressured = [True]
        engine, path, kernel, governor = make_governor(
            pressure_fn=lambda: pressured[0])
        governor.start()
        run_checks(engine, 1)  # empty queue, zero drops — but shedding
        assert governor.skip == 2
        assert governor.escalations == 1

    def test_external_pressure_blocks_recovery(self):
        pressured = [True]
        engine, path, kernel, governor = make_governor(
            pressure_fn=lambda: pressured[0])
        governor.start()
        # Queue stays empty, drops stay zero: without the external
        # signal the governor would never escalate, let alone saturate.
        run_checks(engine, 10)
        assert governor.skip == 8  # sustained shedding saturates
        assert governor.deescalations == 0
        pressured[0] = False
        # One step back per healthy_checks calm periods: 8 -> 4 -> 2 -> 1.
        run_checks(engine, 10)
        assert governor.skip == 1

    def test_no_pressure_fn_means_no_external_signal(self):
        engine, path, kernel, governor = make_governor()
        governor.start()
        run_checks(engine, 3)
        assert governor.skip == 1
        assert governor.escalations == 0
