"""Stage fault injection: crash / stall / slowdown, storms, gating."""

import pytest

from repro.core import Attrs, FWD, Msg, path_create
from repro.core.queues import FWD_IN
from repro.faults import (
    InjectedFault,
    QueueStorm,
    QueueStormer,
    StageFault,
    StageFaultInjector,
    FaultPlan,
)
from repro.kernel import PA_FAULT_ISOLATION, default_transforms
from repro.net.common import peek_cost
from repro.sim.engine import Engine

from ..helpers import make_chain


def build_path(isolated=True):
    _graph, routers = make_chain("A", "B", "C")
    attrs = Attrs({PA_FAULT_ISOLATION: True} if isolated else {})
    return path_create(routers[0], attrs, transforms=default_transforms())


def inject(path, **fault_kwargs):
    engine = Engine()
    injector = StageFaultInjector(engine)
    injector.apply(path, StageFault(**fault_kwargs))
    return engine, injector


class TestCrash:
    def test_contained_under_fault_isolation(self):
        path = build_path(isolated=True)
        _engine, injector = inject(path, router="B", mode="crash")
        msg = Msg(b"doomed")
        path.deliver(msg, FWD)  # must not raise
        assert injector.crashes == 1
        assert "injected crash in B" in msg.meta["drop_reason"]
        assert path.stats.drop_reasons.get("fault_isolation") == 1
        assert path.output_queue(FWD).is_empty()

    def test_escapes_without_isolation(self):
        path = build_path(isolated=False)
        inject(path, router="B", mode="crash")
        with pytest.raises(InjectedFault, match="injected crash in B"):
            path.deliver(Msg(b"doomed"), FWD)

    def test_injection_recorded(self):
        path = build_path()
        _engine, injector = inject(path, router="B", mode="crash")
        assert injector.injected == [(path.pid, "B", "crash")]


class TestStall:
    def test_message_vanishes_without_a_drop_note(self):
        """A hung router doesn't announce itself: no drop note, no
        exception — only the flat progress signature (the watchdog's
        signal) gives it away."""
        path = build_path()
        before = path.progress_signature()
        _engine, injector = inject(path, router="B", mode="stall")
        msg = Msg(b"swallowed")
        path.deliver(msg, FWD)
        assert injector.stalls == 1
        assert "drop_reason" not in msg.meta
        assert path.stats.drops == 0
        assert path.output_queue(FWD).is_empty()
        assert path.progress_signature() == before


class TestSlowdown:
    def test_delivery_still_works_but_costs_extra(self):
        path = build_path()
        _engine, injector = inject(path, router="B", mode="slowdown",
                                   extra_us=750.0)
        msg = Msg(b"slow but sure")
        path.deliver(msg, FWD)
        assert injector.slowdowns == 1
        out = path.output_queue(FWD).dequeue()
        assert out is msg
        assert peek_cost(msg) >= 750.0


class TestWindowGating:
    def test_fault_only_inside_its_window(self):
        path = build_path()
        engine, injector = inject(path, router="B", mode="stall",
                                  start_us=100.0, duration_us=50.0)
        before = Msg(b"early")
        path.deliver(before, FWD)
        assert path.output_queue(FWD).dequeue() is before
        engine.run_until(120.0)  # inside the window
        path.deliver(Msg(b"mid"), FWD)
        assert path.output_queue(FWD).is_empty()
        engine.run_until(200.0)  # window over: original behaviour back
        after = Msg(b"late")
        path.deliver(after, FWD)
        assert path.output_queue(FWD).dequeue() is after
        assert injector.stalls == 1

    def test_apply_plan_matches_routers_on_the_path(self):
        path = build_path()
        engine = Engine()
        injector = StageFaultInjector(engine)
        plan = FaultPlan(name="mixed", stage_faults=(
            StageFault(router="B", mode="stall"),
            StageFault(router="ZZZ", mode="crash"),  # not on this path
        ))
        injector.apply_plan(path, plan)
        assert injector.injected == [(path.pid, "B", "stall")]


class TestQueueStorm:
    def test_clamp_and_restore(self):
        path = build_path()
        engine = Engine()
        stormer = QueueStormer(engine)
        queue = path.q[FWD_IN]
        original_cap = queue.maxlen
        plan = FaultPlan(name="storm", storms=(
            QueueStorm(queue_role=FWD_IN, start_us=10.0, duration_us=20.0,
                       clamp_len=1),))
        stormer.apply_plan(path, plan)
        engine.run_until(15.0)  # mid-storm
        assert queue.maxlen == 1
        assert stormer.storms_started == 1
        assert queue.try_enqueue("a")
        assert not queue.try_enqueue("b")  # overflow under the clamp
        assert queue.dropped == 1
        engine.run_until(50.0)  # storm over
        assert queue.maxlen == original_cap
        assert stormer.storms_ended == 1
        assert queue.try_enqueue("b")

    def test_storm_skipped_on_deleted_path(self):
        path = build_path()
        engine = Engine()
        stormer = QueueStormer(engine)
        plan = FaultPlan(name="storm", storms=(
            QueueStorm(queue_role=FWD_IN, start_us=10.0, duration_us=20.0),))
        stormer.apply_plan(path, plan)
        path.delete()
        engine.run_until(100.0)
        assert stormer.storms_started == 0
