"""Filesystem substrate tests: UFS on a RAM disk, fs routers, file paths."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Attrs, BWD, FWD, PathCreationError, RouterGraph, path_create
from repro.core.queues import BWD_OUT
from repro.fs import (
    DIRECT_BLOCKS,
    FsError,
    FsReply,
    FsRequest,
    PA_FILE,
    PA_FILE_SEQUENTIAL,
    RamDisk,
    ScsiRouter,
    Ufs,
    UfsRouter,
    VfsRouter,
)


class TestRamDisk:
    def test_read_back_what_was_written(self):
        disk = RamDisk(sectors=8, sector_size=64)
        disk.write_sector(3, b"hello")
        assert disk.read_sector(3)[:5] == b"hello"
        assert disk.read_sector(3)[5:] == b"\x00" * 59

    def test_out_of_range_sector(self):
        disk = RamDisk(sectors=4)
        with pytest.raises(IndexError):
            disk.read_sector(4)
        with pytest.raises(IndexError):
            disk.write_sector(-1, b"")

    def test_oversized_write_rejected(self):
        disk = RamDisk(sector_size=16)
        with pytest.raises(ValueError):
            disk.write_sector(0, b"x" * 17)

    def test_statistics(self):
        disk = RamDisk()
        disk.write_sector(0, b"a")
        disk.read_sector(0)
        assert (disk.reads, disk.writes) == (1, 1)


class TestUfs:
    def make_fs(self):
        return Ufs(RamDisk(sectors=256, sector_size=128), n_inodes=16).mkfs()

    def test_mkfs_and_mount(self):
        fs = self.make_fs()
        again = Ufs(fs.disk).mount()
        assert again.listdir() == []

    def test_mount_blank_disk_fails(self):
        with pytest.raises(FsError, match="magic"):
            Ufs(RamDisk()).mount()

    def test_write_read_roundtrip(self):
        fs = self.make_fs()
        fs.write_file("a.txt", b"contents")
        assert fs.read_file("a.txt") == b"contents"

    def test_multi_block_file(self):
        fs = self.make_fs()
        blob = bytes(range(256)) * 2  # 4 sectors at 128B
        fs.write_file("big", blob)
        assert fs.read_file("big") == blob

    def test_partial_reads(self):
        fs = self.make_fs()
        fs.write_file("f", b"0123456789" * 30)
        assert fs.read_file("f", offset=5, length=7) == b"5678901"
        assert fs.read_file("f", offset=295) == b"56789"

    def test_overwrite_replaces(self):
        fs = self.make_fs()
        fs.write_file("f", b"x" * 300)
        fs.write_file("f", b"short")
        assert fs.read_file("f") == b"short"

    def test_overwrite_frees_blocks(self):
        fs = self.make_fs()
        before = fs.blocks_free()
        fs.write_file("f", b"x" * 500)
        fs.write_file("f", b"y")
        fs.unlink("f")
        assert fs.blocks_free() == before

    def test_unlink(self):
        fs = self.make_fs()
        fs.write_file("a", b"1")
        fs.write_file("b", b"2")
        fs.unlink("a")
        assert fs.listdir() == ["b"]
        with pytest.raises(FsError):
            fs.read_file("a")

    def test_persistence_across_mounts(self):
        fs = self.make_fs()
        fs.write_file("keep", b"durable")
        remounted = Ufs(fs.disk).mount()
        assert remounted.read_file("keep") == b"durable"

    def test_file_too_large(self):
        fs = self.make_fs()
        limit = DIRECT_BLOCKS * fs.sector_size
        with pytest.raises(FsError, match="too large"):
            fs.write_file("huge", b"x" * (limit + 1))

    def test_name_validation(self):
        fs = self.make_fs()
        with pytest.raises(FsError):
            fs.create("")
        with pytest.raises(FsError):
            fs.create("a" * 40)
        with pytest.raises(FsError):
            fs.create("dir/file")

    def test_duplicate_create_rejected(self):
        fs = self.make_fs()
        fs.create("f")
        with pytest.raises(FsError, match="exists"):
            fs.create("f")

    def test_out_of_inodes(self):
        fs = Ufs(RamDisk(sectors=256, sector_size=128), n_inodes=3).mkfs()
        fs.create("a")
        fs.create("b")
        with pytest.raises(FsError, match="inodes"):
            fs.create("c")

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=8),
        st.binary(max_size=400), max_size=5))
    def test_many_files_roundtrip(self, files):
        fs = self.make_fs()
        for name, data in files.items():
            fs.write_file(name, data)
        assert fs.listdir() == sorted(files)
        for name, data in files.items():
            assert fs.read_file(name) == data


class FsStack:
    """VFS over UFS over SCSI, with some content."""

    def __init__(self):
        self.graph = RouterGraph()
        self.vfs = self.graph.add(VfsRouter("VFS"))
        self.ufs = self.graph.add(UfsRouter("UFS"))
        self.scsi = self.graph.add(ScsiRouter("SCSI", sectors=512))
        self.graph.connect("VFS.mounts", "UFS.up")
        self.graph.connect("UFS.disk", "SCSI.ops")
        self.graph.boot()
        self.vfs.mount("/", "UFS")
        self.ufs.fs.write_file("doc.html", b"0123456789" * 200)  # 2000 B

    def open(self, filename, **attrs):
        return path_create(self.vfs, Attrs({PA_FILE: filename}, **attrs))


class TestFilePaths:
    def test_path_shape(self):
        stack = FsStack()
        path = stack.open("/doc.html")
        assert path.routers() == ["VFS", "UFS", "SCSI"]

    def test_missing_file_aborts_creation(self):
        """The inode lookup is frozen at establish; a missing file means
        the path's invariants cannot hold."""
        stack = FsStack()
        with pytest.raises(PathCreationError, match="cannot open"):
            stack.open("/nope.html")

    def test_unmounted_prefix_refuses_the_path(self):
        stack = FsStack()
        stack.vfs._mount_table.clear()
        with pytest.raises(PathCreationError, match="refused"):
            stack.open("/doc.html")

    def test_read_through_path(self):
        stack = FsStack()
        path = stack.open("/doc.html")
        path.deliver(FsRequest(FsRequest.READ, 0, None), FWD)
        reply = path.q[BWD_OUT].dequeue()
        assert isinstance(reply, FsReply) and reply.ok
        assert reply.data == b"0123456789" * 200

    def test_ranged_read(self):
        stack = FsStack()
        path = stack.open("/doc.html")
        path.deliver(FsRequest(FsRequest.READ, 995, 10), FWD)
        reply = path.q[BWD_OUT].dequeue()
        assert reply.data == b"5678901234"

    def test_stat(self):
        stack = FsStack()
        path = stack.open("/doc.html")
        path.deliver(FsRequest(FsRequest.STAT), FWD)
        reply = path.q[BWD_OUT].dequeue()
        assert reply.size == 2000

    def test_sequential_invariant_disables_cache(self):
        """Section 2.2: sequential access means skip caching in UFS."""
        stack = FsStack()
        path = stack.open("/doc.html", **{PA_FILE_SEQUENTIAL: True})
        stage = path.stage_of("UFS")
        for _ in range(3):
            path.deliver(FsRequest(FsRequest.READ, 0, 100), FWD)
        assert stage.cache_hits == 0
        assert stack.scsi.ops_executed >= 3

    def test_default_caching_serves_repeats(self):
        stack = FsStack()
        path = stack.open("/doc.html")
        stage = path.stage_of("UFS")
        path.deliver(FsRequest(FsRequest.READ, 0, 100), FWD)
        ops_after_first = stack.scsi.ops_executed
        path.deliver(FsRequest(FsRequest.READ, 0, 100), FWD)
        assert stage.cache_hits > 0
        assert stack.scsi.ops_executed == ops_after_first
        replies = [path.q[BWD_OUT].dequeue() for _ in range(2)]
        assert replies[0].data == replies[1].data

    def test_mount_resolution_longest_prefix(self):
        vfs = VfsRouter("V")
        vfs.mount("/", "ROOTFS")
        vfs.mount("/www", "WEBFS")
        assert vfs.resolve_mount("/www/index.html") == ("WEBFS", "index.html")
        assert vfs.resolve_mount("/etc/passwd") == ("ROOTFS", "etc/passwd")

    def test_mount_requires_absolute_prefix(self):
        with pytest.raises(ValueError):
            VfsRouter("V").mount("relative", "FS")


class TestMultiMount:
    """VFS routing across two different filesystem implementations."""

    def build(self):
        from repro.core import RouterGraph
        from repro.fs import MemFsRouter

        graph = RouterGraph()
        vfs = graph.add(VfsRouter("VFS"))
        ufs = graph.add(UfsRouter("UFS"))
        scsi = graph.add(ScsiRouter("SCSI", sectors=256))
        tmp = graph.add(MemFsRouter("TMPFS"))
        graph.connect("VFS.mounts", "UFS.up")
        graph.connect("VFS.mounts", "TMPFS.up")
        graph.connect("UFS.disk", "SCSI.ops")
        graph.boot()
        vfs.mount("/", "UFS")
        vfs.mount("/tmp", "TMPFS")
        ufs.fs.write_file("persistent.txt", b"on disk")
        tmp.write_file("scratch.txt", b"in ram")
        return graph, vfs

    def read_via_path(self, vfs, filename):
        path = path_create(vfs, Attrs({PA_FILE: filename}))
        path.deliver(FsRequest(FsRequest.READ, 0, None), FWD)
        return path, path.q[BWD_OUT].dequeue()

    def test_paths_route_to_the_right_filesystem(self):
        _graph, vfs = self.build()
        disk_path, disk_reply = self.read_via_path(vfs, "/persistent.txt")
        tmp_path, tmp_reply = self.read_via_path(vfs, "/tmp/scratch.txt")
        assert disk_path.routers() == ["VFS", "UFS", "SCSI"]
        assert tmp_path.routers() == ["VFS", "TMPFS"]
        assert disk_reply.data == b"on disk"
        assert tmp_reply.data == b"in ram"

    def test_memfs_write_through_path(self):
        _graph, vfs = self.build()
        path = path_create(vfs, Attrs({PA_FILE: "/tmp/scratch.txt"}))
        path.deliver(FsRequest(FsRequest.WRITE, 3, data=b"RAM"), FWD)
        reply = path.q[BWD_OUT].dequeue()
        assert reply.ok
        _path2, read_back = self.read_via_path(vfs, "/tmp/scratch.txt")
        assert read_back.data == b"in RAM"

    def test_missing_memfs_file_aborts_creation(self):
        _graph, vfs = self.build()
        with pytest.raises(PathCreationError, match="no such file"):
            path_create(vfs, Attrs({PA_FILE: "/tmp/ghost"}))
