"""Shared test fixtures: tiny routers exercising the path architecture.

These are deliberately minimal "protocol" routers: each one tags messages
with its name so tests can assert traversal order, and the chain ends by
depositing the message on the path's output queue for the direction
traveled — the job the paper assigns to extreme stages.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import (
    Attrs,
    DemuxResult,
    Msg,
    NextHop,
    Router,
    Stage,
    forward,
    turn_around,
)


class TraceStage(Stage):
    """A stage whose deliver functions record traversal and forward."""

    def __init__(self, router, enter_service=None, exit_service=None,
                 absorb=False, bounce=False):
        super().__init__(router, enter_service, exit_service)
        self.absorb = absorb
        self.bounce = bounce
        self.established_with = None
        self.destroyed = False
        for direction in (0, 1):
            self.set_deliver(direction, self._make_deliver(direction))

    def _make_deliver(self, direction):
        def deliver(iface, msg, d, **kwargs):
            msg.meta.setdefault("trace", []).append((self.router.name, d))
            if self.bounce and not msg.meta.get("bounced"):
                msg.meta["bounced"] = True
                return turn_around(iface, msg, d, **kwargs)
            if self.absorb:
                msg.meta["absorbed_at"] = self.router.name
                return None
            if iface.next is None:
                self.path.output_queue(d).enqueue(msg)
                return None
            return forward(iface, msg, d, **kwargs)
        return deliver

    def establish(self, attrs: Attrs) -> None:
        self.established_with = attrs.snapshot()

    def destroy(self) -> None:
        self.destroyed = True


class ChainRouter(Router):
    """A router that always routes to the peer on its ``down`` service.

    Building a chain ``A.down -> B.up``, ``B.down -> C.up`` lets
    ``path_create`` walk A, B, C and stop at C (no ``down`` connection).
    """

    SERVICES = ("up:net", "<down:net")

    def __init__(self, name: str, absorb: bool = False, bounce: bool = False):
        super().__init__(name)
        self.absorb = absorb
        self.bounce = bounce
        self.stages_created = 0
        self.init_count = 0
        self.init_seq: Optional[int] = None

    def init(self) -> None:
        super().init()
        self.init_count += 1
        ChainRouter._init_counter = getattr(ChainRouter, "_init_counter", 0) + 1
        self.init_seq = ChainRouter._init_counter

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        self.stages_created += 1
        enter = self.services[enter_service] if enter_service >= 0 else None
        down = self.service("down")
        if down.links:
            peer_router, peer_service = down.links[0].peer_of(down)
            stage = TraceStage(self, enter, down,
                               absorb=self.absorb, bounce=self.bounce)
            return stage, NextHop(peer_router, peer_service, attrs)
        stage = TraceStage(self, enter, None,
                           absorb=self.absorb, bounce=self.bounce)
        return stage, None

    def demux(self, msg: Msg, service, offset: int = 0) -> DemuxResult:
        """Classify on a one-byte tag: first byte names the router that can
        decide; everyone else forwards down."""
        tag = msg.peek(1, at=offset) if len(msg) > offset else b""
        if tag == self.name[:1].encode():
            path = getattr(self, "bound_path", None)
            if path is not None:
                return DemuxResult.found(path)
            return DemuxResult.drop(f"{self.name}: no bound path")
        down = self.service("down")
        if down.links:
            peer_router, peer_service = down.links[0].peer_of(down)
            return DemuxResult.refine(peer_router, peer_service, consumed=1)
        return DemuxResult.drop(f"{self.name}: tag {tag!r} unknown")


def make_chain(*names: str, **routers_kwargs) -> Tuple["RouterGraphLike", list]:
    """Build a linear graph of :class:`ChainRouter` and boot it."""
    from repro.core import RouterGraph

    graph = RouterGraph()
    routers = [graph.add(ChainRouter(name, **routers_kwargs.get(name, {})))
               for name in names]
    for upper, lower in zip(routers, routers[1:]):
        graph.connect(f"{upper.name}.down", f"{lower.name}.up")
    graph.boot()
    return graph, routers
