"""Unit tests for interface types and the service-type connection rule."""

import pytest

from repro.core import (
    FsIface,
    Iface,
    NetIface,
    NsIface,
    RtNetIface,
    ServiceType,
    ServiceTypeError,
    WinIface,
    iface_satisfies,
)
from repro.core.interfaces import DEV, NET, NS_CLIENT, NS_PROVIDER, RTNET


class TestIfaceSatisfies:
    """'Interfaces provided must be identical to or more specific than the
    interfaces required.'"""

    def test_identical_satisfies(self):
        assert iface_satisfies(NetIface, NetIface)

    def test_more_specific_satisfies(self):
        assert iface_satisfies(RtNetIface, NetIface)

    def test_less_specific_does_not_satisfy(self):
        assert not iface_satisfies(NetIface, RtNetIface)

    def test_unrelated_does_not_satisfy(self):
        assert not iface_satisfies(WinIface, NetIface)

    def test_everything_satisfies_base_iface(self):
        for klass in (NetIface, RtNetIface, NsIface, WinIface, FsIface):
            assert iface_satisfies(klass, Iface)


class TestServiceTypeCompatibility:
    def test_symmetric_net_compatible_with_itself(self):
        assert NET.compatible_with(NET)

    def test_rtnet_connects_where_net_is_required(self):
        # rtnet provides RtNetIface (more specific), requires NetIface.
        assert RTNET.compatible_with(NET)
        assert NET.compatible_with(RTNET)

    def test_asymmetric_ns_pair(self):
        assert NS_PROVIDER.compatible_with(NS_CLIENT)
        assert NS_CLIENT.compatible_with(NS_PROVIDER)

    def test_ns_provider_incompatible_with_net(self):
        assert not NS_PROVIDER.compatible_with(NET)

    def test_dev_and_net_interoperate(self):
        assert DEV.compatible_with(NET)


class TestServiceTypeRegistry:
    def test_lookup_registered(self):
        assert ServiceType.lookup("net") is NET

    def test_lookup_unknown_raises_with_known_list(self):
        with pytest.raises(ServiceTypeError, match="net"):
            ServiceType.lookup("no-such-type")

    def test_unregistered_type_stays_out_of_registry(self):
        anon = ServiceType("anon-test", NetIface, NetIface, register=False)
        with pytest.raises(ServiceTypeError):
            ServiceType.lookup("anon-test")
        assert anon.compatible_with(NET)

    def test_rejects_non_iface_classes(self):
        with pytest.raises(ServiceTypeError):
            ServiceType("bad", int, NetIface, register=False)  # type: ignore[arg-type]


class TestIfaceStructure:
    def test_primitive_iface_has_three_pointers(self):
        iface = Iface()
        assert iface.next is None
        assert iface.back is None
        assert iface.stage is None

    def test_net_iface_adds_deliver(self):
        called = []
        iface = NetIface(deliver=lambda i, m, d: called.append(m))
        iface.deliver(iface, "msg", 0)
        assert called == ["msg"]

    def test_modeled_sizes_grow_with_specialization(self):
        assert Iface.modeled_size() == 24  # three 8-byte pointers
        assert NetIface.modeled_size() == 32  # + deliver pointer
        assert RtNetIface.modeled_size() == 40  # + deadline hint
