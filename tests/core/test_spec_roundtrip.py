"""Property-based round-trip test for the spec-file language."""

from hypothesis import given, settings, strategies as st

from repro.core import SpecFile, format_spec, parse_spec
from repro.core.spec import Connection, RouterSpec

_ident = st.from_regex(r"[A-Za-z_][A-Za-z0-9_-]{0,10}", fullmatch=True)
_filename = st.one_of(
    st.from_regex(r"[A-Za-z_][A-Za-z0-9_-]{0,8}(\.[A-Za-z_][A-Za-z0-9_-]{0,4}){0,2}",
                  fullmatch=True),
    st.text(min_size=1, max_size=12).filter(
        lambda s: "\x00" not in s and s.isprintable()),
)
_value = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    # Printable range beyond ASCII: parse(format(x)) must not mojibake.
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
            max_size=12),
)


@st.composite
def spec_files(draw):
    spec = SpecFile()
    names = draw(st.lists(_ident, min_size=1, max_size=4, unique=True))
    service_names = {}
    for name in names:
        block = RouterSpec(name)
        block.files = draw(st.lists(_filename, max_size=3))
        n_services = draw(st.integers(min_value=1, max_value=3))
        svc_names = draw(st.lists(_ident, min_size=n_services,
                                  max_size=n_services, unique=True))
        block.services = [
            ("<" if draw(st.booleans()) else "") + f"{svc}:net"
            for svc in svc_names
        ]
        keys = draw(st.lists(_ident, max_size=3, unique=True))
        block.params = {key: draw(_value) for key in keys}
        service_names[name] = svc_names
        spec.routers.append(block)
    n_conns = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_conns):
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        spec.connections.append(Connection(
            a, draw(st.sampled_from(service_names[a])),
            b, draw(st.sampled_from(service_names[b]))))
    return spec


@settings(max_examples=80, deadline=None)
@given(spec_files())
def test_format_parse_roundtrip(spec):
    text = format_spec(spec)
    again = parse_spec(text)
    assert [r.name for r in again.routers] == [r.name for r in spec.routers]
    for original, parsed in zip(spec.routers, again.routers):
        assert parsed.class_name == original.class_name
        assert parsed.files == original.files
        assert parsed.services == original.services
        assert parsed.params == original.params
    assert again.connections == spec.connections
