"""Tests for incremental packet classification (demux chains)."""

import pytest

from repro.core import (
    Attrs,
    ClassificationError,
    ClassifierStats,
    DemuxResult,
    Msg,
    Router,
    classify,
    classify_or_raise,
    path_create,
)
from ..helpers import ChainRouter, make_chain


def bound_chain(*names, bind_at=None):
    """Build a chain, create a path, and bind it at router *bind_at*."""
    graph, routers = make_chain(*names)
    path = path_create(routers[0], Attrs())
    target = graph.router(bind_at or names[-1])
    target.bound_path = path
    return graph, routers, path


class TestIncrementalDemux:
    def test_single_router_decides(self):
        _, routers, path = bound_chain("A", "B", bind_at="A")
        msg = Msg(b"A...")
        assert classify(routers[0], msg) is path
        assert msg.meta["path"] is path

    def test_refinement_walks_down_the_chain(self):
        # Tag bytes spell the refinement route: A defers, B defers, C decides.
        _, routers, path = bound_chain("A", "B", "C", bind_at="C")
        stats = ClassifierStats()
        msg = Msg(b"xyC-payload")  # A sees 'x' (not A) -> down, B sees 'y' -> down
        assert classify(routers[0], msg, stats=stats) is path
        assert stats.refinements == 2
        assert stats.classified == 1

    def test_classification_does_not_consume_message(self):
        _, routers, _ = bound_chain("A", "B", bind_at="B")
        msg = Msg(b"zB-payload")
        classify(routers[0], msg)
        assert msg.to_bytes() == b"zB-payload"

    def test_unclassifiable_data_discarded_with_reason(self):
        _, routers, _ = bound_chain("A", "B", bind_at="B")
        stats = ClassifierStats()
        msg = Msg(b"??")
        assert classify(routers[0], msg, stats=stats) is None
        assert stats.dropped == 1
        assert "drop_reason" in msg.meta

    def test_decider_without_bound_path_drops(self):
        _, routers = make_chain("A", "B")
        msg = Msg(b"zB")
        assert classify(routers[0], msg) is None
        assert "no bound path" in msg.meta["drop_reason"]

    def test_classify_or_raise(self):
        _, routers, path = bound_chain("A", bind_at="A")
        assert classify_or_raise(routers[0], Msg(b"A")) is path
        with pytest.raises(ClassificationError):
            classify_or_raise(routers[0], Msg(b"?"))

    def test_empty_message_dropped_not_crashed(self):
        _, routers, _ = bound_chain("A", "B", bind_at="B")
        assert classify(routers[0], Msg(b"")) is None


class TestNonConvergence:
    def test_demux_cycle_detected(self):
        class PingPong(Router):
            SERVICES = ("up:net", "down:net")
            peer = None

            def demux(self, msg, service, offset=0):
                return DemuxResult.refine(self.peer, self.peer.service("up"))

        a, b = PingPong("A"), PingPong("B")
        a.peer, b.peer = b, a
        with pytest.raises(ClassificationError, match="converge"):
            classify(a, Msg(b"x"))


class TestBestEffortSemantics:
    def test_good_enough_path_for_fragments(self):
        """The Scout classifier may return a 'short/fat' catch-all path:
        a router can decide to claim traffic it can only partially
        classify (IP fragments go to the reassembly path)."""
        class FragmentAware(ChainRouter):
            def __init__(self, name):
                super().__init__(name)
                self.reassembly_path = None

            def demux(self, msg, service, offset=0):
                if msg.peek(1, at=offset) == b"F":
                    return DemuxResult.found(self.reassembly_path)
                return super().demux(msg, service, offset)

        from repro.core import RouterGraph
        graph = RouterGraph()
        ip = graph.add(FragmentAware("I"))
        eth = graph.add(ChainRouter("E"))
        graph.connect("E.down", "I.up")
        graph.boot()
        fat_path = path_create(eth, Attrs(role="reassembly"))
        ip.reassembly_path = fat_path
        msg = Msg(b"xF:frag1")  # E defers (x), I claims fragments
        assert classify(eth, msg) is fat_path
