"""Tests for the four-phase path creation pipeline."""

import pytest

from repro.core import (
    AdmissionError,
    Attrs,
    NextHop,
    PA_INQ_LEN,
    PA_OUTQ_LEN,
    PathCreationError,
    Router,
    Stage,
    TransformRegistry,
    path_create,
)
from repro.core.path_create import MAX_PATH_LENGTH
from ..helpers import ChainRouter, TraceStage, make_chain


class TestStageChain:
    def test_path_grows_to_maximum_length(self):
        _, routers = make_chain("A", "B", "C", "D")
        path = path_create(routers[0], Attrs())
        assert path.routers() == ["A", "B", "C", "D"]

    def test_creation_stops_where_invariants_end(self):
        """A router returning no next hop terminates the path (leaf)."""
        _, routers = make_chain("A", "B")
        path = path_create(routers[1], Attrs())  # start at the leaf itself
        assert path.routers() == ["B"]

    def test_each_router_contributes_one_stage(self):
        _, routers = make_chain("A", "B", "C")
        path_create(routers[0], Attrs())
        assert [r.stages_created for r in routers] == [1, 1, 1]

    def test_first_router_sees_enter_service_minus_one(self):
        seen = {}

        class Probe(ChainRouter):
            def create_stage(self, enter_service, attrs):
                seen.setdefault(self.name, enter_service)
                return super().create_stage(enter_service, attrs)

        from repro.core import RouterGraph
        graph = RouterGraph()
        a = graph.add(Probe("A"))
        b = graph.add(Probe("B"))
        graph.connect("A.down", "B.up")
        graph.boot()
        path_create(a, Attrs())
        assert seen["A"] == -1
        assert seen["B"] == b.service("up").index

    def test_refusing_first_router_is_an_error(self):
        class Refuser(Router):
            SERVICES = ("up:net",)

            def create_stage(self, enter_service, attrs):
                return None, None

        with pytest.raises(PathCreationError, match="refused"):
            path_create(Refuser("R"), Attrs())

    def test_router_without_path_support_is_an_error(self):
        class NoPaths(Router):
            SERVICES = ("up:net",)

        with pytest.raises(PathCreationError):
            path_create(NoPaths("N"), Attrs())

    def test_mid_chain_refusal_truncates_path(self):
        """A router may decline to extend the path; creation ends there."""
        class Decliner(ChainRouter):
            def create_stage(self, enter_service, attrs):
                return None, None

        from repro.core import RouterGraph
        graph = RouterGraph()
        a = graph.add(ChainRouter("A"))
        d = graph.add(Decliner("D"))
        graph.connect("A.down", "D.up")
        graph.boot()
        path = path_create(a, Attrs())
        assert path.routers() == ["A"]

    def test_routing_loop_detected(self):
        class Loop(Router):
            SERVICES = ("up:net", "down:net")

            def create_stage(self, enter_service, attrs):
                stage = TraceStage(self)
                return stage, NextHop(self, self.service("up"), attrs)

        with pytest.raises(PathCreationError, match="routing loop"):
            path_create(Loop("L"), Attrs())

    def test_max_path_length_is_sane(self):
        assert MAX_PATH_LENGTH >= 6  # the paper's UDP path has 6 stages


class TestAttributeThreading:
    def test_attrs_modified_by_hops_propagate(self):
        """TCP-style: a router resets PA_PROTID for the next router."""
        seen = {}

        class Rewriter(ChainRouter):
            def create_stage(self, enter_service, attrs):
                seen[self.name] = attrs.get("proto")
                stage, hop = super().create_stage(enter_service, attrs)
                if hop is not None:
                    hop.attrs = attrs.extended(proto=self.name)
                return stage, hop

        from repro.core import RouterGraph
        graph = RouterGraph()
        a = graph.add(Rewriter("A"))
        b = graph.add(Rewriter("B"))
        c = graph.add(Rewriter("C"))
        graph.connect("A.down", "B.up")
        graph.connect("B.down", "C.up")
        graph.boot()
        path_create(a, Attrs(proto="user"))
        assert seen == {"A": "user", "B": "A", "C": "B"}

    def test_queue_lengths_from_attrs(self):
        _, routers = make_chain("A", "B")
        path = path_create(routers[0], Attrs({PA_INQ_LEN: 7, PA_OUTQ_LEN: 3}))
        assert path.input_queue(0).capacity == 7
        assert path.input_queue(1).capacity == 7
        assert path.output_queue(0).capacity == 3
        assert path.output_queue(1).capacity == 3

    def test_invariants_recorded_on_path(self):
        _, routers = make_chain("A")
        path = path_create(routers[0], Attrs(video="neptune"))
        assert path.attrs["video"] == "neptune"


class TestEstablishPhase:
    def test_establish_runs_after_linking(self):
        """Establish hooks may depend on the existence of the entire path."""
        lengths = []

        class Measurer(TraceStage):
            def establish(self, attrs):
                super().establish(attrs)
                lengths.append(len(self.path.stages))

        class MeasuringRouter(ChainRouter):
            def create_stage(self, enter_service, attrs):
                stage, hop = super().create_stage(enter_service, attrs)
                new = Measurer(self, stage.enter_service, stage.exit_service)
                return new, hop

        from repro.core import RouterGraph
        graph = RouterGraph()
        a = graph.add(MeasuringRouter("A"))
        b = graph.add(MeasuringRouter("B"))
        graph.connect("A.down", "B.up")
        graph.boot()
        path_create(a, Attrs())
        assert lengths == [2, 2]  # every hook saw the *complete* path

    def test_establish_failure_aborts_and_destroys(self):
        destroyed = []

        class Fragile(TraceStage):
            def establish(self, attrs):
                raise RuntimeError("no resources")

            def destroy(self):
                destroyed.append(self.router.name)

        class FragileRouter(ChainRouter):
            def create_stage(self, enter_service, attrs):
                stage, hop = super().create_stage(enter_service, attrs)
                return Fragile(self), hop

        from repro.core import RouterGraph
        graph = RouterGraph()
        a = graph.add(FragileRouter("A"))
        graph.boot()
        with pytest.raises(PathCreationError, match="establish failed"):
            path_create(a, Attrs())
        assert destroyed == ["A"]


class TestTransformPhase:
    def test_transforms_applied_and_recorded(self):
        registry = TransformRegistry()

        @registry.rule("mark", guard=lambda p: True)
        def mark(path):
            path.attrs["marked"] = True

        _, routers = make_chain("A", "B")
        path = path_create(routers[0], Attrs(), transforms=registry)
        assert path.attrs["marked"]
        assert path.attrs["_transforms_applied"] == ("mark",)

    def test_no_transforms_by_default(self):
        _, routers = make_chain("A")
        path = path_create(routers[0], Attrs())
        assert "_transforms_applied" not in path.attrs


class TestAdmissionHook:
    def test_admission_denial_aborts_creation(self):
        def deny(path):
            if len(path.stages) >= 2:
                raise AdmissionError("memory budget exceeded")

        _, routers = make_chain("A", "B", "C")
        with pytest.raises(AdmissionError):
            path_create(routers[0], Attrs(), admission=deny)

    def test_admission_consulted_per_stage(self):
        observed = []
        _, routers = make_chain("A", "B", "C")
        path_create(routers[0], Attrs(),
                    admission=lambda p: observed.append(len(p.stages)))
        assert observed == [1, 2, 3]
