"""Unit tests for path attributes (invariants)."""

import pytest

from repro.core import (
    PA_PATHNAME,
    PA_PROTID,
    Attrs,
    as_attrs,
)


class TestAttrsBasics:
    def test_construct_from_mapping_and_kwargs(self):
        attrs = Attrs({"a": 1}, b=2)
        assert attrs["a"] == 1
        assert attrs["b"] == 2
        assert len(attrs) == 2

    def test_kwargs_override_mapping(self):
        attrs = Attrs({"a": 1}, a=9)
        assert attrs["a"] == 9

    def test_get_with_default(self):
        attrs = Attrs(x=1)
        assert attrs.get("x") == 1
        assert attrs.get("missing") is None
        assert attrs.get("missing", 42) == 42

    def test_contains_and_iteration_order(self):
        attrs = Attrs()
        attrs["first"] = 1
        attrs["second"] = 2
        assert "first" in attrs
        assert list(attrs) == ["first", "second"]

    def test_setitem_rejects_non_string_names(self):
        attrs = Attrs()
        with pytest.raises(TypeError):
            attrs[42] = "x"
        with pytest.raises(TypeError):
            attrs[""] = "x"

    def test_delete(self):
        attrs = Attrs(a=1)
        del attrs["a"]
        assert "a" not in attrs

    def test_require_present_and_missing(self):
        attrs = Attrs({PA_PROTID: 17})
        assert attrs.require(PA_PROTID) == 17
        with pytest.raises(KeyError, match="PA_PATHNAME"):
            attrs.require(PA_PATHNAME)


class TestAttrsDerivation:
    """The non-destructive operations routers use during path creation."""

    def test_extended_does_not_mutate_parent(self):
        parent = Attrs({PA_PROTID: 21})
        child = parent.extended(**{PA_PROTID: 6})
        assert parent[PA_PROTID] == 21  # TCP's caller still sees port 21
        assert child[PA_PROTID] == 6    # IP sees protocol 6

    def test_extended_preserves_other_invariants(self):
        parent = Attrs({PA_PATHNAME: "MPEG", "qos": "soft-rt"})
        child = parent.extended(extra=1)
        assert child[PA_PATHNAME] == "MPEG"
        assert child["qos"] == "soft-rt"
        assert child["extra"] == 1

    def test_without_removes_and_ignores_missing(self):
        attrs = Attrs(a=1, b=2)
        trimmed = attrs.without("a", "never-there")
        assert "a" not in trimmed
        assert trimmed["b"] == 2
        assert attrs["a"] == 1  # original intact

    def test_merge_layers_other_on_top(self):
        base = Attrs(a=1, b=2)
        merged = base.merge({"b": 20, "c": 30})
        assert merged.snapshot() == {"a": 1, "b": 20, "c": 30}
        assert base["b"] == 2

    def test_merge_none_is_copy(self):
        base = Attrs(a=1)
        merged = base.merge(None)
        assert merged == base
        merged["a"] = 2
        assert base["a"] == 1

    def test_set_chains(self):
        attrs = Attrs().set("a", 1).set("b", 2)
        assert attrs.snapshot() == {"a": 1, "b": 2}

    def test_snapshot_is_independent(self):
        attrs = Attrs(a=1)
        snap = attrs.snapshot()
        snap["a"] = 99
        assert attrs["a"] == 1


class TestAttrsEquality:
    def test_equal_to_attrs_and_dict(self):
        assert Attrs(a=1) == Attrs(a=1)
        assert Attrs(a=1) == {"a": 1}
        assert Attrs(a=1) != Attrs(a=2)

    def test_repr_mentions_pairs(self):
        assert "a=1" in repr(Attrs(a=1))


class TestAsAttrs:
    def test_none_becomes_empty(self):
        attrs = as_attrs(None)
        assert isinstance(attrs, Attrs)
        assert len(attrs) == 0

    def test_attrs_passes_through_identically(self):
        original = Attrs(a=1)
        assert as_attrs(original) is original

    def test_dict_is_wrapped(self):
        attrs = as_attrs({"a": 1})
        assert isinstance(attrs, Attrs)
        assert attrs["a"] == 1
