"""Unit and property tests for x-kernel style messages."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Msg


class TestMsgBasics:
    def test_empty_message(self):
        msg = Msg()
        assert len(msg) == 0
        assert msg.to_bytes() == b""
        assert bool(msg)  # an empty message is still a message

    def test_initial_payload(self):
        msg = Msg(b"payload")
        assert len(msg) == 7
        assert msg.to_bytes() == b"payload"

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            Msg("text")  # type: ignore[arg-type]

    def test_meta_is_copied(self):
        meta = {"k": 1}
        msg = Msg(b"", meta=meta)
        msg.meta["k"] = 2
        assert meta["k"] == 1


class TestPushPop:
    def test_push_prepends(self):
        msg = Msg(b"data")
        msg.push(b"HDR:")
        assert msg.to_bytes() == b"HDR:data"
        assert len(msg) == 8

    def test_pop_strips_header(self):
        msg = Msg(b"data")
        msg.push(b"HDR:")
        assert msg.pop(4) == b"HDR:"
        assert msg.to_bytes() == b"data"

    def test_nested_headers_pop_in_reverse_order(self):
        msg = Msg(b"payload")
        msg.push(b"UDP.")   # transport pushes first
        msg.push(b"IPv4")   # then network
        msg.push(b"ETH-")   # then link
        assert msg.pop(4) == b"ETH-"
        assert msg.pop(4) == b"IPv4"
        assert msg.pop(4) == b"UDP."
        assert msg.to_bytes() == b"payload"

    def test_pop_across_chunk_boundary(self):
        msg = Msg(b"cd")
        msg.push(b"ab")
        assert msg.pop(3) == b"abc"
        assert msg.to_bytes() == b"d"

    def test_partial_pop_then_push(self):
        msg = Msg(b"abcdef")
        msg.pop(2)
        msg.push(b"XY")
        assert msg.to_bytes() == b"XYcdef"

    def test_pop_too_much_raises(self):
        msg = Msg(b"abc")
        with pytest.raises(ValueError):
            msg.pop(4)
        assert msg.to_bytes() == b"abc"  # unchanged on failure

    def test_pop_negative_raises(self):
        with pytest.raises(ValueError):
            Msg(b"abc").pop(-1)

    def test_push_empty_is_noop(self):
        msg = Msg(b"abc")
        msg.push(b"")
        assert msg.to_bytes() == b"abc"


class TestPeek:
    def test_peek_does_not_consume(self):
        msg = Msg(b"abcdef")
        assert msg.peek(3) == b"abc"
        assert len(msg) == 6
        assert msg.to_bytes() == b"abcdef"

    def test_peek_at_offset(self):
        msg = Msg(b"abcdef")
        assert msg.peek(2, at=3) == b"de"

    def test_peek_spanning_chunks(self):
        msg = Msg(b"world")
        msg.push(b"hello ")
        assert msg.peek(8, at=3) == b"lo world"
        assert msg.peek(8, at=2) == b"llo worl"

    def test_peek_after_partial_pop(self):
        msg = Msg(b"abcdef")
        msg.pop(2)
        assert msg.peek(2) == b"cd"
        assert msg.peek(2, at=2) == b"ef"

    def test_peek_out_of_range_raises(self):
        msg = Msg(b"abc")
        with pytest.raises(ValueError):
            msg.peek(4)
        with pytest.raises(ValueError):
            msg.peek(1, at=3)
        with pytest.raises(ValueError):
            msg.peek(-1)


class TestSplitJoin:
    def test_split_takes_prefix(self):
        msg = Msg(b"abcdefgh")
        head = msg.split(3)
        assert head.to_bytes() == b"abc"
        assert msg.to_bytes() == b"defgh"

    def test_split_copies_meta(self):
        msg = Msg(b"abcd", meta={"src": "eth0"})
        head = msg.split(2)
        assert head.meta["src"] == "eth0"

    def test_fragment_reassemble_roundtrip(self):
        original = bytes(range(256)) * 4
        msg = Msg(original)
        fragments = []
        mtu = 100
        while len(msg) > mtu:
            fragments.append(msg.split(mtu))
        fragments.append(msg)
        assert Msg.join(fragments).to_bytes() == original

    def test_join_skips_empty_pieces(self):
        joined = Msg.join([Msg(b"a"), Msg(), Msg(b"b")])
        assert joined.to_bytes() == b"ab"


class TestCopyAndFootprint:
    def test_copy_is_independent(self):
        msg = Msg(b"abcdef")
        msg.push(b"H")
        dup = msg.copy()
        dup.pop(3)
        assert msg.to_bytes() == b"Habcdef"
        assert dup.to_bytes() == b"cdef"

    def test_footprint_counts_live_chunks(self):
        msg = Msg(b"abcdef")
        assert msg.footprint() == 6
        msg.pop(2)
        # the partially consumed chunk is still fully resident
        assert msg.footprint() == 6
        msg.push(b"XY")  # materializes the remainder, then adds 2
        assert msg.footprint() == 6

    def test_repr_truncates(self):
        assert "Msg(len=100" in repr(Msg(b"x" * 100))


# -- property-based tests ----------------------------------------------------

_chunks = st.lists(st.binary(min_size=0, max_size=32), min_size=0, max_size=8)


@given(_chunks)
def test_pushes_concatenate_in_reverse(chunks):
    msg = Msg()
    for chunk in chunks:
        msg.push(chunk)
    expected = b"".join(reversed(chunks))
    assert msg.to_bytes() == expected
    assert len(msg) == len(expected)


@given(st.binary(max_size=256), st.data())
def test_pop_sequence_reproduces_contents(payload, data):
    msg = Msg(payload)
    collected = b""
    while len(msg):
        take = data.draw(st.integers(min_value=1, max_value=len(msg)))
        collected += msg.pop(take)
    assert collected == payload


@given(st.binary(min_size=1, max_size=128), st.data())
def test_peek_matches_slice(payload, data):
    msg = Msg(payload[len(payload) // 2:])
    msg.push(payload[: len(payload) // 2])  # force a chunk boundary
    at = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    n = data.draw(st.integers(min_value=0, max_value=len(payload) - at))
    assert msg.peek(n, at=at) == payload[at : at + n]


@given(st.binary(max_size=200), st.integers(min_value=1, max_value=50))
def test_split_join_identity(payload, mtu):
    msg = Msg(payload)
    pieces = []
    while len(msg) > mtu:
        pieces.append(msg.split(mtu))
    pieces.append(msg)
    assert Msg.join(pieces).to_bytes() == payload
