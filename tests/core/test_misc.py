"""Edge cases and introspection surfaces not covered elsewhere."""

import pytest

from repro.core import (
    Attrs,
    BWD,
    FWD,
    Msg,
    NetIface,
    Path,
    RouterRegistry,
    ServiceType,
    forward,
    opposite,
    path_create,
    turn_around,
)
from ..helpers import ChainRouter, make_chain


class TestDirectionHelpers:
    def test_opposite(self):
        assert opposite(FWD) == BWD
        assert opposite(BWD) == FWD

    def test_forward_without_next_is_a_wiring_bug(self):
        iface = NetIface()
        with pytest.raises(RuntimeError, match="no next interface"):
            forward(iface, Msg(), FWD)

    def test_turn_around_without_back_is_a_wiring_bug(self):
        iface = NetIface()
        with pytest.raises(RuntimeError, match="no back interface"):
            turn_around(iface, Msg(), FWD)


class TestPathEdgeCases:
    def test_empty_path_end_is_none_pair(self):
        assert Path().end == [None, None]

    def test_empty_path_has_no_entry(self):
        from repro.core import PathStateError

        with pytest.raises(PathStateError):
            Path().entry_iface(FWD)

    def test_repr_shows_chain_and_state(self):
        _, routers = make_chain("A", "B")
        path = path_create(routers[0], Attrs())
        assert "A->B" in repr(path)
        assert "established" in repr(path)

    def test_len_counts_stages(self):
        _, routers = make_chain("A", "B", "C")
        assert len(path_create(routers[0], Attrs())) == 3


class TestIntrospection:
    def test_router_registry_knows_builtins(self):
        known = RouterRegistry.known()
        for name in ("EthRouter", "IpRouter", "UdpRouter", "MpegRouter",
                     "DisplayRouter", "ShellRouter", "UfsRouter",
                     "HttpRouter"):
            assert name in known

    def test_service_type_registry_snapshot(self):
        registered = ServiceType.registered()
        assert {"net", "nsProvider", "nsClient", "fs",
                "fsClient"} <= set(registered)

    def test_router_modeled_size_grows_with_services(self):
        class One(ChainRouter):
            SERVICES = ("up:net",)

        class Three(ChainRouter):
            SERVICES = ("up:net", "down:net", "res:nsClient")

        assert Three("T").modeled_size() > One("O").modeled_size()

    def test_iface_repr_names_owner(self):
        _, routers = make_chain("OWNER")
        path = path_create(routers[0], Attrs())
        assert "OWNER" in repr(path.stages[0].end[FWD])

    def test_queue_repr_shows_occupancy(self):
        from repro.core import PathQueue

        queue = PathQueue(maxlen=4, name="video.in")
        queue.enqueue("x")
        assert "video.in" in repr(queue)
        assert "1/4" in repr(queue)
