"""Property tests for message fragmentation and batched traversal.

Three invariant families (DESIGN.md §13):

* ``Msg.split``/``join``/``peek`` edge cases — zero-length pieces and
  peeks that span fragment (chunk) boundaries;
* ``MsgBatch`` split/merge invariants — restructuring a batch never
  reorders, drops, or duplicates a message;
* batch-traversal exactness — delivering a batch produces the same bytes
  in the same order as delivering its messages one at a time.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Attrs, BWD, FWD, Msg, MsgBatch, path_create
from ..helpers import make_chain


# ---------------------------------------------------------------------------
# Msg.split / join / peek edge cases
# ---------------------------------------------------------------------------

def fragmented_msg(chunks, consume=0):
    """Build a Msg whose internal storage has one chunk per element of
    *chunks* (headers push as separate chunks), optionally with *consume*
    bytes already popped off the front."""
    msg = Msg(chunks[-1]) if chunks else Msg()
    for chunk in reversed(chunks[:-1]):
        msg.push(chunk)
    if consume:
        msg.pop(consume)
    return msg


class TestMsgSplitJoinEdges:
    def test_split_zero_bytes_yields_empty_fragment(self):
        msg = Msg(b"datagram")
        head = msg.split(0)
        assert head.to_bytes() == b"" and len(head) == 0
        assert msg.to_bytes() == b"datagram"

    def test_split_everything_leaves_empty_message(self):
        msg = Msg(b"datagram")
        head = msg.split(8)
        assert head.to_bytes() == b"datagram"
        assert len(msg) == 0 and msg.to_bytes() == b""

    def test_split_beyond_length_raises(self):
        with pytest.raises(ValueError):
            Msg(b"abc").split(4)

    def test_split_copies_meta_to_fragment(self):
        msg = Msg(b"abcd", meta={"rx_time": 7.0})
        head = msg.split(2)
        assert head.meta["rx_time"] == 7.0
        head.meta["rx_time"] = 9.0
        assert msg.meta["rx_time"] == 7.0  # a copy, not a share

    def test_join_with_zero_length_pieces(self):
        pieces = [Msg(b""), Msg(b"ab"), Msg(b""), Msg(b"cd"), Msg(b"")]
        joined = Msg.join(pieces)
        assert joined.to_bytes() == b"abcd"
        assert len(joined) == 4

    def test_join_of_nothing_is_empty(self):
        assert Msg.join([]).to_bytes() == b""

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=64),
           st.lists(st.integers(min_value=0, max_value=64), max_size=6))
    def test_split_then_join_roundtrips(self, payload, cuts):
        """Any sequence of valid split() calls reassembles exactly."""
        msg = Msg(payload)
        pieces = []
        for cut in cuts:
            pieces.append(msg.split(min(cut, len(msg))))
        pieces.append(msg)
        assert Msg.join(pieces).to_bytes() == payload

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=8), min_size=1,
                    max_size=6),
           st.data())
    def test_peek_spans_fragment_boundaries(self, chunks, data):
        """peek(n, at) returns the same bytes as slicing the flattened
        contents, regardless of how the message is chunked internally or
        how much of the first chunk was already consumed."""
        flat = b"".join(chunks)
        consume = data.draw(st.integers(min_value=0, max_value=len(flat)))
        msg = fragmented_msg(chunks, consume=consume)
        live = flat[consume:]
        at = data.draw(st.integers(min_value=0, max_value=len(live)))
        nbytes = data.draw(st.integers(min_value=0,
                                       max_value=len(live) - at))
        assert msg.peek(nbytes, at=at) == live[at:at + nbytes]

    def test_peek_across_three_chunks(self):
        msg = fragmented_msg([b"ETH-", b"IPv4", b"payload"])
        assert msg.peek(8, at=2) == b"H-IPv4pa"

    def test_peek_after_partial_pop_spans_boundary(self):
        msg = fragmented_msg([b"ETH-", b"IPv4", b"payload"], consume=2)
        assert msg.peek(6) == b"H-IPv4"

    def test_peek_zero_bytes_at_end_is_empty(self):
        msg = Msg(b"abc")
        assert msg.peek(0, at=3) == b""

    def test_peek_beyond_end_raises(self):
        with pytest.raises(ValueError):
            Msg(b"abc").peek(2, at=2)


# ---------------------------------------------------------------------------
# MsgBatch split / merge invariants
# ---------------------------------------------------------------------------

def payload_batch(payloads, **meta):
    return MsgBatch([Msg(p) for p in payloads], meta=meta or None)


class TestMsgBatchInvariants:
    def test_split_head_preserves_order_and_identity(self):
        msgs = [Msg(bytes([i])) for i in range(5)]
        batch = MsgBatch(msgs)
        head = batch.split(2)
        assert head.msgs == msgs[:2]
        assert batch.msgs == msgs[2:]

    def test_split_zero_and_all(self):
        batch = payload_batch([b"a", b"b"])
        assert len(batch.split(0)) == 0
        head = batch.split(2)
        assert len(head) == 2 and len(batch) == 0

    def test_split_too_many_raises(self):
        with pytest.raises(ValueError):
            payload_batch([b"a"]).split(2)

    def test_split_negative_raises(self):
        with pytest.raises(ValueError):
            payload_batch([b"a"]).split(-1)

    def test_split_copies_shared_meta(self):
        batch = payload_batch([b"a", b"b"], source="cache")
        head = batch.split(1)
        assert head.meta == {"source": "cache"}
        head.meta["source"] = "demux"
        assert batch.meta["source"] == "cache"

    def test_merge_meta_first_batch_wins(self):
        merged = MsgBatch.merge([payload_batch([b"a"], flow=1),
                                 payload_batch([b"b"], flow=2)])
        assert merged.meta == {"flow": 1}

    def test_merge_explicit_meta_overrides(self):
        merged = MsgBatch.merge([payload_batch([b"a"], flow=1)],
                                meta={"flow": 9})
        assert merged.meta == {"flow": 9}

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.binary(max_size=4), max_size=12), st.data())
    def test_split_merge_roundtrips(self, payloads, data):
        """split() then merge() restores the exact message sequence."""
        batch = payload_batch(payloads)
        original = list(batch.msgs)
        cut = data.draw(st.integers(min_value=0, max_value=len(payloads)))
        head = batch.split(cut)
        merged = MsgBatch.merge([head, batch])
        assert merged.msgs == original

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(max_size=6), max_size=10))
    def test_accounting_sums_per_message(self, payloads):
        batch = payload_batch(payloads)
        assert batch.total_bytes() == sum(len(p) for p in payloads)
        assert batch.footprint() == sum(Msg(p).footprint()
                                        for p in payloads)


# ---------------------------------------------------------------------------
# Batch traversal == per-message traversal
# ---------------------------------------------------------------------------

def traverse(payloads, direction, batched):
    """Deliver *payloads* down a fresh 3-stage path and return the bytes
    that reach the output queue, in order."""
    _, routers = make_chain("A", "B", "C")
    path = path_create(routers[0], Attrs())
    msgs = [Msg(p) for p in payloads]
    if batched:
        path.deliver_batch(msgs, direction)
    else:
        for msg in msgs:
            path.deliver(msg, direction)
    outq = path.output_queue(direction)
    return [m.to_bytes() for m in outq.dequeue_batch()], msgs


class TestBatchTraversalParity:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                    max_size=8),
           st.sampled_from([FWD, BWD]))
    def test_same_bytes_same_order(self, payloads, direction):
        solo, _ = traverse(payloads, direction, batched=False)
        batch, _ = traverse(payloads, direction, batched=True)
        assert batch == solo == payloads

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1,
                    max_size=6))
    def test_every_message_traverses_every_stage(self, payloads):
        _, msgs = traverse(payloads, FWD, batched=True)
        for msg in msgs:
            assert [name for name, _d in msg.meta["trace"]] \
                == ["A", "B", "C"]

    def test_batch_bumps_stats_per_message(self):
        _, routers = make_chain("A", "B")
        path = path_create(routers[0], Attrs())
        before = path.stats.messages_fwd
        path.deliver_batch([Msg(b"x"), Msg(b"y"), Msg(b"z")], FWD)
        assert path.stats.messages_fwd == before + 3


# ---------------------------------------------------------------------------
# Vectorized validated runs (stage-major batch execution)
# ---------------------------------------------------------------------------

def _validated(frame):
    """A received frame annotated as a flow-cache hit would be."""
    return Msg(frame, meta={"eth_validated": True, "ip_validated": True,
                            "udp_validated": True})


class TestVectorizedValidatedRuns:
    """The stage-major prologue of ``run_compiled_batch``: whole
    validated runs cross ETH/IP/UDP in one call per stage, with byte,
    order, and counter parity against scalar delivery."""

    def setup_method(self):
        from repro.experiments.micro import Fig7Stack
        self.Fig7Stack = Fig7Stack

    def fresh(self):
        stack = self.Fig7Stack()
        return stack, stack.create_udp_path(6100)

    def test_vectorized_run_matches_scalar_delivery(self):
        payloads = [b"pkt%02d" % i for i in range(6)]
        solo_stack, solo_path = self.fresh()
        for p in payloads:
            solo_path.deliver(
                _validated(solo_stack.udp_frame(6100, payload=p)), BWD)
        bat_stack, bat_path = self.fresh()
        results = bat_path.deliver_batch(
            [_validated(bat_stack.udp_frame(6100, payload=p))
             for p in payloads], BWD)
        assert [m.to_bytes() for m in bat_stack.test.received] \
            == [m.to_bytes() for m in solo_stack.test.received] == payloads
        # Messages consumed inside vectorized stages yield None results.
        assert results == [None] * len(payloads)
        # Every layer took the validated fast receive, batch and solo.
        for stack in (solo_stack, bat_stack):
            assert stack.eth.rx_validated == len(payloads)
            assert stack.ip.rx_validated == len(payloads)

    def test_mixed_run_falls_back_to_scalar_in_order(self):
        stack, path = self.fresh()
        msgs = [_validated(stack.udp_frame(6100, payload=b"aaaa")),
                Msg(stack.udp_frame(6100, payload=b"bbbb")),  # cold
                _validated(stack.udp_frame(6100, payload=b"cccc"))]
        path.deliver_batch(msgs, BWD)
        assert [m.to_bytes() for m in stack.test.received] \
            == [b"aaaa", b"bbbb", b"cccc"]
        # The cold message forced the whole run down the scalar branch;
        # validated messages still took their scalar fast receive.
        assert stack.eth.rx_validated == 2

    def test_scalar_interposition_disables_vectorization(self):
        stack, path = self.fresh()
        eth_stage = path.stage_of("ETH")
        inner = eth_stage.deliver_fn(BWD)
        seen = []

        def spy(iface, msg, direction, **kwargs):
            seen.append(msg)
            return inner(iface, msg, direction, **kwargs)

        eth_stage.set_deliver(BWD, spy)
        assert eth_stage.deliver_batch_fn(BWD) is None
        path.deliver_batch(
            [_validated(stack.udp_frame(6100, payload=b"wxyz"))
             for _ in range(3)], BWD)
        assert len(seen) == 3  # the wrapper saw every message

    def test_wrap_deliver_disables_vectorization(self):
        stack, path = self.fresh()
        udp_stage = path.stage_of("UDP")
        assert udp_stage.deliver_batch_fn(BWD) is not None
        udp_stage.wrap_deliver(BWD, lambda fn: fn)
        assert udp_stage.deliver_batch_fn(BWD) is None
