"""Unit tests for the spec-file language."""

import pytest

from repro.core import SpecSyntaxError, format_spec, parse_spec

PAPER_EXAMPLE = """
# The Figure 6 fragment: IP over ETH with ARP resolution.
router IP {
    files = {ip.c, ip_input.c, "ip output.c"};
    service = {up:net, <down:net, <res:nsClient};
}
router ARP {
    files = {arp.c};
    service = {resolver:nsProvider, <down:net};
}
router ETH {
    files = {eth.c};
    service = {up:net};
    params = {mtu: 1500, promiscuous: false, name: "eth0"};
}
connect IP.down ETH.up;
connect IP.res ARP.resolver;
connect ARP.down ETH.up;
"""


class TestParseRouters:
    def test_parses_all_blocks(self):
        spec = parse_spec(PAPER_EXAMPLE)
        assert [r.name for r in spec.routers] == ["IP", "ARP", "ETH"]

    def test_files_including_quoted(self):
        spec = parse_spec(PAPER_EXAMPLE)
        assert spec.router("IP").files == ["ip.c", "ip_input.c", "ip output.c"]

    def test_services_with_markers(self):
        spec = parse_spec(PAPER_EXAMPLE)
        assert spec.router("IP").services == ["up:net", "<down:net", "<res:nsClient"]

    def test_params_typed_values(self):
        params = parse_spec(PAPER_EXAMPLE).router("ETH").params
        assert params == {"mtu": 1500, "promiscuous": False, "name": "eth0"}

    def test_class_clause_defaults_to_name(self):
        spec = parse_spec("router IP { service = {up:net}; }")
        assert spec.router("IP").class_name == "IP"

    def test_class_clause_override(self):
        spec = parse_spec(
            "router IP2 { class = IpRouter; service = {up:net}; }")
        assert spec.router("IP2").class_name == "IpRouter"

    def test_comments_both_styles(self):
        spec = parse_spec("# hash comment\n// slash comment\nrouter A { }")
        assert spec.routers[0].name == "A"

    def test_numeric_params(self):
        spec = parse_spec("router A { params = {x: -3, y: 2.5}; }")
        assert spec.router("A").params == {"x": -3, "y": 2.5}


class TestParseConnections:
    def test_connections(self):
        spec = parse_spec(PAPER_EXAMPLE)
        assert len(spec.connections) == 3
        first = spec.connections[0]
        assert (first.a_router, first.a_service) == ("IP", "down")
        assert (first.b_router, first.b_service) == ("ETH", "up")


class TestSyntaxErrors:
    @pytest.mark.parametrize("text,fragment", [
        ("router { }", "expected"),                 # missing name
        ("router A { files = ip.c; }", "expected"),  # missing braces
        ("router A { service = {up}; }", "expected"),  # missing :type
        ("router A { bogus = {x}; }", "unknown clause"),
        ("connect A.x B;", "expected"),
        ("router A { service = {up:net} }", "expected"),  # missing ;
        ("widget A { }", "expected 'router' or 'connect'"),
        ("router A { files = {a.c}; @", "unexpected character"),
    ])
    def test_rejected(self, text, fragment):
        with pytest.raises(SpecSyntaxError, match=fragment):
            parse_spec(text)

    def test_error_carries_line_number(self):
        with pytest.raises(SpecSyntaxError, match="line 3"):
            parse_spec("router A {\n  service = {up:net};\n  bad = {x};\n}")

    def test_unterminated_block(self):
        with pytest.raises(SpecSyntaxError, match="end of spec"):
            parse_spec("router A { service = {up:net};")


class TestRoundTrip:
    def test_format_then_parse_preserves_structure(self):
        spec = parse_spec(PAPER_EXAMPLE)
        text = format_spec(spec)
        again = parse_spec(text)
        assert [r.name for r in again.routers] == [r.name for r in spec.routers]
        for name in ("IP", "ARP", "ETH"):
            assert again.router(name).services == spec.router(name).services
            assert again.router(name).params == spec.router(name).params
            assert again.router(name).files == spec.router(name).files
        assert again.connections == spec.connections

    def test_format_escapes_strings(self):
        spec = parse_spec('router A { params = {s: "a\\"b"}; }')
        assert parse_spec(format_spec(spec)).router("A").params["s"] == 'a"b'
