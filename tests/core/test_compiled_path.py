"""Tests for the compiled fast-path traversal.

After path creation the interface chain is flattened into a tuple that
``Path.deliver`` executes as a tight loop.  These tests pin the contract:
identical semantics to the recursive pointer chase (including absorb,
turn-around and fan-out), transparent recompilation when a transformation
swaps a deliver pointer, and recursion fallback for functions that
bracket their downstream (fault containment and whole-chain probes).
"""

import pytest

from repro.core import Attrs, BWD, FWD, Msg, path_create
from repro.core.stage import brackets_downstream, forward, propagate_bracket

from ..helpers import make_chain


def build_path(*names, **router_kwargs):
    graph, routers = make_chain(*names, **router_kwargs)
    return graph, routers, path_create(routers[0], Attrs())


def force_recursive(path):
    """Disable the compiled chains without touching semantics."""
    path._compiled = [None, None]
    path._compiled_gen = path.chain_generation


class TestCompilation:
    def test_path_create_compiles_both_directions(self):
        _, _, path = build_path("A", "B", "C")
        assert path._compiled_gen == path.chain_generation
        assert path._compiled[FWD] is not None
        assert path._compiled[BWD] is not None
        assert len(path._compiled[FWD]) == 3

    def test_compiled_matches_recursive_traversal(self):
        _, _, compiled = build_path("A", "B", "C")
        _, _, recursive = build_path("A", "B", "C")
        force_recursive(recursive)

        m1, m2 = Msg(b"payload"), Msg(b"payload")
        compiled.deliver(m1, FWD)
        recursive.deliver(m2, FWD)
        assert m1.meta["trace"] == m2.meta["trace"]
        assert m1.meta["trace"] == [("A", FWD), ("B", FWD), ("C", FWD)]
        assert compiled.output_queue(FWD).dequeue() is m1

    def test_backward_direction(self):
        _, _, path = build_path("A", "B", "C")
        msg = Msg(b"payload")
        path.deliver(msg, BWD)
        assert msg.meta["trace"] == [("C", BWD), ("B", BWD), ("A", BWD)]
        assert path.output_queue(BWD).dequeue() is msg


class TestGeneralizedProcessing:
    def test_absorbing_stage_ends_the_loop(self):
        _, _, path = build_path("A", "B", "C",
                                B={"absorb": True})
        msg = Msg(b"payload")
        path.deliver(msg, FWD)
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD)]
        assert msg.meta["absorbed_at"] == "B"
        assert path.output_queue(FWD).is_empty()

    def test_turn_around_matches_recursive(self):
        _, _, path = build_path("A", "B", "C", B={"bounce": True})
        msg = Msg(b"payload")
        path.deliver(msg, FWD)
        # B turns the message around; BWD processing resumes at A.
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD), ("A", BWD)]
        assert path.output_queue(BWD).dequeue() is msg

    def test_fan_out_preserves_wire_order(self):
        """A stage may forward several messages per call (IP
        fragmentation); the compiled loop must keep their order."""
        _, _, path = build_path("A", "B", "C")
        stage_b = path.stage_of("B")
        pieces = [Msg(b"piece0"), Msg(b"piece1"), Msg(b"piece2")]

        def fragment(iface, msg, d, **kwargs):
            for piece in pieces:
                forward(iface, piece, d, **kwargs)
            return None

        stage_b.set_deliver(FWD, fragment)
        path.deliver(Msg(b"payload"), FWD)
        outq = path.output_queue(FWD)
        assert [outq.dequeue() for _ in pieces] == pieces
        for piece in pieces:
            assert piece.meta["trace"] == [("C", FWD)]


class TestRecompilation:
    def test_set_deliver_bumps_generation_and_recompiles(self):
        _, _, path = build_path("A", "B", "C")
        generation = path.chain_generation
        stage_b = path.stage_of("B")
        inner = stage_b.deliver_fn(FWD)

        def tagged(iface, msg, d, **kwargs):
            msg.meta["tagged"] = True
            return inner(iface, msg, d, **kwargs)

        stage_b.set_deliver(FWD, tagged)
        assert path.chain_generation > generation
        msg = Msg(b"payload")
        path.deliver(msg, FWD)  # recompiles transparently
        assert msg.meta["tagged"]
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD), ("C", FWD)]
        assert path._compiled_gen == path.chain_generation

    def test_wrap_deliver_bumps_generation(self):
        _, _, path = build_path("A", "B")
        generation = path.chain_generation
        path.stage_of("A").wrap_deliver(FWD, lambda inner: inner)
        assert path.chain_generation > generation


class TestBracketFallback:
    def test_bracketing_wrapper_contains_downstream_exception(self):
        """A containment-style wrapper marked with brackets_downstream
        must see exceptions raised by *later* stages — the compiled loop
        falls back to recursion from the marked stage onward."""
        _, _, path = build_path("A", "B", "C")

        def boom(iface, msg, d, **kwargs):
            raise RuntimeError("downstream fault")

        path.stage_of("C").set_deliver(FWD, boom)
        stage_b = path.stage_of("B")
        inner = stage_b.deliver_fn(FWD)

        @brackets_downstream
        def guarded(iface, msg, d, **kwargs):
            try:
                return inner(iface, msg, d, **kwargs)
            except RuntimeError:
                msg.meta["contained"] = True
                return None

        stage_b.set_deliver(FWD, guarded)
        msg = Msg(b"payload")
        path.deliver(msg, FWD)  # must not raise
        assert msg.meta["contained"]

    def test_compile_stops_at_bracketing_stage(self):
        _, _, path = build_path("A", "B", "C")
        stage_b = path.stage_of("B")
        stage_b.set_deliver(
            FWD, brackets_downstream(stage_b.deliver_fn(FWD)))
        path.compile_chains()
        chain = path._compiled[FWD]
        assert len(chain) == 2  # A intercepted, B terminal-recursive
        assert chain[0][2] is True
        assert chain[1][2] is False

    def test_entry_bracket_disables_compilation(self):
        _, _, path = build_path("A", "B")
        stage_a = path.stage_of("A")
        stage_a.set_deliver(
            FWD, brackets_downstream(stage_a.deliver_fn(FWD)))
        path.compile_chains()
        assert path._compiled[FWD] is None  # plain recursion, no loop
        msg = Msg(b"payload")
        path.deliver(msg, FWD)
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD)]

    def test_propagate_bracket_carries_the_mark(self):
        @brackets_downstream
        def inner(iface, msg, d, **kwargs):
            return None

        def outer(iface, msg, d, **kwargs):
            return inner(iface, msg, d, **kwargs)

        assert not getattr(outer, "_brackets_downstream", False)
        propagate_bracket(inner, outer)
        assert outer._brackets_downstream

    def test_unmarked_wrapper_is_flattened(self):
        """Sanity check on the failure mode the marker exists for: an
        UNMARKED bracketing wrapper does not see downstream exceptions
        under compiled execution (the stages run outside its frame)."""
        _, _, path = build_path("A", "B", "C")

        def boom(iface, msg, d, **kwargs):
            raise RuntimeError("downstream fault")

        path.stage_of("C").set_deliver(FWD, boom)
        stage_b = path.stage_of("B")
        inner = stage_b.deliver_fn(FWD)

        def unmarked_guard(iface, msg, d, **kwargs):
            try:
                return inner(iface, msg, d, **kwargs)
            except RuntimeError:  # pragma: no cover - must NOT trigger
                msg.meta["contained"] = True
                return None

        stage_b.set_deliver(FWD, unmarked_guard)
        with pytest.raises(RuntimeError):
            path.deliver(Msg(b"payload"), FWD)


class TestDeliveryStateIsolation:
    def test_nested_deliveries_do_not_corrupt_each_other(self):
        """A stage that synchronously delivers into another compiled path
        (cross-path handoff) must not confuse either loop."""
        _, _, inner_path = build_path("X", "Y")
        _, _, outer_path = build_path("A", "B", "C")
        stage_b = outer_path.stage_of("B")
        outer_deliver = stage_b.deliver_fn(FWD)

        def handoff(iface, msg, d, **kwargs):
            side = Msg(b"side")
            inner_path.deliver(side, FWD)
            msg.meta["side_trace"] = side.meta["trace"]
            return outer_deliver(iface, msg, d, **kwargs)

        stage_b.set_deliver(FWD, handoff)
        msg = Msg(b"payload")
        outer_path.deliver(msg, FWD)
        assert msg.meta["side_trace"] == [("X", FWD), ("Y", FWD)]
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD), ("C", FWD)]
        assert outer_path.output_queue(FWD).dequeue() is msg
