"""Tests for batched queue operations (DESIGN.md §13): one call moves a
run of items while statistics, listeners, and drop accounting stay exact
per item."""

import pytest

from repro.core import DeadlineOrderedQueue, PathQueue


class TestTryEnqueueBatch:
    def test_all_fit(self):
        q = PathQueue(maxlen=4)
        assert q.try_enqueue_batch(["a", "b", "c"]) == 3
        assert [q.dequeue() for _ in range(3)] == ["a", "b", "c"]

    def test_partial_fit_drops_tail(self):
        q = PathQueue(maxlen=2)
        assert q.try_enqueue_batch(["a", "b", "c", "d"]) == 2
        assert q.dropped == 2
        assert len(q) == 2

    def test_per_item_listeners_fire(self):
        q = PathQueue(maxlen=2)
        enq, dropped = [], []
        q.on_enqueue(lambda queue: enq.append(queue.last_enqueued))
        q.on_drop(lambda queue, item, why: dropped.append((item,
                                                                    why)))
        q.try_enqueue_batch(["a", "b", "c"])
        assert enq == ["a", "b"]
        assert dropped == [("c", "overflow")]

    def test_empty_batch_is_noop(self):
        q = PathQueue(maxlen=1)
        assert q.try_enqueue_batch([]) == 0
        assert q.enqueued == 0


class TestDequeueBatch:
    def test_drains_everything_by_default(self):
        q = PathQueue(maxlen=8)
        for item in "abcd":
            q.enqueue(item)
        assert q.dequeue_batch() == list("abcd")
        assert q.is_empty()

    def test_limit_caps_the_run(self):
        q = PathQueue(maxlen=8)
        for item in "abcd":
            q.enqueue(item)
        assert q.dequeue_batch(2) == ["a", "b"]
        assert len(q) == 2

    def test_empty_queue_yields_empty_list(self):
        assert PathQueue().dequeue_batch() == []

    def test_stats_and_listeners_exact_per_item(self):
        q = PathQueue(maxlen=8)
        seen = []
        q.on_dequeue(lambda queue: seen.append(queue.last_dequeued))
        for item in "abc":
            q.enqueue(item)
        q.dequeue_batch()
        assert seen == ["a", "b", "c"]
        assert q.dequeued == 3

    def test_batch_equals_repeated_dequeue(self):
        solo, batch = PathQueue(maxlen=8), PathQueue(maxlen=8)
        for q in (solo, batch):
            for i in range(5):
                q.enqueue(i)
        assert batch.dequeue_batch(5) == [solo.dequeue() for _ in range(5)]

    def test_deadline_queue_drains_in_deadline_order(self):
        q = DeadlineOrderedQueue(maxlen=8)
        for deadline in (30.0, 10.0, 20.0):
            q.enqueue((deadline, f"frame@{deadline:.0f}"))
        assert [d for d, _item in q.dequeue_batch()] == [10.0, 20.0, 30.0]
