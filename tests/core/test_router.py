"""Unit tests for routers, services, and graph edges."""

import pytest

from repro.core import (
    Attrs,
    ConfigurationError,
    Msg,
    Router,
    ServiceDecl,
    ServiceTypeError,
    connect,
)


class TwoServiceRouter(Router):
    SERVICES = ("up:net", "<down:net")


class ResolverRouter(Router):
    SERVICES = ("resolver:nsProvider", "<down:net")


class ClientRouter(Router):
    SERVICES = ("up:net", "<down:net", "res:nsClient")


class TestServiceDecl:
    def test_parse_plain(self):
        decl = ServiceDecl.parse("up:net")
        assert (decl.name, decl.type_name, decl.init_before) == ("up", "net", False)

    def test_parse_init_before_marker(self):
        decl = ServiceDecl.parse("<down:net")
        assert decl.init_before
        assert decl.name == "down"

    def test_parse_tolerates_whitespace(self):
        decl = ServiceDecl.parse("  < down : net  ")
        assert decl.init_before
        assert (decl.name, decl.type_name) == ("down", "net")

    @pytest.mark.parametrize("bad", ["", "noname", ":net", "up:", "up"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            ServiceDecl.parse(bad)


class TestRouterConstruction:
    def test_services_built_from_declarations(self):
        router = TwoServiceRouter("IP")
        assert [s.name for s in router.services] == ["up", "down"]
        assert router.service("down").init_before
        assert not router.service("up").init_before

    def test_service_lookup_by_name_and_index(self):
        router = TwoServiceRouter("IP")
        assert router.service(0) is router.service("up")
        assert router.service(1).name == "down"

    def test_service_lookup_errors(self):
        router = TwoServiceRouter("IP")
        with pytest.raises(ConfigurationError):
            router.service("nope")
        with pytest.raises(ConfigurationError):
            router.service(5)

    def test_duplicate_service_names_rejected(self):
        class Dup(Router):
            SERVICES = ("up:net", "up:net")

        with pytest.raises(ConfigurationError, match="duplicate"):
            Dup("X")

    def test_base_router_has_no_paths(self):
        router = TwoServiceRouter("IP")
        with pytest.raises(NotImplementedError):
            router.create_stage(-1, Attrs())

    def test_default_demux_drops(self):
        router = TwoServiceRouter("IP")
        result = router.demux(Msg(b"x"), router.service("up"))
        assert result.path is None and result.forward is None
        assert "classifier" in result.reason


class TestConnect:
    def test_connect_compatible_services(self):
        ip = TwoServiceRouter("IP")
        eth = TwoServiceRouter("ETH")
        link = connect(ip.service("down"), eth.service("up"))
        assert ip.service("down").connection_count == 1
        assert link.peer_of(ip.service("down"))[0] is eth
        assert link.peer_of(eth.service("up"))[0] is ip
        assert link.peer_of(ip)[1] is eth.service("up")

    def test_connect_incompatible_types_rejected(self):
        arp = ResolverRouter("ARP")
        eth = TwoServiceRouter("ETH")
        with pytest.raises(ServiceTypeError):
            connect(arp.service("resolver"), eth.service("up"))

    def test_ns_client_to_provider_allowed(self):
        ip = ClientRouter("IP")
        arp = ResolverRouter("ARP")
        connect(ip.service("res"), arp.service("resolver"))
        assert ip.service("res").peers() == [(arp, arp.service("resolver"))]

    def test_sole_link_requires_exactly_one(self):
        ip = TwoServiceRouter("IP")
        eth = TwoServiceRouter("ETH")
        fddi = TwoServiceRouter("FDDI")
        with pytest.raises(ConfigurationError, match="0 links"):
            ip.service("down").sole_link()
        connect(ip.service("down"), eth.service("up"))
        assert ip.service("down").sole_link().peer_of(ip)[0] is eth
        connect(ip.service("down"), fddi.service("up"))
        with pytest.raises(ConfigurationError, match="2 links"):
            ip.service("down").sole_link()

    def test_multiple_connections_on_one_service(self):
        # IP over both ATM and FDDI, as in Figure 3.
        ip = TwoServiceRouter("IP")
        atm = TwoServiceRouter("ATM")
        fddi = TwoServiceRouter("FDDI")
        connect(ip.service("down"), atm.service("up"))
        connect(ip.service("down"), fddi.service("up"))
        peers = [router.name for router, _ in ip.service("down").peers()]
        assert peers == ["ATM", "FDDI"]

    def test_peer_of_rejects_stranger(self):
        ip = TwoServiceRouter("IP")
        eth = TwoServiceRouter("ETH")
        other = TwoServiceRouter("OTHER")
        link = connect(ip.service("down"), eth.service("up"))
        with pytest.raises(ValueError):
            link.peer_of(other)
