"""Tests for batched classification: run grouping, decision sources,
and exact per-message counter parity with the per-message classifier.
"""

import pytest

from repro.core import (
    ClassifierStats,
    ClassifyResult,
    FlowCache,
    Msg,
    SOURCE_CACHE,
    SOURCE_DEMUX,
    SOURCE_GROUP,
    classify,
    classify_batch,
    classify_ex,
)
from repro.core.classify import classify_or_raise
from repro.multipath import PathGroup
from .test_classify import bound_chain


def first_byte_key(msg):
    return msg.peek(1) if len(msg) else None


def cache_of(capacity=8):
    return FlowCache(capacity=capacity, key_of=first_byte_key)


class TestClassifyResult:
    def test_defaults(self):
        result = ClassifyResult(None)
        assert result == (None, SOURCE_DEMUX, 1)

    def test_tuple_unpacking_shim(self):
        _, routers, path = bound_chain("A", bind_at="A")
        found, source, run = classify_ex(routers[0], Msg(b"A"))
        assert found is path and source == SOURCE_DEMUX and run == 1

    def test_path_only_shims_preserved(self):
        """classify()/classify_or_raise() still return the bare path."""
        _, routers, path = bound_chain("A", bind_at="A")
        assert classify(routers[0], Msg(b"A")) is path
        assert classify_or_raise(routers[0], Msg(b"A")) is path

    def test_source_cache_on_second_probe(self):
        _, routers, path = bound_chain("A", bind_at="A")
        cache = cache_of()
        assert classify_ex(routers[0], Msg(b"A1"), cache=cache) \
            == (path, SOURCE_DEMUX, 1)
        assert classify_ex(routers[0], Msg(b"A2"), cache=cache) \
            == (path, SOURCE_CACHE, 1)


class TestClassifyBatchRuns:
    def test_single_run_shares_one_decision(self):
        _, routers, path = bound_chain("A", bind_at="A")
        cache = cache_of()
        classify_ex(routers[0], Msg(b"A0"), cache=cache)  # warm the cache
        msgs = [Msg(b"A1"), Msg(b"A2"), Msg(b"A3")]
        results = classify_batch(routers[0], msgs, cache=cache)
        assert [r.path for r in results] == [path] * 3
        assert [r.source for r in results] == [SOURCE_CACHE] * 3
        assert [r.run_length for r in results] == [3, 3, 3]
        assert all(m.meta["path"] is path for m in msgs)

    def test_runs_split_at_key_boundaries(self):
        graph, routers, path_a = bound_chain("A", "B", bind_at="A")
        path_b = bound_chain("X", "B")[2]  # unused; just for symmetry
        cache = cache_of()
        classify_ex(routers[0], Msg(b"A0"), cache=cache)
        msgs = [Msg(b"A1"), Msg(b"A2"), Msg(b"zB"), Msg(b"A3")]
        results = classify_batch(routers[0], msgs, cache=cache)
        assert [r.run_length for r in results] == [2, 2, 1, 1]
        assert results[0].source == SOURCE_CACHE
        assert results[2].source == SOURCE_DEMUX  # different flow: own walk

    def test_cold_cache_head_decides_followers_hit(self):
        """The run head's chain walk populates the cache; followers in the
        same run resolve through the precomputed key."""
        _, routers, path = bound_chain("A", bind_at="A")
        cache = cache_of()
        stats = ClassifierStats()
        results = classify_batch(routers[0],
                                 [Msg(b"A1"), Msg(b"A2"), Msg(b"A3")],
                                 stats=stats, cache=cache)
        assert [r.source for r in results] \
            == [SOURCE_DEMUX, SOURCE_CACHE, SOURCE_CACHE]
        assert stats.classified == 3
        assert stats.cache_hits == 2
        assert cache.hits == 2 and cache.misses == 1

    def test_no_cache_every_message_walks(self):
        _, routers, path = bound_chain("A", bind_at="A")
        stats = ClassifierStats()
        results = classify_batch(routers[0], [Msg(b"A1"), Msg(b"A2")],
                                 stats=stats)
        assert [r.source for r in results] == [SOURCE_DEMUX] * 2
        assert [r.run_length for r in results] == [1, 1]
        assert stats.classified == 2 and stats.cache_hits == 0

    def test_dropped_head_does_not_poison_followers(self):
        """A run whose head is discarded falls back to per-message walks;
        every message still gets a (drop) result and a reason."""
        _, routers, _ = bound_chain("A", "B", bind_at="B")
        cache = cache_of()
        msgs = [Msg(b"??1"), Msg(b"??2")]
        results = classify_batch(routers[0], msgs, cache=cache)
        assert [r.path for r in results] == [None, None]
        assert all("drop_reason" in m.meta for m in msgs)

    def test_empty_batch(self):
        _, routers, _ = bound_chain("A", bind_at="A")
        assert classify_batch(routers[0], [], cache=cache_of()) == []

    def test_keyless_messages_classify_individually(self):
        """Messages the cache deems ineligible (key None) never form
        runs — each takes its own walk, exactly as per-message would."""
        _, routers, path = bound_chain("A", bind_at="A")
        cache = cache_of()

        class NoKeys(FlowCache):
            pass

        nokeys = FlowCache(capacity=4, key_of=lambda m: None)
        results = classify_batch(routers[0], [Msg(b"A1"), Msg(b"A2")],
                                 cache=nokeys)
        assert [r.run_length for r in results] == [1, 1]
        assert [r.source for r in results] == [SOURCE_DEMUX] * 2


class TestCounterParity:
    def counters(self, batched):
        """Classify six arrivals (two flows interleaved in runs) and
        return every observable counter."""
        graph, routers, path = bound_chain("A", "B", bind_at="A")
        graph.router("B").bound_path = bound_chain("B")[2]
        cache = cache_of()
        stats = ClassifierStats()
        payloads = [b"A1", b"A2", b"A3", b"zB1", b"zB2", b"A4"]
        msgs = [Msg(p) for p in payloads]
        if batched:
            results = classify_batch(routers[0], msgs, stats=stats,
                                     cache=cache)
            paths = [r.path for r in results]
        else:
            paths = [classify_ex(routers[0], m, stats=stats, cache=cache).path
                     for m in msgs]
        # Normalize pids (globally allocated) to first-appearance order so
        # the two fresh graphs compare structurally.
        order = {}
        for p in paths:
            order.setdefault(p.pid if p else None, len(order))
        return {
            "paths": [order[p.pid if p else None] for p in paths],
            "classified": stats.classified,
            "dropped": stats.dropped,
            "refinements": stats.refinements,
            "stats_cache_hits": stats.cache_hits,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "metas": [order[m.meta.get("path").pid] for m in msgs],
        }

    def test_batch_counters_equal_per_message_counters(self):
        assert self.counters(batched=True) == self.counters(batched=False)


class TestGroupDispatch:
    def group_setup(self):
        """A bound chain whose path joins a round-robin group with a
        second live member."""
        _, routers, anchor = bound_chain("A", bind_at="A")
        sibling = bound_chain("S", bind_at="S")[2]
        group = PathGroup("round_robin")
        group.add(anchor)
        group.add(sibling)
        return routers, anchor, sibling, group

    def test_followers_redispatch_through_policy(self):
        """A non-sticky cached anchor re-dispatches *every* follower, so
        round-robin spreads exactly as per-message classification."""
        routers, anchor, sibling, group = self.group_setup()
        cache = cache_of()
        classify_ex(routers[0], Msg(b"A0"), cache=cache)  # cache the anchor
        msgs = [Msg(b"A%d" % i) for i in range(4)]
        results = classify_batch(routers[0], msgs, cache=cache)
        assert [r.source for r in results] == [SOURCE_GROUP] * 4
        picked = [r.path for r in results]
        assert picked.count(anchor) == 2 and picked.count(sibling) == 2

    def test_dispatch_batch_matches_per_message_dispatch(self):
        """PathGroup.dispatch_batch yields ordered (member, run) splits
        whose concatenation equals N individual dispatch() calls."""
        _, anchor, sibling, group = self.group_setup()
        msgs = [{"frame": i} for i in range(5)]
        splits = group.dispatch_batch(msgs)
        flattened = [(member, msg) for member, run in splits
                     for msg in run]
        assert [m for _member, m in flattened] == msgs
        # Consecutive splits never share a member (maximal runs).
        members = [member for member, _run in splits]
        assert all(a is not b for a, b in zip(members, members[1:]))
