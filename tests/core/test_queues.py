"""Unit and property tests for path queues."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DeadlineOrderedQueue,
    LifoPathQueue,
    PathQueue,
    QueueFullError,
)


class TestPathQueueBasics:
    def test_fifo_order(self):
        q = PathQueue(maxlen=4)
        for item in "abc":
            q.enqueue(item)
        assert [q.dequeue() for _ in range(3)] == ["a", "b", "c"]

    def test_length_and_capacity(self):
        q = PathQueue(maxlen=2)
        assert (len(q), q.capacity) == (0, 2)
        q.enqueue(1)
        assert len(q) == 1
        assert q.free_slots == 1

    def test_full_and_empty_predicates(self):
        q = PathQueue(maxlen=1)
        assert q.is_empty() and not q.is_full()
        q.enqueue(1)
        assert q.is_full() and not q.is_empty()

    def test_try_enqueue_when_full_counts_drop(self):
        q = PathQueue(maxlen=1)
        assert q.try_enqueue("a")
        assert not q.try_enqueue("b")
        assert q.dropped == 1
        assert len(q) == 1

    def test_strict_enqueue_raises_when_full(self):
        q = PathQueue(maxlen=0)
        with pytest.raises(QueueFullError):
            q.enqueue("a")

    def test_unbounded_queue(self):
        q = PathQueue(maxlen=None)
        for i in range(1000):
            q.enqueue(i)
        assert len(q) == 1000
        assert q.free_slots is None
        assert not q.is_full()

    def test_negative_maxlen_rejected(self):
        with pytest.raises(ValueError):
            PathQueue(maxlen=-1)

    def test_try_dequeue_empty_returns_none(self):
        assert PathQueue().try_dequeue() is None

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            PathQueue().dequeue()

    def test_peek_leaves_item(self):
        q = PathQueue()
        q.enqueue("a")
        assert q.peek() == "a"
        assert len(q) == 1

    def test_clear_counts_drops(self):
        q = PathQueue()
        for i in range(5):
            q.enqueue(i)
        assert q.clear() == 5
        assert q.is_empty()
        assert q.dropped == 5


class TestStatistics:
    def test_counts_and_high_watermark(self):
        q = PathQueue(maxlen=8)
        for i in range(5):
            q.enqueue(i)
        for _ in range(3):
            q.dequeue()
        q.enqueue(9)
        assert q.enqueued == 6
        assert q.dequeued == 3
        assert q.high_watermark == 5

    def test_listeners_fire_on_transitions(self):
        events = []
        q = PathQueue(maxlen=2, name="t")
        q.on_enqueue(lambda queue: events.append(("enq", len(queue))))
        q.on_dequeue(lambda queue: events.append(("deq", len(queue))))
        q.enqueue("a")
        q.enqueue("b")
        q.dequeue()
        assert events == [("enq", 1), ("enq", 2), ("deq", 1)]

    def test_listener_not_fired_on_rejected_enqueue(self):
        events = []
        q = PathQueue(maxlen=1)
        q.on_enqueue(lambda queue: events.append("enq"))
        q.try_enqueue("a")
        q.try_enqueue("b")  # dropped
        assert events == ["enq"]


class TestOverflowStorm:
    """Queue behaviour while capacity is clamped (the fault injector's
    queue-pressure storm) and after it is restored."""

    def test_strict_enqueue_raises_during_storm(self):
        q = PathQueue(maxlen=8)
        for i in range(3):
            q.enqueue(i)
        q.maxlen = 3  # storm: clamp to current occupancy
        with pytest.raises(QueueFullError):
            q.enqueue("overflow")
        q.maxlen = 8  # storm over
        q.enqueue("fits again")
        assert len(q) == 4

    def test_overflow_drops_counted_per_storm_window(self):
        q = PathQueue(maxlen=8)
        for i in range(4):
            q.enqueue(i)
        q.maxlen = 2  # clamp below occupancy: existing items stay put
        assert len(q) == 4
        for i in range(5):
            assert not q.try_enqueue(f"storm{i}")
        assert q.dropped == 5
        q.maxlen = 8
        assert q.try_enqueue("calm")
        assert q.dropped == 5

    def test_listener_wake_and_block_across_storm(self):
        """on_enqueue (the thread wakeup hook) fires only for accepted
        messages: a storm's rejects must not wake the path thread, and
        the first post-storm accept must."""
        wakeups = []
        q = PathQueue(maxlen=1, name="inq")
        q.on_enqueue(lambda queue: wakeups.append(len(queue)))
        q.on_dequeue(lambda queue: wakeups.append(-len(queue)))
        assert q.try_enqueue("a")     # wake: 1
        q.maxlen = 0                  # storm
        assert not q.try_enqueue("b")
        assert not q.try_enqueue("c")
        q.maxlen = 1                  # storm over; still full
        assert q.dequeue() == "a"     # block transition: 0
        assert q.try_enqueue("d")     # wake again: 1
        assert wakeups == [1, 0, 1]


class TestDisciplines:
    def test_lifo(self):
        q = LifoPathQueue(maxlen=4)
        for item in "abc":
            q.enqueue(item)
        assert [q.dequeue() for _ in range(3)] == ["c", "b", "a"]

    def test_deadline_ordered_tuples(self):
        q = DeadlineOrderedQueue(maxlen=8)
        q.enqueue((30.0, "late"))
        q.enqueue((10.0, "early"))
        q.enqueue((20.0, "middle"))
        assert q.dequeue() == (10.0, "early")
        assert q.dequeue() == (20.0, "middle")
        assert q.dequeue() == (30.0, "late")

    def test_deadline_ordered_objects(self):
        class Item:
            def __init__(self, deadline):
                self.deadline = deadline

        q = DeadlineOrderedQueue()
        a, b = Item(5.0), Item(1.0)
        q.enqueue(a)
        q.enqueue(b)
        assert q.dequeue() is b
        assert q.dequeue() is a


# -- property-based -----------------------------------------------------------

@given(st.lists(st.integers(), max_size=50), st.integers(min_value=0, max_value=10))
def test_bounded_queue_never_exceeds_capacity(items, maxlen):
    q = PathQueue(maxlen=maxlen)
    accepted = sum(1 for item in items if q.try_enqueue(item))
    assert len(q) <= maxlen
    assert accepted == min(len(items), maxlen)
    assert q.dropped == len(items) - accepted


@given(st.lists(st.integers(), max_size=50))
def test_fifo_preserves_order(items):
    q = PathQueue(maxlen=None)
    for item in items:
        q.enqueue(item)
    assert [q.dequeue() for _ in items] == items


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30))
def test_deadline_queue_dequeues_in_deadline_order(deadlines):
    q = DeadlineOrderedQueue(maxlen=None)
    for index, when in enumerate(deadlines):
        q.enqueue((when, index))
    out = [q.dequeue()[0] for _ in deadlines]
    assert out == sorted(out)


class TestDeadlineQueueStability:
    """Dequeue order among *equal* deadlines must be FIFO: the linear
    scan uses a strict ``<`` so the earliest-enqueued of a tie wins."""

    def test_fifo_among_equal_deadlines(self):
        q = DeadlineOrderedQueue(maxlen=8)
        for tag in ("first", "second", "third"):
            q.enqueue((10.0, tag))
        assert [q.dequeue()[1] for _ in range(3)] == \
            ["first", "second", "third"]

    def test_tie_broken_fifo_with_earlier_deadline_interleaved(self):
        q = DeadlineOrderedQueue(maxlen=8)
        q.enqueue((20.0, "a"))
        q.enqueue((10.0, "b"))
        q.enqueue((20.0, "c"))
        q.enqueue((10.0, "d"))
        assert [q.dequeue()[1] for _ in range(4)] == ["b", "d", "a", "c"]

    def test_deadline_defaults_to_zero_for_plain_items(self):
        """An item with neither tuple shape nor a ``deadline`` attribute
        sorts as deadline 0.0 — ahead of any positive deadline."""
        q = DeadlineOrderedQueue()
        q.enqueue((5.0, "framed"))
        q.enqueue("plain")
        assert q.dequeue() == "plain"
        assert q.dequeue() == (5.0, "framed")

    def test_peek_is_not_reordered(self):
        """peek() reflects arrival order (the scan happens on dequeue);
        pinned so a future 'optimization' doesn't silently change it."""
        q = DeadlineOrderedQueue()
        q.enqueue((30.0, "late"))
        q.enqueue((10.0, "early"))
        assert q.peek() == (30.0, "late")
        assert q.dequeue() == (10.0, "early")


class TestDeadlineQueueDropAccounting:
    def test_overflow_fires_listener_with_reason(self):
        q = DeadlineOrderedQueue(maxlen=1)
        drops = []
        q.on_drop(lambda queue, item, reason: drops.append((item, reason)))
        assert q.try_enqueue((10.0, "kept"))
        assert not q.try_enqueue((5.0, "dropped"))
        assert drops == [((5.0, "dropped"), "overflow")]
        assert q.dropped == 1
        # Overflow drops the arriving item even if its deadline is
        # earlier than everything queued: no displacement.
        assert q.dequeue() == (10.0, "kept")

    def test_drain_fires_listener_per_item(self):
        q = DeadlineOrderedQueue(maxlen=4)
        drops = []
        q.on_drop(lambda queue, item, reason: drops.append((item, reason)))
        q.enqueue((30.0, "a"))
        q.enqueue((10.0, "b"))
        spilled = q.drain("path deleted")
        assert len(spilled) == 2
        assert sorted(d[1] for d in drops) == \
            ["path deleted", "path deleted"]
        assert q.dropped == 2
        assert q.is_empty()
