"""Tests for path structure, delivery, bidirectionality, and accounting."""

import pytest

from repro.core import (
    BWD,
    FWD,
    Attrs,
    Msg,
    Path,
    PathStateError,
    path_create,
    path_delete,
)
from ..helpers import ChainRouter, make_chain


def build_path(*names, attrs=None, **router_kwargs):
    graph, routers = make_chain(*names, **router_kwargs)
    path = path_create(routers[0], attrs or Attrs())
    return graph, routers, path


class TestPathStructure:
    def test_stage_per_router(self):
        _, _, path = build_path("A", "B", "C")
        assert len(path) == 3
        assert path.routers() == ["A", "B", "C"]

    def test_end_stages(self):
        _, _, path = build_path("A", "B", "C")
        assert path.end[0].router.name == "A"
        assert path.end[1].router.name == "C"

    def test_interface_chaining_forward(self):
        _, _, path = build_path("A", "B", "C")
        a, b, c = path.stages
        assert a.end[FWD].next is b.end[FWD]
        assert b.end[FWD].next is c.end[FWD]
        assert c.end[FWD].next is None

    def test_interface_chaining_backward(self):
        _, _, path = build_path("A", "B", "C")
        a, b, c = path.stages
        assert c.end[BWD].next is b.end[BWD]
        assert b.end[BWD].next is a.end[BWD]
        assert a.end[BWD].next is None

    def test_back_pointers_cross_directions(self):
        _, _, path = build_path("A", "B", "C")
        a, b, c = path.stages
        # Turning a FWD message around at B resumes BWD processing at A.
        assert b.end[FWD].back is a.end[BWD]
        # Turning a BWD message around at B resumes FWD processing at C.
        assert b.end[BWD].back is c.end[FWD]
        assert a.end[FWD].back is None
        assert c.end[BWD].back is None

    def test_stage_of(self):
        _, _, path = build_path("A", "B")
        assert path.stage_of("B").router.name == "B"
        with pytest.raises(KeyError):
            path.stage_of("Z")

    def test_unique_pids(self):
        _, _, p1 = build_path("A", "B")
        _, _, p2 = build_path("A", "B")
        assert p1.pid != p2.pid


class TestDelivery:
    def test_forward_traversal_visits_all_stages(self):
        _, _, path = build_path("A", "B", "C")
        msg = Msg(b"data")
        path.deliver(msg, FWD)
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD), ("C", FWD)]

    def test_forward_message_lands_on_fwd_output_queue(self):
        _, _, path = build_path("A", "B")
        msg = Msg(b"data")
        path.deliver(msg, FWD)
        assert path.output_queue(FWD).dequeue() is msg

    def test_backward_traversal(self):
        _, _, path = build_path("A", "B", "C")
        msg = Msg(b"data")
        path.deliver(msg, BWD)
        assert msg.meta["trace"] == [("C", BWD), ("B", BWD), ("A", BWD)]
        assert path.output_queue(BWD).dequeue() is msg

    def test_absorb_mid_path(self):
        """Reassembly-style: most input messages produce no output."""
        _, _, path = build_path("A", "B", "C", B={"absorb": True})
        msg = Msg(b"frag")
        path.deliver(msg, FWD)
        assert msg.meta["absorbed_at"] == "B"
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD)]
        assert path.output_queue(FWD).is_empty()

    def test_turn_around_mid_path(self):
        """A request bounced at B comes back out at A traveling BWD."""
        _, _, path = build_path("A", "B", "C", B={"bounce": True})
        msg = Msg(b"ping")
        path.deliver(msg, FWD)
        assert msg.meta["trace"] == [("A", FWD), ("B", FWD), ("A", BWD)]
        assert path.output_queue(BWD).dequeue() is msg

    def test_inject_at_interior_stage(self):
        """Spontaneous message creation inside a path (Section 2.4.2)."""
        _, _, path = build_path("A", "B", "C")
        msg = Msg(b"retransmit")
        path.inject_at(path.stage_of("B"), msg, FWD)
        assert msg.meta["trace"] == [("B", FWD), ("C", FWD)]

    def test_inject_at_foreign_stage_rejected(self):
        _, _, path1 = build_path("A", "B")
        _, _, path2 = build_path("A", "B")
        with pytest.raises(PathStateError):
            path1.inject_at(path2.stage_of("A"), Msg(), FWD)

    def test_message_counters(self):
        _, _, path = build_path("A", "B")
        path.deliver(Msg(), FWD)
        path.deliver(Msg(), FWD)
        path.deliver(Msg(), BWD)
        assert path.stats.messages_fwd == 2
        assert path.stats.messages_bwd == 1


class TestLifecycle:
    def test_establish_ran_with_attrs(self):
        _, _, path = build_path("A", "B", attrs=Attrs(qos="rt"))
        for stage in path.stages:
            assert stage.established_with["qos"] == "rt"

    def test_delete_runs_destroy_and_clears_queues(self):
        _, _, path = build_path("A", "B")
        path.deliver(Msg(), FWD)  # leaves one message on the output queue
        path_delete(path)
        assert all(stage.destroyed for stage in path.stages)
        assert all(q.is_empty() for q in path.q)
        assert path.state == "deleted"

    def test_delete_is_idempotent(self):
        _, _, path = build_path("A", "B")
        path_delete(path)
        path_delete(path)

    def test_deliver_after_delete_rejected(self):
        _, _, path = build_path("A", "B")
        path_delete(path)
        with pytest.raises(PathStateError):
            path.deliver(Msg(), FWD)


class TestAccounting:
    def test_modeled_size_matches_paper_scale(self):
        """Section 3.6: path object ~300 bytes, stages ~150 bytes each."""
        assert 250 <= Path.MODELED_BYTES <= 350
        _, _, path = build_path("A", "B", "C")
        per_stage = (path.modeled_size() - Path.MODELED_BYTES) / 3
        assert 100 <= per_stage <= 200

    def test_cycle_charging(self):
        path = Path()
        path.stats.charge_cycles(100)
        path.stats.charge_cycles(50)
        assert path.stats.cycles == 150

    def test_memory_accounting_watermark(self):
        path = Path()
        path.stats.charge_memory(1000)
        path.stats.charge_memory(500)
        path.stats.release_memory(1200)
        assert path.stats.mem_bytes == 300
        assert path.stats.mem_high_watermark == 1500

    def test_memory_release_floors_at_zero(self):
        path = Path()
        path.stats.charge_memory(10)
        path.stats.release_memory(100)
        assert path.stats.mem_bytes == 0

    def test_proc_time_average_converges(self):
        path = Path()
        path.stats.record_proc_time(100.0)
        assert path.stats.avg_proc_time_us == 100.0
        for _ in range(200):
            path.stats.record_proc_time(50.0)
        assert abs(path.stats.avg_proc_time_us - 50.0) < 1.0


class TestQueueRoles:
    def test_input_output_mapping(self):
        path = Path()
        assert path.input_queue(FWD) is path.q[0]
        assert path.output_queue(FWD) is path.q[1]
        assert path.input_queue(BWD) is path.q[2]
        assert path.output_queue(BWD) is path.q[3]

    def test_queue_names_carry_pid_and_role(self):
        path = Path()
        assert f"path{path.pid}.fwd_in" == path.q[0].name
