"""Unit tests for the router graph: edges, init order, cycle rejection."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ConfigurationError,
    CyclicDependencyError,
    Router,
    RouterGraph,
    RouterRegistry,
    build_graph,
    register_router,
)
from ..helpers import ChainRouter


class Plain(Router):
    SERVICES = ("up:net", "down:net")  # no init-order markers


class Ordered(Router):
    SERVICES = ("up:net", "<down:net")


class TestGraphConstruction:
    def test_add_and_lookup(self):
        graph = RouterGraph()
        router = graph.add(Plain("A"))
        assert graph.router("A") is router

    def test_duplicate_names_rejected(self):
        graph = RouterGraph()
        graph.add(Plain("A"))
        with pytest.raises(ConfigurationError, match="duplicate"):
            graph.add(Plain("A"))

    def test_unknown_router_lookup(self):
        with pytest.raises(ConfigurationError, match="no router"):
            RouterGraph().router("A")

    def test_connect_by_dotted_names(self):
        graph = RouterGraph()
        graph.add(Plain("A"))
        graph.add(Plain("B"))
        graph.connect("A.down", "B.up")
        assert graph.edges() == [("A", "down", "B", "up")]

    def test_connect_requires_dotted_form(self):
        graph = RouterGraph()
        graph.add(Plain("A"))
        with pytest.raises(ConfigurationError, match="Router.service"):
            graph.connect("A", "A.up")

    def test_no_changes_after_boot(self):
        graph = RouterGraph()
        graph.add(Plain("A"))
        graph.boot()
        with pytest.raises(ConfigurationError, match="build time"):
            graph.add(Plain("B"))


class TestInitOrder:
    def build_stack(self, *names):
        """names[0] on top; each .down connects to the next one's .up."""
        graph = RouterGraph()
        for name in names:
            graph.add(Ordered(name))
        for upper, lower in zip(names, names[1:]):
            graph.connect(f"{upper}.down", f"{lower}.up")
        return graph

    def test_lower_layers_initialize_first(self):
        graph = self.build_stack("UDP", "IP", "ETH")
        order = [r.name for r in graph.init_order()]
        assert order.index("ETH") < order.index("IP") < order.index("UDP")

    def test_boot_runs_init_in_order(self):
        graph = RouterGraph()
        for name in ("A", "B", "C"):
            graph.add(ChainRouter(name))
        graph.connect("A.down", "B.up")
        graph.connect("B.down", "C.up")
        graph.boot()
        seqs = {name: graph.router(name).init_seq for name in "ABC"}
        assert seqs["C"] < seqs["B"] < seqs["A"]
        assert all(graph.router(n).init_count == 1 for n in "ABC")

    def test_diamond_dependency(self):
        # UDP and TCP both over IP over ETH: ETH first, IP second.
        graph = RouterGraph()
        for name in ("UDP", "TCP", "IP", "ETH"):
            graph.add(Ordered(name))
        graph.connect("UDP.down", "IP.up")
        graph.connect("TCP.down", "IP.up")
        graph.connect("IP.down", "ETH.up")
        order = [r.name for r in graph.init_order()]
        assert order.index("ETH") == 0
        assert order.index("IP") == 1

    def test_unmarked_edges_impose_no_order(self):
        graph = RouterGraph()
        graph.add(Plain("A"))
        graph.add(Plain("B"))
        graph.connect("A.down", "B.up")
        deps = graph.init_dependencies()
        assert deps == {"A": set(), "B": set()}

    def test_order_is_deterministic(self):
        graph1 = self.build_stack("A", "B", "C")
        graph2 = self.build_stack("A", "B", "C")
        assert [r.name for r in graph1.init_order()] == \
               [r.name for r in graph2.init_order()]


class TestCyclicDependencies:
    def test_cycle_rejected_with_named_cycle(self):
        graph = RouterGraph()
        graph.add(Ordered("A"))
        graph.add(Ordered("B"))
        # A waits for B (A.down marked), B waits for A (B.down marked).
        graph.connect("A.down", "B.up")
        graph.connect("B.down", "A.up")
        with pytest.raises(CyclicDependencyError) as excinfo:
            graph.boot()
        assert set(excinfo.value.cycle) == {"A", "B"}

    def test_cyclic_data_flow_without_markers_is_legal(self):
        """The paper admits cyclic dependencies as long as a partial
        initialization order exists."""
        graph = RouterGraph()
        graph.add(Plain("A"))
        graph.add(Plain("B"))
        graph.connect("A.down", "B.up")
        graph.connect("B.down", "A.up")
        graph.boot()  # must not raise

    def test_three_node_cycle(self):
        graph = RouterGraph()
        for name in ("A", "B", "C"):
            graph.add(Ordered(name))
        graph.connect("A.down", "B.up")
        graph.connect("B.down", "C.up")
        graph.connect("C.down", "A.up")
        with pytest.raises(CyclicDependencyError):
            graph.init_order()

    def test_cycle_plus_independent_routers(self):
        graph = RouterGraph()
        for name in ("A", "B"):
            graph.add(Ordered(name))
        graph.add(Plain("LONER"))
        graph.connect("A.down", "B.up")
        graph.connect("B.down", "A.up")
        with pytest.raises(CyclicDependencyError) as excinfo:
            graph.init_order()
        assert "LONER" not in excinfo.value.cycle


@register_router("GraphTestRouter")
class GraphTestRouter(Router):
    SERVICES = ("up:net", "<down:net")

    def __init__(self, name, mtu=1500):
        super().__init__(name)
        self.mtu = mtu


class TestBuildFromSpec:
    SPEC = """
    router TOP { class = GraphTestRouter; service = {up:net, <down:net}; }
    router BOT { class = GraphTestRouter; params = {mtu: 9000}; }
    connect TOP.down BOT.up;
    """

    def test_builds_and_boots(self):
        graph = build_graph(self.SPEC)
        assert graph.booted
        assert graph.router("BOT").mtu == 9000
        assert graph.router("TOP").mtu == 1500

    def test_overrides_beat_spec_params(self):
        graph = build_graph(self.SPEC, overrides={"BOT": {"mtu": 576}})
        assert graph.router("BOT").mtu == 576

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError, match="no registered router"):
            build_graph("router X { class = Missing; }")

    def test_spec_service_mismatch_rejected(self):
        bad = "router A { class = GraphTestRouter; service = {sideways:net}; }"
        with pytest.raises(ConfigurationError, match="does not implement"):
            build_graph(bad)

    def test_spec_service_type_mismatch_rejected(self):
        bad = "router A { class = GraphTestRouter; service = {up:nsClient}; }"
        with pytest.raises(ConfigurationError, match="type"):
            build_graph(bad)

    def test_registry_lookup(self):
        assert RouterRegistry.lookup("GraphTestRouter") is GraphTestRouter

    def test_to_dot_mentions_every_router(self):
        graph = build_graph(self.SPEC, boot=False)
        dot = graph.to_dot()
        assert '"TOP"' in dot and '"BOT"' in dot


# -- property: init order is always a valid topological order -----------------

@given(st.integers(min_value=2, max_value=8), st.data())
def test_init_order_respects_all_dependencies(n, data):
    """Random DAG of Ordered routers: every marked dependency must be
    initialized earlier."""
    names = [f"R{i}" for i in range(n)]
    graph = RouterGraph()
    for name in names:
        graph.add(Ordered(name))
    # Edges only from lower index (waits) to higher index (provider):
    # guarantees acyclicity, random shape.
    edges = []
    for i in range(n - 1):
        extra = data.draw(st.lists(
            st.integers(min_value=i + 1, max_value=n - 1),
            max_size=2, unique=True))
        for j in extra:
            edges.append((names[i], names[j]))
    for waiter, provider in edges:
        graph.connect(f"{waiter}.down", f"{provider}.up")
    order = [r.name for r in graph.init_order()]
    for waiter, provider in edges:
        assert order.index(provider) < order.index(waiter)
