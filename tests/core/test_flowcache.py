"""Tests for the demux flow cache: LRU mechanics, strict invalidation,
and the classify() integration (cache consulted before the chain)."""

import pytest

from repro.core import (
    ClassifierStats,
    DELETED,
    FlowCache,
    Msg,
    Path,
    classify,
    flow_key_ipv4_udp,
)
from repro.experiments.micro import Fig7Stack


def established_path() -> Path:
    path = Path()
    path._establish()
    return path


def first_byte_key(msg):
    """Toy key for LRU mechanics: the message's first byte, or None for
    empty (ineligible) messages."""
    return msg[:1] if msg else None


def cache_of(capacity=4):
    return FlowCache(capacity=capacity, key_of=first_byte_key)


class TestLookupInsert:
    def test_miss_then_insert_then_hit(self):
        cache = cache_of()
        path = established_path()
        assert cache.lookup(b"a") is None
        assert cache.misses == 1
        assert cache.insert(b"a", path)
        assert cache.lookup(b"a") is path
        assert cache.hits == 1
        assert len(cache) == 1

    def test_ineligible_messages_bypass_entirely(self):
        cache = cache_of()
        path = established_path()
        assert cache.lookup(b"") is None
        assert not cache.insert(b"", path)
        # An ineligible message is not even a miss: the cache was never
        # consulted, so counters and contents stay untouched.
        assert cache.misses == 0
        assert len(cache) == 0

    def test_only_established_paths_admitted(self):
        cache = cache_of()
        creating = Path()  # state == CREATING
        assert not cache.insert(b"a", creating)
        assert len(cache) == 0

    def test_reinsert_same_key_different_path_replaces(self):
        cache = cache_of()
        old, new = established_path(), established_path()
        cache.insert(b"a", old)
        cache.insert(b"a", new)
        assert cache.lookup(b"a") is new
        old.delete()  # invalidating the old path must not remove "a"
        assert cache.lookup(b"a") is new


class TestLRU:
    def test_capacity_bound_evicts_least_recently_used(self):
        cache = cache_of(capacity=2)
        paths = {tag: established_path() for tag in "abc"}
        cache.insert(b"a", paths["a"])
        cache.insert(b"b", paths["b"])
        cache.insert(b"c", paths["c"])
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup(b"a") is None  # the oldest went first
        assert cache.lookup(b"b") is paths["b"]
        assert cache.lookup(b"c") is paths["c"]

    def test_lookup_refreshes_recency(self):
        cache = cache_of(capacity=2)
        paths = {tag: established_path() for tag in "abc"}
        cache.insert(b"a", paths["a"])
        cache.insert(b"b", paths["b"])
        assert cache.lookup(b"a") is paths["a"]  # refresh: b is now LRU
        cache.insert(b"c", paths["c"])
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"a") is paths["a"]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlowCache(capacity=0)


class TestInvalidation:
    def test_path_delete_purges_synchronously(self):
        cache = cache_of()
        path = established_path()
        cache.insert(b"a", path)
        path.delete()
        assert cache.lookup(b"a") is None
        assert cache.invalidations == 1
        # The purge happened through delete(), not through a stale hit.
        assert cache.stale_hits == 0

    def test_invalidate_path_removes_every_key(self):
        cache = cache_of()
        path = established_path()
        other = established_path()
        cache.insert(b"a", path)
        cache.insert(b"b", path)
        cache.insert(b"c", other)
        assert cache.invalidate_path(path) == 2
        assert cache.lookup(b"a") is None
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"c") is other

    def test_stale_entry_evicted_on_lookup(self):
        """Defense in depth: a path deleted behind the cache's back (the
        registration bypassed somehow) is still never handed out."""
        cache = cache_of()
        path = established_path()
        cache.insert(b"a", path)
        path.state = DELETED  # bypass delete() and its purge
        assert cache.lookup(b"a") is None
        assert cache.stale_hits == 1
        assert len(cache) == 0  # evicted on the spot

    def test_clear_drops_everything(self):
        cache = cache_of()
        for tag in (b"a", b"b"):
            cache.insert(tag, established_path())
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.lookup(b"a") is None


class TestGroupInvalidation:
    """Bulk invalidation by path-group id — the multipath re-spread and
    failover primitive."""

    def grouped_paths(self, cache, count=2, keys_per_path=2):
        from repro.multipath import PathGroup

        group = PathGroup("round_robin")
        members = [group.add(established_path()) for _ in range(count)]
        tag = ord("a")
        for member in members:
            for _ in range(keys_per_path):
                cache.insert(bytes([tag]), member)
                tag += 1
        return group, members

    def test_invalidate_group_drops_every_members_keys(self):
        cache = cache_of(capacity=8)
        group, members = self.grouped_paths(cache)
        other = established_path()
        cache.insert(b"z", other)
        assert cache.invalidate_group(group.gid) == 4
        assert len(cache) == 1
        assert cache.lookup(b"z") is other
        assert cache.invalidations == 4

    def test_unknown_gid_is_a_noop(self):
        cache = cache_of()
        cache.insert(b"a", established_path())
        assert cache.invalidate_group(999_999) == 0
        assert len(cache) == 1

    def test_invalidate_group_is_idempotent(self):
        cache = cache_of(capacity=8)
        group, _members = self.grouped_paths(cache)
        assert cache.invalidate_group(group.gid) == 4
        assert cache.invalidate_group(group.gid) == 0

    def test_member_delete_unindexes_it_from_the_group(self):
        cache = cache_of(capacity=8)
        group, members = self.grouped_paths(cache)
        members[0].delete()  # purges its own keys synchronously
        # Only the survivor's keys remain for the bulk drop.
        assert cache.invalidate_group(group.gid) == 2
        assert len(cache) == 0

    def test_clear_also_resets_group_index(self):
        cache = cache_of(capacity=8)
        group, _members = self.grouped_paths(cache)
        cache.clear()
        assert cache.invalidate_group(group.gid) == 0

    def test_stale_grouped_entry_counts_a_stale_hit(self):
        """A grouped member deleted behind the cache's back must be
        caught by the lookup-time liveness check, counted, and evicted —
        same defense-in-depth as ungrouped paths."""
        cache = cache_of(capacity=8)
        group, members = self.grouped_paths(cache, count=1, keys_per_path=1)
        members[0].state = DELETED  # bypass delete() and its purge
        assert cache.lookup(b"a") is None
        assert cache.stale_hits == 1
        assert len(cache) == 0


class TestAnnotate:
    def test_annotate_runs_on_hits_only(self):
        seen = []
        cache = FlowCache(capacity=4, key_of=first_byte_key,
                          annotate=lambda msg, key: seen.append(key))
        path = established_path()
        cache.lookup(b"a")  # miss: no annotation
        cache.insert(b"a", path)
        cache.lookup(b"a")  # hit
        assert seen == [b"a"]


class TestFlowKey:
    def setup_method(self):
        self.stack = Fig7Stack()
        self.frame = self.stack.udp_frame(6100)

    def test_udp_frame_is_keyable(self):
        assert flow_key_ipv4_udp(Msg(self.frame)) is not None

    def test_same_flow_same_key_despite_payload(self):
        a = flow_key_ipv4_udp(Msg(self.stack.udp_frame(6100, b"x" * 10)))
        b = flow_key_ipv4_udp(Msg(self.stack.udp_frame(6100, b"y" * 90)))
        assert a == b

    def test_different_port_different_key(self):
        a = flow_key_ipv4_udp(Msg(self.stack.udp_frame(6100)))
        b = flow_key_ipv4_udp(Msg(self.stack.udp_frame(6200)))
        assert a != b

    def test_non_ipv4_is_ineligible(self):
        frame = bytearray(self.frame)
        frame[12:14] = b"\x08\x06"  # ARP ethertype
        assert flow_key_ipv4_udp(Msg(bytes(frame))) is None

    def test_non_udp_is_ineligible(self):
        frame = bytearray(self.frame)
        frame[23] = 6  # TCP
        assert flow_key_ipv4_udp(Msg(bytes(frame))) is None

    def test_fragment_is_ineligible(self):
        frame = bytearray(self.frame)
        frame[20] |= 0x20  # MF flag
        assert flow_key_ipv4_udp(Msg(bytes(frame))) is None

    def test_runt_is_ineligible(self):
        assert flow_key_ipv4_udp(Msg(self.frame[:20])) is None


class TestClassifyIntegration:
    def setup_method(self):
        self.stack = Fig7Stack()
        self.path = self.stack.create_udp_path(local_port=6100)
        self.cache = FlowCache(capacity=8)
        self.stats = ClassifierStats()

    def classify_frame(self, dport=6100):
        msg = Msg(self.stack.udp_frame(dport))
        return classify(self.stack.eth, msg, stats=self.stats,
                        cache=self.cache)

    def test_first_packet_populates_then_hits(self):
        assert self.classify_frame() is self.path
        assert self.stats.cache_hits == 0
        refinements_after_cold = self.stats.refinements
        assert self.classify_frame() is self.path
        assert self.stats.cache_hits == 1
        # The warm lookup never touched the refinement chain.
        assert self.stats.refinements == refinements_after_cold
        assert self.stats.classified == 2

    def test_deleted_path_never_served_from_cache(self):
        assert self.classify_frame() is self.path
        self.path.delete()
        result = self.classify_frame()
        assert result is not self.path
        assert self.cache.hits == 0
