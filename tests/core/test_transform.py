"""Tests for guard/transformation rules and the fixpoint application."""

import pytest

from repro.core import (
    Attrs,
    TransformRegistry,
    TransformRule,
    all_of,
    has_attr,
    path_create,
    traverses,
)
from ..helpers import make_chain


def fresh_path(*names, attrs=None):
    _, routers = make_chain(*names)
    return path_create(routers[0], attrs or Attrs())


class TestGuards:
    def test_traverses_consecutive(self):
        path = fresh_path("UDP", "IP", "ETH")
        assert traverses("UDP", "IP")(path)
        assert traverses("IP", "ETH")(path)
        assert traverses("UDP", "IP", "ETH")(path)

    def test_traverses_rejects_gaps_and_order(self):
        path = fresh_path("UDP", "IP", "ETH")
        assert not traverses("UDP", "ETH")(path)   # not consecutive
        assert not traverses("ETH", "IP")(path)    # wrong order
        assert not traverses("TCP")(path)          # absent

    def test_traverses_single_router(self):
        path = fresh_path("UDP", "IP")
        assert traverses("IP")(path)

    def test_has_attr(self):
        path = fresh_path("A", attrs=Attrs(qos="rt"))
        assert has_attr("qos")(path)
        assert has_attr("qos", "rt")(path)
        assert not has_attr("qos", "bulk")(path)
        assert not has_attr("missing")(path)

    def test_all_of(self):
        path = fresh_path("A", "B", attrs=Attrs(qos="rt"))
        assert all_of(traverses("A", "B"), has_attr("qos"))(path)
        assert not all_of(traverses("A", "B"), has_attr("nope"))(path)


class TestRuleApplication:
    def test_rule_applies_once_by_default(self):
        count = []
        rule = TransformRule("probe", guard=lambda p: True,
                             transformation=lambda p: count.append(1))
        registry = TransformRegistry([rule])
        path = fresh_path("A")
        applied = registry.apply_all(path)
        assert applied == ["probe"]
        assert count == [1]
        # Re-running finds the guard false (already applied).
        assert registry.apply_all(path) == []

    def test_rules_cascade(self):
        """One rule's transformation can enable another's guard."""
        registry = TransformRegistry()

        @registry.rule("first", guard=lambda p: True)
        def first(path):
            path.attrs["stage1"] = True

        @registry.rule("second", guard=has_attr("stage1"))
        def second(path):
            path.attrs["stage2"] = True

        path = fresh_path("A")
        assert registry.apply_all(path) == ["first", "second"]
        assert path.attrs["stage2"]

    def test_rule_order_determines_application_order(self):
        order = []
        registry = TransformRegistry([
            TransformRule("b", lambda p: True, lambda p: order.append("b")),
            TransformRule("a", lambda p: True, lambda p: order.append("a")),
        ])
        registry.apply_all(fresh_path("A"))
        assert order == ["b", "a"]

    def test_guard_false_rule_skipped(self):
        registry = TransformRegistry()

        @registry.rule("never", guard=lambda p: False)
        def never(path):
            raise AssertionError("must not run")

        assert registry.apply_all(fresh_path("A")) == []

    def test_non_quiescing_ruleset_fails_loudly(self):
        rule = TransformRule("spin", guard=lambda p: True,
                             transformation=lambda p: None, once=False)
        registry = TransformRegistry([rule])
        with pytest.raises(RuntimeError, match="did not quiesce"):
            registry.apply_all(fresh_path("A"))

    def test_repeating_rule_that_quiesces(self):
        """once=False rules run until their own guard goes false."""
        registry = TransformRegistry()
        counter = {"n": 3}

        def guard(path):
            return counter["n"] > 0

        def transformation(path):
            counter["n"] -= 1

        registry.add(TransformRule("drain", guard, transformation, once=False))
        assert registry.apply_all(fresh_path("A")) == ["drain"] * 3


class TestSemanticTransparency:
    def test_deliver_pointer_rewrite(self):
        """The paper's canonical transformation: overwrite interface
        function pointers with optimized code; semantics unchanged."""
        registry = TransformRegistry()

        @registry.rule("fuse-A-B", guard=traverses("A", "B"))
        def fuse(path):
            stage_a = path.stage_of("A")
            stage_b = path.stage_of("B")
            original_b = stage_b.deliver_fn(0)

            def fused(iface, msg, direction, **kwargs):
                msg.meta.setdefault("trace", []).append(("A+B-fused", direction))
                # Skip B's separate processing: jump straight past it.
                return original_b(stage_b.end[0], msg, direction, **kwargs)

            stage_a.set_deliver(0, fused)

        from repro.core import Msg, FWD
        path = fresh_path("A", "B", "C")
        registry.apply_all(path)
        msg = Msg(b"x")
        path.deliver(msg, FWD)
        assert msg.meta["trace"][0] == ("A+B-fused", FWD)
        # Message still reaches the end of the path.
        assert path.output_queue(FWD).dequeue() is msg
