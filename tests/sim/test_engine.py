"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(30, fired.append, "c")
        engine.schedule(10, fired.append, "a")
        engine.schedule(20, fired.append, "b")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        engine = Engine()
        fired = []
        for tag in "abc":
            engine.schedule(5, fired.append, tag)
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(12.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.5]
        assert engine.now == 12.5

    def test_schedule_in_past_rejected(self):
        engine = Engine()
        engine.run_until(100)
        with pytest.raises(ValueError):
            engine.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_at(50, lambda: None)

    def test_events_scheduled_during_run(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(10, chain, n + 1)

        engine.schedule(0, chain, 1)
        engine.run()
        assert fired == [1, 2, 3]
        assert engine.now == 20

    def test_cancelled_events_do_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(10, fired.append, "x")
        engine.schedule(5, fired.append, "y")
        event.cancel()
        engine.run()
        assert fired == ["y"]


class TestRunModes:
    def test_run_until_stops_at_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule(10, fired.append, "early")
        engine.schedule(30, fired.append, "late")
        engine.run_until(20)
        assert fired == ["early"]
        assert engine.now == 20
        engine.run_until(40)
        assert fired == ["early", "late"]

    def test_run_until_inclusive_of_boundary_events(self):
        engine = Engine()
        fired = []
        engine.schedule(20, fired.append, "edge")
        engine.run_until(20)
        assert fired == ["edge"]

    def test_run_max_events(self):
        engine = Engine()
        for i in range(10):
            engine.schedule(i, lambda: None)
        assert engine.run(max_events=4) == 4
        assert engine.pending() == 6

    def test_step_returns_false_when_drained(self):
        engine = Engine()
        assert not engine.step()
        engine.schedule(1, lambda: None)
        assert engine.step()
        assert not engine.step()

    def test_peek_next_time_skips_cancelled(self):
        engine = Engine()
        event = engine.schedule(5, lambda: None)
        engine.schedule(9, lambda: None)
        event.cancel()
        assert engine.peek_next_time() == 9

    def test_pending_counts_live_events(self):
        engine = Engine()
        keep = engine.schedule(1, lambda: None)
        drop = engine.schedule(2, lambda: None)
        drop.cancel()
        assert engine.pending() == 1
        assert keep is not None


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=40))
def test_events_always_fire_in_nondecreasing_time(delays):
    engine = Engine()
    times = []
    for delay in delays:
        engine.schedule(delay, lambda: times.append(engine.now))
    engine.run()
    assert times == sorted(times)
    assert len(times) == len(delays)
