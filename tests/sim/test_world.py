"""SimWorld convenience-layer tests."""

import pytest

from repro.sim import Compute, SimWorld, Sleep


class TestSimWorld:
    def test_default_policies_registered(self):
        world = SimWorld()
        assert world.scheduler.policy("rr") is not None
        assert world.scheduler.policy("edf") is not None

    def test_run_for_advances_clock(self):
        world = SimWorld()
        world.run_for(1234.5)
        assert world.now == 1234.5
        world.run_for(100)
        assert world.now == 1334.5

    def test_seeded_rng_is_deterministic(self):
        a = SimWorld(seed=77).rng.random(5)
        b = SimWorld(seed=77).rng.random(5)
        assert (a == b).all()

    def test_spawn_runs_on_default_policy(self):
        world = SimWorld()
        done = []

        def body():
            yield Compute(10)
            done.append(world.now)

        world.spawn(body())
        world.run_until_idle()
        assert done == [10.0]

    def test_run_until_idle_honors_event_cap(self):
        world = SimWorld()

        def forever():
            while True:
                yield Sleep(1)

        world.spawn(forever())
        processed = world.run_until_idle(max_events=50)
        assert processed == 50

    def test_unknown_policy_rejected(self):
        world = SimWorld()
        with pytest.raises(KeyError):
            world.spawn(iter(()), policy="gang")

    def test_cpu_clock_matches_paper_default(self):
        assert SimWorld().cpu.mhz == 300.0

    def test_arbitrary_number_of_policies(self):
        """'Scout supports an arbitrary number of scheduling policies, and
        allocates a percentage of CPU time to each.'"""
        from repro.sim import FixedPriorityRR

        world = SimWorld()
        world.scheduler.add_policy("batch", FixedPriorityRR(levels=2),
                                   share=0.25)
        done = []

        def body():
            yield Compute(5)
            done.append("batch-ran")

        world.spawn(body(), policy="batch")
        world.run_until_idle()
        assert done == ["batch-ran"]

    def test_policy_share_must_be_positive(self):
        from repro.sim import FixedPriorityRR

        world = SimWorld()
        with pytest.raises(ValueError):
            world.scheduler.add_policy("bad", FixedPriorityRR(), share=0)
