"""Tests for threads, scheduling policies, and blocking queue operations."""

import pytest

from repro.core import PathQueue, Path
from repro.sim import (
    Compute,
    Dequeue,
    DONE,
    EDF,
    Enqueue,
    FixedPriorityRR,
    SimWorld,
    Sleep,
    WaitSpace,
    YIELD,
)


def world():
    return SimWorld(seed=1)


class TestThreadBasics:
    def test_thread_runs_to_completion(self):
        w = world()
        log = []

        def body():
            log.append(("start", w.now))
            yield Compute(100)
            log.append(("end", w.now))

        thread = w.spawn(body(), name="t")
        w.run_until_idle()
        assert log == [("start", 0.0), ("end", 100.0)]
        assert thread.state == DONE
        assert thread.cpu_us == 100.0

    def test_nonpreemptive_thread_keeps_cpu_across_computes(self):
        w = world()
        log = []

        def hog():
            yield Compute(50)
            yield Compute(50)
            log.append(("hog-done", w.now))

        def other():
            yield Compute(10)
            log.append(("other-done", w.now))

        w.spawn(hog(), name="hog")
        w.spawn(other(), name="other")
        w.run_until_idle()
        # hog never yields, so it finishes both computes before other runs.
        assert log == [("hog-done", 100.0), ("other-done", 110.0)]

    def test_yield_gives_peers_a_turn(self):
        w = world()
        log = []

        def polite(tag):
            yield Compute(10)
            log.append((tag, 1))
            yield YIELD
            yield Compute(10)
            log.append((tag, 2))

        w.spawn(polite("a"))
        w.spawn(polite("b"))
        w.run_until_idle()
        assert log == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_sleep_blocks_for_duration(self):
        w = world()
        log = []

        def sleeper():
            yield Sleep(500)
            log.append(w.now)

        w.spawn(sleeper())
        w.run_until_idle()
        assert log == [500.0]

    def test_sleeping_thread_frees_the_cpu(self):
        w = world()
        log = []

        def sleeper():
            yield Sleep(100)
            log.append(("sleeper", w.now))

        def worker():
            yield Compute(30)
            log.append(("worker", w.now))

        w.spawn(sleeper())
        w.spawn(worker())
        w.run_until_idle()
        assert log == [("worker", 30.0), ("sleeper", 100.0)]


class TestQueueBlocking:
    def test_dequeue_blocks_until_item_arrives(self):
        w = world()
        q = PathQueue(maxlen=4, name="q")
        log = []

        def consumer():
            item = yield Dequeue(q)
            log.append((item, w.now))

        w.spawn(consumer())
        w.engine.schedule(200, q.enqueue, "hello")
        w.run_until_idle()
        assert log == [("hello", 200.0)]

    def test_dequeue_immediate_when_item_ready(self):
        w = world()
        q = PathQueue(maxlen=4)
        q.enqueue("ready")
        log = []

        def consumer():
            item = yield Dequeue(q)
            log.append((item, w.now))

        w.spawn(consumer())
        w.run_until_idle()
        assert log == [("ready", 0.0)]

    def test_enqueue_blocks_when_full(self):
        w = world()
        q = PathQueue(maxlen=1, name="q")
        q.enqueue("occupying")
        log = []

        def producer():
            yield Enqueue(q, "second")
            log.append(("enqueued", w.now))

        w.spawn(producer())
        w.engine.schedule(300, q.dequeue)
        w.run_until_idle()
        assert log == [("enqueued", 300.0)]
        assert len(q) == 1

    def test_producer_consumer_pipeline(self):
        w = world()
        q = PathQueue(maxlen=2)
        received = []

        def producer():
            for i in range(5):
                yield Compute(10)
                yield Enqueue(q, i)

        def consumer():
            for _ in range(5):
                item = yield Dequeue(q)
                yield Compute(30)
                received.append((item, w.now))

        w.spawn(producer(), name="prod")
        w.spawn(consumer(), name="cons")
        w.run_until_idle()
        assert [item for item, _ in received] == [0, 1, 2, 3, 4]
        # The consumer is the bottleneck at 30us/item.  The ideal pipeline
        # would finish at 160us, but non-preemptive scheduling adds stalls:
        # the consumer drains in bursts while the producer waits blocked on
        # the full 2-slot queue.  The exact (deterministic) finish is 200us.
        assert received[-1][1] == pytest.approx(200.0)

    def test_wait_space_does_not_consume_slot(self):
        w = world()
        q = PathQueue(maxlen=1)
        q.enqueue("full")
        log = []

        def waiter():
            yield WaitSpace(q)
            log.append(("space", len(q), w.now))

        w.spawn(waiter())
        w.engine.schedule(50, q.dequeue)
        w.run_until_idle()
        assert log == [("space", 0, 50.0)]

    def test_two_blocked_consumers_wake_in_order(self):
        w = world()
        q = PathQueue(maxlen=4)
        log = []

        def consumer(tag):
            item = yield Dequeue(q)
            log.append((tag, item))

        w.spawn(consumer("first"))
        w.spawn(consumer("second"))
        w.engine.schedule(10, q.enqueue, "x")
        w.engine.schedule(20, q.enqueue, "y")
        w.run_until_idle()
        assert log == [("first", "x"), ("second", "y")]


class TestFixedPriorityRR:
    def test_higher_priority_runs_first(self):
        w = world()
        log = []

        def worker(tag):
            yield Compute(10)
            log.append(tag)

        w.spawn(worker("low"), priority=5)
        w.spawn(worker("high"), priority=0)
        w.spawn(worker("mid"), priority=2)
        w.run_until_idle()
        assert log == ["high", "mid", "low"]

    def test_fifo_within_priority_level(self):
        w = world()
        log = []

        def worker(tag):
            yield Compute(10)
            log.append(tag)

        for tag in ("a", "b", "c"):
            w.spawn(worker(tag), priority=3)
        w.run_until_idle()
        assert log == ["a", "b", "c"]

    def test_priority_clamping(self):
        policy = FixedPriorityRR(levels=4)
        from repro.sim.threads import SimThread
        thread = SimThread(iter(()), priority=99)
        policy.add(thread)
        assert policy.pop() is thread

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            FixedPriorityRR(levels=0)


class TestEDFPolicy:
    def test_earliest_deadline_runs_first(self):
        w = world()
        log = []

        def worker(tag):
            yield Compute(10)
            log.append(tag)

        t_late = w.spawn(worker("late"), policy="edf")
        t_late.deadline = 1000.0
        t_soon = w.spawn(worker("soon"), policy="edf")
        t_soon.deadline = 100.0
        # Deadlines were assigned after spawn enqueued them; re-sorting
        # happens on wakeup, so use a fresh pair enqueued with deadlines.
        w.run_until_idle()
        # spawn() enqueued with deadline inf for both; FIFO applies.
        assert set(log) == {"late", "soon"}

    def test_edf_ordering_via_wakeup(self):
        """The path wakeup callback sets deadlines before enqueue — the
        mechanism Scout actually uses."""
        w = world()
        log = []
        q = PathQueue(maxlen=8)

        def make(tag, deadline):
            path = Path()
            path.wakeup = lambda p, t: setattr(t, "deadline", deadline)

            def body():
                yield Dequeue(q)
                yield Compute(10)
                log.append(tag)

            return w.spawn(body(), policy="edf", path=path)

        make("relaxed", 5000.0)
        make("urgent", 50.0)
        make("middling", 500.0)
        # All three block on the empty queue; release three items at once.
        for _ in range(3):
            w.engine.schedule(10, q.enqueue, "wake")
        w.run_until_idle()
        assert log == ["urgent", "middling", "relaxed"]

    def test_edf_pop_empty(self):
        assert EDF().pop() is None


class TestPolicyShares:
    def test_shares_split_cpu_between_policies(self):
        """With a 3:1 share, the RR policy gets ~75% of the CPU when both
        policies are saturated."""
        w = SimWorld(seed=0, rr_share=3.0, edf_share=1.0)
        done = {"rr": 0.0, "edf": 0.0}

        def spinner(policy):
            for _ in range(1000):
                yield Compute(10)
                done[policy] = w.now
                yield YIELD

        w.spawn(spinner("rr"), policy="rr")
        w.spawn(spinner("edf"), policy="edf")
        w.run_until(4000)
        slots = w.scheduler._slots
        rr_used = slots["rr"].vtime * 3.0
        edf_used = slots["edf"].vtime * 1.0
        assert rr_used / (rr_used + edf_used) == pytest.approx(0.75, abs=0.05)


class TestPathIntegration:
    def test_compute_charges_path_cycles(self):
        w = world()
        path = Path()

        def body():
            yield Compute(10)

        w.spawn(body(), path=path)
        w.run_until_idle()
        assert path.stats.cycles == pytest.approx(10 * 300)

    def test_wakeup_callback_invoked_on_every_wake(self):
        w = world()
        path = Path()
        wakes = []
        path.wakeup = lambda p, t: wakes.append(w.now)
        q = PathQueue()

        def body():
            yield Dequeue(q)

        w.spawn(body(), path=path)
        w.engine.schedule(100, q.enqueue, "x")
        w.run_until_idle()
        assert wakes == [0.0, 100.0]  # spawn wake + queue wake


class TestDrainWakeup:
    """Regression tests for the lost wake-up in ``_queue_drained``.

    WaitSpace watchers and Enqueue waiters share one waiter list per
    queue.  Waking exactly one waiter per drain loses a wake-up whenever
    a watcher sits ahead of an enqueuer: the watcher absorbs the only
    wake (consuming no slot) and the enqueuer blocks forever.
    """

    def test_watcher_ahead_of_enqueuer_does_not_eat_the_wake(self):
        w = world()
        q = PathQueue(maxlen=1, name="q")
        q.enqueue("occupying")
        log = []

        def watcher():
            yield WaitSpace(q)
            log.append(("space", w.now))

        def producer():
            yield Enqueue(q, "item")
            log.append(("enqueued", w.now))

        w.spawn(watcher(), name="watcher")  # blocks first: head of line
        producer_thread = w.spawn(producer(), name="producer")
        w.engine.schedule(100, q.dequeue)
        w.run_until_idle()
        assert ("space", 100.0) in log
        assert ("enqueued", 100.0) in log
        assert producer_thread.state == DONE
        assert len(q) == 1

    def test_single_drain_wakes_only_as_many_enqueuers_as_slots(self):
        """One freed slot must not stampede every blocked producer: the
        first (FIFO) enqueuer gets the slot, the rest stay blocked until
        further drains."""
        w = world()
        q = PathQueue(maxlen=1, name="q")
        q.enqueue("occupying")
        log = []

        def producer(tag):
            yield Enqueue(q, tag)
            log.append((tag, w.now))

        w.spawn(producer("first"))
        w.spawn(producer("second"))
        w.engine.schedule(100, q.dequeue)
        w.engine.schedule(200, q.dequeue)
        w.run_until_idle()
        assert log == [("first", 100.0), ("second", 200.0)]

    def test_many_watchers_all_wake_on_one_drain(self):
        w = world()
        q = PathQueue(maxlen=1, name="q")
        q.enqueue("occupying")
        log = []

        def watcher(tag):
            yield WaitSpace(q)
            log.append((tag, w.now))

        for tag in ("a", "b", "c"):
            w.spawn(watcher(tag))
        w.engine.schedule(50, q.dequeue)
        w.run_until_idle()
        assert sorted(log) == [("a", 50.0), ("b", 50.0), ("c", 50.0)]


class TestStaleStrideCredit:
    """Regression test for stale virtual-time credit in ``make_runnable``.

    A policy that slept while a lone thread of the other policy ran
    non-stop used to keep its stale (low) virtual time on wake-up: the
    running thread's slot has an empty ready queue, so the floor
    computation saw no competitor and skipped the catch-up, letting the
    waker monopolize the CPU until its vtime caught up from zero.
    """

    def test_waking_policy_does_not_monopolize_after_sleep(self):
        w = SimWorld(seed=0, rr_share=1.0, edf_share=1.0)

        def spin():
            while True:
                yield Compute(10)
                yield YIELD

        def nap_then_spin():
            yield Sleep(5000)
            while True:
                yield Compute(10)
                yield YIELD

        runner = w.spawn(spin(), name="runner", policy="rr")
        sleeper = w.spawn(nap_then_spin(), name="sleeper", policy="edf")
        w.run_until(10_000)
        # First half: the runner alone (~5000us).  Second half: a fair
        # 50/50 split (~2500us each).  Pre-fix the sleeper woke with
        # vtime 0 and monopolized the whole second half (~5000us).
        assert runner.cpu_us == pytest.approx(7500, abs=300)
        assert sleeper.cpu_us == pytest.approx(2500, abs=300)

    def test_share_ratio_respected_after_wake(self):
        """Same scenario with a 3:1 share: after the wake the sleeper
        (share 1) should converge to ~25% of the remaining CPU, not 100%."""
        w = SimWorld(seed=0, rr_share=3.0, edf_share=1.0)

        def spin():
            while True:
                yield Compute(10)
                yield YIELD

        def nap_then_spin():
            yield Sleep(5000)
            while True:
                yield Compute(10)
                yield YIELD

        runner = w.spawn(spin(), name="runner", policy="rr")
        sleeper = w.spawn(nap_then_spin(), name="sleeper", policy="edf")
        w.run_until(10_000)
        # Second half splits 3:1 -> runner 5000 + 3750, sleeper 1250.
        assert runner.cpu_us == pytest.approx(8750, abs=400)
        assert sleeper.cpu_us == pytest.approx(1250, abs=400)
