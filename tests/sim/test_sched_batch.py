"""Tests for the DequeueBatch scheduler op: one thread dispatch drains a
run of queued items (DESIGN.md §13)."""

import pytest

from repro.core import PathQueue
from repro.sim import Compute, DequeueBatch, Enqueue, SimWorld


def world():
    return SimWorld(seed=1)


class TestDequeueBatchOp:
    def test_validates_limit(self):
        q = PathQueue()
        with pytest.raises(ValueError):
            DequeueBatch(q, 0)
        with pytest.raises(ValueError):
            DequeueBatch(q, -3)
        assert "all" in repr(DequeueBatch(q))
        assert "4" in repr(DequeueBatch(q, 4))

    def test_returns_everything_queued(self):
        w = world()
        q = PathQueue(maxlen=8)
        for item in "abc":
            q.enqueue(item)
        got = []

        def body():
            got.append((yield DequeueBatch(q)))

        w.spawn(body(), name="drain")
        w.run_until_idle()
        assert got == [["a", "b", "c"]]
        assert q.is_empty()

    def test_limit_caps_one_wakeup(self):
        w = world()
        q = PathQueue(maxlen=8)
        for item in "abcd":
            q.enqueue(item)
        got = []

        def body():
            while True:
                got.append((yield DequeueBatch(q, 3)))
                if q.is_empty():
                    return

        w.spawn(body(), name="drain")
        w.run_until_idle()
        assert got == [["a", "b", "c"], ["d"]]

    def test_blocks_on_empty_queue_until_producer_enqueues(self):
        w = world()
        q = PathQueue(maxlen=8)
        log = []

        def consumer():
            batch = yield DequeueBatch(q)
            log.append(("woke", w.now, batch))

        def producer():
            yield Compute(40.0)
            yield Enqueue(q, "late")

        w.spawn(consumer(), name="consumer")
        w.spawn(producer(), name="producer")
        w.run_until_idle()
        assert log == [("woke", 40.0, ["late"])]

    def test_one_dispatch_per_batch(self):
        """A batched consumer wakes once for N queued items; a
        per-message consumer wakes N times."""

        def wakeups(batched):
            w = world()
            q = PathQueue(maxlen=16)
            for i in range(6):
                q.enqueue(i)
            count = [0]

            def body():
                from repro.sim import Dequeue
                while not q.is_empty():
                    count[0] += 1
                    if batched:
                        yield DequeueBatch(q)
                    else:
                        yield Dequeue(q)

            w.spawn(body(), name="c")
            w.run_until_idle()
            return count[0]

        assert wakeups(batched=True) == 1
        assert wakeups(batched=False) == 6
