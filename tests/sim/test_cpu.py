"""Unit tests for the virtual CPU and interrupt stealing."""

import pytest

from repro.sim import CPU, CPU_MHZ, Engine, cycles_to_us, us_to_cycles


def make_cpu():
    engine = Engine()
    return engine, CPU(engine)


class TestConversions:
    def test_cycles_to_us_at_300mhz(self):
        assert cycles_to_us(300) == pytest.approx(1.0)
        assert cycles_to_us(60_000) == pytest.approx(200.0)  # 200us path create

    def test_roundtrip(self):
        assert us_to_cycles(cycles_to_us(12345)) == pytest.approx(12345)

    def test_default_clock_is_the_papers_alpha(self):
        assert CPU_MHZ == 300.0


class TestCompute:
    def test_compute_completes_after_cost(self):
        engine, cpu = make_cpu()
        done_at = []
        cpu.start_compute(100, lambda: done_at.append(engine.now))
        engine.run()
        assert done_at == [100.0]

    def test_zero_cost_compute(self):
        engine, cpu = make_cpu()
        done_at = []
        cpu.start_compute(0, lambda: done_at.append(engine.now))
        engine.run()
        assert done_at == [0.0]

    def test_only_one_compute_in_flight(self):
        engine, cpu = make_cpu()
        cpu.start_compute(100, lambda: None)
        with pytest.raises(RuntimeError, match="non-preemptive"):
            cpu.start_compute(10, lambda: None)

    def test_sequential_computes(self):
        engine, cpu = make_cpu()
        done = []
        cpu.start_compute(50, lambda: done.append(engine.now))
        engine.run()
        cpu.start_compute(50, lambda: done.append(engine.now))
        engine.run()
        assert done == [50.0, 100.0]
        assert cpu.compute_us == 100.0

    def test_negative_cost_rejected(self):
        _, cpu = make_cpu()
        with pytest.raises(ValueError):
            cpu.start_compute(-1, lambda: None)


class TestInterruptStealing:
    def test_interrupt_extends_running_compute(self):
        """An interrupt during a compute pushes its completion back by the
        handler cost — the paper's receive-livelock mechanism."""
        engine, cpu = make_cpu()
        done_at = []
        cpu.start_compute(100, lambda: done_at.append(engine.now))
        engine.schedule(40, cpu.interrupt, 15.0)
        engine.run()
        assert done_at == [115.0]

    def test_many_interrupts_accumulate(self):
        engine, cpu = make_cpu()
        done_at = []
        cpu.start_compute(100, lambda: done_at.append(engine.now))
        for t in (10, 20, 30, 40):
            engine.schedule(t, cpu.interrupt, 5.0)
        engine.run()
        assert done_at == [120.0]
        assert cpu.interrupt_us == 20.0
        assert cpu.interrupts_taken == 4

    def test_interrupt_handler_effects_are_immediate(self):
        """Handler logic (classification, enqueue) happens at interrupt
        time even though the running thread pays later."""
        engine, cpu = make_cpu()
        log = []
        cpu.start_compute(100, lambda: log.append(("done", engine.now)))
        engine.schedule(40, cpu.interrupt, 15.0,
                        lambda: log.append(("handler", engine.now)))
        engine.run()
        assert log == [("handler", 40.0), ("done", 115.0)]

    def test_interrupt_while_idle_delays_next_compute(self):
        engine, cpu = make_cpu()
        cpu.interrupt(25.0)
        assert cpu.busy_until == 25.0
        done_at = []
        cpu.start_compute(10, lambda: done_at.append(engine.now))
        engine.run()
        assert done_at == [35.0]

    def test_interrupt_returns_handler_result(self):
        _, cpu = make_cpu()
        assert cpu.interrupt(1.0, lambda: "classified") == "classified"

    def test_negative_interrupt_cost_rejected(self):
        _, cpu = make_cpu()
        with pytest.raises(ValueError):
            cpu.interrupt(-1.0)

    def test_interrupt_after_compute_completion_does_not_resurrect(self):
        engine, cpu = make_cpu()
        done = []
        cpu.start_compute(10, lambda: done.append(engine.now))
        engine.run()
        cpu.interrupt(5.0)
        engine.run()
        assert done == [10.0]


class TestUtilization:
    def test_utilization_tracks_compute_and_interrupts(self):
        engine, cpu = make_cpu()
        cpu.start_compute(60, lambda: None)
        engine.schedule(10, cpu.interrupt, 20.0)
        engine.run()          # finishes at t=80
        engine.run_until(100)
        assert cpu.utilization() == pytest.approx(0.8)

    def test_utilization_zero_window(self):
        _, cpu = make_cpu()
        assert cpu.utilization() == 0.0
