"""Remote host agent tests: video source flow control, ping -f dynamics."""

import pytest

from repro.experiments import Testbed
from repro.kernel import PingFlooderHost, VideoSourceHost
from repro.mpeg import CANYON, synthesize_clip
from repro.net import EtherSegment, EthAddr, IpAddr, parse_frame
from repro.sim import Engine


class WireTap:
    """Records frames addressed to a MAC without any kernel behind it."""

    def __init__(self, engine, segment, mac="02:00:00:00:00:01",
                 ip="10.0.0.1"):
        from repro.net.segment import Endpoint

        class _Tap(Endpoint):
            def __init__(tap_self):
                super().__init__(EthAddr(mac))
                tap_self.frames = []

            def receive(tap_self, frame):
                tap_self.frames.append(frame)

        self.tap = _Tap()
        segment.attach(self.tap)

    @property
    def frames(self):
        return self.tap.frames


class TestVideoSource:
    def make(self, nframes=10, **kwargs):
        engine = Engine()
        segment = EtherSegment(engine)
        tap = WireTap(engine, segment)
        clip = synthesize_clip(CANYON, seed=1, nframes=nframes)
        source = VideoSourceHost(engine, "02:00:00:00:00:02", "10.0.0.2",
                                 clip, "02:00:00:00:00:01", "10.0.0.1",
                                 dst_port=6100, **kwargs)
        segment.attach(source)
        return engine, source, tap

    def test_respects_initial_window(self):
        engine, source, tap = self.make(nframes=30, initial_window=5)
        source.start()
        engine.run()
        assert source.packets_sent == 5
        assert source.window_stalls > 0
        assert not source.done

    def test_window_advertisement_opens_the_window(self):
        from repro.net import build_mflow_frame, MflowHeader

        engine, source, tap = self.make(nframes=30, initial_window=5)
        source.start()
        engine.run()
        adv = build_mflow_frame(EthAddr("02:00:00:00:00:01"),
                                source.mac, IpAddr("10.0.0.1"), source.ip,
                                6100, source.src_port, 12, 1000, b"",
                                window=7,
                                flags=MflowHeader.FLAG_WINDOW_ADV)
        source.receive(adv)
        engine.run()
        assert source.packets_sent == 12

    def test_frames_carry_increasing_sequence_numbers(self):
        engine, source, tap = self.make(nframes=5, initial_window=100)
        source.start()
        engine.run()
        seqs = [parse_frame(f, expect_mflow=True).mflow.seq
                for f in tap.frames]
        assert seqs == list(range(len(seqs)))

    def test_frame_start_flag_on_first_packet_of_each_frame(self):
        engine, source, tap = self.make(nframes=5, initial_window=100)
        source.start()
        engine.run()
        parsed = [parse_frame(f, expect_mflow=True).mflow
                  for f in tap.frames]
        starts = sum(1 for m in parsed if m.is_frame_start)
        assert starts == 5

    def test_pacing_holds_packets_until_due(self):
        engine, source, tap = self.make(nframes=30, initial_window=1000,
                                        pace_fps=30.0, lead_frames=2)
        source.start()
        engine.run_until(100_000)  # 0.1 s: only ~3 frames + lead eligible
        sent_early = source.packets_sent
        engine.run_until(2_000_000)
        assert sent_early < source.packets_sent
        assert source.done

    def test_done_and_finished_at(self):
        engine, source, _tap = self.make(nframes=3, initial_window=1000)
        source.start()
        engine.run()
        assert source.done
        assert source.finished_at is not None


class TestPingFlooder:
    def test_self_clocking_sends_on_reply(self):
        engine = Engine()
        segment = EtherSegment(engine)
        flooder = PingFlooderHost(engine, "02:00:00:00:00:03", "10.0.0.3",
                                  "02:00:00:00:00:01", "10.0.0.1")
        segment.attach(flooder)

        # An echo-replying tap.
        from repro.net.segment import Endpoint
        from repro.net import build_icmp_echo

        class Replier(Endpoint):
            def __init__(self):
                super().__init__(EthAddr("02:00:00:00:00:01"))
                self.seen = 0

            def receive(self, frame):
                parsed = parse_frame(frame)
                if parsed.icmp is not None and parsed.icmp.icmp_type == 8:
                    self.seen += 1
                    reply = build_icmp_echo(
                        self.mac, parsed.eth.src, IpAddr("10.0.0.1"),
                        parsed.ip.src, parsed.icmp.ident, parsed.icmp.seq,
                        reply=True)
                    engine.schedule(10, self.send, reply)

        replier = Replier()
        segment.attach(replier)
        flooder.start()
        engine.run_until(100_000)
        flooder.stop()
        # Self-clocked: thousands per second, not the 100/s floor.
        assert flooder.requests_sent > 50
        assert flooder.replies_received > 45

    def test_fallback_rate_without_replies(self):
        engine = Engine()
        segment = EtherSegment(engine)
        flooder = PingFlooderHost(engine, "02:00:00:00:00:03", "10.0.0.3",
                                  "02:00:00:00:00:01", "10.0.0.1",
                                  fallback_us=10_000)
        segment.attach(flooder)
        flooder.start()
        engine.run_until(1_000_000)
        flooder.stop()
        # ~100/s floor (the classic ping -f minimum).
        assert flooder.requests_sent == pytest.approx(100, abs=5)

    def test_fixed_rate_mode(self):
        engine = Engine()
        segment = EtherSegment(engine)
        flooder = PingFlooderHost(engine, "02:00:00:00:00:03", "10.0.0.3",
                                  "02:00:00:00:00:01", "10.0.0.1",
                                  self_clocked=False, fallback_us=500)
        segment.attach(flooder)
        flooder.start()
        engine.run_until(100_000)
        flooder.stop()
        assert flooder.requests_sent == pytest.approx(200, abs=5)
