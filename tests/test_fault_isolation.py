"""Per-router fault domains (the Section 3.6 SFI direction)."""

import pytest

from repro.core import Attrs, BWD, FWD, Msg, path_create
from repro.kernel import PA_FAULT_ISOLATION, default_transforms
from .helpers import ChainRouter, TraceStage, make_chain


class PoisonedStage(TraceStage):
    """A stage whose deliver blows up after N good deliveries."""

    def __init__(self, router, enter_service=None, exit_service=None,
                 fuse_after=0, direction=FWD):
        super().__init__(router, enter_service, exit_service)
        self.good_left = fuse_after
        original = self.deliver_fn(direction)

        def deliver(iface, msg, d, **kwargs):
            if self.good_left <= 0:
                raise RuntimeError("router bug: corrupted state")
            self.good_left -= 1
            return original(iface, msg, d, **kwargs)

        self.set_deliver(direction, deliver)


class PoisonedRouter(ChainRouter):
    def __init__(self, name, fuse_after=0, direction=FWD):
        super().__init__(name)
        self.fuse_after = fuse_after
        self.direction = direction

    def create_stage(self, enter_service, attrs):
        stage, hop = super().create_stage(enter_service, attrs)
        poisoned = PoisonedStage(self, stage.enter_service,
                                 stage.exit_service,
                                 fuse_after=self.fuse_after,
                                 direction=self.direction)
        return poisoned, hop


def build_path(fuse_after=0, isolated=True, direction=FWD):
    from repro.core import RouterGraph

    graph = RouterGraph()
    a = graph.add(ChainRouter("A"))
    bad = graph.add(PoisonedRouter("BAD", fuse_after=fuse_after,
                                   direction=direction))
    c = graph.add(ChainRouter("C"))
    graph.connect("A.down", "BAD.up")
    graph.connect("BAD.down", "C.up")
    graph.boot()
    attrs = Attrs({PA_FAULT_ISOLATION: True} if isolated else {})
    return path_create(a, attrs, transforms=default_transforms()), graph


class TestFaultIsolation:
    def test_fault_is_contained_to_the_delivery(self):
        path, _graph = build_path(isolated=True)
        msg = Msg(b"doomed")
        path.deliver(msg, FWD)  # must not raise
        assert "fault in BAD" in msg.meta["drop_reason"]
        faults = path.attrs["_router_faults"]
        assert faults == [("BAD", "RuntimeError: router bug: corrupted state")]

    def test_without_isolation_the_fault_escapes(self):
        path, _graph = build_path(isolated=False)
        with pytest.raises(RuntimeError, match="router bug"):
            path.deliver(Msg(b"doomed"), FWD)

    def test_path_keeps_working_after_a_contained_fault(self):
        path, _graph = build_path(fuse_after=1, isolated=True)
        good = Msg(b"ok")
        path.deliver(good, FWD)
        assert path.output_queue(FWD).dequeue() is good
        bad = Msg(b"boom")
        path.deliver(bad, FWD)  # contained
        assert "fault in BAD" in bad.meta["drop_reason"]
        # Other directions/stages are unaffected.
        back = Msg(b"reverse")
        path.deliver(back, BWD)
        assert path.output_queue(BWD).dequeue() is back

    def test_bwd_fault_contained_to_the_delivery(self):
        """Containment is per delivery *function*: a router bug on the
        backward direction dies there too, and the forward direction of
        the same stage keeps working."""
        path, _graph = build_path(isolated=True, direction=BWD)
        msg = Msg(b"doomed")
        path.deliver(msg, BWD)  # must not raise
        assert "fault in BAD" in msg.meta["drop_reason"]
        assert path.stats.drop_reasons.get("fault_isolation") == 1
        forward = Msg(b"fine")
        path.deliver(forward, FWD)
        assert path.output_queue(FWD).dequeue() is forward

    def test_bwd_fault_escapes_without_isolation(self):
        path, _graph = build_path(isolated=False, direction=BWD)
        with pytest.raises(RuntimeError, match="router bug"):
            path.deliver(Msg(b"doomed"), BWD)

    def test_rule_recorded_on_the_path(self):
        path, _graph = build_path(isolated=True)
        assert "isolate-router-faults" in path.attrs["_transforms_applied"]

    def test_rule_skipped_without_the_invariant(self):
        _, routers = make_chain("X", "Y")
        path = path_create(routers[0], Attrs(),
                           transforms=default_transforms())
        assert "isolate-router-faults" not in path.attrs.get(
            "_transforms_applied", ())
