"""Unit tests for the asyncio executor (repro.sim.aio).

These drive hand-built thread bodies — the same generator protocol the
kernel's service threads speak — through :class:`AioExecutor` and pin
the op semantics: blocking dequeue, batched dequeue, backpressure via
``WaitSpace``/``Enqueue``, Compute accounting, and lifecycle (spawn
after start, cancellation running ``finally`` blocks).

No pytest-asyncio: each test wraps its coroutine in ``asyncio.run``.
"""

import asyncio

import pytest

from repro.core.queues import PathQueue
from repro.sim.aio import AioExecutor, AioWorld
from repro.sim.threads import (
    YIELD,
    Compute,
    Dequeue,
    DequeueBatch,
    Enqueue,
    WaitSpace,
)


class CycleLedger:
    """Stands in for a Path: records charge_cycles calls."""

    def __init__(self):
        self.cycles = 0.0

    def charge_cycles(self, cycles):
        self.cycles += cycles


def run(coro):
    return asyncio.run(coro)


class TestQueueOps:
    def test_producer_consumer_in_order(self):
        world = AioWorld(seed=0)
        ex = world.executor
        q = PathQueue(maxlen=32, name="pc")
        got = []

        def producer():
            for i in range(10):
                yield Enqueue(q, i)

        def consumer():
            while True:
                item = yield Dequeue(q)
                got.append(item)
                if item == 9:
                    return

        ex.spawn(producer(), name="prod")
        ex.spawn(consumer(), name="cons")

        async def main():
            await ex.drain()

        run(main())
        assert got == list(range(10))

    def test_dequeue_blocks_until_arrival(self):
        world = AioWorld(seed=0)
        ex = world.executor
        q = PathQueue(maxlen=4, name="late")
        got = []

        def consumer():
            got.append((yield Dequeue(q)))

        thread = ex.spawn(consumer(), name="cons")

        async def main():
            await ex.drain()          # consumer parks on the empty queue
            assert ex.idle()
            assert thread.blocks == 1
            q.enqueue("late-item")    # listener wakes the parked task
            assert not ex.idle()
            await ex.drain()

        run(main())
        assert got == ["late-item"]
        assert thread.wakeups == 1

    def test_dequeue_batch_run_lengths(self):
        world = AioWorld(seed=0)
        ex = world.executor
        q = PathQueue(maxlen=32, name="batched")
        for i in range(7):
            q.enqueue(i)
        batches = []

        def consumer():
            while True:
                batch = yield DequeueBatch(q, 4)
                batches.append(batch)
                if sum(map(len, batches)) >= 7:
                    return

        ex.spawn(consumer(), name="cons")
        run(ex.drain())
        assert [len(b) for b in batches] == [4, 3]
        assert batches[0] == [0, 1, 2, 3]

    def test_enqueue_backpressure(self):
        world = AioWorld(seed=0)
        ex = world.executor
        q = PathQueue(maxlen=2, name="narrow")
        got = []

        def producer():
            for i in range(6):
                yield Enqueue(q, i)

        def consumer():
            while len(got) < 6:
                got.append((yield Dequeue(q)))
                yield YIELD

        prod = ex.spawn(producer(), name="prod")
        ex.spawn(consumer(), name="cons")
        run(ex.drain())
        assert got == list(range(6))
        assert q.dropped == 0      # backpressure, never overflow
        assert prod.blocks > 0     # the narrow queue actually blocked it

    def test_waitspace_watcher(self):
        world = AioWorld(seed=0)
        ex = world.executor
        q = PathQueue(maxlen=1, name="gate")
        q.enqueue("occupant")
        events = []

        def watcher():
            yield WaitSpace(q)
            events.append("space")

        ex.spawn(watcher(), name="watch")

        async def main():
            await ex.drain()
            assert events == []    # still full: watcher parked
            q.dequeue()
            await ex.drain()

        run(main())
        assert events == ["space"]


class TestAccounting:
    def test_compute_charges_thread_path_and_cpu(self):
        world = AioWorld(seed=0)
        ex = world.executor
        ledger = CycleLedger()

        def body():
            yield Compute(100.0)
            yield Compute(50.0)

        thread = ex.spawn(body(), name="worker", path=ledger)
        run(ex.drain())
        assert thread.cpu_us == pytest.approx(150.0)
        assert world.cpu.compute_us == pytest.approx(150.0)
        assert ledger.cycles == pytest.approx(150.0 * world.cpu.mhz)


class TestLifecycle:
    def test_spawn_after_start(self):
        world = AioWorld(seed=0)
        ex = world.executor
        q = PathQueue(maxlen=8, name="late-spawn")
        got = []

        def consumer():
            got.append((yield Dequeue(q)))

        async def main():
            await ex.start()
            ex.spawn(consumer(), name="late")
            q.enqueue("x")
            await ex.drain()

        run(main())
        assert got == ["x"]

    def test_close_runs_finally_blocks(self):
        world = AioWorld(seed=0)
        ex = world.executor
        q = PathQueue(maxlen=8, name="forever")
        cleaned = []

        def server():
            try:
                while True:
                    yield Dequeue(q)
            finally:
                cleaned.append(True)

        ex.spawn(server(), name="server")

        async def main():
            await ex.drain()
            await ex.close()

        run(main())
        assert cleaned == [True]

    def test_spawn_after_close_rejected(self):
        world = AioWorld(seed=0)
        ex = world.executor

        async def main():
            await ex.start()
            await ex.close()

        run(main())
        with pytest.raises(RuntimeError):
            ex.spawn(iter(()), name="zombie")

    def test_unknown_op_fails_the_task(self):
        world = AioWorld(seed=0)
        ex = world.executor

        def body():
            yield object()

        thread = ex.spawn(body(), name="bad")

        async def main():
            await ex.start()
            with pytest.raises(TypeError):
                await thread.task

        run(main())

    def test_negative_pace_rejected(self):
        with pytest.raises(ValueError):
            AioExecutor(AioWorld(seed=0), pace=-1.0)
