"""Differential parity: asyncio executor vs the deterministic scheduler.

The wall-clock edge's core promise (DESIGN.md §18) is that the asyncio
executor runs the *same* kernel — same thread bodies, same queues, same
admission boundary — so a burst injected at ``rx_burst`` must come out
byte-identical under either executor, with equal ledgers and equal
cycle books.

The scenarios exploit one structural fact: admission drops
(unclassified, early-discard, input-queue overflow) happen synchronously
*inside* ``rx_burst``, before any service thread runs.  Injecting the
whole burst first and then draining therefore exercises identical
classify/admit decisions and identical ``DequeueBatch`` run lengths in
both worlds, making exact equality — not statistical closeness — the
correct assertion.
"""

import asyncio

from repro.api import EthAddr, IpAddr, Scout, build_udp_frame

LOCAL_MAC = EthAddr("02:00:00:00:00:01")
LOCAL_IP = IpAddr("10.0.0.1")
REMOTE_MAC = EthAddr("02:00:00:00:00:02")
REMOTE_IP = IpAddr("10.0.0.2")
SINK_PORT = 6100


def udp_frame(flow: int, sequence: int) -> bytes:
    payload = b"flow%02d-%06d" % (flow, sequence)
    return build_udp_frame(REMOTE_MAC, LOCAL_MAC, REMOTE_IP, LOCAL_IP,
                           7000 + flow, SINK_PORT + flow, payload)


def _setup(scout: Scout, flows: int, inq_len: int, batch: int,
           drops: list) -> None:
    # The deterministic scheduler keeps no roster; record spawns so the
    # per-thread CPU books can be compared across executors.
    spawned = []
    original_spawn = scout.world.spawn

    def recording_spawn(*args, **kwargs):
        thread = original_spawn(*args, **kwargs)
        spawned.append(thread)
        return thread

    scout.world.spawn = recording_spawn
    scout._parity_threads = spawned
    scout.kernel.drop_hook = lambda msg, category: drops.append(category)
    scout.add_peer(REMOTE_IP, REMOTE_MAC)
    for flow in range(flows):
        scout.kernel.start_udp_sink(
            SINK_PORT + flow, (str(REMOTE_IP), 7000 + flow),
            batch=batch, inq_len=inq_len)


def _collect(scout: Scout, drops: list) -> dict:
    test = scout.kernel.test
    delivered = [msg.to_bytes() for msg in test.received]
    per_flow = {}
    for payload in delivered:
        per_flow.setdefault(payload[:6], []).append(payload)
    drop_counts = {}
    for category in drops:
        drop_counts[category] = drop_counts.get(category, 0) + 1
    return {
        "delivered": delivered,
        "per_flow": per_flow,
        "bytes": test.bytes_received,
        "sink_overflows": test.sink_overflows,
        "drops": drop_counts,
        "stats": scout.kernel.stats(),
        "path_cycles": {port: path.stats.cycles
                        for port, path in scout.kernel.sink_paths.items()},
        # Path ids are a process-global counter, so names differ between
        # back-to-back runs; the charged amounts must not.
        "thread_cpu": sorted(
            t.cpu_us for t in _threads(scout)
            if t.name.startswith("sink-")),
    }


def _threads(scout: Scout):
    return scout._parity_threads


def run_sim(frames, flows=1, inq_len=32, batch=8) -> dict:
    drops = []
    with Scout(seed=3, udp_sink=True, display=False) as scout:
        _setup(scout, flows, inq_len, batch, drops)
        scout.kernel.rx_burst(frames)
        scout.world.run_until_idle()
        return _collect(scout, drops)


def run_aio(frames, flows=1, inq_len=32, batch=8) -> dict:
    async def main():
        async with Scout(seed=3, executor="asyncio",
                         udp_sink=True) as scout:
            _setup(scout, flows, inq_len, batch, drops)
            scout.kernel.rx_burst(frames)
            await scout.settle()
            return _collect(scout, drops)

    drops = []
    return asyncio.run(main())


class TestWarmPathParity:
    def test_single_flow_byte_identical(self):
        frames = [udp_frame(0, seq) for seq in range(30)]
        sim = run_sim(frames)
        aio = run_aio(frames)
        assert aio["delivered"] == sim["delivered"]
        assert len(sim["delivered"]) == 30
        assert aio["bytes"] == sim["bytes"]
        assert aio["drops"] == sim["drops"] == {}
        assert aio["sink_overflows"] == sim["sink_overflows"] == 0

    def test_books_are_executor_independent(self):
        frames = [udp_frame(0, seq) for seq in range(30)]
        sim = run_sim(frames)
        aio = run_aio(frames)
        # The full kernel stats dict: classification counters, flow-cache
        # hits, drop tallies, and the CPU's virtual charge all match.
        assert aio["stats"] == sim["stats"]
        assert aio["path_cycles"] == sim["path_cycles"]
        assert aio["thread_cpu"] == sim["thread_cpu"]

    def test_multi_flow_per_flow_streams(self):
        frames = [udp_frame(seq % 3, seq) for seq in range(90)]
        sim = run_sim(frames, flows=3)
        aio = run_aio(frames, flows=3)
        # Inter-flow interleaving is a scheduling artifact; the per-flow
        # substreams (and every ledger) must still be byte-identical.
        assert aio["per_flow"] == sim["per_flow"]
        assert aio["bytes"] == sim["bytes"]
        assert aio["drops"] == sim["drops"]
        assert aio["stats"] == sim["stats"]
        assert aio["path_cycles"] == sim["path_cycles"]


class TestOverflowParity:
    def test_inq_overflow_drops_identical(self):
        # One burst far beyond the input queue: admission rejects the
        # excess inside rx_burst, identically under either executor.
        frames = [udp_frame(0, seq) for seq in range(40)]
        sim = run_sim(frames, inq_len=4)
        aio = run_aio(frames, inq_len=4)
        assert sim["drops"].get("inq_overflow", 0) > 0
        assert aio["drops"] == sim["drops"]
        assert aio["delivered"] == sim["delivered"]
        assert aio["stats"] == sim["stats"]

    def test_unclassified_drops_identical(self):
        # Frames for a port no sink owns drop as unclassified.
        frames = ([udp_frame(0, seq) for seq in range(10)]
                  + [build_udp_frame(REMOTE_MAC, LOCAL_MAC, REMOTE_IP,
                                     LOCAL_IP, 7009, 6999, b"stray")
                     for _ in range(5)])
        sim = run_sim(frames)
        aio = run_aio(frames)
        assert sim["drops"].get("unclassified", 0) == 5
        assert aio["drops"] == sim["drops"]
        assert aio["delivered"] == sim["delivered"]
