"""Tests for the stable ``repro.api`` facade: the export surface, the
fluent PathBuilder, the Scout entry point, and the deprecation shims
that keep older deep-import call sites working."""

import warnings

import pytest

import repro.api as api
from repro.api import (
    NEPTUNE,
    PA_BATCH,
    PA_LOCAL_PORT,
    PA_NET_PARTICIPANTS,
    PA_TRACE,
    Attrs,
    ClassifyResult,
    PathBuilder,
    Scout,
    SOURCE_DEMUX,
    build_graph,
    classify,
    path_create,
)

SPEC = """
router ETH  { class = EthRouter;  service = {up:net};
              params = {mac: "02:00:00:00:00:01"}; }
router ARP  { class = ArpRouter;  service = {resolver:nsProvider, <down:net}; }
router IP   { class = IpRouter;   service = {up:net, <down:net, <res:nsClient};
              params = {addr: "10.0.0.1"}; }
router UDP  { class = UdpRouter;  service = {up:net, <down:net}; }
router TEST { class = TestRouter; service = {<down:net}; }

connect IP.down  ETH.up;
connect IP.res   ARP.resolver;
connect ARP.down ETH.up;
connect UDP.down IP.up;
connect TEST.down UDP.up;
"""


def booted_graph():
    graph = build_graph(SPEC)
    graph.router("ARP").add_entry("10.0.0.2", "02:00:00:00:00:02")
    return graph


class TestSurface:
    def test_every_exported_name_resolves(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in api.__all__:
                assert getattr(api, name) is not None, name

    def test_classify_returns_result_object(self):
        graph = booted_graph()
        path = (PathBuilder(graph.router("TEST"))
                .participants("10.0.0.2", 7000)
                .local_port(6100)
                .build())
        from repro.net import build_udp_frame, EthAddr, IpAddr
        frame = build_udp_frame(EthAddr("02:00:00:00:00:02"),
                                EthAddr("02:00:00:00:00:01"),
                                IpAddr("10.0.0.2"), IpAddr("10.0.0.1"),
                                7000, 6100, b"ping")
        result = classify(graph.router("ETH"), api.Msg(frame))
        assert isinstance(result, ClassifyResult)
        assert result.path is path
        assert result.source == SOURCE_DEMUX
        # The tuple-unpacking shim older call sites rely on:
        found, source, run = result
        assert found is path and run == 1


class TestPathBuilder:
    def test_build_equals_path_create(self):
        graph = booted_graph()
        built = (PathBuilder(graph.router("TEST"))
                 .invariant(PA_NET_PARTICIPANTS, ("10.0.0.2", 7000))
                 .invariant(PA_LOCAL_PORT, 6100)
                 .build())
        direct = path_create(booted_graph().router("TEST"),
                             Attrs({PA_NET_PARTICIPANTS: ("10.0.0.2", 7001),
                                    PA_LOCAL_PORT: 6101}))
        assert built.routers() == direct.routers()

    def test_fluent_helpers_set_the_attrs(self):
        builder = (PathBuilder(object())
                   .participants("10.0.0.9", 7000)
                   .local_port(6100)
                   .trace()
                   .batch(8))
        attrs = builder.attrs()
        assert attrs[PA_NET_PARTICIPANTS] == ("10.0.0.9", 7000)
        assert attrs[PA_LOCAL_PORT] == 6100
        assert attrs[PA_TRACE] is True
        assert attrs[PA_BATCH] == 8

    def test_invariants_accepts_mapping_and_keywords(self):
        builder = PathBuilder(object()).invariants(
            {PA_LOCAL_PORT: 6100}, custom="x")
        assert builder.attrs()[PA_LOCAL_PORT] == 6100
        assert builder.attrs()["custom"] == "x"

    def test_builder_is_reusable(self):
        graph = booted_graph()
        builder = (PathBuilder(graph.router("TEST"))
                   .participants("10.0.0.2", 7000)
                   .local_port(6100))
        first = builder.build()
        second = builder.local_port(6101).build()
        assert first is not second
        assert first.routers() == second.routers()


class TestScoutEntry:
    def test_three_line_session(self):
        scout = Scout(seed=11)
        scout.kernel.graph.router("ARP").add_entry("10.0.0.2",
                                                   "02:00:00:00:00:02")
        session = scout.kernel.start_video(
            NEPTUNE, ("10.0.0.2", 7000), local_port=6100)
        scout.run(0.05)
        assert session.path.state == "established"
        assert scout.now >= 50_000.0
        assert "classified" in scout.stats()

    def test_path_builder_is_kernel_wired(self):
        scout = Scout(seed=3)
        builder = scout.path(scout.kernel.display)
        assert builder._transforms is scout.kernel.transforms
        assert builder._admission is scout.kernel.admission


class TestDeprecationShims:
    def test_legacy_deep_name_resolves_with_warning(self):
        import repro.net
        with pytest.warns(DeprecationWarning, match="repro.net"):
            assert api.MflowRouter is repro.net.MflowRouter

    def test_unknown_name_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            api.definitely_not_a_name

    def test_dunder_probes_are_not_shimmed(self):
        # The import machinery probes __path__ on `from repro.api import x`;
        # shimming it to repro.core.__path__ would be wrong and noisy.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(AttributeError):
                api.__path__

    def test_core_classify_remains_path_returning(self):
        """The historical repro.core classify surface is untouched: it
        returns the bare path (or None), not a ClassifyResult."""
        from repro.core import classify as core_classify
        graph = booted_graph()
        path = (PathBuilder(graph.router("TEST"))
                .participants("10.0.0.2", 7000)
                .local_port(6100)
                .build())
        from repro.net import build_udp_frame, EthAddr, IpAddr
        frame = build_udp_frame(EthAddr("02:00:00:00:00:02"),
                                EthAddr("02:00:00:00:00:01"),
                                IpAddr("10.0.0.2"), IpAddr("10.0.0.1"),
                                7000, 6100, b"ping")
        assert core_classify(graph.router("ETH"), api.Msg(frame)) is path


class TestBackendResolution:
    """Every backend x executor x shards combination resolves through
    _resolve_backend: accepted shapes construct, rejected shapes raise
    ScoutError with a message naming the offending knob."""

    ACCEPTED = [
        dict(),
        dict(backend="sim"),
        dict(executor="sim"),
        dict(backend="sim", executor="sim"),
        dict(backend="sim", executor="sim", shards=1),
        dict(executor="asyncio"),
        dict(backend="sim", executor="asyncio"),
        dict(backend="socket", executor="asyncio"),
        dict(backend="sim", executor="sim", shards=4),
    ]

    REJECTED = [
        (dict(backend="hardware"), "unknown backend"),
        (dict(executor="threads"), "unknown executor"),
        (dict(shards=0), "shards must be >= 1"),
        (dict(shards=-2), "shards must be >= 1"),
        (dict(backend="socket"), "requires executor='asyncio'"),
        (dict(backend="socket", executor="sim"),
         "requires executor='asyncio'"),
        (dict(shards=2, executor="asyncio"),
         "requires backend='sim' and executor='sim'"),
        (dict(shards=2, backend="socket", executor="asyncio"),
         "requires backend='sim' and executor='sim'"),
        (dict(shards=3, backend="socket"),
         "requires backend='sim' and executor='sim'"),
    ]

    @pytest.mark.parametrize("kwargs", ACCEPTED)
    def test_accepted_combinations_resolve(self, kwargs):
        api._resolve_backend(kwargs.get("backend", "sim"),
                             kwargs.get("executor", "sim"),
                             kwargs.get("shards"))

    @pytest.mark.parametrize("kwargs,message", REJECTED)
    def test_rejected_combinations_name_the_fix(self, kwargs, message):
        with pytest.raises(api.ScoutError, match=message):
            Scout(**kwargs)

    def test_fabric_guard_is_scout_error(self):
        scout = Scout(seed=0, shards=2, ports=[6100])
        try:
            with pytest.raises(api.ScoutError, match="fabric"):
                scout.run(0.1)
            with pytest.raises(api.ScoutError, match="fabric"):
                scout.path(None)
        finally:
            scout.close()

    def test_single_kernel_guard_is_scout_error(self):
        with Scout(seed=0) as scout:
            with pytest.raises(api.ScoutError, match="offer"):
                scout.offer([])
            with pytest.raises(api.ScoutError, match="merged_books"):
                scout.merged_books()

    def test_old_call_shape_unchanged(self):
        # The pre-redesign single-kernel spelling still boots the
        # deterministic configuration with no new arguments.
        scout = Scout(seed=5)
        assert scout.backend == "sim"
        assert scout.executor == "sim"
        assert scout.kernel is not None and scout.fabric is None
        scout.run(0.01)
        scout.close()


class TestScoutLifecycle:
    def test_sync_with_closes(self):
        with Scout(seed=2) as scout:
            assert not scout._closed
        assert scout._closed
        scout.close()  # idempotent

    def test_fabric_close_caches_books(self):
        scout = Scout(seed=0, shards=2, ports=[6100, 6101])
        scout.close()
        books = scout.merged_books()
        assert books is scout.merged_books()

    def test_asyncio_scout_rejects_sync_with(self):
        scout = Scout(seed=2, executor="asyncio")
        with pytest.raises(api.ScoutError, match="async with"):
            scout.__enter__()

    def test_asyncio_scout_rejects_run(self):
        scout = Scout(seed=2, executor="asyncio")
        with pytest.raises(api.ScoutError, match="virtual time"):
            scout.run(0.1)

    def test_sim_scout_rejects_async_surface(self):
        with Scout(seed=2) as scout:
            with pytest.raises(api.ScoutError, match="asyncio"):
                scout.wallclock()

    def test_async_lifecycle_serves_and_closes(self):
        import asyncio

        async def main():
            async with Scout(seed=2, executor="asyncio",
                             udp_sink=True) as scout:
                builder = scout.path(scout.kernel.test)
                assert builder._transforms is scout.kernel.transforms
                await scout.settle()
                snap = scout.wallclock()
                assert snap["wall_s"] >= 0.0
            assert scout._closed

        asyncio.run(main())


class TestRenamedFacadeNames:
    @pytest.mark.parametrize("legacy,supported", [
        ("AsyncExecutor", "AioExecutor"),
        ("AsyncWorld", "AioWorld"),
        ("SocketDevice", "SocketNetDevice"),
        ("WallclockBridge", "WallClockBridge"),
    ])
    def test_renamed_name_resolves_with_warning(self, legacy, supported):
        with pytest.warns(DeprecationWarning, match=supported):
            assert getattr(api, legacy) is getattr(api, supported)

    def test_wallclock_names_are_exported(self):
        for name in ("AioWorld", "AioExecutor", "SocketNetDevice",
                     "WallClockBridge", "BACKENDS", "EXECUTORS"):
            assert name in api.__all__
