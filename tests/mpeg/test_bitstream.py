"""Unit and property tests for bit-level I/O."""

import pytest
from hypothesis import given, strategies as st

from repro.mpeg import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1):
            w.write(bit, 1)
        assert w.getvalue() == bytes([0b10110000])
        assert w.bit_length == 4

    def test_multibyte_field(self):
        w = BitWriter()
        w.write(0xABC, 12)
        assert w.bit_length == 12
        assert w.getvalue() == bytes([0xAB, 0xC0])

    def test_align_pads_with_zeros(self):
        w = BitWriter()
        w.write(0b1, 1)
        w.align()
        assert w.bit_length == 8
        assert w.getvalue() == bytes([0b10000000])

    def test_align_on_boundary_is_noop(self):
        w = BitWriter()
        w.write(0xFF, 8)
        w.align()
        assert w.bit_length == 8

    def test_write_bytes(self):
        w = BitWriter()
        w.write_bytes(b"\x12\x34")
        assert w.getvalue() == b"\x12\x34"

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(4, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 4)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(0, 65)


class TestBitReader:
    def test_reads_back_fields(self):
        r = BitReader(bytes([0xAB, 0xCD]))
        assert r.read(4) == 0xA
        assert r.read(8) == 0xBC
        assert r.read(4) == 0xD

    def test_eof_raises(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_skip_and_align(self):
        r = BitReader(bytes([0b10100000, 0xCC]))
        r.read(3)
        r.align()
        assert r.read(8) == 0xCC

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining == 16
        r.read(5)
        assert r.bits_remaining == 11

    def test_skip_past_end_raises(self):
        with pytest.raises(EOFError):
            BitReader(b"\x00").skip(9)


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=32),
                          st.integers(min_value=0)),
                min_size=1, max_size=30))
def test_write_read_roundtrip(fields):
    """Any sequence of (width, value) fields round-trips exactly."""
    fields = [(width, value % (1 << width)) for width, value in fields]
    w = BitWriter()
    for width, value in fields:
        w.write(value, width)
    r = BitReader(w.getvalue())
    for width, value in fields:
        assert r.read(width) == value
