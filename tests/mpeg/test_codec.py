"""Encoder/decoder tests: GOP structure, ALF framing, loss behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpeg import (
    B_FRAME,
    CANYON,
    FLOWER,
    I_FRAME,
    NEPTUNE,
    P_FRAME,
    PAPER_CLIPS,
    ClipProfile,
    MpegDecodeError,
    MpegDecoder,
    MpegEncoder,
    peek_packet_header,
    synthesize_clip,
)
from repro.mpeg.clips import FLAG_FIRST_PACKET, FLAG_LAST_PACKET, PACKET_HEADER_SIZE

SMALL = ClipProfile("small", 64, 48, 30, 30.0, avg_frame_bits=3000)


class TestClipProfiles:
    def test_paper_clips_registered(self):
        assert [p.name for p in PAPER_CLIPS] == \
            ["Flower", "Neptune", "RedsNightmare", "Canyon"]

    def test_macroblock_count(self):
        assert NEPTUNE.macroblocks == (352 // 16) * (240 // 16)
        assert CANYON.macroblocks == 10 * 8  # 120 rows round up to 8 MB rows

    def test_gop_pattern(self):
        assert SMALL.frame_type(0) == I_FRAME
        assert SMALL.frame_type(1) == B_FRAME
        assert SMALL.frame_type(3) == P_FRAME
        assert SMALL.frame_type(9) == I_FRAME  # pattern repeats

    def test_type_ratios_preserve_gop_average(self):
        gop_len = len(SMALL.gop)
        total = sum(SMALL.mean_bits_for_type(SMALL.frame_type(i))
                    for i in range(gop_len))
        assert total / gop_len == pytest.approx(SMALL.avg_frame_bits)

    def test_i_frames_are_biggest(self):
        assert SMALL.mean_bits_for_type(I_FRAME) \
            > SMALL.mean_bits_for_type(P_FRAME) \
            > SMALL.mean_bits_for_type(B_FRAME)

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            ClipProfile("bad", 0, 48, 30, 30.0, avg_frame_bits=100)


class TestEncoder:
    def test_deterministic_given_seed(self):
        a = synthesize_clip(SMALL, seed=5, nframes=10)
        b = synthesize_clip(SMALL, seed=5, nframes=10)
        assert [f.packets for f in a.frames] == [f.packets for f in b.frames]

    def test_different_seeds_differ(self):
        a = synthesize_clip(SMALL, seed=1, nframes=10)
        b = synthesize_clip(SMALL, seed=2, nframes=10)
        assert a.total_bits != b.total_bits

    def test_avg_frame_bits_near_profile(self):
        clip = synthesize_clip(NEPTUNE, seed=0, nframes=300)
        overhead = 24 * NEPTUNE.macroblocks
        assert clip.avg_frame_bits == pytest.approx(
            NEPTUNE.avg_frame_bits + overhead, rel=0.15)

    def test_alf_packets_fit_payload_budget(self):
        encoder = MpegEncoder(FLOWER, seed=0)
        frame = encoder.encode_frame(0)
        for packet in frame.packets:
            assert len(packet) <= encoder.packet_payload_budget

    def test_first_and_last_flags(self):
        frame = MpegEncoder(FLOWER, seed=0).encode_frame(0)
        first = peek_packet_header(frame.packets[0])
        last = peek_packet_header(frame.packets[-1])
        assert first[2] & FLAG_FIRST_PACKET
        assert last[2] & FLAG_LAST_PACKET

    def test_packet_header_carries_frame_identity(self):
        frame = MpegEncoder(SMALL, seed=0).encode_frame(7)
        frame_no, ftype, _flags = peek_packet_header(frame.packets[0])
        assert frame_no == 7
        assert ftype == SMALL.frame_type(7)

    def test_peek_rejects_non_mpeg(self):
        assert peek_packet_header(b"\x00" * 32) is None
        assert peek_packet_header(b"") is None


class TestDecoder:
    def decode_clip(self, clip):
        decoder = MpegDecoder(clip.profile)
        frames = []
        for packet in clip.packets():
            result = decoder.feed(packet)
            if result.frame is not None:
                frames.append(result.frame)
        return decoder, frames

    def test_decodes_every_frame(self):
        clip = synthesize_clip(SMALL, seed=3, nframes=20)
        decoder, frames = self.decode_clip(clip)
        assert len(frames) == 20
        assert decoder.frames_damaged == 0
        assert [f.number for f in frames] == list(range(20))

    def test_decoded_bits_match_encoded(self):
        clip = synthesize_clip(SMALL, seed=3, nframes=10)
        _decoder, frames = self.decode_clip(clip)
        for encoded, decoded in zip(clip.frames, frames):
            assert decoded.bits == encoded.bits
            assert decoded.n_mb == encoded.n_mb

    def test_decode_cost_positive_and_monotone_in_bits(self):
        clip = synthesize_clip(SMALL, seed=3, nframes=20)
        _decoder, frames = self.decode_clip(clip)
        pairs = sorted((f.bits, f.decode_cost_us) for f in frames)
        costs = [cost for _bits, cost in pairs]
        assert all(c > 0 for c in costs)
        assert costs == sorted(costs)

    def test_lost_packet_damages_exactly_one_frame(self):
        clip = synthesize_clip(FLOWER, seed=1, nframes=6)
        decoder = MpegDecoder(FLOWER)
        frames = []
        for index, frame in enumerate(clip.frames):
            packets = list(frame.packets)
            if index == 2 and len(packets) > 2:
                del packets[1]  # lose a mid-frame packet
            for packet in packets:
                result = decoder.feed(packet)
                if result.frame is not None:
                    frames.append(result.frame)
        damaged = [f for f in frames if not f.complete]
        assert len(damaged) == 1
        assert damaged[0].number == 2
        assert sum(1 for f in frames if f.complete) == 5

    def test_lost_last_packet_abandons_frame(self):
        clip = synthesize_clip(FLOWER, seed=1, nframes=3)
        decoder = MpegDecoder(FLOWER)
        completed = []
        for index, frame in enumerate(clip.frames):
            packets = list(frame.packets)
            if index == 0:
                packets = packets[:-1]  # last packet never arrives
            for packet in packets:
                result = decoder.feed(packet)
                if result.frame is not None and result.frame.complete:
                    completed.append(result.frame.number)
        assert completed == [1, 2]
        assert decoder.frames_damaged == 1

    def test_corrupt_magic_raises(self):
        decoder = MpegDecoder(SMALL)
        packet = bytearray(synthesize_clip(SMALL, seed=0,
                                           nframes=1).frames[0].packets[0])
        packet[0] = 0x00
        with pytest.raises(MpegDecodeError, match="magic"):
            decoder.feed(bytes(packet))

    def test_truncated_packet_raises(self):
        decoder = MpegDecoder(SMALL)
        with pytest.raises(MpegDecodeError):
            decoder.feed(b"\xa5\x00")

    def test_declared_bits_exceeding_body_raises(self):
        clip = synthesize_clip(SMALL, seed=0, nframes=1)
        packet = bytearray(clip.frames[0].packets[0])
        packet = packet[:PACKET_HEADER_SIZE + 2]  # chop the body
        decoder = MpegDecoder(SMALL)
        with pytest.raises(MpegDecodeError):
            decoder.feed(bytes(packet))


class TestStreamMode:
    """Non-ALF (byte-stream) packetization: the ablation path."""

    def test_stream_clip_decodes_identically(self):
        alf = synthesize_clip(SMALL, seed=4, nframes=15, alf=True)
        stream = synthesize_clip(SMALL, seed=4, nframes=15, alf=False)
        d1 = MpegDecoder(SMALL)
        d2 = MpegDecoder(SMALL)
        for packet in alf.packets():
            d1.feed(packet)
        for packet in stream.packets():
            d2.feed(packet)
        assert d1.frames_decoded == d2.frames_decoded == 15
        assert d1.bits_decoded == d2.bits_decoded

    def test_stream_mode_buffers_partial_frames(self):
        stream = synthesize_clip(FLOWER, seed=4, nframes=5, alf=False)
        decoder = MpegDecoder(FLOWER)
        for packet in stream.packets():
            decoder.feed(packet)
        assert decoder.peak_buffered_bytes > 0

    def test_alf_mode_never_buffers(self):
        clip = synthesize_clip(FLOWER, seed=4, nframes=5, alf=True)
        decoder = MpegDecoder(FLOWER)
        for packet in clip.packets():
            decoder.feed(packet)
        assert decoder.peak_buffered_bytes == 0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(1, 12))
def test_any_seed_roundtrips(seed, nframes):
    clip = synthesize_clip(SMALL, seed=seed, nframes=nframes)
    decoder = MpegDecoder(SMALL)
    decoded = 0
    for packet in clip.packets():
        result = decoder.feed(packet)
        if result.frame is not None and result.frame.complete:
            decoded += 1
    assert decoded == nframes
    assert decoder.frames_damaged == 0
