"""Framebuffer and VideoSink tests: vsync draining, deadlines, modes."""

import pytest

from repro.core import PathQueue
from repro.display import Framebuffer, VideoSink
from repro.sim import CPU, Engine


def make_fb(rate_limited=True, vsync_hz=60.0):
    engine = Engine()
    cpu = CPU(engine)
    fb = Framebuffer(engine, cpu, vsync_hz=vsync_hz,
                     rate_limited=rate_limited)
    return engine, cpu, fb


class TestVsync:
    def test_vsync_fires_at_refresh_rate(self):
        engine, _cpu, fb = make_fb()
        fb.start()
        engine.run_until(1_000_000)
        assert fb.vsyncs == 60

    def test_vsync_consumes_cpu_as_interrupts(self):
        engine, cpu, fb = make_fb()
        fb.start()
        engine.run_until(1_000_000)
        assert cpu.interrupt_us > 0
        assert cpu.interrupts_taken == 60

    def test_stop_halts_vsync(self):
        engine, _cpu, fb = make_fb()
        fb.start()
        engine.run_until(100_000)
        fb.stop()
        engine.run_until(1_000_000)
        assert fb.vsyncs == pytest.approx(6, abs=1)

    def test_start_twice_does_not_double(self):
        engine, _cpu, fb = make_fb()
        fb.start()
        fb.start()
        engine.run_until(1_000_000)
        assert fb.vsyncs == 60


class TestMaxRateMode:
    def test_drains_everything_each_vsync(self):
        engine, _cpu, fb = make_fb(rate_limited=False)
        queue = PathQueue(maxlen=64)
        sink = fb.add_sink("s", queue, fps=30.0)
        for i in range(10):
            queue.enqueue(f"frame{i}")
        fb.start()
        engine.run_until(20_000)  # one vsync at 60Hz
        assert queue.is_empty()
        assert sink.presented == 10
        assert sink.missed_deadlines == 0


class TestRealtimeMode:
    def test_presents_at_sink_rate(self):
        engine, _cpu, fb = make_fb(rate_limited=True)
        queue = PathQueue(maxlen=64)
        sink = fb.add_sink("s", queue, fps=30.0)
        sink.expected_frames = 30
        fb.start()
        # Feed a frame every 1/30s, slightly ahead of the schedule.
        for i in range(30):
            engine.schedule(i * 33_333.0, queue.enqueue, i)
        engine.run_until(1_100_000)
        assert sink.presented == 30
        assert sink.missed_deadlines == 0

    def test_schedule_starts_with_first_frame(self):
        """Instants before the stream produces anything are not missed
        deadlines."""
        engine, _cpu, fb = make_fb()
        queue = PathQueue(maxlen=8)
        sink = fb.add_sink("s", queue, fps=30.0)
        sink.expected_frames = 1
        fb.start()
        engine.schedule(500_000, queue.enqueue, "late-start")
        engine.run_until(600_000)
        assert sink.missed_deadlines == 0
        assert sink.presented == 1

    def test_starved_sink_counts_misses(self):
        engine, _cpu, fb = make_fb()
        queue = PathQueue(maxlen=8)
        sink = fb.add_sink("s", queue, fps=30.0)
        fb.start()
        queue.enqueue("only-frame")
        engine.run_until(1_000_000)
        assert sink.presented == 1
        # ~29 instants came due afterwards with nothing to show.
        assert sink.missed_deadlines == pytest.approx(29, abs=2)

    def test_prebuffer_delays_schedule(self):
        engine, _cpu, fb = make_fb()
        queue = PathQueue(maxlen=8)
        sink = fb.add_sink("s", queue, fps=30.0, prebuffer=4)
        sink.expected_frames = 4
        fb.start()
        queue.enqueue("one")
        engine.run_until(300_000)
        assert sink.presented == 0  # waiting for the prebuffer
        for item in ("two", "three", "four"):
            queue.enqueue(item)
        engine.run_until(500_000)
        assert sink.presented == 4
        assert sink.missed_deadlines == 0

    def test_expected_frames_ends_the_schedule(self):
        engine, _cpu, fb = make_fb()
        queue = PathQueue(maxlen=8)
        sink = fb.add_sink("s", queue, fps=30.0)
        sink.expected_frames = 3
        fb.start()
        for i in range(3):
            queue.enqueue(i)
        engine.run_until(2_000_000)
        assert sink.presented == 3
        assert sink.missed_deadlines == 0  # no deadlines after the clip


class TestDeadlines:
    def test_next_frame_deadline_accounts_for_queue_depth(self):
        """'If the output queue drains at 30 frames/second and the queue
        is half full, it is trivial to compute the deadline by which the
        next frame has to be produced.'"""
        engine, _cpu, fb = make_fb()
        queue = PathQueue(maxlen=64)
        sink = fb.add_sink("s", queue, fps=30.0)
        empty_deadline = sink.next_frame_deadline()
        for i in range(6):
            queue.enqueue(i)
        deeper_deadline = sink.next_frame_deadline()
        assert deeper_deadline == pytest.approx(
            empty_deadline + 6 * 1_000_000 / 30.0)

    def test_achieved_fps(self):
        engine, _cpu, fb = make_fb(rate_limited=False)
        queue = PathQueue(maxlen=256)
        sink = fb.add_sink("s", queue, fps=30.0)
        fb.start()
        for i in range(61):
            engine.schedule(i * 33_333.0, queue.enqueue, i)
        engine.run_until(2_100_000)
        assert sink.achieved_fps() == pytest.approx(30.0, rel=0.1)

    def test_achieved_fps_needs_two_presentations(self):
        _engine, _cpu, fb = make_fb()
        sink = fb.add_sink("s", PathQueue(), fps=30.0)
        assert sink.achieved_fps() == 0.0


class TestSinkManagement:
    def test_duplicate_sink_rejected(self):
        _engine, _cpu, fb = make_fb()
        fb.add_sink("s", PathQueue(), fps=30.0)
        with pytest.raises(ValueError):
            fb.add_sink("s", PathQueue(), fps=30.0)

    def test_remove_sink(self):
        _engine, _cpu, fb = make_fb()
        fb.add_sink("s", PathQueue(), fps=30.0)
        fb.remove_sink("s")
        assert fb.sinks == {}

    def test_bad_fps_rejected(self):
        with pytest.raises(ValueError):
            VideoSink("s", PathQueue(), fps=0.0, started_at=0.0)
