"""The `python -m repro.experiments` entry point."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True, text=True, timeout=timeout)


class TestCli:
    def test_unknown_experiment_rejected(self):
        result = run_cli("nonsense")
        assert result.returncode == 2
        assert "unknown experiment" in result.stdout

    def test_e4_prints_micro_report(self):
        result = run_cli("e4")
        assert result.returncode == 0
        assert "UDP path stages:       6" in result.stdout

    @pytest.mark.slow
    def test_e7_prints_early_discard(self):
        result = run_cli("e7", timeout=420)
        assert result.returncode == 0
        assert "early drop at adapter" in result.stdout
