"""SHELL router unit tests: command parsing and the command registry."""

import pytest

from repro.core import Attrs, Msg
from repro.shell import ShellRouter, parse_command


class TestParseCommand:
    def test_name_and_args(self):
        name, args = parse_command("mpeg_decode ip=10.0.0.2 port=7200")
        assert name == "mpeg_decode"
        assert args == {"ip": "10.0.0.2", "port": "7200"}

    def test_no_args(self):
        assert parse_command("status") == ("status", {})

    def test_whitespace_tolerant(self):
        name, args = parse_command("  cmd   a=1   b=2  ")
        assert (name, args) == ("cmd", {"a": "1", "b": "2"})

    def test_value_containing_equals(self):
        _name, args = parse_command("cmd expr=a=b")
        assert args["expr"] == "a=b"

    @pytest.mark.parametrize("bad", ["", "   ", "cmd positional",
                                     "cmd =value"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_command(bad)


class TestCommandRegistry:
    def make_shell(self):
        from .helpers import make_chain

        shell = ShellRouter("SHELL")
        _graph, routers = make_chain("A", "B")
        created = []

        def build_attrs(args, meta):
            return Attrs(tag=args.get("tag", "none"))

        def post_create(path, args, msg):
            created.append((path, args))

        shell.register_command("mk", routers[0], build_attrs, post_create)
        return shell, routers, created

    def test_execute_creates_path_and_replies(self):
        shell, routers, created = self.make_shell()
        reply = shell.execute(Msg(b"mk tag=x"))
        assert reply.startswith("ok pid=")
        assert len(created) == 1
        path, args = created[0]
        assert path.routers() == ["A", "B"]
        assert path.attrs["tag"] == "x"
        assert shell.commands_run == 1
        assert shell.created_paths[path.pid] is path

    def test_unknown_command(self):
        shell, _routers, _created = self.make_shell()
        with pytest.raises(ValueError, match="unknown command"):
            shell.execute(Msg(b"nope a=1"))

    def test_each_invocation_creates_a_new_path(self):
        shell, _routers, created = self.make_shell()
        shell.execute(Msg(b"mk tag=1"))
        shell.execute(Msg(b"mk tag=2"))
        assert len(created) == 2
        assert created[0][0] is not created[1][0]
