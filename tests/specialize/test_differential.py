"""Differential execution: the three tiers are indistinguishable.

Every scenario below runs identically under tier 0 (interpreted
pointer-chase recursion), tier 1 (compiled chain walk) and tier 2
(exec-generated fused function, DESIGN.md §15), and the observables a
user of the system could ever see — delivered bytes, PathStats books,
drop-ledger categories, flow-cache statistics, metrics snapshots — must
be *equal*, not merely close.  Costs are compared exactly: the generated
code replicates the scalar accumulation order float-add by float-add, so
even rounding may not drift.

Tier selection is data, not code: the same scenario function runs for
each tier and only the ``specialize``/``interpret_only`` knobs differ.
Where the specialized tier is expected to engage (warm validated UDP
runs), the scenario additionally asserts ``specialized_msgs > 0`` so a
silently-declining generator cannot make these tests pass vacuously.
"""

import pytest

from repro.core import Attrs, BWD, Msg, PA_NET_PARTICIPANTS, path_create
from repro.core.flowcache import VALIDATED_STAMPS
from repro.experiments import Testbed
from repro.experiments.micro import Fig7Stack, REMOTE_IP
from repro.mpeg import NEPTUNE, synthesize_clip
from repro.net.common import PA_LOCAL_PORT

TIERS = ("interpreted", "compiled", "specialized")

FRAMES = 60


def apply_tier(tier, *paths):
    """Pin already-created *paths* to an execution tier."""
    for path in paths:
        if tier == "interpreted":
            path.interpret_only = True
        elif tier == "specialized":
            path.specialize = True
            path.compile_chains()


def kernel_kwargs(tier):
    """ScoutKernel construction knob for *tier* (paths created later
    still need :func:`apply_tier` for the interpreted tier)."""
    return {"specialize": tier == "specialized"}


def path_books(path):
    """The PathAccount books a scenario must keep tier-independent."""
    stats = path.stats
    return {
        "messages": (stats.messages_fwd, stats.messages_bwd),
        "cycles": stats.cycles,
        "mem": (stats.mem_bytes, stats.mem_high_watermark),
        "drops": stats.drops,
        "drop_reasons": dict(stats.drop_reasons),
        "progress": stats.progress,
        "avg_proc_time_us": stats.avg_proc_time_us,
    }


def kernel_snapshot(kernel):
    snap = kernel.stats()
    snap["metrics"] = kernel.observatory.metrics.render()
    return snap


def assert_tiers_agree(observe):
    """Run ``observe(tier)`` for every tier and compare the results."""
    results = {tier: observe(tier) for tier in TIERS}
    assert results["compiled"] == results["interpreted"]
    assert results["specialized"] == results["interpreted"]
    return results["interpreted"]


# ---------------------------------------------------------------------------
# Scenario 1: UDP video end to end
# ---------------------------------------------------------------------------


class TestUdpVideoDifferential:

    def play(self, tier, batch=1, skip_at_us=None, skip=4):
        testbed = Testbed(seed=3)
        clip = synthesize_clip(NEPTUNE, seed=3, nframes=FRAMES)
        source = testbed.add_video_source(clip, dst_port=6100)
        kernel = testbed.build_scout(rate_limited_display=False,
                                     **kernel_kwargs(tier))
        session = kernel.start_video(NEPTUNE, (str(source.ip), 7200),
                                     local_port=6100, batch=batch)
        apply_tier(tier, session.path)
        testbed.start_all()
        if skip_at_us is not None:
            testbed.run_seconds(skip_at_us / 1e6)
            kernel.set_frame_skip(session.path, skip)
        testbed.run_until_sources_done()
        if tier == "specialized":
            assert session.path.specialized_msgs > 0, \
                "specialized tier never engaged"
        mflow = session.path.stage_of("MFLOW")
        return {
            "presented": session.frames_presented,
            "missed": session.missed_deadlines,
            "books": path_books(session.path),
            "mflow": (mflow.next_expected, mflow.last_delivered_seq,
                      mflow.stale_drops, mflow.gaps,
                      mflow.window_advs_sent,
                      mflow.window_advs_coalesced),
            "kernel": kernel_snapshot(kernel),
        }

    def test_video_observables_identical_across_tiers(self):
        result = assert_tiers_agree(self.play)
        assert result["presented"] == FRAMES

    def test_batched_video_identical_across_tiers(self):
        result = assert_tiers_agree(lambda tier: self.play(tier, batch=8))
        assert result["presented"] == FRAMES

    def test_frame_skip_reconfiguration_identical_across_tiers(self):
        """Mid-run ``set_frame_skip`` flushes the flow cache and changes
        the early-discard ledger; the drop categories must match across
        tiers packet for packet."""
        result = assert_tiers_agree(
            lambda tier: self.play(tier, skip_at_us=400_000.0))
        assert result["books"]["drop_reasons"].get("early_discard", 0) > 0
        assert result["presented"] < FRAMES


# ---------------------------------------------------------------------------
# Scenario 2: multipath video group
# ---------------------------------------------------------------------------


class TestMultipathGroupDifferential:

    def play(self, tier):
        testbed = Testbed(seed=5)
        clip = synthesize_clip(NEPTUNE, seed=5, nframes=FRAMES)
        source = testbed.add_video_source(clip, dst_port=6200)
        kernel = testbed.build_scout(rate_limited_display=False,
                                     **kernel_kwargs(tier))
        vgroup = kernel.start_video_group(NEPTUNE, (str(source.ip), 7200),
                                          members=2, local_port=6200)
        apply_tier(tier, *vgroup.paths)
        testbed.start_all()
        testbed.run_until_sources_done()
        if tier == "specialized":
            assert sum(p.specialized_msgs for p in vgroup.paths) > 0
        return {
            "presented": vgroup.frames_presented,
            "per_member": [path_books(p) for p in vgroup.paths],
            "dispatches": vgroup.group.dispatches,
            "kernel": kernel_snapshot(kernel),
        }

    def test_group_observables_identical_across_tiers(self):
        result = assert_tiers_agree(self.play)
        assert result["presented"] == FRAMES
        assert result["dispatches"] >= FRAMES


# ---------------------------------------------------------------------------
# Scenario 3: HTTP over the Figure 3 graph
# ---------------------------------------------------------------------------


class TestHttpDifferential:
    """The web path has no registered specializers past TCP — the
    generator must *decline* and tier 2 must degrade to tier 1
    untouched, byte for byte on the wire."""

    @staticmethod
    def _mask_ip_ident(frame):
        """Zero the IP ident + header checksum (a process-global ident
        counter makes consecutive runs differ there by design)."""
        buf = bytearray(frame)
        buf[18:20] = b"\x00\x00"  # ident
        buf[24:26] = b"\x00\x00"  # header checksum (covers the ident)
        return bytes(buf)

    def serve(self, tier):
        from tests.integration.test_http_server import segment, web

        graph, wire = web.__wrapped__()
        conn = path_create(graph.router("HTTP"),
                           Attrs({PA_NET_PARTICIPANTS: ("10.0.0.9", 51000),
                                  PA_LOCAL_PORT: 80}),
                           specialize=tier == "specialized")
        apply_tier(tier, conn)
        request = b"GET /index.html HTTP/1.0\r\n\r\n"
        conn.deliver(segment(graph, 0, request), BWD)
        return {
            "wire": [self._mask_ip_ident(frame) for frame in wire],
            "books": path_books(conn),
        }

    def test_http_response_identical_across_tiers(self):
        result = assert_tiers_agree(self.serve)
        assert result["wire"], "no response on the wire"
        assert b"<h1>paths</h1>" in b"".join(result["wire"])


# ---------------------------------------------------------------------------
# Scenario 4: warm validated runs, batch=1 vs batch=32, all tiers
# ---------------------------------------------------------------------------


class TestBatchShapeDifferential:
    """The fused function sees whole runs; batch shape must not leak
    into any observable.  This is the scenario where tier 2 engages on
    every message, so the delivered bytes comparison is the strongest
    equivalence statement in the file."""

    def run_stack(self, tier, chunk):
        stack = Fig7Stack()
        path = path_create(stack.test,
                           Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7000),
                                  PA_LOCAL_PORT: 6100}),
                           specialize=tier == "specialized")
        apply_tier(tier, path)
        frames = [Msg(stack.udp_frame(6100, payload=b"payload%03d" % i))
                  for i in range(64)]
        for msg in frames:
            for stamp in VALIDATED_STAMPS:  # warm flow-cache annotations
                msg.meta[stamp] = True
        for start in range(0, len(frames), chunk):
            path.deliver_batch(frames[start:start + chunk], BWD)
        if tier == "specialized":
            assert path.specialized_msgs == len(frames)
        return {
            "delivered": [m.to_bytes() for m in stack.test.received],
            "metas": [dict(m.meta) for m in stack.test.received],
            "books": path_books(path),
            "rx_validated": (stack.eth.rx_validated, stack.ip.rx_validated,
                             path.stage_of("UDP").rx_validated),
            "outq": len(path.output_queue(BWD)),
        }

    @pytest.mark.parametrize("chunk", [1, 32])
    def test_tiers_agree_per_batch_shape(self, chunk):
        result = assert_tiers_agree(lambda tier: self.run_stack(tier, chunk))
        assert len(result["delivered"]) == 64
        assert result["delivered"][3].endswith(b"payload003")

    def test_batch_shape_invisible_within_each_tier(self):
        for tier in TIERS:
            assert self.run_stack(tier, 1) == self.run_stack(tier, 32), tier
