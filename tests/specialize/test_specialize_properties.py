"""Property-based equivalence for the specialized tier (DESIGN.md §15).

Two properties, both adversarial:

* **recompile exactness** — under *any* interleaving of traffic with
  chain mutations (``wrap_deliver`` interpositions, ``set_deliver``
  replacements, fault injection, restoring the original), a stale
  specialized function never sees a message: the specialized twin
  produces byte-identical deliveries, books, and interposition ledgers
  to an interpret-only twin fed the same sequence, and after every
  delivery its compiled generation matches the chain generation.

* **header-fuzz parity** — the generated function's bulk
  ``struct``/``memoryview`` header parsing agrees with the scalar
  per-message parsers for arbitrary (including inconsistent) IP total
  lengths, link padding, and truncated frames.  Malformed runs must
  *decline* into the slower tiers, never mis-parse.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Attrs, BWD, Msg, PA_NET_PARTICIPANTS, path_create
from repro.core.flowcache import VALIDATED_STAMPS
from repro.experiments.micro import Fig7Stack, REMOTE_IP
from repro.net.common import PA_LOCAL_PORT

PORT = 6100


class Twin:
    """One Fig7 stack pinned to a tier, with mutation bookkeeping."""

    def __init__(self, specialize):
        self.stack = Fig7Stack()
        self.path = path_create(
            self.stack.test,
            Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7000),
                   PA_LOCAL_PORT: PORT}),
            specialize=specialize)
        self.path.interpret_only = not specialize
        #: Per-interposition message ledgers; a stale specialized
        #: function bypassing a live wrapper would desynchronize these.
        self.wrapper_log = []
        self.faulted = 0

    # -- mutations ----------------------------------------------------------

    def wrap_udp(self):
        log = self.wrapper_log

        def wrapper(inner):
            def seen(iface, msg, direction, **kwargs):
                log.append(("udp", msg.to_bytes()[-4:]))
                return inner(iface, msg, direction, **kwargs)
            return seen

        self.path.stage_of("UDP").wrap_deliver(BWD, wrapper)

    def replace_sink(self):
        stage = self.path.stage_of("TEST")
        inner = stage.deliver_fn(BWD)
        log = self.wrapper_log

        def replaced(iface, msg, direction, **kwargs):
            log.append(("sink", msg.to_bytes()[-4:]))
            return inner(iface, msg, direction, **kwargs)

        stage.set_deliver(BWD, replaced)

    def inject_fault(self):
        """Every message through IP from now on is dropped as a fault —
        the degradation governor's frame-skip shedding wears the same
        ``set_deliver`` shape, so one mutation covers both."""
        stage = self.path.stage_of("IP")
        inner = stage.deliver_fn(BWD)
        twin = self

        def faulty(iface, msg, direction, **kwargs):
            twin.faulted += 1
            if twin.faulted % 2:
                stage.note_drop(msg, "injected fault", "fault_injection")
                return None
            return inner(iface, msg, direction, **kwargs)

        stage.set_deliver(BWD, faulty)

    def restore(self):
        """Reinstall the pristine stage methods (mutations undone)."""
        for name, attr in (("UDP", "_receive"), ("IP", "_receive"),
                           ("TEST", "_sink")):
            stage = self.path.stage_of(name)
            stage.set_deliver(BWD, getattr(stage, attr))
            batch = getattr(stage, attr + "_batch", None)
            if batch is not None:
                stage.set_deliver_batch(BWD, batch)

    # -- traffic ------------------------------------------------------------

    def send(self, payloads, chunk):
        frames = []
        for i, payload in enumerate(payloads):
            msg = Msg(self.stack.udp_frame(PORT, payload=payload))
            for stamp in VALIDATED_STAMPS:
                msg.meta[stamp] = True
            frames.append(msg)
        if chunk == 1:
            for msg in frames:
                self.path.deliver(msg, BWD)
        else:
            for start in range(0, len(frames), chunk):
                self.path.deliver_batch(frames[start:start + chunk], BWD)

    # -- observables --------------------------------------------------------

    def observe(self):
        stats = self.path.stats
        return {
            "delivered": [m.to_bytes() for m in self.stack.test.received],
            "metas": [dict(m.meta) for m in self.stack.test.received],
            "drops": stats.drops,
            "drop_reasons": dict(stats.drop_reasons),
            "messages": (stats.messages_fwd, stats.messages_bwd),
            "cycles": stats.cycles,
            "wrappers": list(self.wrapper_log),
            "rx_validated": (self.stack.eth.rx_validated,
                             self.stack.ip.rx_validated,
                             self.path.stage_of("UDP").rx_validated),
        }


MUTATIONS = ("wrap_udp", "replace_sink", "inject_fault", "restore")

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("send"),
                  st.integers(min_value=1, max_value=6),
                  st.sampled_from([1, 4, 32])),
        st.tuples(st.just("mutate"), st.sampled_from(MUTATIONS),
                  st.just(0)),
    ),
    min_size=1, max_size=12)


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_recompile_exactness_under_interleaved_mutation(ops):
    spec, plain = Twin(specialize=True), Twin(specialize=False)
    counter = 0
    for kind, arg, chunk in ops:
        if kind == "send":
            payloads = [b"pay%05d" % (counter + i) for i in range(arg)]
            counter += arg
            for twin in (spec, plain):
                twin.send(payloads, chunk)
            # Deopt-before-next-message: the dispatcher may never leave
            # a stale generated function installed past a delivery.
            assert spec.path._compiled_gen == spec.path.chain_generation
        else:
            for twin in (spec, plain):
                getattr(twin, arg)()
    assert spec.observe() == plain.observe()


def _fuzz_frame(stack, payload, padding, total_length_delta, truncate):
    """A stamped-validated frame with adversarial framing.

    The validated stamps assert what a flow-cache exact-match key proved
    — a well-formed 42-byte ETH/IP/UDP header prefix — so the fuzz keeps
    that invariant (delta may not starve UDP of its own header,
    truncation only eats link padding) while freely skewing the IP total
    length against the real frame length and appending padding: exactly
    the disagreements the bulk parser's trim-bail must judge the same
    way the scalar parsers do.
    """
    delta = max(total_length_delta, -len(payload))
    frame = bytearray(stack.udp_frame(PORT, payload=payload))
    if delta:
        field = int.from_bytes(frame[16:18], "big")
        frame[16:18] = max(0, min(0xFFFF, field + delta)).to_bytes(2, "big")
    frame += b"\xa5" * padding
    if truncate:
        frame = frame[:len(frame) - min(truncate, padding)]
    return bytes(frame)


frame_params = st.tuples(
    st.binary(min_size=0, max_size=40),          # payload
    st.integers(min_value=0, max_value=24),      # link padding
    st.sampled_from([0, 0, 0, -21, -5, 3, 40]),  # IP total-length skew
    st.integers(min_value=0, max_value=8),       # truncation (of padding)
)


@settings(max_examples=40, deadline=None)
@given(st.lists(frame_params, min_size=1, max_size=16),
       st.sampled_from([1, 4, 32]))
def test_header_fuzz_parity_bulk_vs_scalar_parsers(params, chunk):
    spec, plain = Twin(specialize=True), Twin(specialize=False)
    for twin in (spec, plain):
        frames = []
        for payload, padding, delta, truncate in params:
            msg = Msg(_fuzz_frame(twin.stack, payload, padding, delta,
                                  truncate))
            for stamp in VALIDATED_STAMPS:
                msg.meta[stamp] = True
            frames.append(msg)
        for start in range(0, len(frames), chunk):
            twin.path.deliver_batch(frames[start:start + chunk], BWD)
    assert spec.observe() == plain.observe()
