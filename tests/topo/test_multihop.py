"""Multi-hop forwarding with heterogeneous MTUs: the differential test.

The acceptance bar for the forwarding tier: a 3-hop chain whose middle
link has less than half the edge MTU (1500/600/1500) delivers the same
bytes as a single-hop baseline — via in-flight fragmentation when the
sender is PMTU-oblivious, and with **zero** fragments anywhere once
sender-side path-MTU discovery has converged — with every loss (there
must be none) accounted in exact drop ledgers.
"""

import pytest

from repro.api import SimWorld, Topology

BLOB = bytes((i * 31 + 7) % 256 for i in range(20_000))


def three_hop(seed=11, mid_mtu=600):
    """sender --1500-- r1 --mid_mtu-- r2 --1500-- receiver"""
    world = SimWorld(seed=seed)
    topo = Topology(world)
    topo.segment("L1", mtu=1500, bandwidth_mbps=100.0, latency_us=20.0)
    topo.segment("L2", mtu=mid_mtu, bandwidth_mbps=100.0, latency_us=20.0)
    topo.segment("L3", mtu=1500, bandwidth_mbps=100.0, latency_us=20.0)
    topo.host("sender", "L1", "10.0.1.1")
    topo.host("receiver", "L3", "10.0.3.1")
    topo.router("r1", {"a": ("L1", "10.0.1.254"), "b": ("L2", "10.0.2.1")})
    topo.router("r2", {"a": ("L2", "10.0.2.254"), "b": ("L3", "10.0.3.254")})
    return world, topo


def single_hop(seed=11):
    world = SimWorld(seed=seed)
    topo = Topology(world)
    topo.segment("L1", mtu=1500, bandwidth_mbps=100.0, latency_us=20.0)
    topo.host("sender", "L1", "10.0.1.1")
    topo.host("receiver", "L1", "10.0.1.2")
    return world, topo


def transfer(world, topo, pmtud, mss=None, data=BLOB):
    pp = topo.provision("sender", "receiver", pmtud=pmtud)
    pp.send_stream(data, mss=mss)
    world.run_for(5_000_000)
    return pp


class TestDifferentialDelivery:
    """Same blob, three data paths, byte-identical everywhere."""

    def test_single_hop_baseline(self):
        world, topo = single_hop()
        pp = transfer(world, topo, pmtud=False, mss=1400)
        assert pp.received_bytes() == BLOB

    def test_three_hop_in_flight_fragmentation(self):
        world, topo = three_hop()
        pp = transfer(world, topo, pmtud=False, mss=1400)
        assert pp.received_bytes() == BLOB
        # The middle link forced the routers to fragment in flight...
        assert topo.routers["r1"].fwd.fragments_created > 0
        # ...and the receiving host reassembled every datagram.
        assert topo.hosts["receiver"].ip.rx_dropped == 0

    def test_three_hop_pmtud(self):
        world, topo = three_hop()
        pp = transfer(world, topo, pmtud=True)
        assert pp.received_bytes() == BLOB

    def test_all_three_agree(self):
        results = []
        world, topo = single_hop()
        results.append(transfer(world, topo, False, 1400).received_bytes())
        world, topo = three_hop()
        results.append(transfer(world, topo, False, 1400).received_bytes())
        world, topo = three_hop()
        results.append(transfer(world, topo, True).received_bytes())
        assert results[0] == results[1] == results[2] == BLOB


class TestPmtudConvergence:
    def test_discovers_the_min_link_mtu(self):
        world, topo = three_hop()
        pp = topo.provision("sender", "receiver", pmtud=True)
        chain = topo.hop_chain("sender", "receiver")
        assert pp.pmtu == topo.discover().min_mtu(chain) == 600
        sender = topo.hosts["sender"]
        assert sender.ip.pmtu[pp.dst_ip] == 600
        assert sender.icmp.frag_needed_received >= 1
        assert sender.ip.pmtu_updates == 1

    def test_zero_fragments_after_convergence(self):
        """The acceptance gate: once discovery converges, steady-state
        traffic creates no fragments at the source OR in flight."""
        world, topo = three_hop()
        pp = transfer(world, topo, pmtud=True)
        assert pp.received_bytes() == BLOB
        sender_ip_stage = pp.path.stage_of("IP")
        assert sender_ip_stage.fragments_sent == 0
        assert topo.routers["r1"].fwd.fragments_created == 0
        assert topo.routers["r2"].fwd.fragments_created == 0
        # Nothing arrived fragmented, so the receiver reassembled nothing.
        assert pp.sink_path.stage_of("IP").datagrams_reassembled == 0

    def test_mss_tracks_learned_pmtu(self):
        world, topo = three_hop()
        pp = topo.provision("sender", "receiver", pmtud=True)
        # 600 IP bytes - 20 IP header - 8 UDP header = 572 payload bytes.
        assert pp.mss() == 572
        count = pp.send_stream(b"z" * 5720)
        assert count == 10

    def test_oblivious_sender_fragments_without_pmtud(self):
        world, topo = three_hop()
        pp = transfer(world, topo, pmtud=False, mss=1400)
        assert topo.routers["r1"].fwd.fragments_created > 0
        assert topo.hosts["sender"].ip.pmtu == {}


class TestDropLedgers:
    def test_clean_delivery_ledgers_only_the_probe(self):
        """Exactness cuts both ways: a lossless run ledgers nothing
        beyond the single DF discovery probe r1 refused."""
        world, topo = three_hop()
        pp = transfer(world, topo, pmtud=True)
        assert pp.received_bytes() == BLOB
        assert topo.hosts["sender"].drop_ledger() == {}
        assert topo.hosts["receiver"].drop_ledger() == {}
        assert topo.routers["r1"].drop_ledger() == {"df_mtu": 1}
        assert topo.routers["r2"].drop_ledger() == {}

    def test_induced_losses_are_exactly_ledgered(self):
        """Kill the dst route at r2 mid-stream: every datagram that hit
        the gap is ledgered as no_route, and the byte gap matches."""
        world, topo = three_hop()
        pp = topo.provision("sender", "receiver", pmtud=True)
        pp.send_stream(BLOB[:5720])  # 10 datagrams of 572
        world.run_for(3_000_000)
        assert pp.received_bytes() == BLOB[:5720]
        # Sabotage: r2 forgets how to reach the receiver.
        r2 = topo.routers["r2"]
        r2.fwd.routes._routes = [r for r in r2.fwd.routes.routes()
                                 if str(r.network) != "10.0.3.1"]
        pp.send_stream(BLOB[5720:11440])  # 10 more datagrams
        world.run_for(3_000_000)
        assert r2.fwd.no_route_drops == 10
        assert r2.drop_ledger().get("no_route") == 10
        # The received prefix is still exactly the pre-sabotage bytes.
        assert pp.received_bytes() == BLOB[:5720]


class TestDiscovery:
    def test_inventory_shape(self):
        world, topo = three_hop()
        inv = topo.discover()
        assert len(inv.links) == 3
        assert len(inv.devices) == 6  # 2 host NICs + 4 router ports
        kinds = sorted(d.kind for d in inv.devices)
        assert kinds == ["host", "host"] + ["router"] * 4
        assert inv.link("L2").mtu == 600
        assert sorted(inv.nodes_on("L2")) == ["r1", "r2"]
        assert sorted(inv.segments_of("r1")) == ["L1", "L2"]

    def test_adjacency_and_chain(self):
        world, topo = three_hop()
        inv = topo.discover()
        adj = inv.adjacency()
        assert adj["sender"] == ["r1"]
        assert sorted(adj["r1"]) == ["r2", "sender"]
        assert topo.hop_chain("sender", "receiver") == [
            "sender", "r1", "r2", "receiver"]
        assert topo.hop_chain("receiver", "sender") == [
            "receiver", "r2", "r1", "sender"]

    def test_min_mtu_ground_truth(self):
        world, topo = three_hop(mid_mtu=900)
        inv = topo.discover()
        assert inv.min_mtu(["sender", "r1", "r2", "receiver"]) == 900

    def test_render_mentions_everything(self):
        world, topo = three_hop()
        text = topo.discover().render()
        for name in ("sender", "receiver", "r1", "r2", "L1", "L2", "L3"):
            assert name in text

    def test_unreachable_pair_raises(self):
        world = SimWorld(seed=5)
        topo = Topology(world)
        topo.segment("LA", mtu=1500)
        topo.segment("LB", mtu=1500)
        topo.host("a", "LA", "10.0.1.1")
        topo.host("b", "LB", "10.0.2.1")
        with pytest.raises(ValueError):
            topo.hop_chain("a", "b")


class TestProvisionPlumbing:
    def test_chain_and_ports_recorded(self):
        world, topo = three_hop()
        pp = topo.provision("sender", "receiver", remote_port=7777,
                            pmtud=False)
        assert pp.chain == ["sender", "r1", "r2", "receiver"]
        assert pp.dport == 7777
        assert str(pp.dst_ip) == "10.0.3.1"

    def test_gateways_were_set(self):
        world, topo = three_hop()
        topo.provision("sender", "receiver", pmtud=False)
        assert str(topo.hosts["sender"].ip.gateway) == "10.0.1.254"
        assert str(topo.hosts["receiver"].ip.gateway) == "10.0.3.254"

    def test_direct_hosts_provision_without_routers(self):
        world, topo = single_hop()
        pp = topo.provision("sender", "receiver", pmtud=True)
        assert pp.chain == ["sender", "receiver"]
        assert pp.pmtu == 1500  # nothing constricts a single wire
        pp.send_stream(b"q" * 3000)
        world.run_for(1_000_000)
        assert pp.received_bytes() == b"q" * 3000
