"""Unit tests for the experiment harness plumbing (formatters, budgets,
testbed wiring) — the heavy runs live in benchmarks/."""

import os

import pytest

from repro.experiments import (
    EdfRrResult,
    QueueSizingPoint,
    Table1Row,
    Table2Row,
    Testbed,
    format_edf_rr,
    format_queue_sizing,
    format_table1,
    format_table2,
    frames_budget,
)
from repro.mpeg import CANYON, NEPTUNE


class TestFramesBudget:
    def test_caps_long_clips(self):
        os.environ.pop("REPRO_FULL", None)
        assert frames_budget(NEPTUNE, default_cap=400) == 400

    def test_short_clips_uncapped(self):
        from repro.mpeg import FLOWER

        assert frames_budget(FLOWER, default_cap=400) == FLOWER.nframes

    def test_repro_full_lifts_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert frames_budget(NEPTUNE, default_cap=400) == NEPTUNE.nframes


class TestTestbed:
    def test_address_allocation_unique(self):
        testbed = Testbed()
        s1 = testbed.add_video_source(CANYON, dst_port=6100, nframes=1)
        s2 = testbed.add_video_source(CANYON, dst_port=6200, nframes=1)
        assert s1.mac != s2.mac and s1.ip != s2.ip

    def test_arp_learns_hosts_added_after_kernel(self):
        testbed = Testbed()
        kernel = testbed.build_scout()
        source = testbed.add_video_source(CANYON, dst_port=6100, nframes=1)
        assert kernel.arp.resolve(source.ip) == source.mac

    def test_run_until_sources_done_times_out(self):
        testbed = Testbed()
        source = testbed.add_video_source(CANYON, dst_port=6100, nframes=5)
        # Never started: the loop must give up at max_seconds.
        testbed.run_until_sources_done(slack_seconds=0.0, max_seconds=1.0)
        assert not source.done


class TestFormatters:
    def test_table1_formatter(self):
        rows = [Table1Row("Neptune", 400, 49.5, 40.7, 49.9, 39.2)]
        text = format_table1(rows)
        assert "Neptune" in text and "49.5" in text and "39.2" in text
        assert "speedup" in text

    def test_table1_row_speedups(self):
        row = Table1Row("X", 10, 50.0, 40.0, 49.9, 39.2)
        assert row.speedup == pytest.approx(1.25)
        assert row.paper_speedup == pytest.approx(49.9 / 39.2)

    def test_table2_formatter_and_delta(self):
        row = Table2Row("Scout", 50.0, 49.0, 49.9, 49.8, 1500.0)
        assert row.delta_pct == pytest.approx(-2.0)
        text = format_table2([row])
        assert "Scout" in text and "-2.0%" in text

    def test_edf_rr_formatter(self):
        results = [EdfRrResult("edf", 128, 600, 0, 600, 0),
                   EdfRrResult("rr", 128, 464, 136, 600, 0)]
        text = format_edf_rr(results)
        assert "edf" in text and "22.7%" in text

    def test_edf_rr_miss_fraction_guards_zero(self):
        result = EdfRrResult("edf", 16, 0, 0, 0, 0)
        assert result.miss_fraction == 0.0

    def test_queue_sizing_formatter_marks_sufficient(self):
        point = QueueSizingPoint(10_000.0, 16, 48.8, 21_000.0, 3_000.0, 12)
        assert point.predicted_sufficient_inq == 14
        text = format_queue_sizing([point])
        assert "*" in text

    def test_queue_sizing_fast_rtt_floor(self):
        point = QueueSizingPoint(100.0, 2, 49.6, 2_000.0, 3_000.0, 0)
        # RTT below processing time: "two packets is sufficient".
        assert point.predicted_sufficient_inq == 2
