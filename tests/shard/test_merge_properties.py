"""Merged books are algebraically honest (DESIGN.md §17).

``MetricsRegistry.merge`` must be associative and commutative — the
fabric merges shards in whatever order they close their books, and a
merge of merges (per-rack, then fabric-wide) must equal the flat merge.
Hypothesis generates random per-shard registries and checks the
algebra; explicit tests pin the totals-equal-sums and namespacing
contracts the reconciliation gate relies on.
"""

from hypothesis import given, settings, strategies as st

from repro.faults.adversary import DELIVERED, DropLedger
from repro.observe.metrics import MetricsRegistry

NAMES = ("rx_frames", "drops", "queue_depth", "service_us")
LABELS = ({}, {"shard": 0}, {"shard": 1}, {"path": "UDPSINK"})
BOUNDS = (1.0, 10.0, 100.0)


# One registry = a handful of instrument operations.  Values are
# integer-valued floats: float addition is only associative when every
# partial sum is exactly representable, and the algebra laws below are
# about merge structure, not about IEEE rounding.
_counter_op = st.tuples(st.just("counter"), st.sampled_from(NAMES),
                        st.sampled_from(LABELS),
                        st.integers(0, 10**6).map(float))
_gauge_op = st.tuples(st.just("gauge"), st.sampled_from(NAMES),
                      st.sampled_from(LABELS),
                      st.integers(-(10**6), 10**6).map(float))
_hist_op = st.tuples(st.just("hist"), st.sampled_from(NAMES),
                     st.sampled_from(LABELS),
                     st.integers(0, 10**4).map(float))


def _build(ops):
    registry = MetricsRegistry()
    for kind, name, labels, value in ops:
        # One name-kind pairing per registry: suffix the name by kind so
        # random draws never collide a Counter with a Gauge.
        if kind == "counter":
            registry.counter(name + "_c", **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name + "_g", **labels).set(value)
        else:
            registry.histogram(name + "_h", bounds=BOUNDS,
                               **labels).observe(value)
    return registry


registries = st.lists(
    st.one_of(_counter_op, _gauge_op, _hist_op), max_size=8).map(_build)


def canon(registry):
    """Canonical state of every series — exact, not rendered."""
    out = {}
    for key in sorted(registry._series):
        series = registry._series[key]
        state = [type(series).__name__]
        for attr in ("value", "max_value", "min_value", "count", "sum",
                     "min", "max", "buckets", "bounds"):
            if hasattr(series, attr):
                value = getattr(series, attr)
                state.append(tuple(value) if isinstance(value, list)
                             else value)
        out[key] = tuple(state)
    return out


@settings(max_examples=60, deadline=None)
@given(registries, registries)
def test_merge_commutative(ops_a, ops_b):
    ab = MetricsRegistry().merge(ops_a, ops_b)
    ba = MetricsRegistry().merge(ops_b, ops_a)
    assert canon(ab) == canon(ba)


@settings(max_examples=60, deadline=None)
@given(registries, registries, registries)
def test_merge_associative(a, b, c):
    left = MetricsRegistry().merge(MetricsRegistry().merge(a, b), c)
    right = MetricsRegistry().merge(a, MetricsRegistry().merge(b, c))
    flat = MetricsRegistry().merge(a, b, c)
    assert canon(left) == canon(right) == canon(flat)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 100).map(float), max_size=10),
       st.lists(st.integers(0, 100).map(float), max_size=10))
def test_counter_totals_equal_per_shard_sums(increments_a, increments_b):
    shards = []
    for shard_id, increments in ((0, increments_a), (1, increments_b)):
        registry = MetricsRegistry()
        counter = registry.counter("rx", shard=shard_id)
        for amount in increments:
            counter.inc(amount)
        shards.append(registry)
    merged = MetricsRegistry().merge(*shards)
    assert merged.total("rx") == sum(increments_a) + sum(increments_b)


def test_merge_into_self_view_does_not_mutate_sources():
    source = MetricsRegistry()
    source.counter("c").inc(5)
    MetricsRegistry().merge(source, source)
    assert source.counter("c").value == 5


def test_histogram_bounds_mismatch_raises():
    import pytest
    a = MetricsRegistry()
    a.histogram("h", bounds=(1, 2)).observe(1)
    b = MetricsRegistry()
    b.histogram("h", bounds=(1, 3)).observe(1)
    with pytest.raises(ValueError, match="bounds"):
        MetricsRegistry().merge(a, b)


def test_type_conflict_raises():
    import pytest
    a = MetricsRegistry()
    a.counter("x").inc()
    b = MetricsRegistry()
    b.gauge("x").set(1)
    with pytest.raises(TypeError):
        MetricsRegistry().merge(a, b)


class TestLedgerMerge:
    def test_namespaced_serials_never_alias(self):
        ledgers = {}
        for shard in range(3):
            ledger = DropLedger()
            ledger.inject(7)  # same local serial everywhere
            ledger.account(7, DELIVERED)
            ledgers[shard] = ledger
        merged = DropLedger.merge(ledgers)
        assert merged.injected == 3
        assert merged.count(DELIVERED) == 3
        assert not merged.leaks() and not merged.double_counted

    def test_totals_are_per_shard_sums(self):
        ledgers = {}
        expected = {}
        for shard, (delivered, dropped) in enumerate(((5, 2), (3, 0), (0, 4))):
            ledger = DropLedger()
            serial = 0
            for _ in range(delivered):
                ledger.inject(serial)
                ledger.account(serial, DELIVERED)
                serial += 1
            for _ in range(dropped):
                ledger.inject(serial)
                ledger.account(serial, "inq_overflow")
                serial += 1
            ledgers[shard] = ledger
            expected[shard] = (delivered, dropped)
        merged = DropLedger.merge(ledgers)
        assert merged.count(DELIVERED) == sum(d for d, _ in expected.values())
        assert merged.count("inq_overflow") == sum(
            x for _, x in expected.values())
        assert merged.injected == sum(sum(pair) for pair in expected.values())

    def test_leaks_and_doubles_survive_namespaced(self):
        leaky = DropLedger()
        leaky.inject(0)  # never accounted
        doubled = DropLedger()
        doubled.inject(0)
        doubled.account(0, DELIVERED)
        doubled.account(0, "inq_overflow")
        merged = DropLedger.merge({1: leaky, 2: doubled})
        assert merged.leaks() == [(1, 0)]
        assert merged.double_counted == [((2, 0), DELIVERED, "inq_overflow")]
