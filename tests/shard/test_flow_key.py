"""Key stability for the public ``flow_key`` helper (DESIGN.md §17).

The dispatcher and the flow cache must agree on what a flow *is*: the
same 19 peeked bytes, whether the frame is a ``Msg`` inside a kernel or
raw bytes at the fabric's RX boundary.  These tests pin that contract —
if either representation drifted, a flow could classify on one shard
and dispatch to another.
"""

from repro.core import Msg, flow_key, flow_key_frame, flow_key_ipv4_udp
from repro.net.addresses import EthAddr, IpAddr
from repro.net.packets import build_udp_frame

from .conftest import udp_frame


class TestFlowKeyStability:
    def test_msg_and_frame_forms_agree(self):
        frame = udp_frame(3, 17)
        assert flow_key(Msg(frame)) == flow_key_frame(frame)

    def test_same_flow_same_key(self):
        assert flow_key_frame(udp_frame(5, 0)) == \
            flow_key_frame(udp_frame(5, 999, payload=b"x" * 200))

    def test_distinct_ports_distinct_keys(self):
        keys = {flow_key_frame(udp_frame(flow, 0)) for flow in range(32)}
        assert len(keys) == 32

    def test_key_is_the_19_peeked_bytes(self):
        frame = udp_frame(0, 0)
        key = flow_key_frame(frame)
        assert key == frame[0:6] + frame[23:24] + frame[26:38]

    def test_key_stable_across_payload_sizes(self):
        keys = {flow_key_frame(udp_frame(1, 0, payload=b"p" * n))
                for n in (1, 10, 100, 1000)}
        assert len(keys) == 1

    def test_legacy_alias_is_same_function(self):
        assert flow_key_ipv4_udp is flow_key


class TestFlowKeyDeclines:
    """Traffic the key must refuse: anything the fast path cannot own."""

    def test_short_frame(self):
        assert flow_key_frame(b"\x00" * 20) is None

    def test_non_ipv4_ethertype(self):
        frame = bytearray(udp_frame(0, 0))
        frame[12:14] = b"\x08\x06"  # ARP
        assert flow_key_frame(bytes(frame)) is None

    def test_non_udp_protocol(self):
        frame = bytearray(udp_frame(0, 0))
        frame[23] = 6  # TCP
        assert flow_key_frame(bytes(frame)) is None

    def test_fragment_declines(self):
        frame = bytearray(udp_frame(0, 0))
        frame[20] = 0x20  # more-fragments flag
        assert flow_key_frame(bytes(frame)) is None

    def test_msg_form_declines_identically(self):
        frame = bytearray(udp_frame(0, 0))
        frame[23] = 6
        assert flow_key(Msg(bytes(frame))) is None


def test_different_dst_mac_different_key():
    a = build_udp_frame(EthAddr("02:00:00:00:00:02"),
                        EthAddr("02:00:00:00:00:01"),
                        IpAddr("10.0.0.2"), IpAddr("10.0.0.1"),
                        7000, 6100, b"p")
    b = build_udp_frame(EthAddr("02:00:00:00:00:02"),
                        EthAddr("02:00:00:00:00:99"),
                        IpAddr("10.0.0.2"), IpAddr("10.0.0.1"),
                        7000, 6100, b"p")
    ka, kb = flow_key_frame(bytes(a)), flow_key_frame(bytes(b))
    assert ka is not None and kb is not None and ka != kb
