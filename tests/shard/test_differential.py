"""Differential parity: sharding must be observably invisible.

The fabric's core claim is that flow-hash dispatch changes *where* a
flow runs, never *what happens to it*: the same seeded workload pushed
through one kernel and through ``ShardedKernel(shards=4)`` must yield
byte-identical per-flow payload streams and exactly-equal merged drop
ledgers.  This is the shard analogue of the specialized-tier
differential suite (``tests/specialize/test_differential.py``): equal,
not merely close.

Why this holds: every flow rides exactly one kernel in both
configurations, each ``offer`` runs its shards to quiescence before the
next, and per-path input-queue overflow depends only on that flow's own
frames — so a flow's fate sequence is a function of its frames and its
sink parameters, not of which shard it shares with whom.
"""

import pytest

from repro.faults.adversary import DELIVERED
from repro.shard import ShardedKernel

from .conftest import fabric_ports, interleaved_workload, udp_frame


def run_fabric(shards: int, flows: int, offers, **kwargs) -> ShardedKernel:
    fabric = ShardedKernel(shards=shards, mode="threads",
                           ports=fabric_ports(flows), **kwargs)
    for frames in offers:
        fabric.offer(frames)
    fabric.finish()
    return fabric


def assert_fabrics_agree(baseline: ShardedKernel, sharded: ShardedKernel):
    assert baseline.flow_streams.keys() == sharded.flow_streams.keys()
    for key in baseline.flow_streams:
        assert baseline.flow_streams[key] == sharded.flow_streams[key], \
            f"flow {key.hex()} payload streams diverge"
    books_a = baseline.finish()
    books_b = sharded.finish()
    assert books_a.ledger.counts() == books_b.ledger.counts()
    assert books_a.ok and books_b.ok


class TestCleanWorkloadParity:
    def test_one_vs_four_shards(self):
        offers = [interleaved_workload(8, 6, start=i * 48)
                  for i in range(4)]
        assert_fabrics_agree(run_fabric(1, 8, offers, batch=8),
                             run_fabric(4, 8, offers, batch=8))

    def test_delivery_totals(self):
        offers = [interleaved_workload(8, 6, start=i * 48)
                  for i in range(4)]
        fabric = run_fabric(4, 8, offers, batch=8)
        assert fabric.finish().ledger.counts() == {
            DELIVERED: 8 * 6 * 4}

    def test_unbatched_sinks_agree_too(self):
        offers = [interleaved_workload(5, 4, start=i * 20)
                  for i in range(2)]
        assert_fabrics_agree(run_fabric(1, 5, offers, batch=1),
                             run_fabric(4, 5, offers, batch=1))


class TestOverloadParity:
    """Parity must survive drops, not just clean delivery."""

    def test_overflowing_workload_drops_identically(self):
        # 24-frame bursts per flow into 16-deep per-flow inqs: part of
        # every burst overflows, and exactly the same frames must
        # overflow in both configurations.
        offers = [interleaved_workload(16, 1, burst_len=24, start=i * 384)
                  for i in range(3)]
        baseline = run_fabric(1, 16, offers, batch=8, inq_len=16)
        sharded = run_fabric(4, 16, offers, batch=8, inq_len=16)
        counts = baseline.finish().ledger.counts()
        assert counts.get("inq_overflow", 0) > 0, \
            "workload failed to provoke any overflow drops"
        assert_fabrics_agree(baseline, sharded)

    def test_two_vs_four_shards(self):
        offers = [interleaved_workload(12, 1, burst_len=24, start=i * 288)
                  for i in range(2)]
        assert_fabrics_agree(
            run_fabric(2, 12, offers, batch=4, inq_len=16),
            run_fabric(4, 12, offers, batch=4, inq_len=16))


class TestSpecializedTierParity:
    """The specialized execution tier engages per-shard and must not
    perturb parity (the CI matrix re-runs this whole module with
    ``REPRO_SPECIALIZE=1``; this test forces the tier explicitly so it
    is exercised either way)."""

    def test_specialized_vs_interpreted_fabric(self):
        offers = [interleaved_workload(6, 8, start=i * 48)
                  for i in range(3)]
        assert_fabrics_agree(
            run_fabric(4, 6, offers, batch=8, specialize=False),
            run_fabric(4, 6, offers, batch=8, specialize=True))

    def test_specialized_one_vs_four(self):
        offers = [interleaved_workload(6, 8, start=i * 48)
                  for i in range(3)]
        assert_fabrics_agree(
            run_fabric(1, 6, offers, batch=8, specialize=True),
            run_fabric(4, 6, offers, batch=8, specialize=True))


class TestRebalanceParity:
    def test_rebalanced_flow_stream_unchanged(self):
        from repro.core import flow_key_frame
        key = flow_key_frame(udp_frame(3, 0))
        offers = [interleaved_workload(8, 4, start=i * 32)
                  for i in range(2)]

        plain = run_fabric(4, 8, offers, batch=8)

        moved = ShardedKernel(shards=4, mode="threads", batch=8,
                              ports=fabric_ports(8))
        moved.offer(offers[0])
        home = moved.dispatcher.shard_for_key(key)
        moved.rebalance(key, (home + 1) % 4)
        moved.offer(offers[1])
        moved.finish()

        assert_fabrics_agree(plain, moved)
        assert moved.dispatcher.pins[key] == (home + 1) % 4


@pytest.mark.parametrize("seed", [0, 7, 1234])
def test_seed_invariance_of_parity(seed):
    offers = [interleaved_workload(8, 5)]
    assert_fabrics_agree(run_fabric(1, 8, offers, batch=8, seed=seed),
                         run_fabric(4, 8, offers, batch=8, seed=seed))
