"""The shard ring codec: exact round trips, loud refusals."""

import pytest

from repro.shard.codec import (
    CodecError,
    decode_batch,
    decode_fates,
    encode_batch,
    encode_fates,
)

from .conftest import udp_frame


class TestBatchRoundTrip:
    def test_frames_and_metas_survive(self):
        frames = [udp_frame(f, s) for f in range(3) for s in range(4)]
        metas = [{"shard_serial": i, "flow": b"\x01" * 19, "note": "x",
                  "ratio": 0.5, "flag": True, "nothing": None}
                 for i in range(len(frames))]
        out_frames, out_metas = decode_batch(encode_batch(frames, metas))
        assert out_frames == frames
        assert out_metas == metas

    def test_empty_batch(self):
        assert decode_batch(encode_batch([], [])) == ([], [])

    def test_missing_metas_decode_empty(self):
        frames = [udp_frame(0, 0)]
        _, metas = decode_batch(encode_batch(frames))
        assert metas == [{}]

    def test_negative_and_large_ints(self):
        _, metas = decode_batch(encode_batch(
            [b"f"], [{"a": -1, "b": 2**62}]))
        assert metas == [{"a": -1, "b": 2**62}]


class TestRefusals:
    def test_non_scalar_meta_raises_at_encode(self):
        with pytest.raises(CodecError, match="scalars"):
            encode_batch([b"f"], [{"bad": [1, 2]}])

    def test_meta_count_mismatch(self):
        with pytest.raises(CodecError):
            encode_batch([b"a", b"b"], [{}])

    def test_wrong_magic(self):
        with pytest.raises(CodecError, match="magic"):
            decode_batch(b"XXXX" + encode_batch([b"f"])[4:])

    def test_torn_blob(self):
        blob = encode_batch([udp_frame(0, 0)])
        with pytest.raises(CodecError, match="short read"):
            decode_batch(blob[:-3])

    def test_trailing_garbage(self):
        with pytest.raises(CodecError, match="trailing"):
            decode_batch(encode_batch([b"f"]) + b"!")


class TestFatesRoundTrip:
    def test_delivered_and_dropped(self):
        fates = [(0, "delivered", b"payload"),
                 (1, "inq_overflow", None),
                 (2, "shard_failover", None),
                 (3, "delivered", b"")]
        assert decode_fates(encode_fates(fates)) == fates

    def test_empty(self):
        assert decode_fates(encode_fates([])) == []

    def test_torn_fates(self):
        blob = encode_fates([(7, "delivered", b"x" * 50)])
        with pytest.raises(CodecError):
            decode_fates(blob[:-10])
