"""Chaos: kill a shard worker mid-storm; the books must stay exact.

The scenario is the ``adv_queue_storm`` profile's traffic shape —
phase-locked bursts of ``w`` frames per flow, hot enough to provoke
queue pressure — with one worker killed between bursts.  Required
outcome (DESIGN.md §17): every flow the dead shard carried is re-pinned
onto a live shard and keeps delivering; every frame that was in flight
to the dead worker is ledgered ``shard_failover`` — exactly those
frames, no more, no fewer; and no frame is ever delivered twice.
"""

import pytest

from repro.core import flow_key_frame
from repro.faults.adversary import DELIVERED
from repro.faults.plan import PROFILES
from repro.shard import SHARD_FAILOVER, ShardedKernel
from repro.shard.dispatch import shard_of

from .conftest import fabric_ports, interleaved_workload

FLOWS = 12
SHARDS = 4
#: Burst width from the queue-storm adversary profile.
STORM_W = PROFILES["adv_queue_storm"].adversary.w


def storm_burst(burst_index: int):
    """One phase-locked burst: every flow fires ``w`` frames back to back."""
    return interleaved_workload(FLOWS, 1, burst_len=STORM_W,
                                start=burst_index * FLOWS * STORM_W)


class TestKillOneShard:
    def run_storm_with_kill(self, mode: str):
        fabric = ShardedKernel(shards=SHARDS, mode=mode, batch=8,
                               ports=fabric_ports(FLOWS),
                               inq_len=2 * STORM_W)
        victim = 1
        victim_flows = {flow for flow in range(FLOWS)
                        if shard_of(flow_key_frame(
                            storm_burst(0)[flow * STORM_W]),
                            SHARDS) == victim}
        assert victim_flows, "hash placed no flows on the victim shard"

        fabric.offer(storm_burst(0))         # warm: all shards deliver
        fabric.kill_shard(victim)
        doomed = storm_burst(1)              # in flight when death detected
        fates = fabric.offer(doomed)
        fabric.offer(storm_burst(2))         # rerouted traffic delivers
        books = fabric.finish()
        return fabric, books, fates, victim, victim_flows

    @pytest.mark.parametrize("mode", ["threads"])
    def test_failover_exactness(self, mode):
        fabric, books, fates, victim, victim_flows = \
            self.run_storm_with_kill(mode)

        # 1. the ledgered failover serials are exactly the doomed frames
        expected_failover = len(victim_flows) * STORM_W
        counts = books.ledger.counts()
        assert counts.get(SHARD_FAILOVER, 0) == expected_failover
        assert sum(1 for _, cat, _ in fates
                   if cat == SHARD_FAILOVER) == expected_failover

        # 2. every live flow re-pinned off the dead shard
        assert fabric.dispatcher.dead == {victim}
        for flow_key in fabric.dispatcher.flows_on_shard[victim]:
            assert fabric.dispatcher.pins[flow_key] != victim
            assert fabric.dispatcher.pins[flow_key] not in \
                fabric.dispatcher.dead

        # 3. no double delivery, no leaks, conservation holds
        assert books.ledger.double_counted == []
        assert books.reconciliation["leaks"] == []
        assert books.reconciliation["conserved"]
        assert books.ok

        # 4. totals: 3 bursts injected, one burst of the victim's flows
        #    failed over, everything else delivered
        injected = 3 * FLOWS * STORM_W
        assert books.reconciliation["injected"] == injected
        assert counts[DELIVERED] == injected - expected_failover

    @pytest.mark.parametrize("mode", ["threads"])
    def test_orphaned_flows_keep_delivering(self, mode):
        fabric, _books, _fates, victim, victim_flows = \
            self.run_storm_with_kill(mode)
        # Each flow delivered its first and third bursts; the victim's
        # flows lost exactly the middle one.
        for key, stream in fabric.flow_streams.items():
            flow_bursts = len(stream) // STORM_W
            if shard_of(key, SHARDS) == victim:
                assert flow_bursts == 2
            else:
                assert flow_bursts == 3
            # in-order, duplicate-free payloads
            assert len(set(stream)) == len(stream)
            assert stream == sorted(stream)

    def test_process_mode_failover_matches_threads(self):
        _, books_t, _, _, _ = self.run_storm_with_kill("threads")
        _, books_p, _, _, _ = self.run_storm_with_kill("process")
        assert books_t.ledger.counts() == books_p.ledger.counts()
        assert books_p.ok


def test_kill_then_finish_without_further_traffic():
    """Books must close cleanly even if the dead shard is never probed
    by later traffic (its acked history stays; nothing leaks)."""
    fabric = ShardedKernel(shards=SHARDS, mode="threads", batch=8,
                           ports=fabric_ports(8))
    fabric.offer(interleaved_workload(8, 2))
    fabric.kill_shard(2)
    books = fabric.finish()
    assert books.reconciliation["leaks"] == []
    assert books.reconciliation["conserved"]


def test_control_plane_shards_stay_exact():
    """With per-shard watchdogs + shedder active the books still close
    exactly (bounded-slice quiescence instead of run-until-idle)."""
    fabric = ShardedKernel(shards=2, mode="threads", batch=8,
                           ports=fabric_ports(6), control_plane=True)
    for i in range(3):
        fabric.offer(interleaved_workload(6, 4, start=i * 24))
    books = fabric.finish()
    assert books.ok
    view = books.governor_view()
    assert set(view) == {0, 1}
    for row in view.values():
        assert row["stalls_detected"] == 0
