"""Flow-hash dispatch: stable placement, pins, dead-shard failover."""

import zlib

import pytest

from repro.core import flow_key_frame
from repro.shard.dispatch import FlowDispatcher, shard_of

from .conftest import interleaved_workload, udp_frame


class TestPlacement:
    def test_stable_hash(self):
        key = flow_key_frame(udp_frame(0, 0))
        assert shard_of(key, 4) == zlib.crc32(key) % 4

    def test_same_flow_same_shard_always(self):
        dispatcher = FlowDispatcher(4)
        targets = set()
        for sequence in range(20):
            runs = dispatcher.dispatch([udp_frame(9, sequence)])
            targets.update(runs)
        assert len(targets) == 1

    def test_one_shard_gets_everything(self):
        dispatcher = FlowDispatcher(1)
        runs = dispatcher.dispatch(interleaved_workload(8, 3))
        assert list(runs) == [0]
        assert len(runs[0][0]) == 24

    def test_order_preserved_within_shard(self):
        dispatcher = FlowDispatcher(4)
        frames = interleaved_workload(8, 5)
        runs = dispatcher.dispatch(frames)
        for shard_frames, _ in runs.values():
            positions = [frames.index(f) for f in shard_frames]
            assert positions == sorted(positions)

    def test_metas_travel_with_their_frames(self):
        dispatcher = FlowDispatcher(4)
        frames = interleaved_workload(6, 2)
        metas = [{"i": i} for i in range(len(frames))]
        runs = dispatcher.dispatch(frames, metas)
        for shard_frames, shard_metas in runs.values():
            for frame, meta in zip(shard_frames, shard_metas):
                assert frames[meta["i"]] == frame

    def test_non_flow_goes_to_lowest_live_shard(self):
        dispatcher = FlowDispatcher(4)
        arp = bytearray(udp_frame(0, 0))
        arp[12:14] = b"\x08\x06"
        runs = dispatcher.dispatch([bytes(arp)])
        assert list(runs) == [0]
        assert dispatcher.non_flow_frames == 1
        dispatcher.mark_dead(0)
        runs = dispatcher.dispatch([bytes(arp)])
        assert list(runs) == [1]


class TestPinsAndFailover:
    def test_pin_wins_over_hash(self):
        dispatcher = FlowDispatcher(4)
        key = flow_key_frame(udp_frame(2, 0))
        home = shard_of(key, 4)
        target = (home + 1) % 4
        dispatcher.repin(key, target)
        runs = dispatcher.dispatch([udp_frame(2, 1)])
        assert list(runs) == [target]

    def test_cannot_pin_to_dead_shard(self):
        dispatcher = FlowDispatcher(4)
        dispatcher.mark_dead(2)
        with pytest.raises(ValueError):
            dispatcher.repin(flow_key_frame(udp_frame(0, 0)), 2)

    def test_dead_shard_reroutes_to_live_and_pins(self):
        dispatcher = FlowDispatcher(4)
        frames = interleaved_workload(16, 1)
        first = dispatcher.dispatch(frames)
        victim = max(first, key=lambda s: len(first[s][0]))
        orphans = dispatcher.mark_dead(victim)
        assert orphans == {flow_key_frame(f) for f in first[victim][0]}
        second = dispatcher.dispatch(frames)
        assert victim not in second
        # every orphaned flow now has a durable pin on a live shard
        for key in orphans:
            assert dispatcher.pins[key] not in dispatcher.dead

    def test_failover_mapping_stable_as_live_set_shrinks(self):
        dispatcher = FlowDispatcher(4)
        frames = interleaved_workload(16, 1)
        dispatcher.dispatch(frames)
        dispatcher.mark_dead(1)
        after_first = {k: dispatcher.shard_for_key(k)
                       for k in map(flow_key_frame, frames)}
        dispatcher.mark_dead(2)
        for key, shard in after_first.items():
            if shard != 2:
                # flows that were NOT on the newly-dead shard stay put
                assert dispatcher.shard_for_key(key) == shard

    def test_all_dead_raises(self):
        dispatcher = FlowDispatcher(2)
        dispatcher.mark_dead(0)
        dispatcher.mark_dead(1)
        with pytest.raises(RuntimeError, match="all shards are dead"):
            dispatcher.dispatch([udp_frame(0, 0)])

    def test_mark_unknown_shard_raises(self):
        with pytest.raises(ValueError):
            FlowDispatcher(2).mark_dead(5)
