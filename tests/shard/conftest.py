"""Shared workload builders for the shard fabric suite.

Every test drives the fabric with the same kind of traffic the
dispatcher was built for: seeded multi-flow UDP floods aimed at the
fabric's replicated local address, flows distinguished by source port.
"""

from __future__ import annotations

import pytest

from repro.net.addresses import EthAddr, IpAddr
from repro.net.packets import build_udp_frame

LOCAL_MAC = EthAddr("02:00:00:00:00:01")
LOCAL_IP = IpAddr("10.0.0.1")
REMOTE_MAC = EthAddr("02:00:00:00:00:02")
REMOTE_IP = IpAddr("10.0.0.2")
SINK_PORT = 6100


def udp_frame(flow: int, sequence: int, payload: bytes = b"") -> bytes:
    """One frame of flow *flow*: source port 7000+flow, sink 6100+flow.

    Every flow owns its destination port and therefore its own sink
    *path* on whichever shard it lands — that per-flow path is what
    makes input-queue overflow a function of the flow's own frames
    alone, independent of which flows share its shard (the invariant
    the differential parity suite leans on).
    """
    body = payload or b"flow%02d-%06d" % (flow, sequence)
    return bytes(build_udp_frame(REMOTE_MAC, LOCAL_MAC, REMOTE_IP, LOCAL_IP,
                                 7000 + flow, SINK_PORT + flow, body))


def fabric_ports(flows: int):
    """The sink ports a fabric must open to serve *flows* flows."""
    return tuple(SINK_PORT + flow for flow in range(flows))


def interleaved_workload(flows: int, bursts: int, burst_len: int = 1,
                         start: int = 0):
    """Round-robin bursts across *flows*: the steady dispatch workload."""
    frames = []
    sequence = start
    for _ in range(bursts):
        for flow in range(flows):
            for _ in range(burst_len):
                frames.append(udp_frame(flow, sequence))
                sequence += 1
    return frames


@pytest.fixture
def workload():
    return interleaved_workload
