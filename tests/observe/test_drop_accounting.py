"""Drop accounting consistency: clear(), teardown, and watchdog rebuild.

The hardening target: no discard path may lose messages without the drop
trail saying why.  ``PathQueue.clear``/``drain`` fire the same listeners
as overflow rejections, ``Path.delete`` funnels queued work through
``note_drop``, and the watchdog labels its teardown casualties
``watchdog_rebuild`` — so metrics never go negative and observers never
leak open queue-wait spans.
"""

from repro.core import Attrs, BWD, Msg, PathQueue, path_create
from repro.faults import PathWatchdog
from repro.observe import Observatory
from repro.sim.engine import Engine

from ..helpers import make_chain


class TestQueueClear:
    def test_clear_counts_and_reports_each_item(self):
        queue = PathQueue(maxlen=8)
        dropped = []
        queue.on_drop(lambda q, item, reason: dropped.append((item, reason)))
        for i in range(5):
            queue.enqueue(i)
        assert queue.clear("rebuild") == 5
        assert queue.dropped == 5
        assert dropped == [(i, "rebuild") for i in range(5)]
        assert len(queue) == 0

    def test_drain_returns_the_discarded_items(self):
        queue = PathQueue(maxlen=8)
        queue.enqueue("a")
        queue.enqueue("b")
        assert queue.drain() == ["a", "b"]
        assert queue.dropped == 2

    def test_clear_of_empty_queue_is_a_noop(self):
        queue = PathQueue(maxlen=8)
        fired = []
        queue.on_drop(lambda q, item, reason: fired.append(item))
        assert queue.clear() == 0
        assert queue.dropped == 0
        assert fired == []


class TestPathTeardown:
    def _traced_path(self):
        engine = Engine()
        observatory = Observatory(engine)
        _, routers = make_chain("A", "B", "C")
        from repro.core import PA_TRACE

        path = path_create(routers[0], Attrs({PA_TRACE: observatory}))
        return engine, observatory, path

    def test_delete_accounts_queued_messages_as_teardown_drops(self):
        engine, observatory, path = self._traced_path()
        inq = path.input_queue(BWD)
        for i in range(3):
            inq.enqueue(Msg(b"m%d" % i))
        path.delete()
        stats = path.stats
        assert stats.drops == 3
        assert stats.drop_reasons == {"path_teardown": 3}
        alias = observatory.recorder.alias_for(path)
        assert observatory.metrics.total("path_drops_total", path=alias,
                                         category="path_teardown") == 3
        assert observatory.metrics.total("queue_drops_total",
                                         path=alias) == 3

    def test_delete_closes_open_queue_wait_spans(self):
        engine, observatory, path = self._traced_path()
        inq = path.input_queue(BWD)
        msgs = [Msg(b"x"), Msg(b"y")]
        for msg in msgs:
            inq.enqueue(msg)
        assert observatory.recorder.open_count() == 2
        path.delete()
        assert observatory.recorder.open_count() == 0
        waits = [s for s in observatory.recorder.spans
                 if s.kind == "queue_wait"]
        assert len(waits) == 2
        assert all(s.detail == "dropped:path_teardown" for s in waits)

    def test_no_metric_goes_negative_across_teardown(self):
        engine, observatory, path = self._traced_path()
        inq = path.input_queue(BWD)
        for i in range(4):
            inq.enqueue(Msg(b"z"))
        inq.dequeue()
        path.delete()
        alias = observatory.recorder.alias_for(path)
        for series in observatory.metrics.series(path=alias):
            value = getattr(series, "value", None)
            if value is not None:
                assert value >= 0, series.name

    def test_delete_twice_does_not_double_count(self):
        engine, observatory, path = self._traced_path()
        path.input_queue(BWD).enqueue(Msg(b"once"))
        path.delete()
        drops = path.stats.drops
        path.delete()
        assert path.stats.drops == drops


class TestWatchdogRebuildAccounting:
    def _stalled_world(self):
        """A real path that receives demand but never produces output."""
        engine = Engine()
        observatory = Observatory(engine)
        _, routers = make_chain("A", "B", "C")
        from repro.core import PA_TRACE

        attrs = Attrs({PA_TRACE: observatory})
        path = path_create(routers[0], attrs)
        rebuilt = []

        def rebuild():
            fresh = path_create(routers[0], attrs)
            rebuilt.append(fresh)
            return fresh

        dog = PathWatchdog(engine, path, rebuild, check_interval_us=10.0,
                           stall_budget_us=50.0, backoff_base_us=5.0,
                           backoff_max_us=40.0,
                           observatory=observatory).start()

        def offer():
            if path.state != "deleted":
                path.input_queue(BWD).try_enqueue(Msg(b"stuck"))
            engine.schedule(10.0, offer)

        engine.schedule(10.0, offer)
        return engine, observatory, path, dog, rebuilt

    def test_rebuild_drops_are_categorised_and_spans_closed(self):
        engine, observatory, path, dog, rebuilt = self._stalled_world()
        engine.run_until(500.0)
        assert dog.stalls_detected >= 1
        assert rebuilt  # a replacement exists
        assert path.stats.drop_reasons.get("watchdog_rebuild", 0) > 0
        assert "path_teardown" not in path.stats.drop_reasons
        alias = observatory.recorder.alias_for(path)
        assert observatory.metrics.total(
            "path_drops_total", path=alias,
            category="watchdog_rebuild") == path.stats.drops
        # Queue-wait spans of the torn-down path were closed, not leaked.
        stuck_waits = [s for s in observatory.recorder.spans
                       if s.kind == "queue_wait" and s.path == alias
                       and s.detail == "dropped:watchdog_rebuild"]
        assert len(stuck_waits) == path.stats.drops

    def test_watchdog_incidents_recorded(self):
        engine, observatory, path, dog, rebuilt = self._stalled_world()
        engine.run_until(500.0)
        incidents = [s.label for s in observatory.recorder.spans
                     if s.kind == "incident"]
        assert "watchdog_stall" in incidents
        assert "watchdog_rebuilt" in incidents
        assert observatory.metrics.total("incidents_total",
                                         type="watchdog_stall") \
            == dog.stalls_detected


class TestGovernorObservability:
    def _pressured_governor(self):
        from repro.faults import DegradationGovernor
        from ..faults.test_degrade import FakeKernel, FakePath

        engine = Engine()
        observatory = Observatory(engine)
        path, kernel = FakePath(), FakeKernel()
        governor = DegradationGovernor(
            engine, kernel, path, check_interval_us=100.0,
            high_occupancy=0.75, low_occupancy=0.25, drop_threshold=4,
            max_skip=8, healthy_checks=1, observatory=observatory).start()
        return engine, observatory, path, kernel, governor

    def test_escalation_emits_incident_and_skip_gauge(self):
        engine, observatory, path, kernel, governor = \
            self._pressured_governor()
        for i in range(4):
            path.input_queue(0).enqueue(i)  # occupancy 1.0
        engine.run_until(101.0)
        assert governor.escalations == 1
        assert observatory.metrics.total("incidents_total",
                                         type="governor_escalate") == 1
        alias = observatory.recorder.alias_for(path)
        gauge = observatory.metrics.get("governor_skip", path=alias)
        assert gauge.value == 2
        occupancy = observatory.metrics.get("governor_inq_occupancy",
                                            path=alias)
        assert occupancy.value == 1.0

    def test_deescalation_emits_incident(self):
        engine, observatory, path, kernel, governor = \
            self._pressured_governor()
        kernel.set_frame_skip(path, 4)  # start degraded, queue calm
        engine.run_until(101.0)
        assert governor.deescalations == 1
        assert observatory.metrics.total("incidents_total",
                                         type="governor_deescalate") == 1
