"""Property-based tests: queue invariants and trace-span well-formedness.

Two families of invariants the observability layer leans on:

* :class:`PathQueue` bookkeeping must balance under *any* operation
  sequence — capacity is never exceeded, items come out in discipline
  order, and the listener streams see exactly the events the totals
  claim (the reconciliation layer is built on those listeners);
* every span a recorder emits must be well-formed — ends after it
  starts, nests under its parent's stack, and every queue-wait opened by
  an enqueue is closed by exactly one dequeue or drop.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.core import LifoPathQueue, PathQueue
from repro.observe import QUEUE_WAIT, STAGE, TraceRecorder

#: A random queue workload: enqueue a fresh item, dequeue, or clear.
OPS = st.lists(st.sampled_from(["enq", "deq", "clear"]),
               min_size=0, max_size=60)
CAPS = st.integers(min_value=0, max_value=8)


def _drive(queue, ops):
    """Apply *ops*, mirroring into a model deque; return the model."""
    model = deque()
    counter = 0
    for op in ops:
        if op == "enq":
            counter += 1
            if queue.try_enqueue(counter):
                model.append(counter)
        elif op == "deq":
            if queue.is_empty():
                assert queue.try_dequeue() is None
            else:
                got = queue.dequeue()
                want = model.popleft() if type(queue) is PathQueue \
                    else model.pop()
                assert got == want
        else:
            queue.clear()
            model.clear()
        assert len(queue) == len(model)
        assert queue.maxlen is None or len(queue) <= queue.maxlen
    return model


@settings(max_examples=60, deadline=None)
@given(maxlen=CAPS, ops=OPS)
def test_fifo_queue_matches_model_and_balances(maxlen, ops):
    queue = PathQueue(maxlen=maxlen)
    model = _drive(queue, ops)
    assert list(queue) == list(model)
    # Conservation: every accepted item either left, was cleared (a drop
    # that *was* enqueued), or is still waiting.  Rejections are drops
    # that never counted as enqueued, so subtract them from the balance.
    assert queue.enqueued - queue.dequeued - len(queue) \
        == queue.dropped - _overflow_rejections(queue, ops, maxlen)
    assert queue.high_watermark <= (maxlen if maxlen is not None else 1 << 60)


def _overflow_rejections(queue, ops, maxlen):
    """Replay to count rejections (drops of items never accepted)."""
    replay = PathQueue(maxlen=maxlen)
    rejected = 0
    for op in ops:
        if op == "enq":
            if not replay.try_enqueue(object()):
                rejected += 1
        elif op == "deq":
            replay.try_dequeue()
        else:
            replay.clear()
    return rejected


@settings(max_examples=60, deadline=None)
@given(maxlen=st.integers(min_value=1, max_value=8), ops=OPS)
def test_lifo_queue_matches_model(maxlen, ops):
    model = _drive(LifoPathQueue(maxlen=maxlen), ops)
    assert isinstance(model, deque)


@settings(max_examples=60, deadline=None)
@given(maxlen=CAPS, ops=OPS)
def test_listener_counts_match_totals(maxlen, ops):
    """The listener streams are the metrics layer's ground truth: they
    must fire exactly once per counted event, including clear()."""
    queue = PathQueue(maxlen=maxlen)
    seen = {"enq": 0, "deq": 0, "drop": 0}
    queue.on_enqueue(lambda q: seen.__setitem__("enq", seen["enq"] + 1))
    queue.on_dequeue(lambda q: seen.__setitem__("deq", seen["deq"] + 1))
    queue.on_drop(lambda q, item, reason: seen.__setitem__(
        "drop", seen["drop"] + 1))
    _drive(queue, ops)
    assert seen["enq"] == queue.enqueued
    assert seen["deq"] == queue.dequeued
    assert seen["drop"] == queue.dropped


@settings(max_examples=60, deadline=None)
@given(maxlen=CAPS, ops=OPS)
def test_every_enqueue_span_closes_by_dequeue_or_drop(maxlen, ops):
    """Wire a recorder to a queue exactly the way PathObserver does and
    check span conservation: opened waits == closed waits, and nothing
    stays open once the queue is drained."""
    clock = [0.0]
    recorder = TraceRecorder(lambda: clock[0])
    queue = PathQueue(maxlen=maxlen)
    queue.on_enqueue(lambda q: recorder.open((id(q), id(q.last_enqueued)),
                                             QUEUE_WAIT, "q", "P0"))
    queue.on_dequeue(lambda q: recorder.close((id(q), id(q.last_dequeued))))
    queue.on_drop(lambda q, item, reason: recorder.close(
        (id(q), id(item)), detail=f"dropped:{reason}"))

    items = []
    for op in ops:
        clock[0] += 1.0
        if op == "enq":
            item = object()
            items.append(item)  # keep alive: span keys use id()
            queue.try_enqueue(item)
        elif op == "deq":
            queue.try_dequeue()
        else:
            queue.clear()
    queue.clear("teardown")
    assert recorder.open_count() == 0
    for span in recorder.spans:
        assert span.end_us >= span.start_us
        assert span.cost_us == span.end_us - span.start_us
        assert span.stack == "P0;wait:q"


#: Random span trees: each node is (self_cost, children).
SPAN_TREE = st.deferred(lambda: st.tuples(
    st.floats(min_value=0.0, max_value=100.0),
    st.lists(SPAN_TREE, max_size=3)))


@settings(max_examples=60, deadline=None)
@given(tree=SPAN_TREE)
def test_nested_spans_are_well_formed_and_costs_reconcile(tree):
    """For any nesting, spans end >= start, children's stacks extend the
    parent's, and exclusive costs sum back to the inclusive root cost."""
    clock = [0.0]
    recorder = TraceRecorder(lambda: clock[0])

    def walk(node, parent_stack):
        self_cost, children = node
        span = recorder.begin(STAGE, "s", "P0")
        assert span.stack.startswith(parent_stack)
        clock[0] += 1.0
        inclusive = self_cost
        for child in children:
            inclusive += walk(child, span.stack)
        recorder.end(span, total_cost_us=inclusive)
        assert span.end_us >= span.start_us
        assert span.cost_us >= 0.0
        assert abs(span.cost_us - self_cost) < 1e-6
        return inclusive

    total = walk(tree, "P0")
    assert sum(s.cost_us for s in recorder.spans) <= total + 1e-6
