"""TraceRecorder unit tests: nesting, costs, retention, export."""

import json

import pytest

from repro.observe import (
    QUEUE_WAIT,
    STAGE,
    TRAVERSAL,
    TraceRecorder,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_accepts_callable_and_engine_like_clocks():
    assert TraceRecorder(lambda: 5.0).clock() == 5.0
    assert TraceRecorder(FakeClock(7.0)).clock() == 7.0

    class EngineLike:
        now = 9.0

    assert TraceRecorder(EngineLike()).clock() == 9.0
    with pytest.raises(TypeError):
        TraceRecorder(object())
    with pytest.raises(ValueError):
        TraceRecorder(lambda: 0.0, capacity=0)


class TestNestedSpans:
    def test_exclusive_cost_subtracts_children(self):
        rec = TraceRecorder(lambda: 0.0)
        outer = rec.begin(TRAVERSAL, "deliver", "P0")
        inner = rec.begin(STAGE, "UDP", "P0")
        rec.end(inner, total_cost_us=3.0)
        inner2 = rec.begin(STAGE, "IP", "P0")
        rec.end(inner2, total_cost_us=2.0)
        rec.end(outer, total_cost_us=10.0)
        assert inner.cost_us == 3.0
        assert inner2.cost_us == 2.0
        assert outer.cost_us == 5.0  # 10 inclusive - 5 attributed to children

    def test_exclusive_cost_never_negative(self):
        rec = TraceRecorder(lambda: 0.0)
        outer = rec.begin(STAGE, "A", "P0")
        inner = rec.begin(STAGE, "B", "P0")
        rec.end(inner, total_cost_us=8.0)
        rec.end(outer, total_cost_us=5.0)  # child claims more than parent
        assert outer.cost_us == 0.0

    def test_stack_strings_nest(self):
        rec = TraceRecorder(lambda: 0.0)
        outer = rec.begin(TRAVERSAL, "deliver.BWD", "P0", "BWD")
        inner = rec.begin(STAGE, "ETH.BWD", "P0", "BWD")
        assert outer.stack == "P0;deliver.BWD"
        assert inner.stack == "P0;deliver.BWD;ETH.BWD"
        assert inner.depth == 1
        rec.end(inner)
        rec.end(outer)

    def test_point_events_nest_under_current_stack(self):
        rec = TraceRecorder(lambda: 0.0)
        outer = rec.begin(STAGE, "MPEG", "P0")
        span = rec.point("drop", "drop:overflow", "P0", detail="full")
        assert span.stack == "P0;MPEG;drop:overflow"
        assert span.detail == "full"
        rec.end(outer)
        lone = rec.point("incident", "stall", "P1")
        assert lone.stack == "P1;stall"

    def test_mismatched_end_raises(self):
        rec = TraceRecorder(lambda: 0.0)
        a = rec.begin(STAGE, "A", "P0")
        rec.begin(STAGE, "B", "P0")
        with pytest.raises(RuntimeError):
            rec.end(a)


class TestAsyncSpans:
    def test_wait_span_width_is_wall_time(self):
        clock = FakeClock(100.0)
        rec = TraceRecorder(clock)
        rec.open("k", QUEUE_WAIT, "bwd_in", "P0")
        clock.now = 175.0
        span = rec.close("k")
        assert span.wall_us == 75.0
        assert span.cost_us == 75.0
        assert span.end_us >= span.start_us

    def test_close_unknown_key_returns_none(self):
        rec = TraceRecorder(lambda: 0.0)
        assert rec.close("nope") is None

    def test_reopened_key_finishes_stale_span_as_requeued(self):
        rec = TraceRecorder(lambda: 0.0)
        rec.open("k", QUEUE_WAIT, "q", "P0")
        rec.open("k", QUEUE_WAIT, "q", "P0")  # same key again
        assert rec.open_count() == 1
        stale = list(rec.spans)[-1]
        assert stale.detail == "requeued"

    def test_open_count_tracks_outstanding(self):
        rec = TraceRecorder(lambda: 0.0)
        rec.open(1, QUEUE_WAIT, "q", "P0")
        rec.open(2, QUEUE_WAIT, "q", "P0")
        assert rec.open_count() == 2
        rec.close(1)
        assert rec.open_count() == 1


class TestRetention:
    def test_ring_buffer_evicts_oldest(self):
        rec = TraceRecorder(lambda: 0.0, capacity=3)
        for i in range(5):
            rec.point("drop", f"e{i}", "P0")
        assert len(rec) == 3
        assert rec.evicted == 2
        assert rec.completed == 5
        assert [s.label for s in rec.spans] == ["e2", "e3", "e4"]

    def test_clear_keeps_open_spans_and_aliases(self):
        rec = TraceRecorder(lambda: 0.0)

        class P:
            pid = 1

        alias = rec.alias_for(P())
        rec.open("k", QUEUE_WAIT, "q", alias)
        rec.point("drop", "x", alias)
        rec.clear()
        assert len(rec) == 0
        assert rec.open_count() == 1
        assert rec.alias_for(P()) == alias


class TestAliases:
    def test_aliases_assigned_in_instrumentation_order(self):
        rec = TraceRecorder(lambda: 0.0)

        class P:
            def __init__(self, pid):
                self.pid = pid

        # pids deliberately non-sequential — aliases still come out stable
        assert rec.alias_for(P(17)) == "P0"
        assert rec.alias_for(P(4)) == "P1"
        assert rec.alias_for(P(17)) == "P0"  # idempotent


class TestExport:
    def _populated(self):
        clock = FakeClock(0.0)
        rec = TraceRecorder(clock)
        outer = rec.begin(TRAVERSAL, "deliver", "P0")
        inner = rec.begin(STAGE, "MPEG", "P0")
        rec.end(inner, total_cost_us=2.5)
        rec.end(outer, total_cost_us=4.0)
        rec.open("k", QUEUE_WAIT, "bwd_in", "P0")
        clock.now = 10.0
        rec.close("k")
        return rec

    def test_collapsed_weights_are_nanoseconds(self):
        rec = self._populated()
        stacks = rec.collapsed()
        assert stacks["P0;deliver;MPEG"] == 2500
        assert stacks["P0;deliver"] == 1500  # 4.0 - 2.5 exclusive
        assert stacks["P0;wait:bwd_in"] == 10_000

    def test_collapsed_text_is_sorted_lines(self):
        text = self._populated().collapsed_text()
        lines = text.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack
            int(weight)  # parses as flamegraph weight

    def test_digest_is_deterministic(self):
        assert self._populated().digest() == self._populated().digest()

    def test_to_json_round_trips(self):
        data = json.loads(self._populated().to_json())
        assert len(data) == 3
        for entry in data:
            assert entry["end_us"] >= entry["start_us"]
            assert entry["cost_us"] >= 0.0
            assert entry["stack"].startswith(entry["path"])

    def test_summary_ranks_by_cost(self):
        rec = self._populated()
        top = rec.summary(2)
        assert top[0][0] == "queue_wait:bwd_in"
        assert len(top) == 2
