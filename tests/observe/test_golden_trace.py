"""Golden-trace regression: fixed seed + clip => byte-stable trace.

Virtual time is deterministic and span identity uses stable per-recorder
path aliases (``P0``, ``P1``, ...) rather than the process-global pid
counter, so two runs of the same workload must produce *byte-identical*
collapsed-stack output — any divergence means nondeterminism crept into
the simulation or the recorder.
"""

from repro.experiments import format_trace, run_trace

NFRAMES = 25


def test_same_seed_same_clip_is_byte_stable():
    first = run_trace(seed=3, nframes=NFRAMES)
    second = run_trace(seed=3, nframes=NFRAMES)
    assert first.spans > 0
    assert first.collapsed == second.collapsed  # full byte equality
    assert first.digest == second.digest
    assert first.metrics_text == second.metrics_text

def test_different_seed_changes_the_trace():
    """The digest must actually depend on the workload (no constant)."""
    base = run_trace(seed=3, nframes=NFRAMES)
    other = run_trace(seed=4, nframes=NFRAMES)
    assert base.digest != other.digest


def test_report_shape_and_rendering():
    report = run_trace(seed=3, nframes=NFRAMES)
    assert report.frames_presented > 0
    assert report.open_spans == 0  # nothing leaked at quiescence
    assert report.evicted == 0  # default retention fits this run
    # Collapsed output parses as flamegraph input: "stack weight" lines.
    for line in report.collapsed.splitlines():
        stack, weight = line.rsplit(" ", 1)
        assert stack.startswith("P0")
        assert int(weight) >= 0
    text = format_trace(report)
    assert "collapsed-stack digest" in text
    assert report.digest in text
    # The MPEG decode stage dominates CPU cost, as the paper's per-path
    # accounting predicts for a video path.
    stage_rows = [row for row in report.hottest
                  if row[0].startswith("stage:")]
    assert stage_rows[0][0] == "stage:MPEG.BWD"
