"""Reconciliation: the metrics registry must agree with PathStats exactly.

Every counter in the registry is bumped at the same event site that
updates the corresponding :class:`~repro.core.path.PathStats` field, so
after any workload the two accounts must match to the last message,
cycle, and drop.  A mismatch means an event site updates one ledger but
not the other — the silent double-counting this test exists to catch.
"""

import pytest

from repro.experiments import Testbed
from repro.mpeg.clips import clip_by_name

PORT = 6000


def _run_loaded_session(nframes=60, inq_len=4, skip=2):
    """A table2-style loaded run: a traced path under queue pressure
    (tiny input queue) with early discard active (skip=2), so the
    reconciliation covers messages, cycles, and several drop categories."""
    testbed = Testbed(seed=2)
    kernel = testbed.build_scout()
    profile = clip_by_name("Neptune")
    # An aggressive source (large initial window, faster-than-realtime
    # pacing) overruns the tiny input queue, so inq_overflow drops join
    # the early_discard ones.
    source = testbed.add_video_source(profile, dst_port=PORT, seed=2,
                                      nframes=nframes, initial_window=64,
                                      pace_fps=4 * profile.fps)
    session = kernel.start_video(profile, (source.ip, source.src_port),
                                 local_port=PORT, trace=True,
                                 inq_len=inq_len, skip=skip)
    testbed.start_all()
    testbed.run_until_sources_done()
    return kernel, session


@pytest.fixture(scope="module")
def loaded():
    return _run_loaded_session()


def test_workload_produced_the_pressure_it_reconciles(loaded):
    kernel, session = loaded
    stats = session.path.stats
    assert stats.messages_bwd > 0
    assert stats.cycles > 0
    assert stats.drops > 0  # tiny queue + skip guarantee real drops
    assert len(stats.drop_reasons) >= 2


def test_messages_reconcile(loaded):
    kernel, session = loaded
    registry = kernel.observatory.metrics
    alias = kernel.observatory.recorder.alias_for(session.path)
    stats = session.path.stats
    assert registry.total("path_messages_total", path=alias,
                          direction="BWD") == stats.messages_bwd
    assert registry.total("path_messages_total", path=alias,
                          direction="FWD") == stats.messages_fwd


def test_cycles_reconcile(loaded):
    kernel, session = loaded
    registry = kernel.observatory.metrics
    alias = kernel.observatory.recorder.alias_for(session.path)
    assert registry.total("path_cycles_total", path=alias) \
        == pytest.approx(session.path.stats.cycles)


def test_drops_reconcile_in_total_and_per_category(loaded):
    kernel, session = loaded
    registry = kernel.observatory.metrics
    alias = kernel.observatory.recorder.alias_for(session.path)
    stats = session.path.stats
    assert registry.total("path_drops_total", path=alias) == stats.drops
    for category, count in stats.drop_reasons.items():
        assert registry.total("path_drops_total", path=alias,
                              category=category) == count, category


def test_drop_spans_match_drop_counts(loaded):
    kernel, session = loaded
    recorder = kernel.observatory.recorder
    assert recorder.evicted == 0  # precondition: nothing rotated out
    drop_spans = [s for s in recorder.spans if s.kind == "drop"]
    assert len(drop_spans) == session.path.stats.drops


def test_queue_listener_totals_reconcile_with_queues(loaded):
    kernel, session = loaded
    registry = kernel.observatory.metrics
    alias = kernel.observatory.recorder.alias_for(session.path)
    from repro.core.queues import QUEUE_ROLE_NAMES

    for role, queue in enumerate(session.path.q):
        name = QUEUE_ROLE_NAMES[role]
        hist = registry.get("queue_depth_at_enqueue", path=alias, queue=name)
        assert hist.count == queue.enqueued
        drops = registry.get("queue_drops_total", path=alias, queue=name)
        assert drops.value == queue.dropped


def test_teardown_keeps_the_ledgers_balanced(loaded):
    """Deleting the path (possibly with queued messages) must keep
    metrics == stats and close every queue-wait span."""
    kernel, session = loaded
    registry = kernel.observatory.metrics
    recorder = kernel.observatory.recorder
    alias = recorder.alias_for(session.path)
    kernel.stop_video(session)
    stats = session.path.stats
    assert registry.total("path_drops_total", path=alias) == stats.drops
    assert recorder.open_count() == 0
    for series in registry.series("queue_depth", path=alias):
        assert series.value >= 0


def test_display_outq_overflow_reconciles():
    """The display stage's output-queue discard must hit every ledger at
    once: the stage-local counter, the path's per-category drop stats,
    the queue's drop counter, and the metrics registry.  (The stage used
    to bump only its local counter, leaving these frames invisible to
    reconciliation.)"""
    from repro.core.stage import BWD
    from repro.mpeg.decoder import DecodedFrame

    testbed = Testbed(seed=2)
    kernel = testbed.build_scout()
    profile = clip_by_name("Neptune")
    source = testbed.add_video_source(profile, dst_port=6001, seed=2,
                                      nframes=1)
    session = kernel.start_video(profile, (source.ip, source.src_port),
                                 local_port=6001, trace=True)
    path = session.path
    stage = path.stage_of("DISPLAY")
    outq = path.output_queue(BWD)

    def frame():
        return DecodedFrame(number=0, ftype=0, bits=1_000, n_mb=10,
                            width=16, height=16)

    for _ in range(outq.maxlen):
        outq.enqueue(frame())
    deliver = stage.deliver_fn(BWD)
    deliver(stage.end[BWD], frame(), BWD)

    assert stage.frames_dropped == 1
    assert path.stats.drop_reasons["outq_overflow"] == 1
    assert outq.dropped == 1
    registry = kernel.observatory.metrics
    alias = kernel.observatory.recorder.alias_for(path)
    assert registry.total("path_drops_total", path=alias,
                          category="outq_overflow") == 1
    assert registry.get("queue_drops_total", path=alias,
                        queue="bwd_out").value == 1
