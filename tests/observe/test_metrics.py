"""MetricsRegistry unit tests: series identity, semantics, rendering."""

import pytest

from repro.observe import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("msgs", path="P0")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("msgs")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_tracks_extremes(self):
        g = MetricsRegistry().gauge("depth")
        for level in (3, 7, 2):
            g.set(level)
        assert g.value == 2
        assert g.max_value == 7
        assert g.min_value == 2


class TestHistogram:
    def test_buckets_and_overflow(self):
        h = Histogram("wait", (), bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            h.observe(value)
        assert h.buckets == [1, 1, 1, 1]  # last is the overflow bucket
        assert h.count == 4
        assert h.sum == 555.5
        assert h.min == 0.5 and h.max == 500.0
        assert h.mean == pytest.approx(138.875)

    def test_bounds_are_sorted_on_construction(self):
        h = Histogram("x", (), bounds=(100.0, 1.0, 10.0))
        assert h.bounds == (1.0, 10.0, 100.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("x", ()).mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("msgs", path="P0", direction="BWD")
        b = reg.counter("msgs", direction="BWD", path="P0")  # label order
        assert a is b
        assert len(reg) == 1

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        assert reg.counter("msgs", path="P0") is not reg.counter("msgs",
                                                                 path="P1")
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        reg.histogram("h")
        with pytest.raises(TypeError):
            reg.counter("h")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_get_returns_none_for_unknown(self):
        reg = MetricsRegistry()
        assert reg.get("nope") is None
        reg.counter("yes", path="P0")
        assert reg.get("yes", path="P0") is not None
        assert reg.get("yes", path="P1") is None

    def test_series_filters_by_name_and_label_subset(self):
        reg = MetricsRegistry()
        reg.counter("drops", path="P0", category="overflow").inc(2)
        reg.counter("drops", path="P0", category="teardown").inc(3)
        reg.counter("drops", path="P1", category="overflow").inc(5)
        reg.counter("other", path="P0").inc(100)
        assert len(list(reg.series("drops"))) == 3
        assert len(list(reg.series("drops", path="P0"))) == 2
        assert len(list(reg.series("drops", category="overflow"))) == 2

    def test_total_sums_matching_counters(self):
        reg = MetricsRegistry()
        reg.counter("drops", path="P0").inc(2)
        reg.counter("drops", path="P1").inc(3)
        assert reg.total("drops") == 5
        assert reg.total("drops", path="P1") == 3
        assert reg.total("absent") == 0

    def test_render_is_sorted_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_metric", path="P1").inc()
            reg.counter("a_metric", path="P0").inc(2)
            reg.gauge("depth", queue="bwd_in").set(4)
            reg.histogram("wait", bounds=(10.0, 100.0)).observe(42.0)
            return reg.render()

        text = build()
        assert text == build()
        lines = text.splitlines()
        assert lines[0].startswith("# metrics snapshot (4 series)")
        assert lines[1].startswith("a_metric")
        assert "a_metric{path=P0} 2" in text
        assert "depth{queue=bwd_in} 4 (max 4)" in text
        assert "le_100=1" in text

    def test_as_dict_flattens_series(self):
        reg = MetricsRegistry()
        reg.counter("msgs", path="P0").inc(7)
        reg.histogram("wait").observe(1.0)
        flat = reg.as_dict()
        assert flat["msgs{path=P0}"] == 7
        assert flat["wait"] == 1  # histograms report their counts
