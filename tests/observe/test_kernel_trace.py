"""Kernel-level tracing: per-path opt-in on the full Figure 9 machine."""

import pytest

from repro.core import PA_TRACE
from repro.experiments import Testbed
from repro.mpeg.clips import clip_by_name

PORT_TRACED = 6000
PORT_PLAIN = 6010


@pytest.fixture(scope="module")
def dual_session_world():
    """Two concurrent video sessions: one traced, one not."""
    testbed = Testbed(seed=5)
    kernel = testbed.build_scout()
    profile = clip_by_name("Neptune")
    src_a = testbed.add_video_source(profile, dst_port=PORT_TRACED, seed=5,
                                     nframes=40)
    src_b = testbed.add_video_source(profile, dst_port=PORT_PLAIN, seed=6,
                                     nframes=40)
    traced = kernel.start_video(profile, (src_a.ip, src_a.src_port),
                                local_port=PORT_TRACED, trace=True)
    plain = kernel.start_video(profile, (src_b.ip, src_b.src_port),
                               local_port=PORT_PLAIN)
    testbed.start_all()
    testbed.run_until_sources_done()
    return testbed, kernel, traced, plain


def test_trace_attribute_reaches_only_the_opted_in_path(dual_session_world):
    _testbed, kernel, traced, plain = dual_session_world
    assert traced.path.attrs.get(PA_TRACE) is kernel.observatory
    assert traced.path.observer is not None
    assert plain.path.observer is None
    assert PA_TRACE not in plain.path.attrs
    assert list(kernel.observatory.observers) == [traced.path.pid]


def test_spans_cover_every_stage_traversal(dual_session_world):
    """The enabled-mode acceptance criterion: each stage traversal of the
    traced path produced exactly one stage span."""
    _testbed, kernel, traced, _plain = dual_session_world
    recorder = kernel.observatory.recorder
    registry = kernel.observatory.metrics
    alias = recorder.alias_for(traced.path)
    assert recorder.evicted == 0
    messages = traced.path.stats.messages_bwd
    assert messages > 0
    stage_spans = {}
    for span in recorder.spans:
        if span.kind == "stage" and span.path == alias:
            stage_spans[span.label] = stage_spans.get(span.label, 0) + 1
    # Every network stage sees every BWD message; DISPLAY only sees the
    # assembled frames MPEG forwards.
    for router in ("ETH", "IP", "UDP", "MFLOW", "MPEG"):
        assert stage_spans[f"{router}.BWD"] == messages
        assert registry.total("stage_traversals_total", path=alias,
                              stage=f"{router}.BWD") == messages
    assert stage_spans["DISPLAY.BWD"] == traced.sink.queue.enqueued
    # And one whole-traversal span per delivered message.
    traversals = [s for s in recorder.spans
                  if s.kind == "traversal" and s.path == alias]
    assert len(traversals) == messages + traced.path.stats.messages_fwd


def test_untraced_path_appears_in_no_series(dual_session_world):
    _testbed, kernel, _traced, plain = dual_session_world
    registry = kernel.observatory.metrics
    assert plain.frames_presented > 0  # it worked, just unobserved
    plain_alias_candidates = {f"P{plain.path.pid}", str(plain.path.pid)}
    for series in registry.series():
        labels = dict(series.labels)
        assert labels.get("path") not in plain_alias_candidates


def test_deadline_slack_recorded_per_presented_frame(dual_session_world):
    _testbed, kernel, traced, _plain = dual_session_world
    registry = kernel.observatory.metrics
    alias = kernel.observatory.recorder.alias_for(traced.path)
    slack = registry.get("deadline_slack_us", path=alias)
    assert slack is not None
    assert slack.count == traced.sink.queue.enqueued
    assert slack.count >= traced.frames_presented > 0


def test_demux_spans_record_classification_for_traced_path(
        dual_session_world):
    _testbed, kernel, traced, _plain = dual_session_world
    registry = kernel.observatory.metrics
    recorder = kernel.observatory.recorder
    alias = recorder.alias_for(traced.path)
    demux_total = registry.total("path_demux_total", path=alias)
    assert demux_total == traced.path.stats.messages_bwd
    hops = registry.get("path_demux_hops", path=alias)
    assert hops.min >= 1
    demux_spans = [s for s in recorder.spans
                   if s.kind == "demux" and s.path == alias]
    assert len(demux_spans) == demux_total


def test_armed_observatory_counts_unclassified_frames(dual_session_world):
    _testbed, kernel, _traced, _plain = dual_session_world
    registry = kernel.observatory.metrics
    before = registry.total("kernel_unclassified_drops")
    kernel._rx(b"\x00" * 64)  # garbage no router claims
    assert registry.total("kernel_unclassified_drops") == before + 1


def test_trace_experiment_is_registered():
    from repro.experiments.__main__ import EXPERIMENTS

    assert "trace" in EXPERIMENTS
