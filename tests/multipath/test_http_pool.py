"""The Figure 3 web-server graph serving clients from a warm connection
pool, and concurrent clients from a connection-path group."""

import pytest

from repro.core import Attrs, BWD, Msg, PA_NET_PARTICIPANTS, RouterGraph
from repro.fs import ScsiRouter, UfsRouter, VfsRouter
from repro.http import HttpRouter
from repro.multipath import PathGroup, PathPool
from repro.net import (
    ArpRouter,
    EthAddr,
    EthRouter,
    IpAddr,
    IpHeader,
    IpRouter,
    TcpHeader,
    TcpRouter,
)
from repro.net.common import PA_LOCAL_PORT
from repro.net.headers import IPPROTO_TCP

SERVER_IP, SERVER_MAC = "10.0.0.1", "02:00:00:00:00:01"
CLIENTS = {
    "10.0.0.9": "02:00:00:00:00:09",
    "10.0.0.10": "02:00:00:00:00:0a",
}


@pytest.fixture
def web():
    graph = RouterGraph()
    graph.add(HttpRouter("HTTP"))
    graph.add(TcpRouter("TCP"))
    graph.add(IpRouter("IP", addr=SERVER_IP))
    graph.add(ArpRouter("ARP"))
    graph.add(EthRouter("ETH", mac=SERVER_MAC))
    graph.add(VfsRouter("VFS"))
    graph.add(UfsRouter("UFS"))
    graph.add(ScsiRouter("SCSI", sectors=1024))
    graph.connect("HTTP.net", "TCP.up")
    graph.connect("HTTP.files", "VFS.up")
    graph.connect("TCP.down", "IP.up")
    graph.connect("IP.down", "ETH.up")
    graph.connect("IP.res", "ARP.resolver")
    graph.connect("ARP.down", "ETH.up")
    graph.connect("VFS.mounts", "UFS.up")
    graph.connect("UFS.disk", "SCSI.ops")
    graph.boot()
    graph.router("UFS").fs.write_file("index.html", b"<h1>paths</h1>")
    graph.router("VFS").mount("/", "UFS")
    for ip, mac in CLIENTS.items():
        graph.router("ARP").add_entry(ip, mac)
    wire = []
    graph.router("ETH").transmit = lambda msg: wire.append(msg.to_bytes())
    return graph, wire


def segment(graph, client_ip, payload, sport=51000, seq=0):
    tcp = TcpHeader(sport, 80, seq=seq,
                    flags=TcpHeader.FLAG_ACK).pack(payload)
    ip = IpHeader(20 + len(tcp) + len(payload), 7, IPPROTO_TCP,
                  IpAddr(client_ip), graph.router("IP").addr).pack()
    eth = (EthAddr(SERVER_MAC).to_bytes()
           + EthAddr(CLIENTS[client_ip]).to_bytes() + b"\x08\x00")
    return Msg(eth + ip + tcp + payload)


def get(graph, conn, client_ip, target="/index.html", seq=0):
    request = f"GET {target} HTTP/1.0\r\n\r\n".encode()
    conn.deliver(segment(graph, client_ip, request, seq=seq), BWD)
    return len(request)


class TestConnectionPool:
    def test_reconnect_reuses_the_parked_path(self, web):
        graph, wire = web
        http = graph.router("HTTP")
        http.use_connection_pool(PathPool(http))
        client = ("10.0.0.9", 51000)
        conn = http.connection_path_for(client)
        sent = get(graph, conn, client[0])
        assert b"200 OK" in wire[-1]
        assert http.release_connection(conn)  # parked, not deleted
        assert conn.state == "established"
        again = http.connection_path_for(client)
        assert again is conn  # the warm path, not a re-create
        # A reused connection continues the byte stream, so the next
        # request picks up where the previous one left off.
        get(graph, again, client[0], seq=sent)
        assert b"200 OK" in wire[-1]
        assert http._connection_pool.hits == 1

    def test_without_pool_release_deletes(self, web):
        graph, _wire = web
        http = graph.router("HTTP")
        conn = http.connection_path_for(("10.0.0.9", 51000))
        assert not http.release_connection(conn)
        assert conn.state == "deleted"

    def test_different_clients_get_different_paths(self, web):
        graph, _wire = web
        http = graph.router("HTTP")
        http.use_connection_pool(PathPool(http))
        a = http.connection_path_for(("10.0.0.9", 51000))
        http.release_connection(a)
        b = http.connection_path_for(("10.0.0.10", 51000))
        assert b is not a  # different invariants, different bucket


class TestConnectionGroup:
    def test_concurrent_clients_served_by_group_members(self, web):
        """A pooled connection-path group on port 80: each client's
        requests ride whichever member the policy picks, and responses
        still reach the right client (the reply address comes from the
        request's meta, not the path's invariants)."""
        graph, wire = web
        http = graph.router("HTTP")
        group = PathGroup("round_robin")
        pool = PathPool(http)
        pool.prewarm(Attrs({PA_NET_PARTICIPANTS: ("10.0.0.9", 51000),
                            PA_LOCAL_PORT: 80}), count=2)
        for _ in range(2):
            group.add(pool.acquire(
                Attrs({PA_NET_PARTICIPANTS: ("10.0.0.9", 51000),
                       PA_LOCAL_PORT: 80})))
        served = []
        for member in group.members:
            member.stage_of("HTTP")  # sanity: full connection shape
        for index, client_ip in enumerate(["10.0.0.9", "10.0.0.10"]):
            member = group.dispatch(None)
            served.append(member)
            get(graph, member, client_ip)
            from repro.net import parse_frame

            parsed = parse_frame(wire[-1])
            assert str(parsed.ip.dst) == client_ip
            assert parsed.eth.dst == EthAddr(CLIENTS[client_ip])
        assert served[0] is not served[1]  # both members actually served
        assert pool.hits == 2
