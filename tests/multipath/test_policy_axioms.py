"""Axiom conformance for selection policies.

Every PathGroup policy, whatever its load signal, must satisfy two
behavioural axioms the adversarial harness leans on:

* **stability** — under constant load (no member's signal changes
  between selections) the policy's decision does not oscillate: it
  either sticks to one member (load-aware policies) or spreads uniformly
  by design (round-robin);
* **monotonicity** — making a member strictly *more* attractive (its
  load drops, all else equal) never makes the policy abandon it, and a
  member whose load falls strictly below the incumbent's (beyond any
  hysteresis) is adopted.

These are exactly the properties the ``group_chaser`` adversary attacks:
a policy violating them can be driven into per-message oscillation by
crafted load deltas.
"""

import pytest

from repro.core import Path
from repro.multipath import (
    DeadlineSlackPolicy,
    LeastLoadedPolicy,
    PathGroup,
    RoundRobinPolicy,
    WeightedAccountingPolicy,
    bottleneck_depth,
)


def established_path() -> Path:
    path = Path()
    path._establish()
    return path


def with_depth(path: Path, depth: int) -> Path:
    while bottleneck_depth(path) < depth:
        path.q[0].try_enqueue(object())
    return path


def drain_to(path: Path, depth: int) -> None:
    while bottleneck_depth(path) > depth:
        path.q[0].dequeue()


class TestStabilityUnderConstantLoad:
    """No load signal changes => the decision stream does not oscillate."""

    def test_least_loaded_is_constant(self):
        members = [with_depth(established_path(), d) for d in (4, 2, 7)]
        policy = LeastLoadedPolicy()
        picks = {policy.select(members, None) for _ in range(20)}
        assert picks == {members[1]}

    def test_least_loaded_with_hysteresis_is_constant(self):
        members = [with_depth(established_path(), d) for d in (4, 2, 7)]
        policy = LeastLoadedPolicy(hysteresis=2)
        picks = {policy.select(members, None) for _ in range(20)}
        assert picks == {members[1]}
        assert policy.switches == 0

    def test_deadline_slack_is_constant(self):
        members = [established_path() for _ in range(3)]
        for path, deadline in zip(members, (500.0, 9_000.0, 2_000.0)):
            path.attrs["_edf_deadline_fn"] = (
                lambda deadline=deadline: deadline)
        policy = DeadlineSlackPolicy()
        picks = {policy.select(members, None) for _ in range(20)}
        assert picks == {members[1]}  # most slack

    def test_weighted_accounting_is_constant(self):
        members = [established_path() for _ in range(3)]
        for path, cycles in zip(members, (900.0, 100.0, 400.0)):
            path.charge_cycles(cycles)
        policy = WeightedAccountingPolicy()
        picks = {policy.select(members, None) for _ in range(20)}
        assert picks == {members[1]}  # fewest cycles charged

    def test_round_robin_spreads_uniformly(self):
        """Round-robin's stability is distributional: over N*k selections
        every member is picked exactly k times."""
        members = [established_path() for _ in range(4)]
        policy = RoundRobinPolicy()
        picks = [policy.select(members, None) for _ in range(4 * 5)]
        for member in members:
            assert picks.count(member) == 5


class TestMonotonicityWhenLoadDrops:
    """A member getting strictly better is never abandoned for it."""

    @pytest.mark.parametrize("hysteresis", [0, 2])
    def test_incumbents_improvement_never_loses_it(self, hysteresis):
        first = with_depth(established_path(), 3)
        second = with_depth(established_path(), 6)
        policy = LeastLoadedPolicy(hysteresis=hysteresis)
        members = [first, second]
        assert policy.select(members, None) is first
        drain_to(first, 1)  # the chosen member's load drops
        assert policy.select(members, None) is first

    def test_clear_improvement_of_rival_is_adopted(self):
        first = with_depth(established_path(), 3)
        second = with_depth(established_path(), 6)
        policy = LeastLoadedPolicy(hysteresis=2)
        members = [first, second]
        assert policy.select(members, None) is first
        drain_to(second, 0)  # now better by 3 > hysteresis
        assert policy.select(members, None) is second
        assert policy.switches == 1

    def test_weighted_accounting_adopts_cheaper_member(self):
        cheap, dear = established_path(), established_path()
        cheap.charge_cycles(100.0)
        dear.charge_cycles(500.0)
        policy = WeightedAccountingPolicy()
        assert policy.select([cheap, dear], None) is cheap
        # The dear member idles while cheap works: ordering flips only
        # when the signal actually crosses.
        cheap.charge_cycles(600.0)
        assert policy.select([cheap, dear], None) is dear


class TestHysteresisDampsOscillation:
    """The group_chaser failure mode: sub-threshold load deltas must not
    flip the decision; deltas beyond the threshold must."""

    def test_small_imbalance_does_not_flip(self):
        first = with_depth(established_path(), 2)
        second = with_depth(established_path(), 3)
        policy = LeastLoadedPolicy(hysteresis=2)
        members = [first, second]
        assert policy.select(members, None) is first
        # The adversary shifts one message of load onto the incumbent.
        with_depth(first, 4)
        assert bottleneck_depth(first) - bottleneck_depth(second) == 1
        assert policy.select(members, None) is first  # within hysteresis
        assert policy.switches == 0

    def test_oscillating_load_without_hysteresis_flips_every_time(self):
        """The baseline the damping exists for: hysteresis=0 chases every
        crafted one-message imbalance."""
        first = with_depth(established_path(), 2)
        second = with_depth(established_path(), 3)
        policy = LeastLoadedPolicy()
        members = [first, second]
        flips = 0
        previous = None
        for round_number in range(10):
            shallow = members[round_number % 2]
            deep = members[1 - round_number % 2]
            drain_to(shallow, 1)
            with_depth(deep, 3)
            chosen = policy.select(members, None)
            assert chosen is shallow
            if previous is not None and chosen is not previous:
                flips += 1
            previous = chosen
        assert flips == 9  # every crafted delta flipped the decision

    def test_same_oscillation_with_hysteresis_never_flips(self):
        first = with_depth(established_path(), 2)
        second = with_depth(established_path(), 3)
        policy = LeastLoadedPolicy(hysteresis=2)
        members = [first, second]
        picks = set()
        for round_number in range(10):
            shallow = members[round_number % 2]
            deep = members[1 - round_number % 2]
            drain_to(shallow, 1)
            with_depth(deep, 3)
            picks.add(policy.select(members, None))
        assert len(picks) == 1  # the crafted +-2 swing never flipped it
        assert policy.switches == 0

    def test_dead_incumbent_is_replaced(self):
        """Hysteresis never pins to a member that left the group."""
        first = with_depth(established_path(), 1)
        second = with_depth(established_path(), 2)
        policy = LeastLoadedPolicy(hysteresis=4)
        assert policy.select([first, second], None) is first
        assert policy.select([second], None) is second

    def test_validation(self):
        with pytest.raises(ValueError):
            LeastLoadedPolicy(hysteresis=-1)


class TestGroupLevelStability:
    def test_dispatch_under_constant_load_sticks(self):
        group = PathGroup(LeastLoadedPolicy(hysteresis=2), name="axiom")
        members = [group.add(with_depth(established_path(), d))
                   for d in (3, 1)]
        picks = {group.dispatch(object()) for _ in range(25)}
        assert picks == {members[1]}
        assert group.policy.switches == 0
