"""Chaos acceptance for multipath: a video fanned across a path group
whose members are stalled and rebuilt by watchdogs, with replacements
drawn through a warm pool.  Through all of it the invariant chain —
pool bookkeeping, group membership, flow-cache pins, demux anchor — must
unwind and re-form with zero stale deliveries: the fast path never hands
out a path that is not ESTABLISHED, and drop accounting stays exact.
"""

import pytest

from repro import params
from repro.core.path import ESTABLISHED
from repro.experiments.testbed import Testbed
from repro.faults import PathWatchdog, StageFault, StageFaultInjector
from repro.mpeg.clips import NEPTUNE
from repro.multipath import PathPool

PORT = 6100


@pytest.mark.slow
class TestChaosGroup:
    def test_member_rebuild_drains_pool_group_and_cache_with_zero_stale(self):
        testbed = Testbed(seed=5)
        source = testbed.add_video_source(
            NEPTUNE, dst_port=PORT, seed=5, nframes=90,
            pace_fps=NEPTUNE.fps,
            probe_timeout_us=params.MFLOW_PROBE_TIMEOUT_US)
        kernel = testbed.build_scout(rate_limited_display=False)
        remote = (str(source.ip), source.src_port)
        vgroup = kernel.start_video_group(NEPTUNE, remote, members=3,
                                          group_policy="least_loaded",
                                          local_port=PORT)
        group = vgroup.group

        # Replacement members come out of a warm pool of video paths.
        pool = PathPool(kernel.display, transforms=kernel.transforms,
                        admission=kernel.admission)
        warm_attrs = kernel.build_video_attrs(NEPTUNE, remote,
                                              local_port=PORT)
        pool.prewarm(warm_attrs, count=2)

        # Stall one member's MFLOW stage mid-run.
        victim = vgroup.sessions[0].path
        injector = StageFaultInjector(testbed.world.engine)
        injector.apply(victim,
                       StageFault(router="MFLOW", mode="stall",
                                  start_us=500_000.0))

        def rebuild():
            path = pool.acquire(warm_attrs)
            kernel._attach_video_path(path)
            return path

        watchdog = PathWatchdog(testbed.world.engine, victim, rebuild,
                                flow_cache=kernel.flow_cache,
                                group=group, pool=pool).start()

        served_states = []
        inner_lookup = kernel.flow_cache.lookup

        def spying_lookup(msg):
            path = inner_lookup(msg)
            if path is not None:
                served_states.append(path.state)
            return path

        kernel.flow_cache.lookup = spying_lookup

        testbed.start_all()
        testbed.run_until_sources_done(max_seconds=30.0)
        watchdog.stop()

        # The chaos happened: the stalled member was detected, deleted
        # under the watchdog_rebuild category, and replaced from the pool.
        assert watchdog.stalls_detected >= 1
        assert watchdog.rebuilds >= 1
        assert victim.state == "deleted"
        assert victim.stats.drop_reasons.get("watchdog_rebuild", 0) >= 0

        # Group invariants: the dead member removed itself, the pooled
        # replacement was enrolled, capacity is back to three.
        assert victim not in group.members
        assert victim.group is None
        assert len(group.live_members()) == 3
        assert watchdog.path in group.members
        assert watchdog.path.state == ESTABLISHED
        assert group.members_removed >= 1

        # Pool invariants: the warm acquire served the rebuild, and the
        # wedged path was discarded, never re-parked.
        assert pool.hits >= 1
        assert pool.discards >= 1
        assert all(p is not victim
                   for bucket in pool._idle.values() for p in bucket)

        # Playback survived the repair across the surviving members.
        assert vgroup.frames_presented > 0

        # The headline invariant: the fast path stayed hot and never
        # served anything but an ESTABLISHED path — no stale deliveries
        # through rebuild, re-anchor, and re-pin.
        assert kernel.flow_cache.hits > 0
        assert kernel.flow_cache.invalidations > 0
        assert served_states, "flow cache never consulted under load"
        assert all(state == ESTABLISHED for state in served_states)
        assert kernel.flow_cache.stale_hits == 0

        # Drop-ledger reconciliation: every queued message the teardown
        # discarded is accounted on the dead path, categorized.
        assert victim.stats.drops == sum(victim.stats.drop_reasons.values())

    def test_anchor_death_promotes_sibling_and_traffic_continues(self):
        testbed = Testbed(seed=7)
        source = testbed.add_video_source(NEPTUNE, dst_port=PORT, seed=7,
                                          nframes=60)
        kernel = testbed.build_scout(rate_limited_display=False)
        remote = (str(source.ip), source.src_port)
        vgroup = kernel.start_video_group(NEPTUNE, remote, members=3,
                                          group_policy="round_robin",
                                          local_port=PORT)
        anchor = vgroup.sessions[0].path
        assert kernel.udp._port_paths[PORT] is anchor

        # Kill the anchor a third of the way in; the port binding must
        # move to a live sibling and packets keep classifying.
        def kill():
            kernel.stop_video(vgroup.sessions[0])

        testbed.world.engine.schedule(400_000, kill)
        testbed.start_all()
        testbed.run_until_sources_done(max_seconds=30.0)

        promoted = kernel.udp._port_paths.get(PORT)
        assert promoted is not None and promoted is not anchor
        assert promoted in vgroup.group.live_members()
        survivors = vgroup.sessions[1:]
        assert sum(s.frames_presented for s in survivors) > 0
        assert sum(s.path.stats.messages_bwd for s in survivors) > 0
