"""PathPool: warm acquisition, canonical keying, admission integration.

Includes the admission-grant regression: grants must follow the path's
lifetime (released on delete, held while parked) no matter who deletes
the path — the creator, the pool, or a watchdog acting behind its back.
"""

import pytest

from repro.admission import MemoryAdmission, path_memory_footprint
from repro.core import Attrs, FlowCache, Msg, Path, classify, path_create
from repro.core.attributes import PA_NET_PARTICIPANTS
from repro.core.errors import AdmissionError
from repro.experiments.micro import REMOTE_IP, Fig7Stack
from repro.multipath import PathPool, canonical_signature
from repro.net.common import PA_LOCAL_PORT

PORT = 6100


def conn_attrs(port=PORT):
    return Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7000),
                  PA_LOCAL_PORT: port})


def make_pool(stack=None, **kwargs):
    stack = stack if stack is not None else Fig7Stack()
    return stack, PathPool(stack.test, **kwargs)


class TestSignature:
    def test_key_order_is_canonical(self):
        assert canonical_signature({"a": 1, "b": 2}) \
            == canonical_signature({"b": 2, "a": 1})

    def test_value_differences_key_different_buckets(self):
        assert canonical_signature({"a": 1}) != canonical_signature({"a": 2})

    def test_private_bookkeeping_keys_excluded(self):
        stamped = {"a": 1, "_transforms_applied": ("x",),
                   "_edf_deadline_fn": lambda: 0}
        assert canonical_signature(stamped) == canonical_signature({"a": 1})

    def test_attrs_and_dicts_key_identically(self):
        attrs = Attrs({"a": (1, 2)})
        assert canonical_signature(attrs) == canonical_signature({"a": (1, 2)})

    def test_unhashable_values_still_key(self):
        assert canonical_signature({"a": [1, 2]}) \
            == canonical_signature({"a": [1, 2]})


class TestAcquireRelease:
    def test_cold_acquire_is_a_miss_that_creates(self):
        stack, pool = make_pool()
        path = pool.acquire(conn_attrs())
        assert path.state == "established"
        assert pool.misses == 1 and pool.hits == 0

    def test_release_then_acquire_is_a_warm_hit(self):
        stack, pool = make_pool()
        path = pool.acquire(conn_attrs())
        assert pool.release(path)
        assert len(pool) == 1
        again = pool.acquire(conn_attrs())
        assert again is path
        assert pool.hits == 1
        assert len(pool) == 0

    def test_different_invariants_never_share_a_bucket(self):
        stack, pool = make_pool()
        path = pool.acquire(conn_attrs(PORT))
        pool.release(path)
        other = pool.acquire(conn_attrs(PORT + 1))
        assert other is not path
        assert pool.misses == 2

    def test_prewarm_fills_the_bucket(self):
        stack, pool = make_pool()
        assert pool.prewarm(conn_attrs(), count=3) == 3
        assert pool.idle_count(conn_attrs()) == 3
        path = pool.acquire(conn_attrs())
        assert pool.hits == 1 and pool.misses == 0
        assert path.state == "established"

    def test_low_watermark_refills_after_a_hit(self):
        stack, pool = make_pool(low_watermark=2)
        pool.prewarm(conn_attrs(), count=2)
        pool.acquire(conn_attrs())
        assert pool.idle_count(conn_attrs()) == 2  # topped back up
        assert pool.refills == 1

    def test_bucket_cap_deletes_instead_of_parking(self):
        stack, pool = make_pool(max_idle=1)
        a = pool.acquire(conn_attrs())
        b = pool.acquire(conn_attrs())
        assert pool.release(a)
        assert not pool.release(b)
        assert b.state == "deleted"
        assert pool.discards == 1

    def test_released_path_must_leave_its_group_first(self):
        from repro.multipath import PathGroup

        stack, pool = make_pool()
        path = pool.acquire(conn_attrs())
        PathGroup().add(path)
        with pytest.raises(ValueError, match="remove it from the group"):
            pool.release(path)

    def test_drain_deletes_everything_idle(self):
        stack, pool = make_pool()
        pool.prewarm(conn_attrs(), count=3)
        assert pool.drain() == 3
        assert len(pool) == 0


class TestLifecycleSafety:
    def test_parking_purges_flow_cache_entries(self):
        stack, pool = make_pool()
        cache = FlowCache()
        path = pool.acquire(conn_attrs())
        msg = Msg(stack.udp_frame(PORT))
        assert classify(stack.eth, msg, cache=cache) is path
        assert len(cache) == 1
        pool.release(path)
        # An idle spare must be unreachable from cached flows.
        assert cache.lookup(Msg(stack.udp_frame(PORT))) is None
        assert len(cache) == 0

    def test_path_deleted_behind_the_pools_back_is_forgotten(self):
        stack, pool = make_pool()
        path = pool.acquire(conn_attrs())
        pool.release(path)
        path.delete()  # a watchdog (or anyone) kills the parked path
        assert len(pool) == 0
        fresh = pool.acquire(conn_attrs())
        assert fresh is not path
        assert fresh.state == "established"

    def test_discard_deletes_and_forgets(self):
        stack, pool = make_pool()
        path = pool.acquire(conn_attrs())
        pool.release(path)
        pool.discard(path)
        assert path.state == "deleted"
        assert len(pool) == 0

    def test_releasing_a_dead_path_refuses_to_park_it(self):
        stack, pool = make_pool()
        path = pool.acquire(conn_attrs())
        path.delete()
        assert not pool.release(path)
        assert len(pool) == 0


class TestAdmissionIntegration:
    def _admitted_pool(self, budget_paths=4, **kwargs):
        stack = Fig7Stack()
        probe = path_create(stack.test, conn_attrs())
        footprint = path_memory_footprint(probe)
        probe.delete()
        admission = MemoryAdmission(system_budget=budget_paths * footprint,
                                    per_path_grant=footprint)
        stack, pool = make_pool(stack, admission=admission, **kwargs)
        return stack, pool, admission, footprint

    def test_pooled_paths_count_against_the_budget(self):
        stack, pool, admission, footprint = self._admitted_pool(budget_paths=2)
        pool.prewarm(conn_attrs(), count=2)
        assert admission.committed == 2 * footprint
        with pytest.raises(AdmissionError):
            pool.acquire(conn_attrs(PORT + 1))

    def test_grant_released_on_explicit_delete(self):
        stack, pool, admission, footprint = self._admitted_pool(budget_paths=1)
        path = pool.acquire(conn_attrs())
        assert admission.committed == footprint
        path.delete()
        assert admission.committed == 0

    def test_grant_released_when_pool_drains(self):
        stack, pool, admission, _fp = self._admitted_pool(budget_paths=2)
        pool.prewarm(conn_attrs(), count=2)
        pool.drain()
        assert admission.committed == 0
        # The reclaimed budget is usable again immediately.
        assert pool.acquire(conn_attrs()).state == "established"

    def test_grant_released_even_when_establish_fails(self):
        stack = Fig7Stack()
        admission = MemoryAdmission(system_budget=1 << 30,
                                    per_path_grant=1 << 30)
        from repro.core.errors import PathCreationError

        class Boom(Exception):
            pass

        original = stack.test.create_stage

        def sabotage(enter_service, attrs):
            stage, hop = original(enter_service, attrs)
            if stage is not None:
                def bad_establish(a):
                    raise Boom("establish sabotaged")
                stage.establish = bad_establish
            return stage, hop

        stack.test.create_stage = sabotage
        with pytest.raises(PathCreationError):
            path_create(stack.test, conn_attrs(), admission=admission)
        assert admission.committed == 0

    def test_double_release_is_idempotent(self):
        # stop_video releases explicitly *and* the delete hook fires:
        # the second release must be a no-op, not an underflow.
        stack, pool, admission, _fp = self._admitted_pool()
        path = pool.acquire(conn_attrs())
        path.delete()
        admission.release(path)
        assert admission.committed == 0
