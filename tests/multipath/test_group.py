"""PathGroup mechanics and the classifier's demux-boundary dispatch."""

import pytest

from repro.core import ClassifierStats, FlowCache, Msg, Path, classify
from repro.experiments.micro import Fig7Stack
from repro.multipath import (
    MEMBER_ADDED,
    MEMBER_REMOVED,
    PathGroup,
    WeightedAccountingPolicy,
)

PORT = 6100


def established_path() -> Path:
    path = Path()
    path._establish()
    return path


class TestMembership:
    def test_add_sets_backrefs_and_remove_clears_them(self):
        group = PathGroup("round_robin")
        path = established_path()
        group.add(path)
        assert path.group is group
        assert path.group_id == group.gid
        assert len(group) == 1
        group.remove(path)
        assert path.group is None
        assert path.group_id is None
        assert len(group) == 0

    def test_add_is_idempotent(self):
        group = PathGroup()
        path = established_path()
        group.add(path)
        group.add(path)
        assert len(group) == 1

    def test_path_cannot_join_two_groups(self):
        first, second = PathGroup(), PathGroup()
        path = established_path()
        first.add(path)
        with pytest.raises(ValueError, match="already belongs"):
            second.add(path)

    def test_deleted_member_removes_itself(self):
        group = PathGroup()
        keeper, dier = established_path(), established_path()
        group.add(keeper)
        group.add(dier)
        dier.delete()
        assert group.members == [keeper]
        assert dier.group is None

    def test_membership_hooks_fire_for_adds_removes_and_deletes(self):
        group = PathGroup()
        events = []
        group.on_change(lambda g, p, event: events.append((p.pid, event)))
        a, b = established_path(), established_path()
        group.add(a)
        group.add(b)
        b.delete()
        group.remove(a)
        assert events == [(a.pid, MEMBER_ADDED), (b.pid, MEMBER_ADDED),
                          (b.pid, MEMBER_REMOVED), (a.pid, MEMBER_REMOVED)]

    def test_live_members_excludes_dead_ones(self):
        group = PathGroup()
        live = group.add(established_path())
        creating = Path()  # not yet established
        # add() bypassed deliberately: enroll a non-established path the
        # way a pool refill might, then check dispatch skips it.
        group.members.append(creating)
        creating.group = group
        assert group.live_members() == [live]


class TestDispatch:
    def test_round_robin_spreads_messages(self):
        group = PathGroup("round_robin")
        members = [group.add(established_path()) for _ in range(3)]
        picks = [group.dispatch(None) for _ in range(3)]
        assert picks == members
        assert group.dispatches == 3

    def test_empty_group_dispatches_none(self):
        group = PathGroup()
        assert group.dispatch(None) is None
        group.note_dispatch_failure()
        assert group.dispatch_failures == 1

    def test_affinity_pins_equal_keys_to_one_member(self):
        group = PathGroup("round_robin", affinity_of=lambda msg: msg["frame"])
        group.add(established_path())
        group.add(established_path())
        first = group.dispatch({"frame": 7})
        # Round-robin would alternate; affinity must override it.
        assert all(group.dispatch({"frame": 7}) is first for _ in range(4))
        other = group.dispatch({"frame": 8})
        assert group.dispatch({"frame": 8}) is other

    def test_affinity_rebinds_when_member_dies(self):
        group = PathGroup("round_robin", affinity_of=lambda msg: msg["frame"])
        a = group.add(established_path())
        group.add(established_path())
        assert group.dispatch({"frame": 1}) is a
        a.delete()
        survivor = group.dispatch({"frame": 1})
        assert survivor is not a
        assert survivor.state == "established"

    def test_affinity_map_is_bounded(self):
        group = PathGroup("round_robin", affinity_of=lambda msg: msg["frame"],
                          affinity_capacity=4)
        group.add(established_path())
        for frame in range(100):
            group.dispatch({"frame": frame})
        assert len(group._affinity) == 4

    def test_none_affinity_key_falls_through_to_policy(self):
        group = PathGroup("round_robin", affinity_of=lambda msg: None)
        members = [group.add(established_path()) for _ in range(2)]
        assert [group.dispatch({}) for _ in range(2)] == members


class TestRespreadDebounce:
    def _imbalanced_group(self, interval):
        group = PathGroup(WeightedAccountingPolicy(respread_ratio=2.0),
                          min_respread_interval=interval)
        hot = group.add(established_path())
        group.add(established_path())
        hot.stats.charge_cycles(1_000_000)
        return group

    def test_non_sticky_group_never_respreads(self):
        group = PathGroup("round_robin")
        group.add(established_path())
        assert not group.take_respread()

    def test_imbalance_triggers_respread(self):
        group = self._imbalanced_group(interval=0)
        assert group.take_respread()
        assert group.respreads == 1

    def test_debounce_blocks_back_to_back_respreads(self):
        group = self._imbalanced_group(interval=10)
        assert group.take_respread()  # initial credit covers the first
        assert not group.take_respread()  # still imbalanced, but debounced
        for _ in range(10):
            group.dispatch(None)
        assert group.take_respread()


class _GroupedStack:
    """A Figure 7 stack with N same-port paths enrolled in one group."""

    def __init__(self, members=3, policy="round_robin", cache=None, **kwargs):
        self.stack = Fig7Stack()
        self.group = PathGroup(policy, **kwargs)
        self.members = [self.group.add(self.stack.create_udp_path(PORT))
                        for _ in range(members)]
        self.cache = cache
        self.stats = ClassifierStats()

    def classify_frame(self):
        msg = Msg(self.stack.udp_frame(PORT))
        return classify(self.stack.eth, msg, stats=self.stats,
                        cache=self.cache)


class TestClassifierDispatch:
    def test_demux_resolves_through_the_group(self):
        grouped = _GroupedStack(members=3)
        picks = {grouped.classify_frame().pid for _ in range(6)}
        assert picks == {m.pid for m in grouped.members}

    def test_all_live_members_serve_not_just_the_anchor(self):
        grouped = _GroupedStack(members=2, policy="least_loaded")
        anchor = grouped.members[0]
        anchor.q[0].try_enqueue(object())  # load the anchor
        assert grouped.classify_frame() is grouped.members[1]

    def test_no_live_member_is_a_drop_with_reason(self):
        grouped = _GroupedStack(members=2)
        survivor = grouped.members[1]
        grouped.members[0].delete()
        assert grouped.classify_frame() is survivor
        survivor.delete()
        msg = Msg(grouped.stack.udp_frame(PORT))
        # The dead anchor released the port; demux itself now misses.
        assert classify(grouped.stack.eth, msg, stats=grouped.stats) is None
        assert "drop_reason" in msg.meta

    def test_non_sticky_hit_redispatches_through_policy(self):
        cache = FlowCache()
        grouped = _GroupedStack(members=2, policy="round_robin", cache=cache)
        first = grouped.classify_frame()  # miss: walks chain, caches anchor
        second = grouped.classify_frame()  # hit: re-dispatched
        third = grouped.classify_frame()
        assert cache.hits == 2
        assert first is not second  # round-robin visible through the cache
        assert third is first

    def test_sticky_hit_rides_the_pin(self):
        cache = FlowCache()
        grouped = _GroupedStack(members=2,
                                policy=WeightedAccountingPolicy(),
                                min_respread_interval=1_000_000)
        grouped.cache = cache
        pinned = grouped.classify_frame()
        assert all(grouped.classify_frame() is pinned for _ in range(5))
        assert cache.hits == 5
        assert grouped.group.dispatches == 1  # only the initial placement

    def test_sticky_respread_invalidates_pins_and_replaces(self):
        cache = FlowCache()
        grouped = _GroupedStack(
            members=2, policy=WeightedAccountingPolicy(respread_ratio=2.0),
            cache=cache, min_respread_interval=0)
        pinned = grouped.classify_frame()
        other = next(m for m in grouped.members if m is not pinned)
        # Make the pinned member look expensive: the policy must move the
        # flow on its next packet.
        pinned.stats.charge_cycles(1_000_000)
        replacement = grouped.classify_frame()
        assert replacement is other
        assert grouped.group.respreads == 1
        assert cache.invalidations >= 1


class TestGroupMetrics:
    def test_counters_mirror_into_registry(self):
        from repro.observe.metrics import MetricsRegistry

        registry = MetricsRegistry()
        group = PathGroup("round_robin", name="g")
        group.bind_metrics(registry)
        group.add(established_path())
        group.dispatch(None)
        group.note_dispatch_failure()
        labels = {"group": "g", "policy": "round_robin"}
        assert registry.total("multipath_dispatches_total", **labels) == 1
        assert registry.total("multipath_dispatch_failures_total",
                              **labels) == 1
