"""Selection policies in isolation: given members in known states, each
policy must pick the member its contract promises."""

import pytest

from repro.core import Path
from repro.multipath import (
    POLICIES,
    DeadlineSlackPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SelectionPolicy,
    WeightedAccountingPolicy,
    bottleneck_depth,
    make_policy,
)


def established_path() -> Path:
    path = Path()
    path._establish()
    return path


class TestRegistry:
    def test_every_policy_registered_under_its_name(self):
        for name, cls in POLICIES.items():
            assert cls.name == name
            assert issubclass(cls, SelectionPolicy)

    def test_make_policy_from_name_class_and_instance(self):
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(make_policy(LeastLoadedPolicy), LeastLoadedPolicy)
        instance = WeightedAccountingPolicy(respread_ratio=2.0)
        assert make_policy(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown selection policy"):
            make_policy("fastest_guess")


class TestRoundRobin:
    def test_cycles_through_members(self):
        members = [established_path() for _ in range(3)]
        policy = RoundRobinPolicy()
        picks = [policy.select(members, None) for _ in range(6)]
        assert picks == members + members

    def test_not_sticky(self):
        assert not RoundRobinPolicy().sticky


class TestLeastLoaded:
    def test_picks_shallowest_bottleneck_queue(self):
        idle, busy = established_path(), established_path()
        for _ in range(5):
            busy.q[0].try_enqueue(object())
        assert bottleneck_depth(busy) == 5
        assert bottleneck_depth(idle) == 0
        policy = LeastLoadedPolicy()
        assert policy.select([busy, idle], None) is idle

    def test_bottleneck_is_the_fullest_queue(self):
        path = established_path()
        path.q[2].try_enqueue(object())
        path.q[2].try_enqueue(object())
        path.q[0].try_enqueue(object())
        assert bottleneck_depth(path) == 2


class TestDeadlineSlack:
    def test_prefers_member_without_deadline(self):
        realtime, best_effort = established_path(), established_path()
        realtime.attrs["_edf_deadline_fn"] = lambda: 100.0
        policy = DeadlineSlackPolicy()
        assert policy.select([realtime, best_effort], None) is best_effort

    def test_prefers_latest_deadline(self):
        urgent, relaxed = established_path(), established_path()
        urgent.attrs["_edf_deadline_fn"] = lambda: 10.0
        relaxed.attrs["_edf_deadline_fn"] = lambda: 500.0
        policy = DeadlineSlackPolicy()
        assert policy.select([urgent, relaxed], None) is relaxed

    def test_broken_probe_means_infinite_slack(self):
        def boom():
            raise RuntimeError("probe died")

        broken, dated = established_path(), established_path()
        broken.attrs["_edf_deadline_fn"] = boom
        dated.attrs["_edf_deadline_fn"] = lambda: 10.0
        assert DeadlineSlackPolicy().select([dated, broken], None) is broken

    def test_equal_slack_falls_back_to_queue_depth(self):
        a, b = established_path(), established_path()
        a.q[0].try_enqueue(object())
        assert DeadlineSlackPolicy().select([a, b], None) is b


class TestWeightedAccounting:
    def test_sticky(self):
        assert WeightedAccountingPolicy().sticky

    def test_new_flows_pinned_to_cheapest_member(self):
        cheap, dear = established_path(), established_path()
        dear.stats.charge_cycles(10_000)
        policy = WeightedAccountingPolicy()
        assert policy.select([dear, cheap], None) is cheap

    def test_respread_when_imbalance_exceeds_ratio(self):
        a, b = established_path(), established_path()
        policy = WeightedAccountingPolicy(respread_ratio=4.0)
        a.stats.charge_cycles(100)
        b.stats.charge_cycles(100)
        assert not policy.should_respread([a, b])
        a.stats.charge_cycles(1_000)
        assert policy.should_respread([a, b])

    def test_single_member_never_respreads(self):
        a = established_path()
        a.stats.charge_cycles(1_000_000)
        assert not WeightedAccountingPolicy().should_respread([a])

    def test_ratio_must_exceed_one(self):
        with pytest.raises(ValueError):
            WeightedAccountingPolicy(respread_ratio=1.0)
