"""Tests for the kernel's standard transformation rules."""

import pytest

from repro.core import BWD, Msg, PA_AVG_PROC_TIME
from repro.experiments import Testbed
from repro.kernel import PA_CHECKSUM_FUSED, default_transforms
from repro.mpeg import CANYON, synthesize_clip


def video_path(checksum=False, seed=1):
    testbed = Testbed(seed=seed)
    clip = synthesize_clip(CANYON, seed=seed, nframes=20)
    source = testbed.add_video_source(clip, dst_port=6100)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(CANYON, (str(source.ip), 7200),
                                 local_port=6100, checksum=checksum)
    return testbed, source, session


class TestFuseChecksumRule:
    def test_fires_only_with_checksum_enabled(self):
        _tb, _src, session = video_path(checksum=False)
        assert PA_CHECKSUM_FUSED not in session.path.attrs

    def test_fuses_when_checksum_enabled(self):
        _tb, _src, session = video_path(checksum=True)
        assert session.path.attrs[PA_CHECKSUM_FUSED]
        assert "fuse-udp-checksum-into-mpeg" in \
            session.path.attrs["_transforms_applied"]
        # The UDP stage's separate pass is gone.
        assert session.path.stage_of("UDP").use_checksum is False

    def test_fused_path_cheaper_than_separate_checksum(self):
        """ILP: one pass over the payload instead of two."""
        registry = default_transforms()
        # Build the fused and unfused variants of the same traffic.
        tb_fused, src_fused, fused = video_path(checksum=True, seed=2)
        tb_fused.start_all()
        tb_fused.run_until_sources_done()
        fused_us = fused.path.stats.cycles / 300.0

        # Unfused: same attrs but with the fusion rule removed.
        testbed = Testbed(seed=2)
        clip = synthesize_clip(CANYON, seed=2, nframes=20)
        source = testbed.add_video_source(clip, dst_port=6100)
        no_fuse = default_transforms()
        no_fuse.rules = [r for r in no_fuse.rules
                         if r.name != "fuse-udp-checksum-into-mpeg"]
        kernel = testbed.build_scout(rate_limited_display=False,
                                     transforms=no_fuse)
        plain = kernel.start_video(CANYON, (str(source.ip), 7200),
                                   local_port=6100, checksum=True)
        testbed.start_all()
        testbed.run_until_sources_done()
        plain_us = plain.path.stats.cycles / 300.0

        assert fused.frames_presented == plain.frames_presented
        assert fused_us < plain_us
        assert registry is not None

    def test_semantics_unchanged_by_fusion(self):
        tb, src, session = video_path(checksum=True)
        tb.start_all()
        tb.run_until_sources_done()
        assert session.frames_presented == 20
        assert session.path.stage_of("MPEG").decoder.frames_damaged == 0


class TestMeasureProcTimeRule:
    def test_probe_updates_path_attribute(self):
        tb, _src, session = video_path()
        tb.start_all()
        tb.run_until_sources_done()
        measured = session.path.attrs[PA_AVG_PROC_TIME]
        assert measured > 0
        # The probe tracks per-packet traversal cost; for Canyon a packet
        # carries most of a frame, so the average sits in the
        # decode-per-packet range (ms), not the microsecond header range.
        assert 100 < measured < 50_000

    def test_probe_only_on_video_paths(self):
        testbed = Testbed(seed=1)
        kernel = testbed.build_scout()
        applied = kernel.icmp_path.attrs.get("_transforms_applied", ())
        assert "measure-proc-time" not in applied
