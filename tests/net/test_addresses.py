"""Unit tests for Ethernet and IPv4 address types."""

import pytest

from repro.net import EthAddr, IpAddr


class TestEthAddr:
    def test_parse_and_format(self):
        mac = EthAddr("02:00:00:AA:bb:cc")
        assert str(mac) == "02:00:00:aa:bb:cc"
        assert mac.to_bytes() == bytes([2, 0, 0, 0xAA, 0xBB, 0xCC])

    def test_from_bytes_roundtrip(self):
        raw = bytes(range(6))
        assert EthAddr(raw).to_bytes() == raw

    def test_copy_constructor(self):
        mac = EthAddr("02:00:00:00:00:01")
        assert EthAddr(mac) == mac

    def test_broadcast(self):
        assert EthAddr.BROADCAST.is_broadcast
        assert str(EthAddr.BROADCAST) == "ff:ff:ff:ff:ff:ff"
        assert not EthAddr("02:00:00:00:00:01").is_broadcast

    def test_equality_and_hash(self):
        a = EthAddr("02:00:00:00:00:01")
        b = EthAddr(b"\x02\x00\x00\x00\x00\x01")
        assert a == b
        assert hash(a) == hash(b)
        assert a != EthAddr("02:00:00:00:00:02")

    @pytest.mark.parametrize("bad", ["02:00:00:00:00", "0g:00:00:00:00:01",
                                     "020000000001", ""])
    def test_rejects_malformed_strings(self, bad):
        with pytest.raises(ValueError):
            EthAddr(bad)

    def test_rejects_wrong_byte_length(self):
        with pytest.raises(ValueError):
            EthAddr(b"\x01\x02")

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            EthAddr(123)  # type: ignore[arg-type]


class TestIpAddr:
    def test_parse_and_format(self):
        ip = IpAddr("10.0.0.1")
        assert str(ip) == "10.0.0.1"
        assert ip.to_bytes() == b"\x0a\x00\x00\x01"
        assert ip.to_int() == 0x0A000001

    def test_int_and_bytes_constructors(self):
        assert IpAddr(0x0A000001) == IpAddr("10.0.0.1")
        assert IpAddr(b"\x0a\x00\x00\x01") == IpAddr("10.0.0.1")

    @pytest.mark.parametrize("bad", ["10.0.0", "10.0.0.256", "a.b.c.d",
                                     "1.2.3.4.5", ""])
    def test_rejects_malformed_strings(self, bad):
        with pytest.raises(ValueError):
            IpAddr(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            IpAddr(1 << 32)
        with pytest.raises(ValueError):
            IpAddr(-1)

    def test_same_network_default_prefix(self):
        """The local-knowledge test IP uses to freeze its routing decision."""
        local = IpAddr("10.0.0.1")
        assert local.same_network(IpAddr("10.0.0.99"))
        assert not local.same_network(IpAddr("10.0.1.1"))

    def test_same_network_prefixes(self):
        a, b = IpAddr("10.0.0.1"), IpAddr("10.0.255.1")
        assert a.same_network(b, prefix_len=16)
        assert not a.same_network(b, prefix_len=24)
        assert a.same_network(IpAddr("192.168.0.1"), prefix_len=0)

    def test_same_network_bad_prefix(self):
        with pytest.raises(ValueError):
            IpAddr("10.0.0.1").same_network(IpAddr("10.0.0.2"), prefix_len=33)

    def test_hashable(self):
        table = {IpAddr("10.0.0.1"): "here"}
        assert table[IpAddr("10.0.0.1")] == "here"
