"""Integration tests: paths through the full TEST/UDP/IP/ETH stack."""

import pytest

from repro.core import Attrs, Msg, PA_NET_PARTICIPANTS, BWD, FWD, path_create
from repro.net import (
    IpAddr,
    PA_LOCAL_PORT,
    PA_UDP_CHECKSUM,
    build_udp_frame,
    parse_frame,
    peek_cost,
)
from .conftest import LOCAL_IP, LOCAL_MAC, OFFNET_IP, REMOTE_IP, REMOTE_MAC, Stack


class TestPathCreation:
    def test_path_traverses_whole_stack(self, stack):
        path = stack.make_test_path()
        assert path.routers() == ["TEST", "UDP", "IP", "ETH"]

    def test_arp_resolution_froze_eth_destination(self, stack):
        path = stack.make_test_path()
        from repro.net import PA_ETH_DST
        assert str(path.attrs[PA_ETH_DST]) == REMOTE_MAC

    def test_offnet_peer_truncates_path_at_ip(self, stack):
        """The paper's local-knowledge rule: a peer beyond the local
        network means IP cannot freeze the routing decision."""
        path = stack.make_test_path(remote_ip=OFFNET_IP)
        assert path.routers() == ["TEST", "UDP", "IP"]

    def test_missing_participants_ends_before_udp(self, stack):
        path = path_create(stack.test, Attrs())
        assert path.routers() == ["TEST"]

    def test_local_port_honored(self, stack):
        path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        stage = path.stage_of("UDP")
        assert stage.local_port == 6100

    def test_ephemeral_ports_unique(self, stack):
        p1 = stack.make_test_path()
        p2 = stack.make_test_path()
        assert p1.stage_of("UDP").local_port != p2.stage_of("UDP").local_port


class TestSendSide:
    def test_send_reaches_remote_with_full_header_stack(self, stack):
        path = stack.make_test_path(remote_port=7000,
                                    **{PA_LOCAL_PORT: 6100})
        path.deliver(Msg(b"hello, scout"), FWD)
        stack.run()
        assert len(stack.remote.frames) == 1
        parsed = parse_frame(stack.remote.frames[0])
        assert str(parsed.eth.src) == LOCAL_MAC
        assert str(parsed.ip.src) == LOCAL_IP
        assert str(parsed.ip.dst) == REMOTE_IP
        assert (parsed.udp.sport, parsed.udp.dport) == (6100, 7000)
        assert parsed.payload == b"hello, scout"

    def test_send_accumulates_layer_costs(self, stack):
        path = stack.make_test_path()
        msg = Msg(b"x" * 100)
        path.deliver(msg, FWD)
        # TEST(1) + UDP(4) + IP(6) + ETH(3) microseconds
        assert peek_cost(msg) == pytest.approx(14.0)

    def test_udp_checksum_costs_per_byte(self, stack):
        path = stack.make_test_path(**{PA_UDP_CHECKSUM: True})
        msg = Msg(b"x" * 1000)
        path.deliver(msg, FWD)
        base_path = stack.make_test_path()
        base_msg = Msg(b"x" * 1000)
        base_path.deliver(base_msg, FWD)
        assert peek_cost(msg) > peek_cost(base_msg)


class TestReceiveSide:
    def frame_for(self, stack, dport, payload=b"data", sport=7000,
                  src_ip=REMOTE_IP):
        return build_udp_frame(
            stack.remote.mac, stack.device.mac,
            stack.remote.ip, stack.ip.addr,
            sport, dport, payload)

    def test_classify_finds_the_bound_path(self, stack):
        path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        msg = Msg(self.frame_for(stack, dport=6100))
        assert stack.classify(msg) is path

    def test_classification_is_nondestructive(self, stack):
        stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        frame = self.frame_for(stack, dport=6100)
        msg = Msg(frame)
        stack.classify(msg)
        assert msg.to_bytes() == frame

    def test_deliver_bwd_strips_headers_to_payload(self, stack):
        path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        msg = Msg(self.frame_for(stack, dport=6100, payload=b"payload!"))
        path.deliver(msg, BWD)
        assert len(stack.test.received) == 1
        assert stack.test.received[0].to_bytes() == b"payload!"
        assert path.output_queue(BWD).dequeue().to_bytes() == b"payload!"

    def test_unknown_port_is_dropped(self, stack):
        stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        msg = Msg(self.frame_for(stack, dport=9999))
        assert stack.classify(msg) is None
        assert "no listener" in msg.meta["drop_reason"]

    def test_foreign_ip_is_dropped(self, stack):
        stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        frame = build_udp_frame(stack.remote.mac, stack.device.mac,
                                stack.remote.ip, IpAddr(OFFNET_IP),
                                7000, 6100, b"x")
        msg = Msg(frame)
        assert stack.classify(msg) is None
        assert "not our address" in msg.meta["drop_reason"]

    def test_foreign_mac_is_dropped(self, stack):
        stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        frame = bytearray(self.frame_for(stack, dport=6100))
        frame[0:6] = b"\x02\x00\x00\x00\x00\x77"
        msg = Msg(bytes(frame))
        assert stack.classify(msg) is None
        assert "not our MAC" in msg.meta["drop_reason"]

    def test_wrong_port_in_path_dropped_at_udp_stage(self, stack):
        """Delivering a mismatched packet into a path drops it at UDP."""
        path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        msg = Msg(self.frame_for(stack, dport=6200))
        path.deliver(msg, BWD)
        assert stack.test.received == []
        assert "does not match path port" in msg.meta["drop_reason"]


class TestRoundTrip:
    def test_echo_through_two_stacks_worth_of_headers(self, stack):
        """Send out, rebuild the frame as if the remote echoed it, and
        receive it back through the same path."""
        path = stack.make_test_path(remote_port=7000, **{PA_LOCAL_PORT: 6100})
        path.deliver(Msg(b"ping"), FWD)
        stack.run()
        outbound = parse_frame(stack.remote.frames[0])
        echo = build_udp_frame(stack.remote.mac, stack.device.mac,
                               stack.remote.ip, stack.ip.addr,
                               outbound.udp.dport, outbound.udp.sport,
                               outbound.payload)
        msg = Msg(echo)
        assert stack.classify(msg) is path
        path.deliver(msg, BWD)
        assert stack.test.received[0].to_bytes() == b"ping"
