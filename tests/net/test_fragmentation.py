"""IP fragmentation and reassembly, including the catch-all path and the
reclassify-after-reassembly flow of Section 3.5."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Attrs, BWD, FWD, Msg, path_create
from repro.net import (
    IpHeader,
    PA_IP_CATCHALL,
    PA_LOCAL_PORT,
    build_udp_frame,
    parse_frame,
)
from .conftest import REMOTE_IP, Stack


def big_payload(n=4000):
    return bytes(i % 251 for i in range(n))


class TestSendFragmentation:
    def test_large_datagram_fragments_on_the_wire(self, stack):
        path = stack.make_test_path()
        path.deliver(Msg(big_payload(4000)), FWD)
        stack.run()
        frames = [parse_frame(f) for f in stack.remote.frames]
        assert len(frames) >= 3
        assert all(f.ip.is_fragment for f in frames)
        assert frames[-1].ip.more_fragments is False
        assert all(f.ip.more_fragments for f in frames[:-1])

    def test_fragments_respect_mtu(self, stack):
        path = stack.make_test_path()
        path.deliver(Msg(big_payload(5000)), FWD)
        stack.run()
        for frame in stack.remote.frames:
            assert len(frame) <= 14 + stack.eth.mtu

    def test_fragment_offsets_are_8_byte_aligned(self, stack):
        path = stack.make_test_path()
        path.deliver(Msg(big_payload(4000)), FWD)
        stack.run()
        for frame in stack.remote.frames:
            parsed = parse_frame(frame)
            assert (parsed.ip.frag_offset * 8) % 8 == 0

    def test_small_datagram_not_fragmented(self, stack):
        path = stack.make_test_path()
        path.deliver(Msg(b"small"), FWD)
        stack.run()
        assert len(stack.remote.frames) == 1
        assert not parse_frame(stack.remote.frames[0]).ip.is_fragment


class TestInPathReassembly:
    """A path whose IP stage sees its own fragments reassembles in place."""

    def loopback_fragments(self, stack, path, payload):
        """Send FWD, capture wire fragments, rewrite them as if a remote
        had sent the same datagram to us."""
        path.deliver(Msg(payload), FWD)
        stack.run()
        inbound = []
        for frame in stack.remote.frames:
            parsed = parse_frame(frame)
            header = IpHeader(
                parsed.ip.total_length, parsed.ip.ident, parsed.ip.proto,
                stack.remote.ip, stack.ip.addr,
                flags=parsed.ip.flags, frag_offset=parsed.ip.frag_offset)
            eth = stack.remote.mac.to_bytes() + stack.device.mac.to_bytes()
            raw = frame[34:]  # strip original eth(14)+ip(20), keep payload
            inbound.append(stack.device.mac.to_bytes()
                           + stack.remote.mac.to_bytes() + b"\x08\x00"
                           + header.pack() + raw)
            assert eth  # silence linters; eth construction shown above
        return inbound

    def test_fragments_absorbed_until_complete(self, stack):
        payload = big_payload(3000)
        path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        frames = self.loopback_fragments(stack, path, payload)
        # swap ports so the UDP stage accepts the loopback
        for i, frame in enumerate(frames):
            body = bytearray(frame)
            if i == 0:  # UDP header lives in the first fragment
                sport = body[34:36]
                body[34:36] = body[36:38]
                body[36:38] = sport
            frames[i] = bytes(body)
        for frame in frames[:-1]:
            path.deliver(Msg(frame), BWD)
            assert stack.test.received == []  # absorbed
        path.deliver(Msg(frames[-1]), BWD)
        assert len(stack.test.received) == 1
        assert stack.test.received[0].to_bytes() == payload

    def test_out_of_order_fragments_reassemble(self, stack):
        payload = big_payload(3000)
        path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        frames = self.loopback_fragments(stack, path, payload)
        for i, frame in enumerate(frames):
            body = bytearray(frame)
            if i == 0:
                sport = body[34:36]
                body[34:36] = body[36:38]
                body[36:38] = sport
            frames[i] = bytes(body)
        # deliver last-first, then the rest in order
        path.deliver(Msg(frames[-1]), BWD)
        for frame in frames[:-1]:
            path.deliver(Msg(frame), BWD)
        assert len(stack.test.received) == 1
        assert stack.test.received[0].to_bytes() == payload

    def test_incomplete_datagram_expires_in_virtual_time(self, stack):
        """The RFC reassembly timeout: fragments that never complete are
        freed after IP_REASSEMBLY_TIMEOUT_US, the loss is accounted on the
        path, and a straggler arriving later cannot resurrect them."""
        from repro import params

        payload = big_payload(3000)
        path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        frames = self.loopback_fragments(stack, path, payload)
        for i, frame in enumerate(frames):
            body = bytearray(frame)
            if i == 0:
                sport = body[34:36]
                body[34:36] = body[36:38]
                body[36:38] = sport
            frames[i] = bytes(body)
        stage = path.stage_of("IP")
        for frame in frames[:-1]:  # the last fragment is "lost"
            path.deliver(Msg(frame), BWD)
        assert len(stage._buffers) == 1
        stack.engine.run_until(stack.engine.now
                               + params.IP_REASSEMBLY_TIMEOUT_US + 1_000.0)
        assert stack.ip.reassembly_timeouts == 1
        assert stage._buffers == {}
        assert path.stats.drop_reasons.get("reassembly_timeout") == 1
        # The straggler starts a fresh (incomplete) buffer: no delivery.
        path.deliver(Msg(frames[-1]), BWD)
        assert stack.test.received == []


class TestCatchAllPath:
    def make_catchall(self, stack):
        path = path_create(stack.ip, Attrs({PA_IP_CATCHALL: True}))
        stack.ip.frag_path = path
        return path

    def test_catchall_path_shape(self, stack):
        path = self.make_catchall(stack)
        assert path.routers() == ["IP", "ETH"]

    def test_fragments_classify_to_catchall(self, stack):
        self.make_catchall(stack)
        stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        # Build a fragment by hand: first half of a UDP datagram.
        whole = build_udp_frame(stack.remote.mac, stack.device.mac,
                                stack.remote.ip, stack.ip.addr,
                                7000, 6100, big_payload(1000))
        ip_payload = whole[34:]  # beyond eth+ip headers: udp hdr + payload
        first = IpHeader(20 + 512, 99, 17, stack.remote.ip, stack.ip.addr,
                         flags=1, frag_offset=0)
        frame = whole[:14] + first.pack() + ip_payload[:512]
        msg = Msg(frame)
        assert stack.classify(msg) is stack.ip.frag_path

    def test_fragment_without_catchall_dropped(self, stack):
        stack.make_test_path(**{PA_LOCAL_PORT: 6100})
        first = IpHeader(100, 99, 17, stack.remote.ip, stack.ip.addr,
                         flags=1, frag_offset=0)
        frame = (stack.device.mac.to_bytes() + stack.remote.mac.to_bytes()
                 + b"\x08\x00" + first.pack() + b"x" * 80)
        msg = Msg(frame)
        assert stack.classify(msg) is None
        assert "no reassembly path" in msg.meta["drop_reason"]

    def test_reassembled_datagram_reaches_reclassify_hook(self, stack):
        catchall = self.make_catchall(stack)
        handed = []
        stack.ip.reclassify_hook = lambda msg, hdr: handed.append(
            (msg.to_bytes(), hdr))
        payload = big_payload(600)
        udp_part = build_udp_frame(stack.remote.mac, stack.device.mac,
                                   stack.remote.ip, stack.ip.addr,
                                   7000, 6100, payload)[34:]
        half = len(udp_part) // 2
        half -= half % 8
        pieces = [(0, udp_part[:half], True), (half, udp_part[half:], False)]
        for offset, body, more in pieces:
            header = IpHeader(20 + len(body), 123, 17,
                              stack.remote.ip, stack.ip.addr,
                              flags=1 if more else 0, frag_offset=offset // 8)
            frame = (stack.device.mac.to_bytes()
                     + stack.remote.mac.to_bytes() + b"\x08\x00"
                     + header.pack() + body)
            catchall.deliver(Msg(frame), BWD)
        assert len(handed) == 1
        data, header = handed[0]
        assert data == udp_part
        assert not header.is_fragment

    def test_reassembly_eviction_caps_memory(self, stack):
        from repro.net.ip import IpStage
        path = self.make_catchall(stack)
        stage = path.stage_of("IP")
        for ident in range(IpStage.MAX_REASSEMBLY + 5):
            header = IpHeader(28, ident, 17, stack.remote.ip, stack.ip.addr,
                              flags=1, frag_offset=0)
            frame = (stack.device.mac.to_bytes()
                     + stack.remote.mac.to_bytes() + b"\x08\x00"
                     + header.pack() + b"12345678")
            path.deliver(Msg(frame), BWD)
        assert len(stage._buffers) <= IpStage.MAX_REASSEMBLY
        assert stack.ip.reassembly_evictions == 5


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6000))
def test_fragmentation_roundtrip_property(nbytes):
    """Any datagram size survives fragment -> wire -> reassemble."""
    stack = Stack()
    payload = bytes(i % 256 for i in range(nbytes))
    path = stack.make_test_path(**{PA_LOCAL_PORT: 6100})
    path.deliver(Msg(payload), FWD)
    stack.run()
    frames = stack.remote.frames
    assert frames
    # Feed the fragments back with src/dst + ports swapped.
    for frame in frames:
        parsed = parse_frame(frame)
        header = IpHeader(parsed.ip.total_length, parsed.ip.ident,
                          parsed.ip.proto, stack.remote.ip, stack.ip.addr,
                          flags=parsed.ip.flags,
                          frag_offset=parsed.ip.frag_offset)
        body = bytearray(frame[34:])
        if parsed.ip.frag_offset == 0:
            sport = body[0:2]
            body[0:2] = body[2:4]
            body[2:4] = sport
        inbound = (stack.device.mac.to_bytes()
                   + stack.remote.mac.to_bytes() + b"\x08\x00"
                   + header.pack() + bytes(body))
        path.deliver(Msg(inbound), BWD)
    assert len(stack.test.received) == 1
    assert stack.test.received[0].to_bytes() == payload
