"""ICMP echo path: the Table 2 load target."""

import pytest

from repro.core import Attrs, BWD, Msg, path_create
from repro.net import build_icmp_echo, parse_frame, IcmpHeader
from .conftest import Stack


@pytest.fixture
def icmp_stack():
    stack = Stack(with_icmp=True)
    path = path_create(stack.icmp, Attrs())
    stack.icmp.echo_path = path
    return stack, path


def echo_request(stack, ident=42, seq=1, payload=b"ping-data"):
    return build_icmp_echo(stack.remote.mac, stack.device.mac,
                           stack.remote.ip, stack.ip.addr,
                           ident, seq, payload=payload)


class TestEchoPathCreation:
    def test_path_shape(self, icmp_stack):
        _stack, path = icmp_stack
        assert path.routers() == ["ICMP", "IP", "ETH"]

    def test_path_is_wide(self, icmp_stack):
        """The echo path is a catch-all: no frozen remote participant."""
        _stack, path = icmp_stack
        assert path.stage_of("IP").remote_ip is None


class TestClassification:
    def test_echo_request_classifies_to_echo_path(self, icmp_stack):
        stack, path = icmp_stack
        msg = Msg(echo_request(stack))
        assert stack.classify(msg) is path

    def test_echo_reply_classifies_and_is_recorded(self, icmp_stack):
        """Replies ride the echo path too (the PMTUD prober polls the
        router's reply table to learn that a DF probe got through)."""
        stack, path = icmp_stack
        frame = build_icmp_echo(stack.remote.mac, stack.device.mac,
                                stack.remote.ip, stack.ip.addr,
                                5, 2, reply=True, payload=b"x" * 11)
        msg = Msg(frame)
        classified = stack.classify(msg)
        assert classified is path
        classified.deliver(msg, BWD)
        assert stack.icmp.echo_replies_received == 1
        assert stack.icmp.replies_seen[(5, 2)] == 11

    def test_no_path_bound_drops(self):
        stack = Stack(with_icmp=True)
        msg = Msg(echo_request(stack))
        assert stack.classify(msg) is None
        assert "no echo path" in msg.meta["drop_reason"]


class TestEchoReply:
    def test_request_generates_reply_to_requester(self, icmp_stack):
        stack, path = icmp_stack
        msg = Msg(echo_request(stack, ident=7, seq=99))
        classified = stack.classify(msg)
        classified.deliver(msg, BWD)
        stack.run()
        assert len(stack.remote.frames) == 1
        parsed = parse_frame(stack.remote.frames[0])
        assert parsed.icmp.icmp_type == IcmpHeader.ECHO_REPLY
        assert parsed.icmp.ident == 7
        assert parsed.icmp.seq == 99
        assert str(parsed.ip.dst) == str(stack.remote.ip)
        assert parsed.eth.dst == stack.remote.mac

    def test_reply_carries_request_payload(self, icmp_stack):
        stack, path = icmp_stack
        msg = Msg(echo_request(stack, payload=b"0123456789"))
        stack.classify(msg)
        path.deliver(msg, BWD)
        stack.run()
        assert parse_frame(stack.remote.frames[0]).payload == b"0123456789"

    def test_counters(self, icmp_stack):
        stack, path = icmp_stack
        for seq in range(3):
            msg = Msg(echo_request(stack, seq=seq))
            stack.classify(msg)
            path.deliver(msg, BWD)
        assert stack.icmp.echo_requests == 3
        assert stack.icmp.echo_replies == 3

    def test_non_echo_type_absorbed(self, icmp_stack):
        stack, path = icmp_stack
        # type 13 = timestamp request; our ICMP ignores it
        frame = bytearray(echo_request(stack))
        frame[34] = 13
        msg = Msg(bytes(frame))
        path.deliver(msg, BWD)
        stack.run()
        assert stack.remote.frames == []
        assert "unhandled ICMP type" in msg.meta["drop_reason"]

    def test_plain_unreachable_absorbed_and_counted(self, icmp_stack):
        stack, path = icmp_stack
        # type 3 code 0 = net unreachable: counted, no reply generated
        frame = bytearray(echo_request(stack))
        frame[34] = 3
        msg = Msg(bytes(frame))
        path.deliver(msg, BWD)
        stack.run()
        assert stack.remote.frames == []
        assert stack.icmp.unreachable_received == 1
