"""ARP resolver tests (the nsProvider service of Figure 6)."""

import pytest

from repro.core import PathCreationError
from repro.net import ArpRouter, EthAddr, EtherSegment, IpAddr
from repro.sim import Engine
from .conftest import RecordingRemote


class TestResolver:
    def test_static_entries_resolve(self):
        arp = ArpRouter("ARP")
        arp.add_entry("10.0.0.2", "02:00:00:00:00:02")
        assert arp.resolve("10.0.0.2") == EthAddr("02:00:00:00:00:02")
        assert arp.hits == 1

    def test_resolution_failure_aborts_path_creation(self):
        arp = ArpRouter("ARP")
        with pytest.raises(PathCreationError, match="cannot resolve"):
            arp.resolve("10.0.0.99")
        assert arp.misses == 1

    def test_accepts_typed_addresses(self):
        arp = ArpRouter("ARP")
        arp.add_entry(IpAddr("10.0.0.2"), EthAddr("02:00:00:00:00:02"))
        assert arp.resolve(IpAddr("10.0.0.2")) == \
            EthAddr("02:00:00:00:00:02")

    def test_learn_from_segment(self):
        engine = Engine()
        segment = EtherSegment(engine)
        segment.attach(RecordingRemote(engine))
        segment.attach(RecordingRemote(engine, mac="02:00:00:00:00:05",
                                       ip="10.0.0.5"))
        arp = ArpRouter("ARP")
        arp.learn_from_segment(segment)
        assert len(arp.entries()) == 2
        assert arp.resolve("10.0.0.5") == EthAddr("02:00:00:00:00:05")

    def test_entries_returns_a_copy(self):
        arp = ArpRouter("ARP")
        arp.add_entry("10.0.0.2", "02:00:00:00:00:02")
        snapshot = arp.entries()
        snapshot.clear()
        assert arp.resolve("10.0.0.2") is not None
