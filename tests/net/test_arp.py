"""ARP resolver tests (the nsProvider service of Figure 6)."""

import pytest

from repro import params
from repro.core import PathCreationError
from repro.net import ArpRouter, EthAddr, EtherSegment, IpAddr
from repro.sim import Engine
from .conftest import RecordingRemote


class TestResolver:
    def test_static_entries_resolve(self):
        arp = ArpRouter("ARP")
        arp.add_entry("10.0.0.2", "02:00:00:00:00:02")
        assert arp.resolve("10.0.0.2") == EthAddr("02:00:00:00:00:02")
        assert arp.hits == 1

    def test_resolution_failure_aborts_path_creation(self):
        arp = ArpRouter("ARP")
        with pytest.raises(PathCreationError, match="cannot resolve"):
            arp.resolve("10.0.0.99")
        assert arp.misses == 1

    def test_accepts_typed_addresses(self):
        arp = ArpRouter("ARP")
        arp.add_entry(IpAddr("10.0.0.2"), EthAddr("02:00:00:00:00:02"))
        assert arp.resolve(IpAddr("10.0.0.2")) == \
            EthAddr("02:00:00:00:00:02")

    def test_learn_from_segment(self):
        engine = Engine()
        segment = EtherSegment(engine)
        segment.attach(RecordingRemote(engine))
        segment.attach(RecordingRemote(engine, mac="02:00:00:00:00:05",
                                       ip="10.0.0.5"))
        arp = ArpRouter("ARP")
        arp.learn_from_segment(segment)
        assert len(arp.entries()) == 2
        assert arp.resolve("10.0.0.5") == EthAddr("02:00:00:00:00:05")

    def test_entries_returns_a_copy(self):
        arp = ArpRouter("ARP")
        arp.add_entry("10.0.0.2", "02:00:00:00:00:02")
        snapshot = arp.entries()
        snapshot.clear()
        assert arp.resolve("10.0.0.2") is not None


class TestAsyncRequest:
    """request(): retry with exponential backoff instead of giving up."""

    def _arp(self, segment=None):
        engine = Engine()
        arp = ArpRouter("ARP")
        arp.use_engine(engine)
        if segment is not None:
            arp.learn_from_segment(segment)
        return engine, arp

    def test_needs_an_engine(self):
        arp = ArpRouter("ARP")
        with pytest.raises(RuntimeError, match="use_engine"):
            arp.request("10.0.0.2", lambda ip, mac: None)

    def test_cached_entry_resolves_immediately(self):
        engine, arp = self._arp()
        arp.add_entry("10.0.0.2", "02:00:00:00:00:02")
        resolved = []
        arp.request("10.0.0.2", lambda ip, mac: resolved.append((ip, mac)))
        assert resolved == [(IpAddr("10.0.0.2"),
                             EthAddr("02:00:00:00:00:02"))]
        assert arp.request_retries == 0

    def test_late_attached_host_found_by_retry(self):
        """The first attempt misses; the host attaches to the segment
        afterwards; a retry re-consults the segment registry and wins —
        a transient failure healed instead of propagated."""
        engine = Engine()
        segment = EtherSegment(engine)
        _, arp = self._arp(segment=segment)
        arp.engine = engine
        resolved = []
        arp.request("10.0.0.9", lambda ip, mac: resolved.append(mac))
        assert resolved == []  # nobody home yet
        segment.attach(RecordingRemote(engine, mac="02:00:00:00:00:09",
                                       ip="10.0.0.9"))
        engine.run()
        assert resolved == [EthAddr("02:00:00:00:00:09")]
        assert arp.misses == 1 and arp.hits == 1  # one miss, then the win
        assert engine.now == params.ARP_REQUEST_TIMEOUT_US

    def test_failure_after_bounded_backoff(self):
        engine, arp = self._arp()
        failed = []
        arp.request("10.0.0.99", lambda ip, mac: None,
                    on_failed=lambda ip: failed.append(ip))
        engine.run()
        assert failed == [IpAddr("10.0.0.99")]
        assert arp.request_failures == 1
        assert arp.request_retries == params.ARP_MAX_RETRIES - 1
        # Doubling timeouts: 50 + 100 + 200 + 400 ms before giving up.
        expected = params.ARP_REQUEST_TIMEOUT_US * (
            2 ** params.ARP_MAX_RETRIES - 1)
        assert engine.now == expected
