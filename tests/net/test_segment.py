"""Tests for the segment, NIC interrupts, and host agents."""

import pytest

from repro.net import EthAddr, EtherSegment, NetDevice
from repro.sim import CPU, Engine
from .conftest import RecordingRemote, LOCAL_MAC, REMOTE_MAC


def frame_to(dst_mac, payload=b"", src_mac=LOCAL_MAC):
    return EthAddr(dst_mac).to_bytes() + EthAddr(src_mac).to_bytes() + \
        b"\x08\x00" + payload


class TestSegmentDelivery:
    def setup_method(self):
        self.engine = Engine()
        self.segment = EtherSegment(self.engine, bandwidth_mbps=10,
                                    latency_us=50)
        self.remote = RecordingRemote(self.engine)
        self.segment.attach(self.remote)

    def test_unicast_delivery_with_latency_and_serialization(self):
        frame = frame_to(REMOTE_MAC, b"x" * 111)  # 125 bytes total
        arrival = self.segment.transmit(frame, EthAddr(LOCAL_MAC))
        # 125 bytes at 10 Mb/s = 100us serialization + 50us latency
        assert arrival == pytest.approx(150.0)
        self.engine.run()
        assert self.remote.frames == [frame]

    def test_serialization_busy_wire(self):
        """Back-to-back frames serialize one after the other."""
        frame = frame_to(REMOTE_MAC, b"x" * 111)
        first = self.segment.transmit(frame, EthAddr(LOCAL_MAC))
        second = self.segment.transmit(frame, EthAddr(LOCAL_MAC))
        assert second - first == pytest.approx(100.0)  # one wire time apart

    def test_unknown_destination_vanishes(self):
        self.segment.transmit(frame_to("02:00:00:00:00:99"),
                              EthAddr(LOCAL_MAC))
        self.engine.run()
        assert self.remote.frames == []

    def test_broadcast_reaches_everyone_but_sender(self):
        other = RecordingRemote(self.engine, mac="02:00:00:00:00:03",
                                ip="10.0.0.3")
        self.segment.attach(other)
        self.segment.transmit(frame_to("ff:ff:ff:ff:ff:ff"),
                              EthAddr(REMOTE_MAC))
        self.engine.run()
        assert len(other.frames) == 1
        assert self.remote.frames == []  # sender doesn't hear itself

    def test_runt_frame_rejected(self):
        with pytest.raises(ValueError, match="runt"):
            self.segment.transmit(b"tiny", EthAddr(LOCAL_MAC))

    def test_duplicate_mac_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self.segment.attach(RecordingRemote(self.engine))

    def test_statistics(self):
        frame = frame_to(REMOTE_MAC, b"abc")
        self.segment.transmit(frame, EthAddr(LOCAL_MAC))
        assert self.segment.frames_carried == 1
        assert self.segment.bytes_carried == len(frame)

    def test_jitter_bounded(self):
        import numpy as np
        segment = EtherSegment(self.engine, latency_us=50, jitter_us=20,
                               rng=np.random.default_rng(7))
        segment.attach(RecordingRemote(self.engine, mac="02:00:00:00:00:07",
                                       ip="10.0.0.7"))
        base = segment.serialization_us(64) + 50
        for _ in range(50):
            arrival = segment.transmit(frame_to("02:00:00:00:00:07",
                                                b"x" * 50),
                                       EthAddr(LOCAL_MAC))
            wire_free_component = arrival  # monotone; just bound the jitter
            assert arrival >= base - 1e-9
        assert wire_free_component > 0


class TestNetDevice:
    def test_rx_raises_interrupt_and_runs_handler(self):
        engine = Engine()
        cpu = CPU(engine)
        segment = EtherSegment(engine, latency_us=10)
        device = NetDevice(EthAddr(LOCAL_MAC), cpu, irq_us=2.0)
        segment.attach(device)
        got = []
        device.rx_handler = got.append
        remote = RecordingRemote(engine)
        segment.attach(remote)
        frame = frame_to(LOCAL_MAC, b"payload", src_mac=REMOTE_MAC)
        segment.transmit(frame, EthAddr(REMOTE_MAC))
        engine.run()
        assert got == [frame]
        assert cpu.interrupt_us == 2.0
        assert device.rx_frames == 1

    def test_rx_without_handler_counts_missed(self):
        engine = Engine()
        device = NetDevice(EthAddr(LOCAL_MAC), CPU(engine))
        device.receive(b"\x00" * 20)
        assert device.rx_missed == 1

    def test_interrupt_during_compute_steals_time(self):
        """The receive-livelock ingredient: frame arrival inflates the
        running thread's compute."""
        engine = Engine()
        cpu = CPU(engine)
        segment = EtherSegment(engine, latency_us=10)
        device = NetDevice(EthAddr(LOCAL_MAC), cpu, irq_us=5.0)
        segment.attach(device)
        device.rx_handler = lambda frame: None
        remote = RecordingRemote(engine)
        segment.attach(remote)
        finished = []
        cpu.start_compute(1000, lambda: finished.append(engine.now))
        segment.transmit(frame_to(LOCAL_MAC, src_mac=REMOTE_MAC),
                         EthAddr(REMOTE_MAC))
        engine.run()
        assert finished == [1005.0]


class TestHostAgent:
    def test_filters_foreign_unicast(self):
        engine = Engine()
        segment = EtherSegment(engine, latency_us=1)
        remote = RecordingRemote(engine)
        segment.attach(remote)
        bystander = RecordingRemote(engine, mac="02:00:00:00:00:05",
                                    ip="10.0.0.5")
        segment.attach(bystander)
        segment.transmit(frame_to(REMOTE_MAC), EthAddr(LOCAL_MAC))
        engine.run()
        assert len(remote.frames) == 1
        assert bystander.frames == []

    def test_service_delay(self):
        engine = Engine()
        segment = EtherSegment(engine, latency_us=0)
        slow = RecordingRemote(engine, service_us=40.0)
        segment.attach(slow)
        times = []
        original = slow.handle_frame
        slow.handle_frame = lambda f: (times.append(engine.now), original(f))
        segment.transmit(frame_to(REMOTE_MAC, b"x" * 100),
                         EthAddr("02:00:00:00:00:09"))
        engine.run()
        wire = segment.serialization_us(114)
        assert times == [pytest.approx(wire + 40.0)]
