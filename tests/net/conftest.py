"""Shared fixture: a full protocol stack on a simulated segment.

Builds the Figure 6/7 configuration — TEST over UDP over IP over ETH with
ARP resolution — plus a remote host agent that records every frame it
receives and can synthesize traffic toward the stack.
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.core import Attrs, PA_NET_PARTICIPANTS, RouterGraph, classify, path_create
from repro.net import (
    ArpRouter,
    EthAddr,
    EthRouter,
    EtherSegment,
    HostAgent,
    IcmpRouter,
    IpAddr,
    IpRouter,
    MflowRouter,
    NetDevice,
    TcpRouter,
    TestRouter,
    UdpRouter,
)
from repro.sim import CPU, Engine

LOCAL_MAC = "02:00:00:00:00:01"
LOCAL_IP = "10.0.0.1"
REMOTE_MAC = "02:00:00:00:00:02"
REMOTE_IP = "10.0.0.2"
OFFNET_IP = "192.168.9.9"


class RecordingRemote(HostAgent):
    """A remote host that just records the frames it receives."""

    def __init__(self, engine, mac=REMOTE_MAC, ip=REMOTE_IP, service_us=0.0):
        super().__init__(engine, EthAddr(mac), IpAddr(ip),
                         service_us=service_us)
        self.frames: List[bytes] = []

    def handle_frame(self, frame: bytes) -> None:
        self.frames.append(frame)


class Stack:
    """The assembled local protocol stack plus the wire and one remote."""

    def __init__(self, with_mflow: bool = False, with_icmp: bool = False,
                 with_tcp: bool = False, local_ip: str = LOCAL_IP):
        self.engine = Engine()
        self.cpu = CPU(self.engine)
        self.segment = EtherSegment(self.engine, latency_us=50.0)
        self.device = NetDevice(EthAddr(LOCAL_MAC), self.cpu)
        self.segment.attach(self.device)
        self.remote = RecordingRemote(self.engine)
        self.segment.attach(self.remote)

        self.graph = RouterGraph()
        self.eth = self.graph.add(EthRouter("ETH", mac=LOCAL_MAC))
        self.arp = self.graph.add(ArpRouter("ARP"))
        self.ip = self.graph.add(IpRouter("IP", addr=local_ip))
        self.udp = self.graph.add(UdpRouter("UDP"))
        self.test = self.graph.add(TestRouter("TEST"))
        self.graph.connect("IP.down", "ETH.up")
        self.graph.connect("IP.res", "ARP.resolver")
        self.graph.connect("ARP.down", "ETH.up")
        self.graph.connect("UDP.down", "IP.up")
        self.graph.connect("TEST.down", "UDP.up")
        self.mflow: Optional[MflowRouter] = None
        self.icmp: Optional[IcmpRouter] = None
        self.tcp: Optional[TcpRouter] = None
        if with_mflow:
            self.mflow = self.graph.add(MflowRouter("MFLOW"))
            self.graph.connect("MFLOW.down", "UDP.up")
        if with_icmp:
            self.icmp = self.graph.add(IcmpRouter("ICMP"))
            self.graph.connect("ICMP.down", "IP.up")
        if with_tcp:
            self.tcp = self.graph.add(TcpRouter("TCP"))
            self.graph.connect("TCP.down", "IP.up")
        self.eth.attach_device(self.device)
        self.arp.add_entry(REMOTE_IP, REMOTE_MAC)
        self.graph.boot()
        self.ip.use_engine(self.engine)
        self.arp.use_engine(self.engine)
        if self.tcp is not None:
            self.tcp.use_engine(self.engine)

    def make_test_path(self, remote_ip: str = REMOTE_IP,
                       remote_port: int = 7000, **extra_attrs):
        """Create a TEST->UDP->IP->ETH path to the remote."""
        attrs = Attrs({PA_NET_PARTICIPANTS: (remote_ip, remote_port)},
                      **extra_attrs)
        return path_create(self.test, attrs)

    def classify(self, msg):
        return classify(self.eth, msg)

    def run(self):
        self.engine.run()


@pytest.fixture
def stack():
    return Stack()


@pytest.fixture
def stack_full():
    return Stack(with_mflow=True, with_icmp=True, with_tcp=True)
