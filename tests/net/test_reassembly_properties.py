"""Property suite for IP reassembly under adversarial arrival orders.

Two invariants the fragmentation sweep must hold:

* **Byte identity** — any admissible interleaving of fragment trains
  (reordering, duplication, concurrent datagrams with colliding idents)
  reassembles every datagram byte-identically, exactly once.
* **Accounting reconciliation** — every incomplete datagram is accounted
  exactly once, as either an LRU eviction or an RFC timeout, and the
  router counters, the path drop ledger and the metrics registry agree
  on the split.
"""

from hypothesis import given, settings, strategies as st

from repro import params
from repro.core import Attrs, BWD, Msg, PA_TRACE, path_create
from repro.net import PA_IP_CATCHALL
from repro.net.headers import IP_FLAG_MORE_FRAGMENTS, IpHeader
from repro.net.ip import IpStage
from repro.observe import Observatory
from .conftest import Stack


def frag_frame(stack, ident, proto, offset, body, more):
    header = IpHeader(IpHeader.SIZE + len(body), ident, proto,
                      stack.remote.ip, stack.ip.addr,
                      flags=IP_FLAG_MORE_FRAGMENTS if more else 0,
                      frag_offset=offset // 8)
    return (stack.device.mac.to_bytes() + stack.remote.mac.to_bytes()
            + b"\x08\x00" + header.pack() + body)


def split_train(payload, chunk):
    chunk -= chunk % 8
    out, offset = [], 0
    while offset < len(payload):
        body = payload[offset:offset + chunk]
        more = offset + len(body) < len(payload)
        out.append((offset, body, more))
        offset += len(body)
    return out


# Concurrent datagrams: ident deliberately drawn from a tiny pool so
# collisions are common; (proto, ident) pairs are deduplicated below so
# each datagram has a distinct RFC 791 reassembly id.
datagram_strategy = st.fixed_dictionaries({
    "proto": st.sampled_from([17, 6, 253]),
    "ident": st.integers(min_value=1, max_value=3),
    "size": st.integers(min_value=9, max_value=2000),
    "chunk": st.integers(min_value=8, max_value=512),
    "seed": st.integers(min_value=0, max_value=255),
})


@settings(max_examples=30, deadline=None)
@given(specs=st.lists(datagram_strategy, min_size=1, max_size=4,
                      unique_by=lambda s: (s["proto"], s["ident"])),
       order_seed=st.randoms(use_true_random=False),
       duplicate_every=st.integers(min_value=0, max_value=3))
def test_interleavings_reassemble_byte_identically(specs, order_seed,
                                                   duplicate_every):
    """Shuffled, duplicated, concurrent fragment trains -> exact bytes."""
    stack = Stack()
    handed = []
    path = path_create(stack.ip, Attrs({PA_IP_CATCHALL: True}))
    stack.ip.frag_path = path
    stack.ip.reclassify_hook = lambda msg, hdr: handed.append(
        ((hdr.proto, hdr.ident), msg.to_bytes()))

    expected = {}
    deliveries = []
    for spec in specs:
        payload = bytes((i * spec["seed"] + i) % 256
                        for i in range(spec["size"]))
        expected[(spec["proto"], spec["ident"])] = payload
        # Clamp the chunk so every train has at least two fragments (a
        # single MF=0 piece at offset 0 is a whole datagram, not a train).
        chunk = max(8, min(spec["chunk"] - spec["chunk"] % 8,
                           ((spec["size"] - 1) // 8) * 8))
        for offset, body, more in split_train(payload, chunk):
            deliveries.append(frag_frame(stack, spec["ident"],
                                         spec["proto"], offset, body,
                                         more))
    if duplicate_every:
        deliveries += deliveries[::duplicate_every + 1]
    order_seed.shuffle(deliveries)

    for frame in deliveries:
        path.deliver(Msg(frame), BWD)

    # Every datagram arrives exactly once, byte-identical; duplicates of
    # already-completed trains may start fresh buffers but never deliver.
    assert dict(handed) == expected
    once = [key for key, _ in handed]
    assert sorted(once) == sorted(expected)


@settings(max_examples=20, deadline=None)
@given(incomplete=st.integers(min_value=1, max_value=48))
def test_timeout_and_eviction_accounting_reconciles(incomplete):
    """Incomplete datagrams split exactly into evictions + timeouts, and
    the router counters, path ledger and metrics registry agree."""
    stack = Stack()
    observatory = Observatory(stack.engine)
    path = path_create(stack.ip, Attrs({PA_IP_CATCHALL: True,
                                        PA_TRACE: observatory}))
    stack.ip.frag_path = path
    stage = path.stage_of("IP")

    for ident in range(incomplete):
        path.deliver(Msg(frag_frame(stack, ident + 1, 17, 0,
                                    b"\xab" * 16, True)), BWD)

    expected_evictions = max(0, incomplete - IpStage.MAX_REASSEMBLY)
    assert stack.ip.reassembly_evictions == expected_evictions
    assert len(stage._buffers) == min(incomplete, IpStage.MAX_REASSEMBLY)

    stack.engine.run_until(stack.engine.now
                           + params.IP_REASSEMBLY_TIMEOUT_US + 1_000.0)
    expected_timeouts = min(incomplete, IpStage.MAX_REASSEMBLY)
    assert stack.ip.reassembly_timeouts == expected_timeouts
    assert stage._buffers == {}

    # Three-way reconciliation: router counters == path ledger == metrics.
    ledger = path.stats.drop_reasons
    assert ledger.get("reassembly_eviction", 0) == expected_evictions
    assert ledger.get("reassembly_timeout", 0) == expected_timeouts
    alias = observatory.recorder.alias_for(path)
    assert observatory.metrics.total(
        "path_drops_total", path=alias,
        category="reassembly_eviction") == expected_evictions
    assert observatory.metrics.total(
        "path_drops_total", path=alias,
        category="reassembly_timeout") == expected_timeouts
    # Nothing unaccounted: every incomplete datagram died exactly once.
    assert expected_evictions + expected_timeouts == incomplete
