"""Regression pins for the fragmentation correctness sweep.

Three historical defects, each pinned by a test that fails on the
pre-sweep code:

* reassembly was keyed by ``(src, ident)`` instead of the RFC 791
  ``(src, dst, proto, ident)``, so concurrent trains from one peer with
  colliding idents corrupted each other;
* a link MTU too small to carry one 8-byte fragment group sent
  ``_send_fragments`` into ``msg.split(0)`` forever;
* a duplicate fragment blindly overwrote its buffered twin, letting a
  shorter retransmission punch a hole in assembled coverage, and a
  second MF=0 piece could silently move the datagram's end.
"""

from repro.core import Attrs, BWD, FWD, Msg, path_create
from repro.net import PA_IP_CATCHALL, build_udp_frame, parse_frame
from repro.net.headers import IP_FLAG_MORE_FRAGMENTS, IpHeader
from .conftest import Stack


def frag_frame(stack, ident, proto, offset, body, more):
    """A hand-built inbound IP fragment addressed to the stack."""
    header = IpHeader(IpHeader.SIZE + len(body), ident, proto,
                      stack.remote.ip, stack.ip.addr,
                      flags=IP_FLAG_MORE_FRAGMENTS if more else 0,
                      frag_offset=offset // 8)
    return (stack.device.mac.to_bytes() + stack.remote.mac.to_bytes()
            + b"\x08\x00" + header.pack() + body)


def make_catchall(stack):
    handed = []
    path = path_create(stack.ip, Attrs({PA_IP_CATCHALL: True}))
    stack.ip.frag_path = path
    stack.ip.reclassify_hook = lambda msg, hdr: handed.append(
        (hdr.proto, hdr.ident, msg.to_bytes()))
    return path, handed


def split_train(payload, pieces=2):
    """Cut *payload* into MF-flagged (offset, body, more) fragments."""
    chunk = len(payload) // pieces
    chunk -= chunk % 8
    out = []
    offset = 0
    while offset < len(payload):
        body = payload[offset:offset + chunk] if offset + chunk < len(payload) \
            else payload[offset:]
        more = offset + len(body) < len(payload)
        out.append((offset, body, more))
        offset += len(body)
    return out


class TestReassemblyKey:
    """RFC 791: the reassembly id is (src, dst, proto, ident)."""

    def test_same_ident_different_proto_do_not_corrupt(self, stack):
        path, handed = make_catchall(stack)
        payload_a = bytes(i % 251 for i in range(1024))
        payload_b = bytes((i * 7 + 3) % 251 for i in range(1024))
        train_a = split_train(payload_a)
        train_b = split_train(payload_b)
        # Interleave two trains from the same peer with the SAME 16-bit
        # ident but different protocols: A1 B1 A2 B2.
        for (oa, ba, ma), (ob, bb, mb) in zip(train_a, train_b):
            path.deliver(Msg(frag_frame(stack, 500, 17, oa, ba, ma)), BWD)
            path.deliver(Msg(frag_frame(stack, 500, 253, ob, bb, mb)), BWD)
        assert sorted(handed) == sorted([
            (17, 500, payload_a), (253, 500, payload_b)])
        assert stack.ip.rx_dropped == 0

    def test_buffers_keyed_distinctly(self, stack):
        path, _handed = make_catchall(stack)
        stage = path.stage_of("IP")
        # Two incomplete trains, colliding ident, different proto: they
        # must occupy two distinct buffers, not share (and corrupt) one.
        path.deliver(Msg(frag_frame(stack, 77, 17, 0, b"a" * 16, True)),
                     BWD)
        path.deliver(Msg(frag_frame(stack, 77, 253, 0, b"b" * 16, True)),
                     BWD)
        assert len(stage._buffers) == 2


class TestTinyMtu:
    """A sub-fragment MTU must drop with a ledger entry, not spin."""

    def test_unfragmentable_datagram_is_dropped_not_looped(self, stack):
        path = stack.make_test_path()
        # 24-byte link MTU leaves 4 bytes of IP payload — less than one
        # 8-byte fragment group, so nothing can be fragmented onto it.
        stack.eth.mtu = 24
        path.deliver(Msg(b"x" * 64), FWD)
        stack.run()
        assert stack.ip.mtu_too_small_drops == 1
        assert path.stats.drop_reasons.get("mtu_too_small") == 1
        assert stack.remote.frames == []

    def test_exactly_one_fragment_group_still_goes_out(self, stack):
        path = stack.make_test_path()
        # 36-byte MTU -> 16 payload bytes -> chunk 16: legal, tiny frames.
        stack.eth.mtu = 36
        path.deliver(Msg(b"y" * 24), FWD)
        stack.run()
        assert stack.ip.mtu_too_small_drops == 0
        assert len(stack.remote.frames) == 2
        for frame in stack.remote.frames:
            assert len(frame) <= 14 + 36


class TestDuplicateFragments:
    """Duplicates never shrink coverage; a conflicting end is rejected."""

    def test_shorter_duplicate_does_not_punch_a_hole(self, stack):
        path, handed = make_catchall(stack)
        payload = bytes(i % 256 for i in range(1024))
        (o1, b1, m1), (o2, b2, m2) = split_train(payload)
        path.deliver(Msg(frag_frame(stack, 9, 17, o1, b1, m1)), BWD)
        # A shorter retransmission of the first piece (stale content):
        # keeping it would leave a gap where the longer original reached.
        path.deliver(Msg(frag_frame(stack, 9, 17, o1, b"\xee" * 64, True)),
                     BWD)
        path.deliver(Msg(frag_frame(stack, 9, 17, o2, b2, m2)), BWD)
        assert handed == [(17, 9, payload)]

    def test_conflicting_final_fragment_rejected(self, stack):
        path, handed = make_catchall(stack)
        payload = bytes((i * 3) % 256 for i in range(612))
        # Genuine final piece: bytes 512..612, MF=0 -> end fixed at 612.
        path.deliver(Msg(frag_frame(stack, 11, 17, 512, payload[512:],
                                    False)), BWD)
        # Forged/corrupt second final claiming a different end (562).
        path.deliver(Msg(frag_frame(stack, 11, 17, 512, payload[512:562],
                                    False)), BWD)
        assert stack.ip.rx_dropped == 1
        assert path.stats.drop_reasons.get("malformed") == 1
        # The train still completes at the original end, uncorrupted.
        path.deliver(Msg(frag_frame(stack, 11, 17, 0, payload[:512],
                                    True)), BWD)
        assert handed == [(17, 11, payload)]

    def test_identical_duplicate_is_harmless(self, stack):
        path, handed = make_catchall(stack)
        payload = bytes(i % 256 for i in range(512))
        (o1, b1, m1), (o2, b2, m2) = split_train(payload)
        for _ in range(2):
            path.deliver(Msg(frag_frame(stack, 4, 17, o1, b1, m1)), BWD)
        path.deliver(Msg(frag_frame(stack, 4, 17, o2, b2, m2)), BWD)
        assert handed == [(17, 4, payload)]
        assert stack.ip.rx_dropped == 0


class TestDontFragmentBit:
    """The DF bit survives the header round trip (PMTUD depends on it)."""

    def test_df_flag_round_trips(self, stack):
        frame = build_udp_frame(stack.remote.mac, stack.device.mac,
                                stack.remote.ip, stack.ip.addr,
                                7000, 6100, b"probe", df=True)
        parsed = parse_frame(frame)
        assert parsed.ip.dont_fragment
        assert not parsed.ip.more_fragments

    def test_pmtud_sender_stamps_df(self, stack):
        stack.ip.enable_pmtud()
        path = stack.make_test_path()
        path.deliver(Msg(b"hello"), FWD)
        stack.run()
        assert parse_frame(stack.remote.frames[0]).ip.dont_fragment
