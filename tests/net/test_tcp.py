"""Simplified TCP: ordering, ACK turn-around, attribute rewrite."""

import pytest

from repro.core import Attrs, BWD, FWD, Msg, PA_NET_PARTICIPANTS, PA_PROTID, path_create
from repro.net import PA_LOCAL_PORT, TcpHeader, parse_frame
from repro.net.headers import IPPROTO_TCP
from .conftest import REMOTE_IP, Stack


@pytest.fixture
def tstack():
    return Stack(with_tcp=True)


def make_tcp_path(stack, local_port=8000, remote_port=80):
    attrs = Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, remote_port),
                   PA_LOCAL_PORT: local_port})
    return path_create(stack.tcp, attrs)


def tcp_frame(stack, seq, payload, local_port=8000, sport=80, ack=0):
    header = TcpHeader(sport, local_port, seq=seq, ack=ack,
                       flags=TcpHeader.FLAG_ACK)
    from repro.net.headers import IpHeader
    body = header.pack(payload) + payload
    ip = IpHeader(20 + len(body), 500 + seq, IPPROTO_TCP,
                  stack.remote.ip, stack.ip.addr).pack()
    return (stack.device.mac.to_bytes() + stack.remote.mac.to_bytes()
            + b"\x08\x00" + ip + body)


class TestPathCreation:
    def test_path_shape(self, tstack):
        path = make_tcp_path(tstack)
        assert path.routers() == ["TCP", "IP", "ETH"]

    def test_protid_rewritten_to_six(self, tstack):
        """'If TCP decides to forward path creation to IP, it resets the
        value of PA_PROTID to 6.'"""
        seen = {}
        original = tstack.ip.create_stage

        def spy(enter_service, attrs):
            seen["protid"] = attrs.get(PA_PROTID)
            return original(enter_service, attrs)

        tstack.ip.create_stage = spy
        make_tcp_path(tstack)
        assert seen["protid"] == IPPROTO_TCP

    def test_ftp_style_upper_protid_not_leaked(self, tstack):
        """Even if the layer above set PA_PROTID=21 (FTP), IP sees 6."""
        seen = {}
        original = tstack.ip.create_stage

        def spy(enter_service, attrs):
            seen["protid"] = attrs.get(PA_PROTID)
            return original(enter_service, attrs)

        tstack.ip.create_stage = spy
        attrs = Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 21),
                       PA_PROTID: 21, PA_LOCAL_PORT: 8001})
        path_create(tstack.tcp, attrs)
        assert seen["protid"] == IPPROTO_TCP


class TestSend:
    def test_send_carries_sequence_numbers(self, tstack):
        path = make_tcp_path(tstack)
        path.deliver(Msg(b"AAAA"), FWD)
        path.deliver(Msg(b"BBBBBB"), FWD)
        tstack.run()
        frames = [parse_frame(f) for f in tstack.remote.frames]
        headers = [f.tcp for f in frames]
        assert headers[0].seq == 0
        assert headers[1].seq == 4  # advanced by the first payload


class TestReceive:
    def test_in_order_delivery_and_ack(self, tstack):
        path = make_tcp_path(tstack)
        stage = path.stage_of("TCP")
        msg = Msg(tcp_frame(tstack, seq=0, payload=b"hello"))
        path.deliver(msg, BWD)
        tstack.run()
        assert stage.recv_next == 5
        assert stage.acks_sent == 1
        # The ACK went back out on the wire.
        parsed = parse_frame(tstack.remote.frames[0])
        assert parsed.tcp.ack == 5

    def test_duplicate_dropped(self, tstack):
        path = make_tcp_path(tstack)
        stage = path.stage_of("TCP")
        path.deliver(Msg(tcp_frame(tstack, seq=0, payload=b"hello")), BWD)
        msg = Msg(tcp_frame(tstack, seq=0, payload=b"hello"))
        path.deliver(msg, BWD)
        assert stage.dup_drops == 1
        assert stage.recv_next == 5

    def test_out_of_order_buffered_then_delivered(self, tstack):
        """A future segment is held, not dropped; filling the gap releases
        the whole contiguous run in order."""
        path = make_tcp_path(tstack)
        stage = path.stage_of("TCP")
        outq = path.q[3]  # BWD_OUT: where received payloads land
        path.deliver(Msg(tcp_frame(tstack, seq=5, payload=b"world")), BWD)
        assert stage.ooo_buffered == 1
        assert len(outq) == 0  # nothing delivered past the gap
        path.deliver(Msg(tcp_frame(tstack, seq=0, payload=b"hello")), BWD)
        assert stage.recv_next == 10
        assert stage.ooo_delivered == 1
        delivered = [outq.try_dequeue().to_bytes() for _ in range(2)]
        assert delivered == [b"hello", b"world"]

    def test_reorder_buffer_bounded(self, tstack):
        """At capacity the newest future segment is shed with a reason."""
        from repro import params

        path = make_tcp_path(tstack)
        stage = path.stage_of("TCP")
        for index in range(params.TCP_REORDER_BUFFER):
            frame = tcp_frame(tstack, seq=10 + 10 * index, payload=b"x" * 10)
            path.deliver(Msg(frame), BWD)
        overflow = Msg(tcp_frame(tstack, seq=50_000, payload=b"y"))
        path.deliver(overflow, BWD)
        assert "reorder buffer full" in overflow.meta["drop_reason"]
        assert stage.ooo_buffered == params.TCP_REORDER_BUFFER

    def test_classification_by_port(self, tstack):
        path = make_tcp_path(tstack, local_port=8080)
        msg = Msg(tcp_frame(tstack, seq=0, payload=b"x", local_port=8080))
        assert tstack.classify(msg) is path

    def test_unknown_port_dropped(self, tstack):
        make_tcp_path(tstack, local_port=8080)
        msg = Msg(tcp_frame(tstack, seq=0, payload=b"x", local_port=9))
        assert tstack.classify(msg) is None
