"""Round-trip and semantic tests for the wire formats."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    EthAddr,
    EthHeader,
    IcmpHeader,
    IpAddr,
    IpHeader,
    MflowHeader,
    TcpHeader,
    UdpHeader,
    internet_checksum,
    verify_checksum,
)

MAC_A = EthAddr("02:00:00:00:00:01")
MAC_B = EthAddr("02:00:00:00:00:02")
IP_A = IpAddr("10.0.0.1")
IP_B = IpAddr("10.0.0.2")


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_verify_accepts_packed_header(self):
        header = IpHeader(40, 7, 17, IP_A, IP_B).pack()
        assert verify_checksum(header)

    def test_verify_rejects_corruption(self):
        header = bytearray(IpHeader(40, 7, 17, IP_A, IP_B).pack())
        header[8] ^= 0xFF
        assert not verify_checksum(bytes(header))

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    @given(st.binary(max_size=64))
    def test_checksummed_data_always_verifies(self, data):
        cksum = internet_checksum(data)
        if len(data) % 2:
            data = data + b"\x00"
        assert verify_checksum(data + cksum.to_bytes(2, "big"))


class TestEthHeader:
    def test_roundtrip(self):
        header = EthHeader(MAC_B, MAC_A, 0x0800)
        again = EthHeader.unpack(header.pack())
        assert (again.dst, again.src, again.ethertype) == (MAC_B, MAC_A, 0x0800)

    def test_size(self):
        assert EthHeader.SIZE == 14
        assert len(EthHeader(MAC_B, MAC_A, 0x0800).pack()) == 14


class TestIpHeader:
    def test_roundtrip(self):
        header = IpHeader(120, 42, 17, IP_A, IP_B, ttl=33)
        again = IpHeader.unpack(header.pack())
        assert again.total_length == 120
        assert again.ident == 42
        assert again.proto == 17
        assert (again.src, again.dst) == (IP_A, IP_B)
        assert again.ttl == 33
        assert not again.is_fragment

    def test_fragment_fields_roundtrip(self):
        header = IpHeader(60, 7, 17, IP_A, IP_B, flags=1, frag_offset=185)
        again = IpHeader.unpack(header.pack())
        assert again.more_fragments
        assert again.frag_offset == 185
        assert again.is_fragment

    def test_last_fragment_is_still_a_fragment(self):
        header = IpHeader(60, 7, 17, IP_A, IP_B, flags=0, frag_offset=10)
        assert header.is_fragment and not header.more_fragments

    def test_rejects_non_ipv4(self):
        raw = bytearray(IpHeader(40, 1, 17, IP_A, IP_B).pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError, match="version"):
            IpHeader.unpack(bytes(raw))

    def test_packed_header_checksums(self):
        assert verify_checksum(IpHeader(99, 3, 6, IP_A, IP_B).pack())


class TestUdpHeader:
    def test_roundtrip(self):
        again = UdpHeader.unpack(UdpHeader(7001, 8002, 520, 0xBEEF).pack())
        assert (again.sport, again.dport) == (7001, 8002)
        assert again.length == 520
        assert again.checksum == 0xBEEF

    def test_size(self):
        assert UdpHeader.SIZE == 8


class TestIcmpHeader:
    def test_roundtrip(self):
        again = IcmpHeader.unpack(
            IcmpHeader(IcmpHeader.ECHO_REQUEST, ident=77, seq=123).pack())
        assert again.icmp_type == IcmpHeader.ECHO_REQUEST
        assert (again.ident, again.seq) == (77, 123)

    def test_packed_header_checksums(self):
        assert verify_checksum(IcmpHeader(8, 1, 2).pack())


class TestTcpHeader:
    def test_roundtrip(self):
        header = TcpHeader(80, 5000, seq=1000, ack=2000,
                           flags=TcpHeader.FLAG_ACK, window=4096)
        again = TcpHeader.unpack(header.pack())
        assert (again.sport, again.dport) == (80, 5000)
        assert (again.seq, again.ack) == (1000, 2000)
        assert again.flags == TcpHeader.FLAG_ACK
        assert again.window == 4096


class TestMflowHeader:
    def test_data_roundtrip(self):
        header = MflowHeader(seq=9, timestamp_us=123456, window=0,
                             flags=MflowHeader.FLAG_FRAME_START)
        again = MflowHeader.unpack(header.pack())
        assert again.seq == 9
        assert again.timestamp_us == 123456
        assert again.is_frame_start and not again.is_window_adv

    def test_window_adv_roundtrip(self):
        header = MflowHeader(seq=50, timestamp_us=7, window=12,
                             flags=MflowHeader.FLAG_WINDOW_ADV)
        again = MflowHeader.unpack(header.pack())
        assert again.is_window_adv
        assert again.window == 12

    def test_seq_wraps_at_32_bits(self):
        assert MflowHeader(1 << 32, 0).seq == 0

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip_property(self, seq, ts, window):
        again = MflowHeader.unpack(MflowHeader(seq, ts, window=window).pack())
        assert (again.seq, again.timestamp_us, again.window) == (seq, ts, window)
