"""MFLOW: ordered-not-reliable delivery, window advertisement, RTT echo."""

import pytest

from repro.core import Attrs, BWD, Msg, PA_INQ_LEN, PA_NET_PARTICIPANTS, path_create
from repro.net import MflowHeader, build_mflow_frame, parse_frame
from .conftest import REMOTE_IP, Stack


@pytest.fixture
def mstack():
    stack = Stack(with_mflow=True)
    return stack


def make_mflow_path(stack, local_port=6200, inq=8):
    from repro.net import PA_LOCAL_PORT
    attrs = Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7200),
                   PA_LOCAL_PORT: local_port, PA_INQ_LEN: inq})
    return path_create(stack.mflow, attrs)


def data_frame(stack, seq, payload=b"macroblocks", local_port=6200,
               timestamp=123456, flags=0):
    return build_mflow_frame(stack.remote.mac, stack.device.mac,
                             stack.remote.ip, stack.ip.addr,
                             7200, local_port, seq, timestamp, payload,
                             flags=flags)


class TestPathShape:
    def test_routers(self, mstack):
        path = make_mflow_path(mstack)
        assert path.routers() == ["MFLOW", "UDP", "IP", "ETH"]

    def test_flow_registered(self, mstack):
        path = make_mflow_path(mstack)
        key = mstack.mflow.flow_key(REMOTE_IP, 7200)
        assert mstack.mflow._flows[key] is path

    def test_flow_unregistered_on_delete(self, mstack):
        path = make_mflow_path(mstack)
        path.delete()
        assert mstack.mflow._flows == {}


class TestSequencing:
    def deliver(self, stack, path, seq, **kwargs):
        msg = Msg(data_frame(stack, seq, **kwargs))
        path.deliver(msg, BWD)
        return msg

    def test_in_order_delivery(self, mstack):
        path = make_mflow_path(mstack)
        stage = path.stage_of("MFLOW")
        for seq in range(3):
            self.deliver(mstack, path, seq)
        # MFLOW forwards to... nothing above it in this graph, so messages
        # stop at MFLOW being the first stage; check the stage counters.
        assert stage.next_expected == 3
        assert stage.stale_drops == 0
        assert stage.gaps == 0

    def test_stale_duplicate_dropped(self, mstack):
        path = make_mflow_path(mstack)
        stage = path.stage_of("MFLOW")
        self.deliver(mstack, path, 0)
        self.deliver(mstack, path, 1)
        msg = self.deliver(mstack, path, 0)  # duplicate
        assert stage.stale_drops == 1
        assert "stale seq" in msg.meta["drop_reason"]
        assert stage.next_expected == 2

    def test_gap_tolerated_and_order_restored(self, mstack):
        """Ordered but not reliable: a gap advances the window; the late
        packet is then stale."""
        path = make_mflow_path(mstack)
        stage = path.stage_of("MFLOW")
        self.deliver(mstack, path, 0)
        self.deliver(mstack, path, 5)   # gap of 4
        assert stage.gaps == 1
        assert stage.next_expected == 6
        msg = self.deliver(mstack, path, 3)  # late: never delivered backwards
        assert stage.stale_drops == 1
        assert msg.meta["drop_reason"].startswith("stale")


class TestWindowAdvertisement:
    def test_adv_sent_for_each_data_packet(self, mstack):
        path = make_mflow_path(mstack)
        msg = Msg(data_frame(mstack, 0))
        path.deliver(msg, BWD)
        mstack.run()
        assert len(mstack.remote.frames) == 1
        parsed = parse_frame(mstack.remote.frames[0], expect_mflow=True)
        assert parsed.mflow.is_window_adv

    def test_adv_advertises_free_input_slots(self, mstack):
        path = make_mflow_path(mstack, inq=8)
        path.deliver(Msg(data_frame(mstack, 0)), BWD)
        mstack.run()
        parsed = parse_frame(mstack.remote.frames[0], expect_mflow=True)
        # last delivered seq (0) + 1 + free slots (8; queue is empty)
        assert parsed.mflow.seq == 0 + 1 + 8
        assert parsed.mflow.window == 8

    def test_adv_echoes_timestamp_for_rtt(self, mstack):
        """'MFLOW can measure the round-trip latency by putting a
        timestamp in its header' — the sink must echo it."""
        path = make_mflow_path(mstack)
        path.deliver(Msg(data_frame(mstack, 0, timestamp=987654)), BWD)
        mstack.run()
        parsed = parse_frame(mstack.remote.frames[0], expect_mflow=True)
        assert parsed.mflow.timestamp_us == 987654

    def test_adv_addressed_to_source(self, mstack):
        path = make_mflow_path(mstack)
        path.deliver(Msg(data_frame(mstack, 0)), BWD)
        mstack.run()
        parsed = parse_frame(mstack.remote.frames[0], expect_mflow=True)
        assert str(parsed.ip.dst) == REMOTE_IP
        assert parsed.udp.dport == 7200
        assert parsed.udp.sport == 6200

    def test_adv_at_sink_is_dropped(self, mstack):
        path = make_mflow_path(mstack)
        stage = path.stage_of("MFLOW")
        frame = build_mflow_frame(mstack.remote.mac, mstack.device.mac,
                                  mstack.remote.ip, mstack.ip.addr,
                                  7200, 6200, 99, 0, b"",
                                  flags=MflowHeader.FLAG_WINDOW_ADV)
        msg = Msg(frame)
        path.deliver(msg, BWD)
        assert "advertisement at sink" in msg.meta["drop_reason"]
        assert stage.window_advs_sent == 0

    def test_adv_cost_charged_to_data_packet(self, mstack):
        from repro.net import peek_cost
        path = make_mflow_path(mstack)
        msg = Msg(data_frame(mstack, 0))
        path.deliver(msg, BWD)
        # receive chain (ETH+IP+UDP+MFLOW) plus the advertisement's send
        # chain (MFLOW/2+UDP+IP+ETH) all land on the one account.
        assert peek_cost(msg) > 20.0


class TestClassificationByFlow:
    def test_udp_demux_finds_flow_path(self, mstack):
        path = make_mflow_path(mstack, local_port=6200)
        msg = Msg(data_frame(mstack, 0, local_port=6200))
        assert mstack.classify(msg) is path

    def test_mflow_refinement_demux(self, mstack):
        """When UDP's port maps to the MFLOW router (multiple flows on one
        port), MFLOW refines by source address."""
        path = make_mflow_path(mstack, local_port=6300)
        # Rebind the port to the router instead of the path.
        mstack.udp.release_port(6300)
        mstack.udp.bind_port(6300, mstack.mflow,
                             mstack.mflow.service("down"))
        msg = Msg(data_frame(mstack, 0, local_port=6300))
        assert mstack.classify(msg) is path

    def test_unknown_flow_dropped(self, mstack):
        make_mflow_path(mstack, local_port=6300)
        mstack.udp.release_port(6300)
        mstack.udp.bind_port(6300, mstack.mflow,
                             mstack.mflow.service("down"))
        frame = build_mflow_frame(mstack.remote.mac, mstack.device.mac,
                                  mstack.remote.ip, mstack.ip.addr,
                                  9999, 6300, 0, 0, b"data")
        msg = Msg(frame)
        assert mstack.classify(msg) is None
        assert "no flow" in msg.meta["drop_reason"]
