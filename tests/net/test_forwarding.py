"""The forwarding tier: ForwardRouter data path + RouterKernel appliance.

One router, two ports, two hosts.  Frames arriving on a port are
classified at interrupt time onto that port's forwarding path; the
path's thread does the TTL/route/rewrite work and transmits out the
egress adapter — fragmenting for a smaller egress MTU, or refusing DF
packets with ICMP Fragmentation Needed.
"""

import pytest

from repro.kernel import RouterKernel
from repro.net import IcmpHeader, IpAddr, RouteTable, build_icmp_echo, build_udp_frame, parse_frame
from repro.sim import SimWorld
from .conftest import RecordingRemote

HOST_A_MAC = "02:00:00:00:0a:01"
HOST_A_IP = IpAddr("10.0.1.1")
HOST_B_MAC = "02:00:00:00:0b:01"
HOST_B_IP = IpAddr("10.0.2.1")
PORT_A_IP = IpAddr("10.0.1.254")
PORT_B_IP = IpAddr("10.0.2.254")


class Net:
    """One router between two segments, one recording host on each."""

    def __init__(self, mtu_a: int = 1500, mtu_b: int = 1500):
        self.world = SimWorld(seed=3)
        self.seg_a = self.world.new_segment(bandwidth_mbps=100.0,
                                            latency_us=10.0)
        self.seg_b = self.world.new_segment(bandwidth_mbps=100.0,
                                            latency_us=10.0)
        self.host_a = RecordingRemote(self.world.engine, mac=HOST_A_MAC,
                                      ip=HOST_A_IP)
        self.host_b = RecordingRemote(self.world.engine, mac=HOST_B_MAC,
                                      ip=HOST_B_IP)
        self.seg_a.attach(self.host_a)
        self.seg_b.attach(self.host_b)
        self.kernel = RouterKernel(self.world, name="R")
        self.port_a = self.kernel.add_port("a", self.seg_a, PORT_A_IP,
                                           mtu=mtu_a)
        self.port_b = self.kernel.add_port("b", self.seg_b, PORT_B_IP,
                                           mtu=mtu_b)
        self.kernel.add_route("10.0.1.0", 24, "a")
        self.kernel.add_route("10.0.2.0", 24, "b")
        self.kernel.boot()
        self.fwd = self.kernel.fwd

    def a_to_b_frame(self, payload=b"hello", ttl=64, df=False):
        return build_udp_frame(self.host_a.mac, self.port_a.device.mac,
                               self.host_a.ip, HOST_B_IP,
                               5000, 7000, payload, ttl=ttl, df=df)

    def run(self, us=100_000.0):
        self.world.run_for(us)


@pytest.fixture
def net():
    return Net()


class TestRouteTable:
    def test_longest_prefix_wins(self):
        table = RouteTable()
        table.add("0.0.0.0", 0, "default")
        table.add("10.0.0.0", 8, "coarse")
        table.add("10.0.2.0", 24, "net")
        table.add("10.0.2.9", 32, "host")
        assert table.lookup("10.0.2.9").port == "host"
        assert table.lookup("10.0.2.77").port == "net"
        assert table.lookup("10.9.9.9").port == "coarse"
        assert table.lookup("192.168.0.1").port == "default"

    def test_no_match_returns_none(self):
        table = RouteTable()
        table.add("10.0.2.0", 24, "net")
        assert table.lookup("10.0.3.1") is None


class TestForwarding:
    def test_forwards_and_decrements_ttl(self, net):
        net.host_a.send(net.a_to_b_frame(payload=b"payload-bytes"))
        net.run()
        assert len(net.host_b.frames) == 1
        parsed = parse_frame(net.host_b.frames[0])
        assert parsed.ip.ttl == 63
        assert parsed.payload == b"payload-bytes"
        assert parsed.eth.src == net.port_b.device.mac
        assert parsed.eth.dst == net.host_b.mac
        assert net.fwd.forwarded == 1

    def test_ttl_expiry_sends_time_exceeded(self, net):
        net.host_a.send(net.a_to_b_frame(ttl=1))
        net.run()
        assert net.host_b.frames == []
        assert net.fwd.ttl_drops == 1
        assert len(net.host_a.frames) == 1
        parsed = parse_frame(net.host_a.frames[0])
        assert parsed.icmp.icmp_type == IcmpHeader.TIME_EXCEEDED
        assert parsed.ip.src == PORT_A_IP
        assert net.kernel.drop_ledger().get("ttl_expired") == 1

    def test_no_route_sends_unreachable(self, net):
        frame = build_udp_frame(net.host_a.mac, net.port_a.device.mac,
                                net.host_a.ip, IpAddr("10.0.9.9"),
                                5000, 7000, b"lost")
        net.host_a.send(frame)
        net.run()
        assert net.fwd.no_route_drops == 1
        assert net.fwd.unreachable_sent == 1
        parsed = parse_frame(net.host_a.frames[0])
        assert parsed.icmp.icmp_type == IcmpHeader.DEST_UNREACH
        assert parsed.icmp.code == 0
        assert net.kernel.drop_ledger().get("no_route") == 1

    def test_arp_miss_is_ledgered(self, net):
        frame = build_udp_frame(net.host_a.mac, net.port_a.device.mac,
                                net.host_a.ip, IpAddr("10.0.2.77"),  # no such host
                                5000, 7000, b"ghost")
        net.host_a.send(frame)
        net.run()
        assert net.fwd.arp_miss_drops == 1
        assert net.kernel.drop_ledger().get("arp_miss") == 1
        assert net.host_b.frames == []


class TestEgressFragmentation:
    def test_fragments_for_smaller_egress_mtu(self):
        net = Net(mtu_a=1500, mtu_b=600)
        payload = bytes(i % 256 for i in range(1200))
        net.host_a.send(net.a_to_b_frame(payload=payload))
        net.run()
        assert net.fwd.fragments_created >= 2
        frames = [parse_frame(f) for f in net.host_b.frames]
        assert all(len(f) <= 14 + 600 for f in net.host_b.frames)
        assert all(p.ip.is_fragment for p in frames)
        # Reassemble by offset: the datagram survives byte-identically.
        pieces = {}
        for raw in net.host_b.frames:
            parsed = parse_frame(raw)
            body = raw[34:34 + parsed.ip.total_length - 20]
            pieces[parsed.ip.frag_offset * 8] = body
        assembled = b"".join(pieces[k] for k in sorted(pieces))
        # First fragment carries the UDP header; strip it to compare.
        assert assembled[8:] == payload
        last = max(pieces)
        for offset, body in pieces.items():
            parsed_mf = offset != last
            # every non-final fragment length is a multiple of 8
            if parsed_mf:
                assert len(body) % 8 == 0

    def test_df_refusal_reports_next_hop_mtu(self):
        net = Net(mtu_a=1500, mtu_b=600)
        payload = bytes(i % 256 for i in range(1200))
        net.host_a.send(net.a_to_b_frame(payload=payload, df=True))
        net.run()
        assert net.host_b.frames == []
        assert net.fwd.frag_needed_sent == 1
        parsed = parse_frame(net.host_a.frames[0])
        assert parsed.icmp.icmp_type == IcmpHeader.DEST_UNREACH
        assert parsed.icmp.code == IcmpHeader.CODE_FRAG_NEEDED
        # RFC 1191: the constricting hop's MTU travels in the seq field.
        assert parsed.icmp.seq == net.port_b.eth.payload_mtu()
        # The error quotes the offending IP header + first 8 bytes.
        quoted = parsed.payload
        assert len(quoted) >= 20 + 8
        assert parse_frame(net.host_a.frames[0]).ip.dst == HOST_A_IP
        assert net.kernel.drop_ledger().get("df_mtu") == 1


class TestErrorSuppression:
    def test_no_error_about_non_first_fragment(self):
        net = Net(mtu_a=1500, mtu_b=600)
        # A non-first fragment with TTL 1: RFC 1122 forbids erroring it.
        from repro.net.headers import (EthHeader, IP_FLAG_MORE_FRAGMENTS,
                                       IpHeader)
        header = IpHeader(20 + 64, 42, 17, net.host_a.ip, HOST_B_IP,
                          ttl=1, flags=IP_FLAG_MORE_FRAGMENTS,
                          frag_offset=16)
        frame = (EthHeader(net.port_a.device.mac, net.host_a.mac,
                           0x0800).pack() + header.pack() + b"z" * 64)
        net.host_a.send(frame)
        net.run()
        assert net.fwd.ttl_drops == 1
        assert net.fwd.errors_suppressed == 1
        assert net.host_a.frames == []


class TestRouterLocalDelivery:
    def test_router_port_answers_ping(self, net):
        frame = build_icmp_echo(net.host_a.mac, net.port_a.device.mac,
                                net.host_a.ip, PORT_A_IP,
                                ident=9, seq=4, payload=b"gw-probe")
        net.host_a.send(frame)
        net.run()
        assert net.fwd.echo_requests == 1
        parsed = parse_frame(net.host_a.frames[0])
        assert parsed.icmp.icmp_type == IcmpHeader.ECHO_REPLY
        assert parsed.icmp.ident == 9
        assert parsed.icmp.seq == 4
        assert parsed.payload == b"gw-probe"

    def test_non_echo_local_traffic_absorbed(self, net):
        frame = build_udp_frame(net.host_a.mac, net.port_a.device.mac,
                                net.host_a.ip, PORT_A_IP,
                                5000, 7000, b"to-the-router")
        net.host_a.send(frame)
        net.run()
        assert net.fwd.local_delivered == 1
        assert net.host_a.frames == []


class TestKernelPlumbing:
    def test_one_forwarding_path_per_port(self, net):
        assert len(net.kernel.paths()) == 2
        for path in net.kernel.paths():
            assert path.routers() == ["FWD", "ETH-a"] \
                or path.routers() == ["FWD", "ETH-b"]

    def test_ports_must_precede_boot(self, net):
        with pytest.raises(RuntimeError):
            net.kernel.add_port("c", net.seg_a, "10.0.1.253")

    def test_stats_shape(self, net):
        stats = net.kernel.stats()
        assert stats["forwarded"] == 0
        assert "unclassified_drops" in stats
        assert "inq_overflow_drops" in stats
