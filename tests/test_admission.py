"""Admission control unit tests (memory and CPU)."""

import pytest

from repro.admission import (
    CpuAdmission,
    FrameCostModel,
    MemoryAdmission,
    path_memory_footprint,
    theoretical_frame_us,
)
from repro.core import AdmissionError, Attrs, path_create
from repro.mpeg import CANYON, FLOWER, NEPTUNE, PAPER_CLIPS, REDS_NIGHTMARE
from .helpers import make_chain


def small_path():
    _, routers = make_chain("A", "B")
    return path_create(routers[0], Attrs())


class TestMemoryAdmission:
    def test_admits_within_budget(self):
        control = MemoryAdmission(system_budget=10_000_000,
                                  per_path_grant=1_000_000)
        path = small_path()
        control(path)
        assert control.committed == path_memory_footprint(path)

    def test_per_path_grant_enforced(self):
        control = MemoryAdmission(system_budget=10_000_000,
                                  per_path_grant=100)
        with pytest.raises(AdmissionError, match="grant"):
            control(small_path())
        assert control.denials == 1

    def test_system_budget_enforced(self):
        path1, path2 = small_path(), small_path()
        footprint = path_memory_footprint(path1)
        control = MemoryAdmission(system_budget=int(footprint * 1.5),
                                  per_path_grant=footprint * 2)
        control(path1)
        with pytest.raises(AdmissionError, match="budget"):
            control(path2)

    def test_incremental_charging_during_creation(self):
        """The hook runs per stage; re-charging the same path must not
        double-count."""
        control = MemoryAdmission(system_budget=10_000_000,
                                  per_path_grant=1_000_000)
        path = small_path()
        control(path)
        first = control.committed
        control(path)  # same footprint again
        assert control.committed == first

    def test_release_returns_grant(self):
        control = MemoryAdmission(system_budget=10_000_000,
                                  per_path_grant=1_000_000)
        path = small_path()
        control(path)
        control.release(path)
        assert control.committed == 0
        assert control.available == 10_000_000

    def test_creation_time_denial_via_path_create(self):
        control = MemoryAdmission(system_budget=10_000_000,
                                  per_path_grant=100)
        _, routers = make_chain("A", "B", "C")
        with pytest.raises(AdmissionError):
            path_create(routers[0], Attrs(), admission=control)

    def test_bad_budgets_rejected(self):
        with pytest.raises(ValueError):
            MemoryAdmission(0, 100)
        with pytest.raises(ValueError):
            MemoryAdmission(100, -1)


def fitted_model():
    model = FrameCostModel()
    for profile in PAPER_CLIPS:
        bits = profile.avg_frame_bits + 24 * profile.macroblocks
        model.add_sample(bits, profile.pixels,
                         theoretical_frame_us(profile))
    model.fit()
    return model


class TestFrameCostModel:
    def test_fit_recovers_ground_truth(self):
        model = fitted_model()
        for profile in PAPER_CLIPS:
            bits = profile.avg_frame_bits + 24 * profile.macroblocks
            predicted = model.predict_frame_us(bits, profile.pixels)
            assert predicted == pytest.approx(theoretical_frame_us(profile),
                                              rel=0.05)

    def test_correlation_is_strong(self):
        assert fitted_model().correlation() > 0.95

    def test_needs_enough_samples(self):
        model = FrameCostModel()
        model.add_sample(1000, 10_000, 500.0)
        with pytest.raises(ValueError):
            model.fit()
        with pytest.raises(ValueError):
            FrameCostModel().correlation()


class TestCpuAdmission:
    def test_admit_until_full(self):
        control = CpuAdmission(fitted_model(), headroom=0.95)
        control.admit(NEPTUNE, 30.0)       # ~60%
        control.admit(REDS_NIGHTMARE, 15.0)  # ~22%
        with pytest.raises(AdmissionError):
            control.admit(FLOWER, 30.0)    # ~68%: over the top
        assert control.denials == 1

    def test_release_frees_capacity(self):
        control = CpuAdmission(fitted_model(), headroom=0.95)
        key = control.admit(NEPTUNE, 30.0)
        control.release(key)
        control.admit(NEPTUNE, 30.0)  # fits again

    def test_skip_reduces_prediction_proportionally(self):
        control = CpuAdmission(fitted_model())
        full = control.predicted_utilization(NEPTUNE, 30.0)
        third = control.predicted_utilization(NEPTUNE, 30.0, skip=3)
        assert third == pytest.approx(full / 3)

    def test_suggest_skip_finds_smallest_fit(self):
        control = CpuAdmission(fitted_model(), headroom=0.95)
        control.admit(NEPTUNE, 30.0)
        control.admit(CANYON, 10.0)
        skip = control.suggest_skip(FLOWER, 30.0)
        assert skip is not None and skip > 1
        control.admit(FLOWER, 30.0, skip=skip)  # and it really fits

    def test_suggest_skip_none_when_hopeless(self):
        control = CpuAdmission(fitted_model(), headroom=0.95)
        control.admit(NEPTUNE, 30.0)
        control.admit(FLOWER, 15.0)
        assert control.suggest_skip(NEPTUNE, 300.0, max_skip=2) is None

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            CpuAdmission(fitted_model(), headroom=0.0)
