"""EDF deadline computation modes (Section 4.3's two alternatives)."""

import pytest

from repro.experiments import Testbed
from repro.mpeg import CANYON, NEPTUNE, synthesize_clip


def run_mode(mode, nframes=90, seed=4):
    testbed = Testbed(seed=seed)
    clip = synthesize_clip(NEPTUNE, seed=seed, nframes=nframes)
    source = testbed.add_video_source(clip, dst_port=6100, pace_fps=30.0,
                                      lead_frames=6)
    kernel = testbed.build_scout(rate_limited_display=True)
    session = kernel.start_video(NEPTUNE, (str(source.ip), 7200),
                                 local_port=6100, fps=30.0,
                                 deadline_mode=mode, prebuffer=6)
    session.sink.expected_frames = nframes
    testbed.start_all()
    testbed.run_seconds(nframes / 30.0 + 2.0)
    return testbed, kernel, session


class TestDeadlineModes:
    def test_output_mode_meets_deadlines(self):
        _tb, _kernel, session = run_mode("output")
        assert session.missed_deadlines == 0
        assert session.frames_presented == 90

    def test_min_mode_meets_deadlines(self):
        _tb, _kernel, session = run_mode("min")
        assert session.missed_deadlines == 0
        assert session.frames_presented == 90

    def test_interarrival_estimate_maintained(self):
        _tb, _kernel, session = run_mode("min")
        interval = session.path.attrs.get("_pkt_interarrival_us")
        assert interval is not None and interval > 0

    def test_min_mode_deadline_never_later_than_output_mode(self):
        """By construction min(out, in) <= out; observe it on live
        wakeups."""
        testbed = Testbed(seed=6)
        clip = synthesize_clip(CANYON, seed=6, nframes=40)
        source = testbed.add_video_source(clip, dst_port=6100)
        kernel = testbed.build_scout(rate_limited_display=True)
        session = kernel.start_video(CANYON, (str(source.ip), 7200),
                                     local_port=6100, fps=10.0,
                                     deadline_mode="min")
        sink = session.sink
        observed = []
        original = session.path.wakeup

        def spy(path, thread):
            original(path, thread)
            observed.append((thread.deadline, sink.next_frame_deadline()))

        session.path.wakeup = spy
        testbed.start_all()
        testbed.run_seconds(2.0)
        assert observed
        for chosen, output_only in observed:
            assert chosen <= output_only + 1e-6
