"""End-to-end batching exactness (DESIGN.md §13): a batched kernel
delivers the same frames with the same accounting as the per-message
kernel, and burst receive charges exactly the per-frame interrupt sum."""

import pytest

from repro.experiments import Testbed
from repro.mpeg import NEPTUNE, synthesize_clip
from repro.net import EthAddr, IpAddr, build_udp_frame

FRAMES = 60


def play(batch):
    """Play a 60-frame Neptune clip at max decode rate with the video
    thread draining *batch* messages per wakeup; return the observables
    that must not depend on batching."""
    testbed = Testbed(seed=1)
    clip = synthesize_clip(NEPTUNE, seed=1, nframes=FRAMES)
    source = testbed.add_video_source(clip, dst_port=6100)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(NEPTUNE, (str(source.ip), 7200),
                                 local_port=6100, batch=batch)
    testbed.start_all()
    testbed.run_until_sources_done()
    mflow = session.path.stage_of("MFLOW")
    return {
        "presented": session.frames_presented,
        "window_advs_total": mflow.window_advs_sent
        + mflow.window_advs_coalesced,
        "flow_cache_hits": kernel.flow_cache.hits,
        "inq_overflow_drops": kernel.inq_overflow_drops,
        "early_drops": kernel.early_drops,
        "unclassified_drops": kernel.unclassified_drops,
        "path_drops": session.path.stats.drops,
        "mem_outstanding": session.path.stats.mem_bytes,
    }, mflow


class TestBatchedSessionParity:
    def test_batched_video_matches_per_message_video(self):
        solo, _solo_mflow = play(batch=1)
        batched, mflow = play(batch=8)
        assert batched == solo
        assert batched["presented"] == FRAMES
        # Batching exists to coalesce feedback: the run tail advertises
        # for the whole run, so *some* adverts must have been absorbed.
        assert mflow.window_advs_coalesced > 0
        assert mflow.window_advs_sent < batched["window_advs_total"]


def rx_fixture():
    """A booted kernel with one video path, plus a frame forge for its
    flow."""
    testbed = Testbed(seed=2)
    kernel = testbed.build_scout(rate_limited_display=False)
    kernel.graph.router("ARP").add_entry("10.0.0.9", "02:00:00:00:00:09")
    session = kernel.start_video(NEPTUNE, ("10.0.0.9", 7200),
                                 local_port=6100)

    def frame(payload):
        return build_udp_frame(EthAddr("02:00:00:00:00:09"),
                               EthAddr("02:00:00:00:00:01"),
                               IpAddr("10.0.0.9"), IpAddr("10.0.0.1"),
                               7200, session.local_port, payload)

    return testbed, kernel, session, frame


class TestRxBurstParity:
    def observe(self, kernel, session):
        return {
            "classified": kernel.classifier_stats.classified,
            "refinements": kernel.classifier_stats.refinements,
            "dropped": kernel.classifier_stats.dropped,
            "cache": (kernel.flow_cache.hits, kernel.flow_cache.misses),
            "inq": len(session.path.input_queue(1)),
            "unclassified": kernel.unclassified_drops,
            "irq_us": round(kernel.world.cpu.interrupt_us, 9),
        }

    def test_burst_equals_per_frame_receive(self):
        _, solo_kernel, solo_session, solo_frame = rx_fixture()
        _, burst_kernel, burst_session, burst_frame = rx_fixture()
        payloads = [b"pkt%02d" % i for i in range(10)] + [b"stray"]
        for p in payloads:
            solo_kernel._rx(solo_frame(p))
        deposited = burst_kernel.rx_burst([burst_frame(p) for p in payloads])
        assert deposited == len(payloads)
        assert self.observe(burst_kernel, burst_session) \
            == self.observe(solo_kernel, solo_session)
        inq = burst_session.path.input_queue(1)
        assert [m.to_bytes()[-5:] for m in inq.dequeue_batch()] \
            == [p[-5:] for p in payloads]

    def test_burst_charges_summed_interrupt_cost(self):
        _, kernel, session, frame = rx_fixture()
        base = kernel.world.cpu.interrupt_us
        kernel.rx_burst([frame(b"one")])  # cold: full chain walk
        cold_cost = kernel.world.cpu.interrupt_us - base
        base = kernel.world.cpu.interrupt_us
        kernel.rx_burst([frame(b"two"), frame(b"three")])  # warm: probes
        warm_cost = kernel.world.cpu.interrupt_us - base
        # A warm frame costs one probe hop; the cold walk cost more.
        assert warm_cost < cold_cost * 2
        assert warm_cost > 0

    def test_unclassifiable_frames_in_burst_are_dropped_exactly(self):
        _, kernel, session, frame = rx_fixture()
        garbage = b"\x00" * 64
        deposited = kernel.rx_burst([frame(b"good"), garbage,
                                     frame(b"also good")])
        assert deposited == 2
        assert kernel.unclassified_drops == 1
