"""End-to-end Scout kernel tests: Figure 9 booted and running."""

import pytest

from repro.core import PA_AVG_PROC_TIME
from repro.experiments import Testbed
from repro.mpeg import CANYON, NEPTUNE, synthesize_clip
from repro.sim.world import POLICY_EDF, POLICY_RR


def video_testbed(nframes=60, profile=CANYON, seed=1, **video_kwargs):
    testbed = Testbed(seed=seed)
    clip = synthesize_clip(profile, seed=seed, nframes=nframes)
    source = testbed.add_video_source(clip, dst_port=6100)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(profile, (str(source.ip), 7200),
                                 local_port=6100, **video_kwargs)
    return testbed, kernel, source, session, clip


class TestBoot:
    def test_figure9_graph(self):
        testbed = Testbed()
        kernel = testbed.build_scout()
        assert sorted(kernel.graph.routers) == [
            "ARP", "DISPLAY", "ETH", "ICMP", "IP", "MFLOW", "MPEG",
            "SHELL", "UDP"]
        assert kernel.graph.booted

    def test_boot_time_paths_exist(self):
        testbed = Testbed()
        kernel = testbed.build_scout()
        assert kernel.icmp_path.routers() == ["ICMP", "IP", "ETH"]
        assert kernel.frag_path.routers() == ["IP", "ETH"]
        assert kernel.ip.frag_path is kernel.frag_path

    def test_video_path_shape_matches_figure9(self):
        _tb, _kernel, _source, session, _clip = video_testbed()
        assert session.path.routers() == [
            "DISPLAY", "MPEG", "MFLOW", "UDP", "IP", "ETH"]


class TestVideoPlayback:
    def test_all_frames_arrive_and_display(self):
        testbed, kernel, source, session, clip = video_testbed(nframes=60)
        testbed.start_all()
        testbed.run_until_sources_done()
        assert source.done
        assert session.frames_presented == 60
        assert session.path.stage_of("MPEG").decoder.frames_damaged == 0

    def test_packets_classified_at_interrupt_time(self):
        testbed, kernel, source, session, _clip = video_testbed(nframes=30)
        testbed.start_all()
        testbed.run_until_sources_done()
        assert kernel.classifier_stats.classified == source.packets_sent
        assert kernel.classifier_stats.dropped == 0

    def test_cpu_charged_to_the_path(self):
        testbed, kernel, _source, session, _clip = video_testbed(nframes=30)
        testbed.start_all()
        testbed.run_until_sources_done()
        assert session.path.stats.cycles > 0
        # Nearly all compute time belongs to the video path.
        path_us = session.path.stats.cycles / testbed.world.cpu.mhz
        assert path_us == pytest.approx(testbed.world.cpu.compute_us,
                                        rel=0.05)

    def test_measurement_transform_installed_and_running(self):
        """The Section 4.2 probe keeps PA_AVG_PROC_TIME current."""
        testbed, _kernel, _source, session, _clip = video_testbed(nframes=30)
        assert "measure-proc-time" in session.path.attrs.get(
            "_transforms_applied", ())
        testbed.start_all()
        testbed.run_until_sources_done()
        assert session.path.attrs[PA_AVG_PROC_TIME] > 0

    def test_flow_control_limits_in_flight(self):
        testbed, kernel, source, session, _clip = video_testbed(
            nframes=60, inq_len=8)
        testbed.start_all()
        testbed.run_until_sources_done()
        # MFLOW's advertisements kept the source inside the queue bound.
        assert kernel.inq_overflow_drops == 0
        assert source.window_stalls >= 0  # bookkeeping exists

    def test_rtt_measured_from_echoed_timestamps(self):
        testbed, _kernel, source, _session, _clip = video_testbed(nframes=30)
        testbed.start_all()
        testbed.run_until_sources_done()
        rtt = source.avg_rtt_us()
        assert rtt is not None and rtt > 0


class TestEdfIntegration:
    def test_wakeups_inherit_output_queue_deadline(self):
        testbed, _kernel, _source, session, _clip = video_testbed(
            nframes=30, policy=POLICY_EDF)
        testbed.start_all()
        testbed.run_seconds(0.5)
        assert session.thread.policy == POLICY_EDF
        assert session.thread.deadline < float("inf")

    def test_rr_priority_honored(self):
        testbed, _kernel, _source, session, _clip = video_testbed(
            nframes=10, policy=POLICY_RR, priority=3)
        testbed.start_all()
        testbed.run_seconds(0.3)
        assert session.thread.priority == 3


class TestEarlyDiscard:
    def test_skipped_frames_die_at_the_adapter(self):
        testbed, kernel, source, session, _clip = video_testbed(
            nframes=30, skip=3)
        testbed.start_all()
        testbed.run_until_sources_done()
        assert kernel.early_drops > 0
        # Only every third frame was decoded at all.
        decoder = session.path.stage_of("MPEG").decoder
        assert decoder.frames_decoded == 10
        assert session.frames_presented == 10

    def test_without_early_drop_frames_are_decoded_then_discarded(self):
        testbed, kernel, source, session, _clip = video_testbed(
            nframes=30, skip=3, early_drop_skipped=False)
        testbed.start_all()
        testbed.run_until_sources_done()
        assert kernel.early_drops == 0
        stage = session.path.stage_of("MPEG")
        assert stage.decoder.frames_decoded == 30
        assert stage.frames_skipped == 20
        assert session.frames_presented == 10


class TestIcmpPath:
    def test_flood_served_at_low_priority(self):
        testbed = Testbed(seed=3)
        flooder = testbed.add_flooder()
        kernel = testbed.build_scout()
        testbed.start_all()
        testbed.run_seconds(1.0)
        assert kernel.icmp.echo_requests > 0
        assert flooder.replies_received > 0

    def test_flood_starves_when_video_saturates(self):
        """The Table 2 mechanism: a busy video path starves the ICMP
        path, which throttles the self-clocked flood."""
        testbed, kernel, source, session, _clip = video_testbed(
            nframes=200, profile=NEPTUNE, policy=POLICY_RR)
        flooder = testbed.add_flooder()
        testbed.start_all()
        testbed.run_seconds(2.0)
        busy_rate = flooder.requests_sent / 2.0
        assert busy_rate < 2500  # self-clocking collapsed toward fallback


class TestFragmentPath:
    def test_fragmented_datagram_reclassified_to_video_path(self):
        """An oversized UDP datagram arrives as fragments: the catch-all
        path reassembles, the classifier reruns, and the payload reaches
        the right path's queue with an IP entry point."""
        from repro.net import IpHeader, UdpHeader, build_udp_frame

        testbed, kernel, source, session, _clip = video_testbed(nframes=5)
        inner = build_udp_frame(source.mac, kernel.device.mac,
                                source.ip, kernel.ip.addr,
                                7200, 6100, b"Z" * 3000)[14 + 20:]
        half = 1480 - (1480 % 8)
        pieces = [(0, inner[:half], True), (half, inner[half:], False)]
        for offset, body, more in pieces:
            header = IpHeader(20 + len(body), 4242, 17, source.ip,
                              kernel.ip.addr, flags=1 if more else 0,
                              frag_offset=offset // 8)
            frame = (kernel.device.mac.to_bytes() + source.mac.to_bytes()
                     + b"\x08\x00" + header.pack() + body)
            kernel.device.receive(frame)
        testbed.run_seconds(0.1)
        # The reassembled datagram landed in the video path's input queue
        # (and was consumed by its thread; the MPEG stage rejected the
        # garbage payload, but MFLOW counted it arriving).
        assert kernel.frag_path.stage_of("IP").datagrams_reassembled == 1
        assert kernel.classifier_stats.classified >= 2


class TestShell:
    def test_command_creates_video_path(self):
        testbed = Testbed(seed=5)
        client = testbed.add_command_client(dst_port=5000)
        kernel = testbed.build_scout()
        kernel.start_shell(port=5000)
        client.send_command(
            f"mpeg_decode ip={client.ip} port=7200 clip=Canyon")
        testbed.run_seconds(0.2)
        assert len(client.replies) == 1
        assert client.replies[0].startswith("ok pid=")
        assert len(kernel.sessions) == 1
        assert kernel.sessions[0].profile.name == "Canyon"

    def test_source_address_defaults_to_requester(self):
        """'SHELL assumes that the network address of the video source is
        the same as the address that originated the command request.'"""
        testbed = Testbed(seed=5)
        client = testbed.add_command_client(dst_port=5000)
        kernel = testbed.build_scout()
        kernel.start_shell(port=5000)
        client.send_command("mpeg_decode port=7200 clip=Canyon")
        testbed.run_seconds(0.2)
        session = kernel.sessions[0]
        from repro.core import PA_NET_PARTICIPANTS
        participants = session.path.attrs[PA_NET_PARTICIPANTS]
        assert str(participants[0]) == str(client.ip)

    def test_unknown_command_reports_error(self):
        testbed = Testbed(seed=5)
        client = testbed.add_command_client(dst_port=5000)
        kernel = testbed.build_scout()
        kernel.start_shell(port=5000)
        client.send_command("frobnicate x=1")
        testbed.run_seconds(0.2)
        assert client.replies and client.replies[0].startswith("error")
        assert kernel.shell.commands_failed == 1

    def test_bad_clip_reports_error(self):
        testbed = Testbed(seed=5)
        client = testbed.add_command_client(dst_port=5000)
        kernel = testbed.build_scout()
        kernel.start_shell(port=5000)
        client.send_command("mpeg_decode port=7200 clip=NoSuchClip")
        testbed.run_seconds(0.2)
        assert client.replies and client.replies[0].startswith("error")


class TestStopVideo:
    def test_deleted_path_stops_accepting(self):
        testbed, kernel, source, session, _clip = video_testbed(
            nframes=300, profile=NEPTUNE)
        testbed.start_all()
        testbed.run_seconds(0.2)
        kernel.stop_video(session)
        assert session.path.state == "deleted"
        before = kernel.classifier_stats.dropped
        testbed.run_seconds(0.3)
        # Packets for the dead flow are now discarded by the classifier.
        assert kernel.classifier_stats.dropped > before
