"""Failure injection: lossy and jittery links against the full kernel.

The paper's design arguments are about robustness under imperfect
conditions (jitter absorbed by queues, ordered-but-unreliable delivery,
per-frame damage isolation under loss); these tests drive those claims
with injected faults.
"""

import pytest

from repro.experiments import Testbed
from repro.mpeg import CANYON, NEPTUNE, synthesize_clip


def lossy_run(loss_rate, nframes=120, profile=CANYON, seed=9, jitter_us=0.0):
    testbed = Testbed(seed=seed, loss_rate=loss_rate, jitter_us=jitter_us)
    clip = synthesize_clip(profile, seed=seed, nframes=nframes)
    source = testbed.add_video_source(clip, dst_port=6100)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(profile, (str(source.ip), 7200),
                                 local_port=6100)
    testbed.start_all()
    testbed.run_until_sources_done(max_seconds=120)
    return testbed, kernel, source, session


class TestPacketLoss:
    def test_loss_damages_frames_but_not_the_system(self):
        testbed, kernel, source, session = lossy_run(loss_rate=0.05)
        decoder = session.path.stage_of("MPEG").decoder
        mflow = session.path.stage_of("MFLOW")
        assert testbed.segment.frames_lost > 0
        # Damage is isolated per frame (ALF): the rest still display.
        assert decoder.frames_damaged > 0
        assert session.frames_presented > 60
        assert session.frames_presented + decoder.frames_damaged <= 120
        # Gaps were tolerated, nothing delivered out of order.
        assert mflow.gaps > 0
        assert mflow.stale_drops == 0

    def test_loss_free_control(self):
        _tb, _kernel, _source, session = lossy_run(loss_rate=0.0)
        decoder = session.path.stage_of("MPEG").decoder
        assert decoder.frames_damaged == 0
        assert session.frames_presented == 120

    def test_heavier_loss_damages_more(self):
        _t1, _k1, _s1, light = lossy_run(loss_rate=0.02, seed=11)
        _t2, _k2, _s2, heavy = lossy_run(loss_rate=0.15, seed=11)
        light_damage = light.path.stage_of("MPEG").decoder.frames_damaged
        heavy_damage = heavy.path.stage_of("MPEG").decoder.frames_damaged
        assert heavy_damage > light_damage

    def test_flow_control_survives_lost_advertisements(self):
        """Lost window advertisements must stall, not wedge, the source:
        later advertisements re-open the window."""
        _tb, _kernel, source, session = lossy_run(loss_rate=0.10, seed=13)
        assert source.done  # the whole clip still got through

    def test_invalid_loss_rate_rejected(self):
        from repro.net import EtherSegment
        from repro.sim import Engine

        with pytest.raises(ValueError):
            EtherSegment(Engine(), loss_rate=1.0)


class TestJitter:
    def test_network_jitter_absorbed_by_queues(self):
        """'The network may also suffer from significant jitter' — the
        input queue exists to absorb it."""
        _tb, kernel, source, session = lossy_run(
            loss_rate=0.0, jitter_us=3000.0, profile=NEPTUNE, nframes=90)
        decoder = session.path.stage_of("MPEG").decoder
        assert session.frames_presented == 90
        assert decoder.frames_damaged == 0
        assert kernel.inq_overflow_drops == 0

    def test_jitter_with_realtime_deadlines(self):
        testbed = Testbed(seed=21, jitter_us=2000.0)
        clip = synthesize_clip(NEPTUNE, seed=21, nframes=120)
        source = testbed.add_video_source(clip, dst_port=6100,
                                          pace_fps=30.0, lead_frames=8)
        kernel = testbed.build_scout(rate_limited_display=True)
        session = kernel.start_video(NEPTUNE, (str(source.ip), 7200),
                                     local_port=6100, fps=30.0,
                                     prebuffer=8)
        session.sink.expected_frames = 120
        testbed.start_all()
        testbed.run_seconds(120 / 30.0 + 2.0)
        assert session.missed_deadlines == 0
        assert session.frames_presented == 120
