"""The spec-file texts for Figures 9 and 3 must stay truthful: building
them through the configuration tool yields the same graphs the kernels
and examples build programmatically."""

import pytest

from repro.core import build_graph
from repro.experiments import Testbed
from repro.kernel.specs import FIG3_SPEC, FIG9_SPEC


def edge_set(graph):
    return {frozenset([(a_r, a_s), (b_r, b_s)])
            for a_r, a_s, b_r, b_s in graph.edges()}


class TestFig9Spec:
    def test_builds_and_boots(self):
        graph = build_graph(FIG9_SPEC)
        assert graph.booted

    def test_matches_the_scout_kernels_graph(self):
        spec_graph = build_graph(FIG9_SPEC)
        kernel = Testbed().build_scout()
        assert set(spec_graph.routers) == set(kernel.graph.routers)
        assert edge_set(spec_graph) == edge_set(kernel.graph)

    def test_init_order_is_bottom_up(self):
        graph = build_graph(FIG9_SPEC, boot=False)
        order = [r.name for r in graph.init_order()]
        for lower, upper in [("ETH", "IP"), ("IP", "UDP"),
                             ("UDP", "MFLOW"), ("MFLOW", "MPEG"),
                             ("MPEG", "DISPLAY"), ("UDP", "SHELL"),
                             ("IP", "ICMP"), ("ETH", "ARP"),
                             ("ARP", "IP")]:
            assert order.index(lower) < order.index(upper), (lower, upper)

    def test_dot_rendering(self):
        dot = build_graph(FIG9_SPEC, boot=False).to_dot()
        assert dot.startswith("digraph")
        for name in ("DISPLAY", "MPEG", "MFLOW", "SHELL", "UDP", "IP",
                     "ETH"):
            assert f'"{name}"' in dot


class TestFig3Spec:
    def test_builds_and_boots(self):
        graph = build_graph(FIG3_SPEC)
        assert graph.booted
        # UFS mounted its filesystem off SCSI's fresh disk during init.
        assert graph.router("UFS").fs.mounted

    def test_matches_the_example_graph(self):
        import importlib.util
        import pathlib

        spec_path = pathlib.Path(__file__).parents[2] / "examples" / \
            "web_server.py"
        module_spec = importlib.util.spec_from_file_location(
            "web_server_example", spec_path)
        example = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(example)
        example_graph = example.build_figure3_graph()
        spec_graph = build_graph(FIG3_SPEC)
        assert set(spec_graph.routers) == set(example_graph.routers)
        assert edge_set(spec_graph) == edge_set(example_graph)

    def test_storage_stack_usable_after_spec_boot(self):
        graph = build_graph(FIG3_SPEC)
        ufs = graph.router("UFS")
        ufs.fs.write_file("hello.txt", b"from a spec-built graph")
        assert ufs.fs.read_file("hello.txt") == b"from a spec-built graph"
