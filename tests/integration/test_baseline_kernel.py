"""End-to-end tests of the Linux-like baseline kernel."""

import pytest

from repro.experiments import Testbed
from repro.mpeg import CANYON, NEPTUNE, synthesize_clip


def linux_testbed(nframes=60, profile=CANYON, seed=1, **video_kwargs):
    testbed = Testbed(seed=seed)
    clip = synthesize_clip(profile, seed=seed, nframes=nframes)
    source = testbed.add_video_source(clip, dst_port=6100)
    kernel = testbed.build_linux(rate_limited_display=False)
    session = kernel.start_video(profile, (str(source.ip), 7200),
                                 local_port=6100, **video_kwargs)
    return testbed, kernel, source, session


class TestVideoPlayback:
    def test_all_frames_display(self):
        testbed, kernel, source, session = linux_testbed(nframes=60)
        testbed.start_all()
        testbed.run_until_sources_done()
        assert source.done
        assert session.frames_presented == 60

    def test_flow_control_works_through_userspace(self):
        """The app's sendto()-based window advertisements reach the
        source and keep the socket buffer from overflowing."""
        testbed, kernel, source, session = linux_testbed(nframes=120)
        testbed.start_all()
        testbed.run_until_sources_done()
        assert kernel.rx_socket_overflow == 0
        assert source.avg_rtt_us() is not None

    def test_kernel_work_happens_at_interrupt_level(self):
        testbed, kernel, _source, _session = linux_testbed(nframes=60)
        testbed.start_all()
        testbed.run_until_sources_done()
        # Protocol processing is interrupt time, not thread compute.
        assert testbed.world.cpu.interrupt_us > 0

    def test_slower_than_scout_on_the_same_clip(self):
        """Table 1's structural gap: the baseline pays copies, syscalls
        and the window-system handoff that paths avoid."""
        testbed_l, _k, _s, session_l = linux_testbed(nframes=120,
                                                     profile=NEPTUNE)
        testbed_l.start_all()
        testbed_l.run_until_sources_done()
        testbed_s = Testbed(seed=1)
        clip = synthesize_clip(NEPTUNE, seed=1, nframes=120)
        source = testbed_s.add_video_source(clip, dst_port=6100)
        scout = testbed_s.build_scout(rate_limited_display=False)
        session_s = scout.start_video(NEPTUNE, (str(source.ip), 7200),
                                      local_port=6100)
        testbed_s.start_all()
        testbed_s.run_until_sources_done()
        assert session_s.achieved_fps() > 1.1 * session_l.achieved_fps()


class TestIcmpAtInterruptLevel:
    def test_echo_served_regardless_of_load(self):
        testbed = Testbed(seed=2)
        flooder = testbed.add_flooder()
        kernel = testbed.build_linux()
        testbed.start_all()
        testbed.run_seconds(0.5)
        assert kernel.icmp_served > 0
        # Nearly every request was answered: no deprioritization exists.
        assert flooder.replies_received >= 0.95 * flooder.requests_sent

    def test_flood_steals_decode_cpu(self):
        quiet = linux_testbed(nframes=100, profile=NEPTUNE, seed=3)
        quiet[0].start_all()
        quiet[0].run_until_sources_done()
        quiet_fps = quiet[3].achieved_fps()

        testbed = Testbed(seed=3)
        clip = synthesize_clip(NEPTUNE, seed=3, nframes=100)
        source = testbed.add_video_source(clip, dst_port=6100)
        testbed.add_flooder()
        kernel = testbed.build_linux(rate_limited_display=False)
        session = kernel.start_video(NEPTUNE, (str(source.ip), 7200),
                                     local_port=6100)
        testbed.start_all()
        testbed.run_until_sources_done(max_seconds=120)
        assert session.achieved_fps() < 0.75 * quiet_fps


class TestSockets:
    def test_unbound_port_drops(self):
        testbed = Testbed(seed=1)
        clip = synthesize_clip(CANYON, seed=1, nframes=5)
        source = testbed.add_video_source(clip, dst_port=9999)
        kernel = testbed.build_linux()
        testbed.start_all()
        testbed.run_seconds(0.5)
        assert kernel.rx_no_socket > 0

    def test_duplicate_bind_rejected(self):
        testbed = Testbed()
        kernel = testbed.build_linux()
        kernel.open_socket(6100)
        with pytest.raises(ValueError, match="already bound"):
            kernel.open_socket(6100)
