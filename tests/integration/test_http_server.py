"""The Figure 3 web-server graph, serving documents end to end."""

import pytest

from repro.core import (
    Attrs,
    BWD,
    Msg,
    PA_NET_PARTICIPANTS,
    PathCreationError,
    RouterGraph,
    path_create,
)
from repro.fs import ScsiRouter, UfsRouter, VfsRouter
from repro.http import HttpRouter
from repro.net import (
    ArpRouter,
    EthAddr,
    EthRouter,
    IpAddr,
    IpHeader,
    IpRouter,
    TcpHeader,
    TcpRouter,
)
from repro.net.common import PA_LOCAL_PORT
from repro.net.headers import IPPROTO_TCP

SERVER_IP, SERVER_MAC = "10.0.0.1", "02:00:00:00:00:01"
CLIENT_IP, CLIENT_MAC = "10.0.0.9", "02:00:00:00:00:09"


@pytest.fixture
def web():
    graph = RouterGraph()
    graph.add(HttpRouter("HTTP"))
    graph.add(TcpRouter("TCP"))
    graph.add(IpRouter("IP", addr=SERVER_IP))
    graph.add(ArpRouter("ARP"))
    graph.add(EthRouter("ETH", mac=SERVER_MAC))
    graph.add(VfsRouter("VFS"))
    graph.add(UfsRouter("UFS"))
    graph.add(ScsiRouter("SCSI", sectors=1024))
    graph.connect("HTTP.net", "TCP.up")
    graph.connect("HTTP.files", "VFS.up")
    graph.connect("TCP.down", "IP.up")
    graph.connect("IP.down", "ETH.up")
    graph.connect("IP.res", "ARP.resolver")
    graph.connect("ARP.down", "ETH.up")
    graph.connect("VFS.mounts", "UFS.up")
    graph.connect("UFS.disk", "SCSI.ops")
    graph.boot()
    graph.router("UFS").fs.write_file("index.html", b"<h1>paths</h1>")
    graph.router("VFS").mount("/", "UFS")
    graph.router("ARP").add_entry(CLIENT_IP, CLIENT_MAC)
    wire = []
    graph.router("ETH").transmit = lambda msg: wire.append(msg.to_bytes())
    return graph, wire


def open_connection(graph):
    return path_create(graph.router("HTTP"),
                       Attrs({PA_NET_PARTICIPANTS: (CLIENT_IP, 51000),
                              PA_LOCAL_PORT: 80}))


def segment(graph, seq, payload):
    tcp = TcpHeader(51000, 80, seq=seq, flags=TcpHeader.FLAG_ACK).pack(payload)
    ip = IpHeader(20 + len(tcp) + len(payload), 7, IPPROTO_TCP,
                  IpAddr(CLIENT_IP), graph.router("IP").addr).pack()
    eth = (EthAddr(SERVER_MAC).to_bytes() + EthAddr(CLIENT_MAC).to_bytes()
           + b"\x08\x00")
    return Msg(eth + ip + tcp + payload)


def get(graph, target):
    conn = open_connection(graph)
    request = f"GET {target} HTTP/1.0\r\n\r\n".encode()
    conn.deliver(segment(graph, 0, request), BWD)
    return conn


class TestServing:
    def test_200_with_document_body(self, web):
        graph, wire = web
        get(graph, "/index.html")
        response = wire[-1][14 + 20 + TcpHeader.SIZE:]
        assert response.startswith(b"HTTP/1.0 200 OK")
        assert response.endswith(b"<h1>paths</h1>")

    def test_404_for_missing_document(self, web):
        graph, wire = web
        get(graph, "/nope.html")
        assert b"404" in wire[-1]
        assert graph.router("HTTP").not_found == 1

    def test_501_for_non_get(self, web):
        graph, wire = web
        conn = open_connection(graph)
        conn.deliver(segment(graph, 0, b"POST / HTTP/1.0\r\n\r\n"), BWD)
        assert b"501" in wire[-1]

    def test_400_for_garbage(self, web):
        graph, wire = web
        conn = open_connection(graph)
        conn.deliver(segment(graph, 0, b"\xff\xfe\x00"), BWD)
        assert b"400" in wire[-1]

    def test_file_path_created_once_per_document(self, web):
        graph, _wire = web
        http = graph.router("HTTP")
        get(graph, "/index.html")
        first = http._file_paths["/index.html"]
        get(graph, "/index.html")
        assert http._file_paths["/index.html"] is first
        assert first.routers() == ["VFS", "UFS", "SCSI"]

    def test_connection_path_shape(self, web):
        graph, _wire = web
        conn = open_connection(graph)
        assert conn.routers() == ["HTTP", "TCP", "IP", "ETH"]

    def test_response_addressed_to_client(self, web):
        graph, wire = web
        get(graph, "/index.html")
        from repro.net import parse_frame
        parsed = parse_frame(wire[-1])
        assert parsed.eth.dst == EthAddr(CLIENT_MAC)
        assert str(parsed.ip.dst) == CLIENT_IP


class TestOffNetTruncation:
    def test_path_to_remote_network_stops_at_ip(self, web):
        graph, _wire = web
        path = path_create(graph.router("HTTP"),
                           Attrs({PA_NET_PARTICIPANTS: ("192.168.1.1", 80)}))
        assert path.routers() == ["HTTP", "TCP", "IP"]
