"""The examples must keep running: each is executed as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parents[2] / "examples"


def run_example(name, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "TEST -> UDP -> IP -> ETH" in out
        assert "TEST sink received: b'welcome back'" in out
        assert "kernel-hosted sink delivered: b'welcome back'" in out

    def test_wallclock_socket(self):
        out = run_example("wallclock_socket.py")
        assert ("books reconcile" in out
                or "loopback sockets unavailable" in out)

    def test_mpeg_player(self):
        out = run_example("mpeg_player.py")
        assert "SHELL replied: ['ok pid=" in out
        assert "missed deadlines:  0" in out
        assert "DISPLAY -> MPEG -> MFLOW -> UDP -> IP -> ETH" in out

    def test_web_server(self):
        out = run_example("web_server.py")
        assert "HTTP/1.0 200 OK" in out
        assert "HTTP/1.0 404 Not Found" in out
        assert "VFS -> UFS -> SCSI" in out
        assert "stops at IP" in out

    @pytest.mark.slow
    def test_admission_control(self):
        out = run_example("admission_control.py", timeout=420)
        assert "correlation" in out
        assert "admitted at 1/3 quality" in out
        assert "missed 0" in out

    @pytest.mark.slow
    def test_loaded_system(self):
        out = run_example("loaded_system.py", timeout=420)
        assert "scout" in out and "linux" in out

    @pytest.mark.slow
    def test_multi_stream_edf(self):
        out = run_example("multi_stream_edf.py", timeout=420)
        assert "EDF: " in out and "missed 0 deadlines" in out
