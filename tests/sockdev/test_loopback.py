"""The loopback acceptance demo: a real UDP sender drives a real Scout.

An external sender — a plain ``socket.socket`` in this test process,
standing in for a remote load generator — blasts ETH/IP/UDP frames at
``Scout(backend="socket", executor="asyncio")`` over the loopback
interface.  The kernel classifies, admits and delivers them through the
same path machinery tier-1 exercises in virtual time, and the books
must reconcile *exactly*: every frame the device accepted is either
delivered to the TEST sink or accounted in a drop ledger, and the
socket-level ledger itself lands in the metrics registry.

Skipped wholesale where loopback sockets are unavailable.
"""

import asyncio
import socket

import pytest

from repro.api import EthAddr, IpAddr, Scout, build_udp_frame

LOCAL_MAC = EthAddr("02:00:00:00:00:01")
LOCAL_IP = IpAddr("10.0.0.1")
REMOTE_MAC = EthAddr("02:00:00:00:00:02")
REMOTE_IP = IpAddr("10.0.0.2")
SINK_PORT = 6100


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _loopback_available(),
    reason="UDP loopback sockets unavailable in this environment")


def udp_frame(sequence: int, dport: int = SINK_PORT) -> bytes:
    payload = b"loop-%06d" % sequence
    return build_udp_frame(REMOTE_MAC, LOCAL_MAC, REMOTE_IP, LOCAL_IP,
                           7000, dport, payload)


async def _pump_until(scout: Scout, predicate, timeout: float = 5.0):
    """Serve in slices until *predicate* holds (or the timeout runs out:
    loopback delivery is asynchronous, so tests poll, never sleep-pray)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate() and loop.time() < deadline:
        await scout.serve(seconds=0.05)


class TestLoopbackDelivery:
    def test_external_sender_reconciles_exactly(self):
        sent = 30

        async def main():
            async with Scout(seed=11, backend="socket",
                             executor="asyncio") as scout:
                drops = []
                scout.kernel.drop_hook = \
                    lambda msg, category: drops.append(category)
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.bind(("127.0.0.1", 0))
                scout.add_peer(REMOTE_IP, REMOTE_MAC,
                               sender.getsockname())
                scout.kernel.start_udp_sink(SINK_PORT,
                                            (str(REMOTE_IP), 7000))
                payloads = []
                for seq in range(sent):
                    frame = udp_frame(seq)
                    payloads.append(b"loop-%06d" % seq)
                    sender.sendto(frame, scout.device.address)
                # stray frame for a port no sink owns: must be ledgered,
                # not silently lost
                sender.sendto(udp_frame(999, dport=6999),
                              scout.device.address)
                device = scout.device
                await _pump_until(
                    scout,
                    lambda: (len(scout.kernel.test.received) + len(drops)
                             >= device.rx_frames
                             and device.rx_frames + device.rx_missed
                             + sum(device.drop_ledger().values())
                             >= sent + 1))
                sender.close()

                test = scout.kernel.test
                delivered = [msg.to_bytes() for msg in test.received]
                # Exact reconciliation: every frame the device accepted
                # is either delivered or in a drop ledger.
                assert device.rx_frames == len(delivered) + len(drops)
                # Delivered payloads are exactly the sent ones, in order.
                assert delivered == payloads
                assert test.bytes_received == sum(map(len, payloads))
                # The stray-port frame is the only admission drop.
                assert drops == ["unclassified"]
                # The wall-clock bridge published into the registry.
                snap = scout.wallclock()
                assert snap["virtual_cpu_s"] > 0
                registry = scout.kernel.observatory.metrics
                gauge = registry.get("wallclock_virtual_cpu_s")
                assert gauge is not None and gauge.value > 0

        asyncio.run(main())

    def test_socket_level_drops_land_in_registry(self):
        async def main():
            async with Scout(seed=11, backend="socket",
                             executor="asyncio") as scout:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.sendto(b"runt", scout.device.address)
                device = scout.device
                await _pump_until(
                    scout, lambda: device.drop_ledger().get("rx_runt", 0) > 0,
                    timeout=2.0)
                sender.close()
                assert device.drop_ledger() == {"rx_runt": 1}
                registry = scout.kernel.observatory.metrics
                counter = registry.get("sockdev_drops", device="sock0",
                                       reason="rx_runt")
                assert counter is not None and counter.value == 1

        asyncio.run(main())

    def test_kernel_replies_reach_the_sender(self):
        # The TX side: the kernel's sink sends nothing by itself, but an
        # ICMP echo does generate a reply frame that must come back to
        # the sender's socket through the peer table.
        from repro.net.packets import build_icmp_echo

        async def main():
            async with Scout(seed=11, backend="socket",
                             executor="asyncio") as scout:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.bind(("127.0.0.1", 0))
                sender.settimeout(5.0)
                scout.add_peer(REMOTE_IP, REMOTE_MAC,
                               sender.getsockname())
                echo = build_icmp_echo(REMOTE_MAC, LOCAL_MAC, REMOTE_IP,
                                       LOCAL_IP, ident=7, seq=1,
                                       payload=b"ping-me")
                sender.sendto(echo, scout.device.address)
                device = scout.device
                await _pump_until(scout,
                                  lambda: device.tx_frames > 0)
                reply = await asyncio.get_running_loop().run_in_executor(
                    None, sender.recv, 2048)
                assert b"ping-me" in reply
                assert device.tx_frames == 1
                sender.close()

        asyncio.run(main())
