"""Unit tests for the UDP-socket network device (repro.net.sockdev).

Every test binds to the loopback interface; the module self-skips in
environments where that is not permitted (sandboxes without sockets).
"""

import asyncio
import socket

import pytest

from repro.net.addresses import EthAddr
from repro.net.sockdev import SocketNetDevice

MAC_A = EthAddr("02:00:00:00:00:0a")
MAC_B = EthAddr("02:00:00:00:00:0b")


def _loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _loopback_available(),
    reason="UDP loopback sockets unavailable in this environment")


def run(coro):
    return asyncio.run(coro)


def frame_to(dst: EthAddr, src: EthAddr, payload: bytes = b"") -> bytes:
    return dst.to_bytes() + src.to_bytes() + b"\x08\x00" + payload


class TestOpenClose:
    def test_open_binds_and_reports_address(self):
        async def main():
            dev = SocketNetDevice(MAC_A)
            host, port = await dev.open()
            assert host == "127.0.0.1"
            assert port > 0
            assert dev.is_open
            dev.close()
            assert not dev.is_open

        run(main())

    def test_close_is_idempotent(self):
        async def main():
            dev = SocketNetDevice(MAC_A)
            await dev.open()
            dev.close()
            dev.close()

        run(main())

    def test_send_after_close_is_ledgered(self):
        async def main():
            dev = SocketNetDevice(MAC_A)
            await dev.open()
            dev.close()
            dev.send(frame_to(MAC_B, MAC_A))
            assert dev.drop_ledger() == {"tx_closed": 1}

        run(main())


class TestReceive:
    def test_roundtrip_between_two_devices(self):
        async def main():
            a = SocketNetDevice(MAC_A, name="a")
            b = SocketNetDevice(MAC_B, name="b")
            await a.open()
            addr_b = await b.open()
            a.add_peer(MAC_B, addr_b)
            payload = frame_to(MAC_B, MAC_A, b"hello")
            a.send(payload)
            burst = await b.next_burst(timeout=2.0)
            assert burst == [payload]
            assert a.tx_frames == 1
            assert b.rx_frames == 1
            # b learned a's MAC->address mapping from the frame source
            assert str(MAC_A) in b.peers()
            a.close()
            b.close()

        run(main())

    def test_runt_datagram_ledgered(self):
        async def main():
            dev = SocketNetDevice(MAC_A)
            addr = await dev.open()
            sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sender.sendto(b"short", addr)
            burst = await dev.next_burst(timeout=0.3)
            assert burst == []
            assert dev.drop_ledger() == {"rx_runt": 1}
            assert dev.rx_frames == 0
            sender.close()
            dev.close()

        run(main())

    def test_frame_for_other_mac_is_missed(self):
        async def main():
            dev = SocketNetDevice(MAC_A)
            addr = await dev.open()
            sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sender.sendto(frame_to(MAC_B, MAC_B, b"not-mine"), addr)
            burst = await dev.next_burst(timeout=0.3)
            assert burst == []
            assert dev.rx_missed == 1
            assert dev.drop_ledger() == {}
            sender.close()
            dev.close()

        run(main())

    def test_broadcast_is_accepted(self):
        async def main():
            dev = SocketNetDevice(MAC_A)
            addr = await dev.open()
            sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            bcast = frame_to(EthAddr("ff:ff:ff:ff:ff:ff"), MAC_B, b"all")
            sender.sendto(bcast, addr)
            burst = await dev.next_burst(timeout=2.0)
            assert burst == [bcast]
            sender.close()
            dev.close()

        run(main())

    def test_ring_overflow_ledgered(self):
        async def main():
            dev = SocketNetDevice(MAC_A, rx_ring=2)
            # Bypass the socket: deliver datagrams straight to the
            # protocol hook so the overflow is deterministic.
            await dev.open()
            for i in range(5):
                dev._on_datagram(frame_to(MAC_A, MAC_B, b"%d" % i),
                                 ("127.0.0.1", 9))
            assert dev.pending() == 2
            assert dev.drop_ledger() == {"rx_overflow": 3}
            assert dev.rx_frames == 2
            dev.close()

        run(main())


class TestTransmit:
    def test_unknown_destination_ledgered(self):
        async def main():
            dev = SocketNetDevice(MAC_A)
            await dev.open()
            dev.send(frame_to(MAC_B, MAC_A, b"nowhere"))
            assert dev.drop_ledger() == {"tx_unroutable": 1}
            assert dev.tx_frames == 0
            dev.close()

        run(main())

    def test_metrics_binding_counts_drops(self):
        from repro.observe.metrics import MetricsRegistry

        async def main():
            dev = SocketNetDevice(MAC_A, name="m0")
            registry = MetricsRegistry()
            dev.bind_metrics(registry)
            await dev.open()
            dev.send(frame_to(MAC_B, MAC_A))
            dev.close()
            counter = registry.get("sockdev_drops", device="m0",
                                   reason="tx_unroutable")
            assert counter is not None and counter.value == 1

        run(main())

    def test_rx_ring_must_be_positive(self):
        with pytest.raises(ValueError):
            SocketNetDevice(MAC_A, rx_ring=0)
