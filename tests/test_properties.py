"""Cross-cutting property-based tests on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import Attrs, BWD, FWD, Msg, path_create
from repro.core.queues import FWD_OUT
from repro.sim import Compute, Dequeue, SimWorld
from repro.core import PathQueue
from .helpers import make_chain


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=12))
def test_path_linking_invariants_any_length(n):
    """For any path length: FWD chain and BWD chain are mutual reverses,
    and back pointers always point one stage toward the message's origin
    in the opposite direction."""
    names = [f"R{i}" for i in range(n)]
    _, routers = make_chain(*names)
    path = path_create(routers[0], Attrs())
    stages = path.stages
    assert len(stages) == n
    for i, stage in enumerate(stages):
        fwd, bwd = stage.end[FWD], stage.end[BWD]
        assert fwd.next is (stages[i + 1].end[FWD] if i + 1 < n else None)
        assert bwd.next is (stages[i - 1].end[BWD] if i > 0 else None)
        assert fwd.back is (stages[i - 1].end[BWD] if i > 0 else None)
        assert bwd.back is (stages[i + 1].end[FWD] if i + 1 < n else None)
        assert fwd.stage is stage and bwd.stage is stage


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10))
def test_traversal_visits_every_stage_exactly_once(n):
    names = [f"R{i}" for i in range(n)]
    _, routers = make_chain(*names)
    path = path_create(routers[0], Attrs())
    msg = Msg(b"probe")
    path.deliver(msg, FWD)
    assert [name for name, _d in msg.meta["trace"]] == names
    back = Msg(b"probe")
    path.deliver(back, BWD)
    assert [name for name, _d in back.meta["trace"]] == names[::-1]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=1, max_value=1e6),
                min_size=2, max_size=10, unique=True))
def test_edf_runs_strictly_in_deadline_order(deadlines):
    """When N EDF threads become ready together, they execute in exact
    deadline order regardless of spawn order."""
    world = SimWorld(seed=0)
    gate = PathQueue(maxlen=len(deadlines))
    order = []

    def body(tag):
        yield Dequeue(gate)
        yield Compute(1.0)
        order.append(tag)

    from repro.core import Path

    for index, deadline in enumerate(deadlines):
        path = Path()
        path.wakeup = (lambda d: lambda p, t: setattr(t, "deadline", d))(deadline)
        world.spawn(body(index), policy="edf", path=path)
    for _ in deadlines:
        world.engine.schedule(10, gate.enqueue, "go")
    world.run_until_idle()
    expected = [i for i, _d in sorted(enumerate(deadlines),
                                      key=lambda pair: pair[1])]
    assert order == expected


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7),
                min_size=2, max_size=12))
def test_rr_respects_priorities_for_simultaneous_arrivals(priorities):
    world = SimWorld(seed=0)
    order = []

    def body(tag):
        yield Compute(1.0)
        order.append(tag)

    for index, priority in enumerate(priorities):
        world.spawn(body(index), priority=priority)
    world.run_until_idle()
    # Stable by arrival within a priority level, sorted across levels.
    expected = sorted(range(len(priorities)),
                      key=lambda i: (priorities[i], i))
    assert order == expected


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=50),
                min_size=1, max_size=8))
def test_nonpreemption_computes_never_interleave(bursts):
    """Each thread's compute bursts are contiguous in virtual time until
    it voluntarily yields: completion times never interleave mid-burst."""
    world = SimWorld(seed=0)
    spans = {}

    def body(tag, burst):
        start = world.now
        for _ in range(burst):
            yield Compute(5.0)
        spans[tag] = (start, world.now)

    for index, burst in enumerate(bursts):
        world.spawn(body(index, burst), name=f"t{index}")
    world.run_until_idle()
    intervals = sorted(spans.values())
    for (a_start, a_end), (b_start, b_end) in zip(intervals, intervals[1:]):
        assert a_end <= b_start + 1e-9  # no overlap: strict serialization


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.data())
def test_classifier_always_finds_the_right_flow(n_paths, data):
    """Among several bound flows, classification maps each tag to its own
    path and nothing else."""
    from repro.core import DemuxResult, classify
    from .helpers import ChainRouter

    class MultiFlow(ChainRouter):
        def __init__(self, name):
            super().__init__(name)
            self.flows = {}

        def demux(self, msg, service, offset=0):
            tag = msg.peek(1, at=offset)
            path = self.flows.get(tag)
            if path is None:
                return DemuxResult.drop("no such flow")
            return DemuxResult.found(path)

    from repro.core import RouterGraph

    graph = RouterGraph()
    top = graph.add(MultiFlow("TOP"))
    graph.boot()
    paths = {}
    for i in range(n_paths):
        tag = bytes([i])
        path = path_create(top, Attrs(flow=i))
        top.flows[tag] = path
        paths[tag] = path
    probe = data.draw(st.integers(min_value=0, max_value=n_paths - 1))
    tag = bytes([probe])
    assert classify(top, Msg(tag + b"payload")) is paths[tag]
    assert classify(top, Msg(bytes([n_paths]) + b"x")) is None
