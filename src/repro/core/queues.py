"""Path queues.

Section 3.2: "The four path queues are stored in q.  These queues are
generic in the sense that the queuing discipline is unspecified.  The two
properties that are defined for any such queue is the current length and
the maximum length."

:class:`PathQueue` is that generic bounded queue.  The default discipline
is FIFO; :class:`LifoPathQueue` demonstrates that the discipline really is
pluggable.  Queues keep the statistics the demonstration application needs
(drops, high watermark, totals) and support listeners so the simulation's
thread layer can block/wake on empty/full transitions without the core
depending on the simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterable, Iterator, List, Optional

from .errors import QueueFullError

#: Queue roles within a path's ``q[4]`` array: input/output for the
#: forward direction, input/output for the backward direction.
FWD_IN, FWD_OUT, BWD_IN, BWD_OUT = range(4)

QUEUE_ROLE_NAMES = ("fwd_in", "fwd_out", "bwd_in", "bwd_out")


class PathQueue:
    """A bounded queue decoupling path execution from arrival/departure.

    Parameters
    ----------
    maxlen:
        Maximum length (number of messages).  ``None`` means unbounded,
        which the demonstration paths never use but tests may.
    name:
        Diagnostic label, e.g. ``"video0.fwd_in"``.
    """

    def __init__(self, maxlen: Optional[int] = 32, name: str = ""):
        if maxlen is not None and maxlen < 0:
            raise ValueError("maxlen must be non-negative or None")
        self.maxlen = maxlen
        self.name = name
        #: Reason reported to drop listeners when :meth:`try_enqueue`
        #: rejects an item.  Harnesses that need overflow drops told apart
        #: from organic ones (e.g. adversarial injection) override this so
        #: the drop trail carries the distinction without re-deriving it.
        self.overflow_reason = "overflow"
        self._items: Deque[Any] = deque()
        # statistics
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.high_watermark = 0
        #: The item most recently enqueued / dequeued, so listeners (which
        #: receive only the queue) can identify the message that moved.
        self.last_enqueued: Any = None
        self.last_dequeued: Any = None
        self._enqueue_listeners: List[Callable[["PathQueue"], None]] = []
        self._dequeue_listeners: List[Callable[["PathQueue"], None]] = []
        self._drop_listeners: List[Callable[["PathQueue", Any, str], None]] = []

    # -- the two defined properties -----------------------------------------

    def __len__(self) -> int:
        """Current length."""
        return len(self._items)

    @property
    def capacity(self) -> Optional[int]:
        """Maximum length (``None`` = unbounded)."""
        return self.maxlen

    # -- state predicates -----------------------------------------------------

    def is_full(self) -> bool:
        return self.maxlen is not None and len(self._items) >= self.maxlen

    def is_empty(self) -> bool:
        return not self._items

    @property
    def free_slots(self) -> Optional[int]:
        """Open slots, which MFLOW advertises as its window (Section 4.2)."""
        if self.maxlen is None:
            return None
        return self.maxlen - len(self._items)

    # -- queue discipline (overridable) -----------------------------------------

    def _insert(self, item: Any) -> None:
        self._items.append(item)

    def _remove(self) -> Any:
        return self._items.popleft()

    # -- operations ---------------------------------------------------------------

    def try_enqueue(self, item: Any) -> bool:
        """Enqueue *item*; return False (counting a drop) when full."""
        if self.is_full():
            self.dropped += 1
            for listener in self._drop_listeners:
                listener(self, item, self.overflow_reason)
            return False
        self._insert(item)
        self.enqueued += 1
        self.last_enqueued = item
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        for listener in self._enqueue_listeners:
            listener(self)
        return True

    def enqueue(self, item: Any) -> None:
        """Enqueue *item*, raising :class:`QueueFullError` when full."""
        if not self.try_enqueue(item):
            raise QueueFullError(f"queue {self.name or '?'} is full "
                                 f"({len(self._items)}/{self.maxlen})")

    def dequeue(self) -> Any:
        """Remove and return the next item (raises ``IndexError`` if empty)."""
        item = self._remove()
        self.dequeued += 1
        self.last_dequeued = item
        for listener in self._dequeue_listeners:
            listener(self)
        return item

    def try_dequeue(self) -> Optional[Any]:
        """Remove and return the next item, or ``None`` when empty."""
        if self.is_empty():
            return None
        return self.dequeue()

    def peek(self) -> Any:
        """Return the next item without removing it."""
        return self._items[0]

    # -- batch operations ---------------------------------------------------

    def try_enqueue_batch(self, items: Iterable[Any]) -> int:
        """Enqueue every item in *items*; returns how many were accepted.

        Rejected items count as drops and fire the drop listeners exactly
        as individual :meth:`try_enqueue` rejections would — batching
        amortizes dispatch, never accounting.
        """
        accepted = 0
        for item in items:
            if self.try_enqueue(item):
                accepted += 1
        return accepted

    def dequeue_batch(self, limit: Optional[int] = None) -> List[Any]:
        """Remove and return up to *limit* items (all queued when ``None``).

        Order follows the queue discipline — a
        :class:`DeadlineOrderedQueue` drains in deadline order, item by
        item.  Statistics and dequeue listeners stay exact per item, so
        blocked-producer wakeups and queue-wait spans are indistinguishable
        from *limit* individual dequeues; the caller's scheduler interaction
        is what collapses to one operation per batch.
        """
        if limit is None:
            limit = len(self._items)
        out: List[Any] = []
        while len(out) < limit and self._items:
            out.append(self.dequeue())
        return out

    def drain(self, reason: str = "cleared") -> List[Any]:
        """Discard everything queued and return the discarded items.

        Each item counts as a drop and fires the drop listeners, so
        observers can close queue-wait spans and drop accounting stays
        consistent with :meth:`try_enqueue` rejections — a queue can
        never lose messages without the drop trail saying why.
        """
        items = list(self._items)
        self._items.clear()
        self.dropped += len(items)
        if self._drop_listeners:
            for item in items:
                for listener in self._drop_listeners:
                    listener(self, item, reason)
        return items

    def clear(self, reason: str = "cleared") -> int:
        """Drop everything queued; returns how many items were discarded."""
        return len(self.drain(reason))

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    # -- listeners ---------------------------------------------------------------

    def on_enqueue(self, fn: Callable[["PathQueue"], None]) -> None:
        """Register *fn* to run after every successful enqueue."""
        self._enqueue_listeners.append(fn)

    def on_dequeue(self, fn: Callable[["PathQueue"], None]) -> None:
        """Register *fn* to run after every dequeue."""
        self._dequeue_listeners.append(fn)

    def on_drop(self, fn: Callable[["PathQueue", Any, str], None]) -> None:
        """Register ``fn(queue, item, reason)`` to run for every discarded
        item: overflow rejections and :meth:`drain`/:meth:`clear`."""
        self._drop_listeners.append(fn)

    def __repr__(self) -> str:
        cap = "inf" if self.maxlen is None else str(self.maxlen)
        return (f"<PathQueue {self.name or '?'} {len(self._items)}/{cap} "
                f"drops={self.dropped}>")


class LifoPathQueue(PathQueue):
    """LIFO discipline — exists to demonstrate discipline pluggability."""

    def _remove(self) -> Any:
        return self._items.pop()


class DeadlineOrderedQueue(PathQueue):
    """A queue that dequeues the item with the earliest deadline.

    Items must expose a ``deadline`` attribute or be ``(deadline, item)``
    tuples.  Used by display output queues when frames can arrive out of
    presentation order (non-ALF packetization ablation).
    """

    @staticmethod
    def _deadline_of(item: Any) -> float:
        if isinstance(item, tuple):
            return item[0]
        return getattr(item, "deadline", 0.0)

    def _remove(self) -> Any:
        best_index = 0
        best = self._deadline_of(self._items[0])
        for index, item in enumerate(self._items):
            when = self._deadline_of(item)
            if when < best:
                best = when
                best_index = index
        self._items.rotate(-best_index)
        item = self._items.popleft()
        self._items.rotate(best_index)
        return item
