"""Exception hierarchy for the Scout path architecture.

Every error raised by :mod:`repro.core` derives from :class:`ScoutError` so
that callers can catch architecture-level failures without also swallowing
programming errors.  The hierarchy mirrors the phases of the system's
lifetime described in the paper (Figure 8): configuration (build time), path
creation, classification, and execution (runtime).
"""

from __future__ import annotations


class ScoutError(Exception):
    """Base class for all errors raised by the path architecture."""


class ConfigurationError(ScoutError):
    """A router graph or spec file is malformed.

    Raised at "build time": bad spec syntax, incompatible service
    connections, unknown routers, or connection-count mismatches.
    """


class CyclicDependencyError(ConfigurationError):
    """Router initialization order contains a cycle.

    The paper permits cyclic *data* dependencies in the router graph but
    forbids cycles in the initialization partial order defined by the ``<``
    markers in spec files.  The configuration tool "checks for and rejects
    any router graph with cyclic dependencies"; this is that rejection.
    """

    def __init__(self, cycle):
        self.cycle = list(cycle)
        names = " -> ".join(self.cycle + self.cycle[:1])
        super().__init__(f"cyclic router initialization dependency: {names}")


class ServiceTypeError(ConfigurationError):
    """Two services were connected whose interface types are incompatible.

    The rule from Section 3.1: "the interfaces provided must be identical to
    or more specific than the interfaces required".
    """


class SpecSyntaxError(ConfigurationError):
    """A spec file could not be parsed."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class PathCreationError(ScoutError):
    """Path creation failed.

    Raised when a router refuses to create a stage (invariants too weak for
    any routing decision at the very first router), when a stage's
    ``establish`` hook fails, or when an admission-control policy denies the
    path.
    """


class RoutingError(PathCreationError):
    """A router could not make a unique routing decision.

    This is not always fatal: during incremental creation it terminates the
    path at its maximum length.  It is an error only when it leaves the
    path with no stages at all.
    """


class ClassificationError(ScoutError):
    """Demux failed to find a path for a message.

    Per Section 3.5, the offending data is simply discarded; this exception
    carries the reason so callers that *want* to observe drops can do so.
    """


class PathStateError(ScoutError):
    """A path was used in a way inconsistent with its state.

    Examples: delivering a message on a deleted path, or extending a path
    object after it has been combined and established.
    """


class QueueFullError(ScoutError):
    """A bounded path queue rejected an enqueue.

    Queues normally signal fullness by returning ``False`` from
    ``try_enqueue``; this exception is used by the strict ``enqueue``
    variant for callers that treat overflow as a hard error.
    """


class AdmissionError(ScoutError):
    """Admission control denied a resource request for a path."""
