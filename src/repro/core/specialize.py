"""Per-path specialization: ``exec``-generated fused fast-path functions.

Scout's central claim is that making paths explicit lets the system
*specialize* them: "if a path contains a sequence of interfaces for which
there is optimized code available, then the function pointers in the
interfaces can be updated to point to this optimized code" (Section 4.1).
The compiled chain (:meth:`~repro.core.path.Path.compile_chains`) removed
the pointer chase; this module removes the *per-stage function calls*
themselves.  For a chain whose stages are all recognized — the standard
ETH/IP/UDP/MFLOW receive bodies and the TEST sink, installed un-interposed
— a per-path Python function is generated at compile time and executed by
``Path.deliver``/``deliver_batch`` as the third execution tier:

    interpreted (pointer-chase recursion)
      -> compiled (flattened chain, one call per stage per message)
        -> specialized (one generated function per path, straight-line)

The generator exploits exactly the invariants that are fixed at
path-create time or proven per message by the flow cache:

* **validated headers** — every message in the run carries the
  ``*_validated`` stamps a :class:`~repro.core.flowcache.FlowCache` hit
  installed, so the per-stage length/address/port checks are dead
  branches and header *objects* are never materialized; the IP total
  length (the one per-packet field that still matters, for padding trim)
  is read with a single prebound :class:`struct.Struct` access;
* **absent intercepts** — each fused stage's deliver function is the
  pristine bound method (see :meth:`Stage.has_pristine_deliver`), so
  there is nothing to call between stages: header strips coalesce into
  one ``Msg.strip`` and the per-stage ``charge()`` calls into local
  float adds written back once;
* **fixed configuration** — no UDP checksum pass, interior stages
  actually interior, the sink actually last.

What the generator must NOT assume is anything that can change *between*
messages: padded frames (IP total length shorter than the payload) take a
per-message bail-out through :func:`run_compiled` on the full chain, and
MFLOW's sequencing branches (stale drop, gap, window advertisement,
batched-advertisement coalescing) are emitted inline, calling back into
stage methods for the rare cases.

**Deopt protocol.**  A generated function is valid for exactly one
``chain_generation``.  ``set_deliver``/``set_deliver_batch``/
``wrap_deliver`` bump the generation, and ``Path.deliver``/
``deliver_batch`` compare generations *before* consulting the specialized
slot — so interposition (probes, fault injectors, transformations)
deoptimizes to the exact slow path before the next message is seen.
Recompilation then re-runs recognition: a wrapped stage fails the
pristine check and the prefix shortens (or specialization is dropped).
Observed paths (``PA_TRACE``) never specialize, mirroring the compiled
tier.

Stage recognition is a registry: the net modules register a *specializer*
per stage class (:func:`register_specializer`), keeping each stage's
inlined semantics next to the scalar code it must mirror; the assembler
here only knows how to fuse fragments.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from .message import Msg
from .stage import DIRECTION_NAMES, run_compiled

#: Fusing fewer stages than this is not worth a generated function: the
#: per-batch guard and dispatch would eat the win.  ETH+IP+UDP is the
#: shortest prefix that pays.
MIN_PREFIX = 3

#: Environment variable forcing the default for paths created without an
#: explicit ``specialize=`` / ``PA_SPECIALIZE`` choice (the CI matrix leg
#: runs the whole tier-1 suite with it set to ``1``).
ENV_VAR = "REPRO_SPECIALIZE"

_TRUTHY = ("1", "true", "on", "yes")

_REGISTRY: Dict[Type, Callable[..., Optional["StageFragment"]]] = {}


def default_enabled() -> bool:
    """The process-wide default for paths that did not choose: the
    ``REPRO_SPECIALIZE`` environment variable, read at path-create time
    so tests can flip it per monkeypatch."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def register_specializer(stage_cls: Type,
                         specializer: Callable[..., Optional["StageFragment"]]
                         ) -> None:
    """Register *specializer* as the recognizer/emitter for *stage_cls*.

    ``specializer(stage, iface, fn, fn_batch, direction, terminal)`` is
    called during chain recognition and returns a :class:`StageFragment`
    when the stage can be fused — or ``None`` to stop the prefix there
    (interposed function, wrong direction, disqualifying configuration).
    """
    _REGISTRY[stage_cls] = specializer


class StageFragment:
    """One recognized stage's contribution to a fused function.

    Parameters
    ----------
    stamps:
        ``msg.meta`` validation flags this stage consumes.  Guarded for
        the whole run (missing stamp -> decline) and deleted per message.
    pop:
        Fixed header bytes this stage strips.  Consecutive fragments'
        pops coalesce into a single ``Msg.strip``.
    cost_expr:
        ``cost_expr(ctx)`` -> expression string for the stage's per-
        message charge, evaluated once per batch (like the vectorized
        deliver functions, so live ``params`` monkeypatching stays
        visible).  ``None`` emits no charge.
    bail:
        ``bail(ctx)`` -> lines emitted *before any mutation* that may
        route a message through ``ctx.bail_action()`` — the exact
        compiled chain — when a per-message condition the fused body
        does not handle holds (e.g. link-layer padding trim).
    body:
        ``body(ctx)`` -> lines emitted at the stage's position with all
        pending strips flushed (the message front is this stage's
        payload).  For control-flow-heavy stages (MFLOW) and terminals.
    epilogue:
        ``epilogue(ctx)`` -> lines emitted after the loop with ``_live``
        bound to the number of messages that took the fused body (bulk
        counter updates).
    terminal:
        True when the stage absorbs every message (sink); must be the
        chain's last entry.
    """

    __slots__ = ("stamps", "pop", "cost_expr", "bail", "body", "epilogue",
                 "terminal")

    def __init__(self, stamps: Sequence[str] = (), pop: int = 0,
                 cost_expr: Optional[Callable] = None,
                 bail: Optional[Callable] = None,
                 body: Optional[Callable] = None,
                 epilogue: Optional[Callable] = None,
                 terminal: bool = False):
        self.stamps = tuple(stamps)
        self.pop = pop
        self.cost_expr = cost_expr
        self.bail = bail
        self.body = body
        self.epilogue = epilogue
        self.terminal = terminal


class GenContext:
    """Name binding and layout state handed to fragment emitters."""

    def __init__(self, namespace: Dict[str, Any], direction: int):
        self.ns = namespace
        self.direction = direction
        #: Cumulative header bytes stripped by earlier fragments — the
        #: absolute offset of the current fragment's header in the
        #: original frame (fragments read raw bytes through it).
        self.offset = 0
        self._seq = 0
        self._needs_raw = False

    def bind(self, value: Any, hint: str = "v") -> str:
        """Bind *value* into the generated function's namespace and
        return its (unique) name."""
        name = "_%s_%d" % ("".join(ch if ch.isalnum() else "_"
                                   for ch in hint), self._seq)
        self._seq += 1
        self.ns[name] = value
        return name

    def need_raw(self) -> str:
        """Request the per-message ``_raw = m.to_bytes()`` prologue (a
        zero-copy view for the common single-chunk frame) and return the
        variable name."""
        self._needs_raw = True
        return "_raw"

    def bail_action(self) -> List[str]:
        """The per-message deoptimization: run this message through the
        exact compiled chain instead of the fused body."""
        return ["_bail += 1",
                "results[_i] = _run_one(_chain, m, %d, kwargs)"
                % self.direction,
                "continue"]


def specialize_chain(path: Any, direction: int,
                     chain: Optional[tuple]) -> Optional[Callable]:
    """Generate a fused function for *chain*, or ``None`` when no
    worthwhile prefix is recognized.

    The returned callable has the contract ``spec(msgs, kwargs) ->
    Optional[list]``: ``None`` declines the run (a message is missing a
    validation stamp, or kwargs were passed) and the caller falls back
    to the compiled tier; otherwise the per-message results list is
    returned exactly as :func:`run_compiled_batch` would produce it.
    """
    if chain is None or len(chain) < MIN_PREFIX:
        return None
    frags: List[StageFragment] = []
    for index, (iface, fn, intercept, fn_batch) in enumerate(chain):
        if not intercept:
            break  # bracketing stage: the tail runner recurses through it
        stage = iface.stage
        specializer = _REGISTRY.get(type(stage)) if stage is not None else None
        if specializer is None:
            break
        frag = specializer(stage, iface, fn, fn_batch, direction,
                           terminal=(index == len(chain) - 1))
        if frag is None:
            break
        frags.append(frag)
        if frag.terminal:
            break
    if len(frags) < MIN_PREFIX:
        return None
    if not frags[-1].terminal and len(frags) == len(chain):
        return None  # last stage would forward off the end: wiring bug
    tail = None if frags[-1].terminal else chain[len(frags):]
    return _assemble(path, direction, chain, frags, tail)


def _assemble(path: Any, direction: int, chain: tuple,
              frags: List[StageFragment],
              tail: Optional[tuple]) -> Callable:
    ns: Dict[str, Any] = {"_Msg": Msg, "_run_one": run_compiled,
                          "_chain": chain}
    ctx = GenContext(ns, direction)

    stamps = [s for f in frags for s in f.stamps]
    min_len = sum(f.pop for f in frags)

    # Per-message guard terms: every stamp present and the fixed header
    # region actually there (a hand-stamped runt must decline, not crash
    # differently from the scalar path).
    guard = " and ".join(["_mt.get(%r)" % s for s in stamps]
                         + (["len(m) >= %d" % min_len] if min_len else []))

    batch_prologue: List[str] = []   # once per call (live cost reads)
    body: List[str] = []             # per message, indent-relative lines
    epilogue: List[str] = []

    cost_vars: List[Tuple[StageFragment, str]] = []
    for i, frag in enumerate(frags):
        if frag.cost_expr is not None:
            var = "_cost_%d" % i
            batch_prologue.append("%s = %s" % (var, frag.cost_expr(ctx)))
            cost_vars.append((frag, var))
        else:
            cost_vars.append((frag, ""))

    # --- early, pre-mutation section: bail predicates ------------------
    offset = 0
    for frag in frags:
        ctx.offset = offset
        if frag.bail is not None:
            body.extend(frag.bail(ctx))
        offset += frag.pop

    # --- stamp consumption + cost accumulator --------------------------
    for s in stamps:
        body.append("del meta[%r]" % s)
    body.append("c = meta.get('cost_us', 0.0)")

    # --- per-stage fused bodies ----------------------------------------
    pending = 0
    offset = 0

    def flush() -> None:
        nonlocal pending
        if pending:
            body.append("m.strip(%d)" % pending)
            pending = 0

    for frag, cost_var in cost_vars:
        ctx.offset = offset
        if cost_var:
            body.append("c += %s" % cost_var)
        pending += frag.pop
        offset += frag.pop
        if frag.body is not None:
            flush()
            body.extend(frag.body(ctx))
    if not frags[-1].terminal:
        flush()
        body.append("meta['cost_us'] = c")
        body.append("results[_i] = _run_one(_tail, m, %d, kwargs)"
                    % direction)
        ns["_tail"] = tail

    for frag in frags:
        if frag.epilogue is not None:
            epilogue.extend(frag.epilogue(ctx))

    lines = ["def _specialized(msgs, kwargs):",
             "    if kwargs:",
             "        return None",
             "    for m in msgs:",
             "        _mt = m.meta",
             "        if not (%s):" % guard,
             "            return None",
             "    _n = len(msgs)",
             "    _bail = 0",
             "    results = [None] * _n"]
    lines += ["    " + line for line in batch_prologue]
    lines.append("    for _i, m in enumerate(msgs):")
    lines.append("        meta = m.meta")
    if ctx._needs_raw:
        lines.append("        _raw = m.to_bytes()")
    lines += ["        " + line for line in body]
    if epilogue:
        lines.append("    _live = _n - _bail")
        lines += ["    " + line for line in epilogue]
    lines.append("    return results")

    source = "\n".join(lines)
    code = compile(source, "<specialized path%s %s>"
                   % (getattr(path, "pid", "?"), DIRECTION_NAMES[direction]),
                   "exec")
    exec(code, ns)  # noqa: S102 - the whole point of this module
    fn = ns["_specialized"]
    fn.__specialized_source__ = source
    fn.__specialized_stages__ = len(frags)
    return fn
