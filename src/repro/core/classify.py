"""Packet classification: mapping data to the path that processes it.

Section 3.5: "each Scout router provides a demux operation that maps the
data into a path that can be used to process that data ... Any given
router typically implements only a small portion of the entire
classification process.  If a router cannot make a unique classification
decision, it may ask the next router to refine that decision.  This
continues until either a unique path is found or until it is determined
that no appropriate path exists.  In the latter case the offending data is
simply discarded."

The Scout classifier's requirements (both honored here):

* **efficient enough for peak loads** — the chain is a handful of
  dictionary probes over peeked header bytes, and established flows skip
  it entirely via the :class:`~repro.core.flowcache.FlowCache` consulted
  before the first demux (benchmarked in
  ``benchmarks/bench_path_micro.py`` and
  ``benchmarks/bench_classify_cache.py``; machine-readable numbers land
  in ``benchmarks/results/BENCH_fastpath.json``);
* **relaxed (best-effort) accuracy** — a router may return a path that is
  merely "good enough" (e.g. the short/fat reassembly path for IP
  fragments); the IP router later *reruns* the classifier on the
  reassembled datagram to find the next path.
"""

from __future__ import annotations

from typing import Optional

from .errors import ClassificationError
from .message import Msg
from .path import DELETED, Path
from .router import DemuxResult, Router, Service

#: Refinement-hop cap: a demux cycle is a router bug, not a data property.
MAX_REFINEMENTS = 32


class _Respread:
    """Sentinel: a sticky group's pins were just invalidated; re-classify."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<respread>"


_RESPREAD = _Respread()


def _dispatch_group(group, cached, msg, cache, stats):
    """Resolve a flow-cache hit whose path belongs to a path group.

    Returns the member to use, ``None`` for a discard, or
    :data:`_RESPREAD` when the policy asked for its pins to be dropped
    (the caller re-walks the refinement chain).
    """
    if group.policy.sticky:
        if group.take_respread():
            cache.invalidate_group(group.gid)
            return _RESPREAD
        member = cached  # the pin itself is the policy's placement
    else:
        member = group.dispatch(msg)
        if member is None:
            msg.meta["drop_reason"] = (
                f"path group #{group.gid} has no live member")
            group.note_dispatch_failure()
            if stats is not None:
                stats.dropped += 1
            return None
    if stats is not None:
        stats.classified += 1
        stats.cache_hits += 1
    msg.meta["path"] = member
    observer = member.observer
    if observer is not None:
        observer.on_demux(msg, 1)
    return member


class ClassifierStats:
    """Counters for classification outcomes, used by experiments."""

    __slots__ = ("classified", "dropped", "refinements", "cache_hits")

    def __init__(self) -> None:
        self.classified = 0
        self.dropped = 0
        self.refinements = 0
        self.cache_hits = 0


def classify(router: Router, msg: Msg, service: Optional[Service] = None,
             stats: Optional[ClassifierStats] = None,
             cache=None) -> Optional[Path]:
    """Run the incremental demux chain starting at *router*.

    Returns the path to use, or ``None`` when no appropriate path exists
    (the data is to be discarded; the reason is recorded in
    ``msg.meta["drop_reason"]`` for observability).

    When a *cache* (:class:`~repro.core.flowcache.FlowCache`) is
    supplied it is consulted before the refinement chain — an established
    flow classifies in one probe — and successful chain classifications
    populate it.  The cache itself guarantees it never returns a path
    that is not ESTABLISHED.

    **Multipath dispatch happens here, at the demux boundary.**  When the
    classified path belongs to a :class:`~repro.multipath.PathGroup`, the
    group's selection policy picks the member that actually processes the
    message.  A *sticky* policy pins the flow by inserting the selected
    member into the cache (subsequent packets hit the pin directly, until
    the policy asks for a re-spread and the group's pins are bulk
    invalidated); a non-sticky policy caches the demuxed anchor instead,
    so every packet still classifies in one probe but is re-dispatched
    through the policy.

    The chain runs at interrupt time in Scout; callers that model CPU cost
    account for it separately (see :mod:`repro.sim.cpu`).
    """
    if cache is not None:
        cached = cache.lookup(msg)
        if cached is not None:
            group = cached.group
            if group is not None:
                resolved = _dispatch_group(group, cached, msg, cache, stats)
                if resolved is not _RESPREAD:
                    return resolved
                # fall through: the pins were just invalidated; re-walk
                # the chain so the flow is re-placed by the policy.
            else:
                if stats is not None:
                    stats.classified += 1
                    stats.cache_hits += 1
                msg.meta["path"] = cached
                observer = cached.observer
                if observer is not None:
                    observer.on_demux(msg, 1)
                return cached
    offset = 0
    current: Router = router
    current_service = service
    hops = 1
    for _ in range(MAX_REFINEMENTS):
        result: DemuxResult = current.demux(msg, current_service, offset)
        if result.path is not None:
            chosen = result.path
            group = getattr(chosen, "group", None)
            if group is not None:
                # Demux landed on a group member (typically the anchor
                # holding the port/flow binding): the selection policy
                # decides which member actually serves the message.
                member = group.dispatch(msg)
                if member is None:
                    msg.meta["drop_reason"] = (
                        f"path group #{group.gid} has no live member")
                    group.note_dispatch_failure()
                    if stats is not None:
                        stats.dropped += 1
                    return None
                if cache is not None:
                    # Sticky policies pin the flow to the chosen member;
                    # others cache the demux anchor so later packets hit
                    # in one probe but are still re-dispatched above.
                    cache.insert(msg, member if group.policy.sticky
                                 else chosen)
                chosen = member
            elif getattr(chosen, "state", None) == DELETED:
                # Liveness guard: a demux map entry can outlive its path
                # (e.g. across a watchdog rebuild).  A dead path is no
                # path — treat it as a refinement miss and discard.
                msg.meta["drop_reason"] = (
                    f"{current.name}: stale demux entry for deleted "
                    f"path #{chosen.pid}")
                if stats is not None:
                    stats.dropped += 1
                return None
            if stats is not None:
                stats.classified += 1
            msg.meta["path"] = chosen
            observer = getattr(chosen, "observer", None)
            if observer is not None:
                observer.on_demux(msg, hops)
            if cache is not None and group is None:
                cache.insert(msg, chosen)
            return chosen
        if result.forward is not None:
            offset += result.consumed
            current, current_service = result.forward
            hops += 1
            if stats is not None:
                stats.refinements += 1
            continue
        msg.meta["drop_reason"] = result.reason or f"{current.name}: no path"
        if stats is not None:
            stats.dropped += 1
        return None
    raise ClassificationError(
        f"classification did not converge after {MAX_REFINEMENTS} "
        f"refinements (last router: {current.name})")


def classify_or_raise(router: Router, msg: Msg,
                      service: Optional[Service] = None) -> Path:
    """Like :func:`classify` but raises on discard, for callers that treat
    unclassifiable data as an error (tests, mostly)."""
    path = classify(router, msg, service)
    if path is None:
        raise ClassificationError(msg.meta.get("drop_reason", "no path"))
    return path
