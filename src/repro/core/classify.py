"""Packet classification: mapping data to the path that processes it.

Section 3.5: "each Scout router provides a demux operation that maps the
data into a path that can be used to process that data ... Any given
router typically implements only a small portion of the entire
classification process.  If a router cannot make a unique classification
decision, it may ask the next router to refine that decision.  This
continues until either a unique path is found or until it is determined
that no appropriate path exists.  In the latter case the offending data is
simply discarded."

The Scout classifier's requirements (both honored here):

* **efficient enough for peak loads** — the chain is a handful of
  dictionary probes over peeked header bytes, and established flows skip
  it entirely via the :class:`~repro.core.flowcache.FlowCache` consulted
  before the first demux (benchmarked in
  ``benchmarks/bench_path_micro.py`` and
  ``benchmarks/bench_classify_cache.py``; machine-readable numbers land
  in ``benchmarks/results/BENCH_fastpath.json``);
* **relaxed (best-effort) accuracy** — a router may return a path that is
  merely "good enough" (e.g. the short/fat reassembly path for IP
  fragments); the IP router later *reruns* the classifier on the
  reassembled datagram to find the next path.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

from .errors import ClassificationError
from .message import Msg
from .path import DELETED, Path
from .router import DemuxResult, Router, Service

#: Refinement-hop cap: a demux cycle is a router bug, not a data property.
MAX_REFINEMENTS = 32

#: Decision sources recorded in :class:`ClassifyResult`.
SOURCE_DEMUX = "demux"              # the refinement chain decided
SOURCE_CACHE = "cache"              # a flow-cache probe decided (incl. sticky pins)
SOURCE_GROUP = "group-redispatch"   # a cached group anchor was re-dispatched


class ClassifyResult(NamedTuple):
    """The outcome of one classification decision.

    ``path`` is ``None`` for a discard (the reason is in
    ``msg.meta["drop_reason"]``).  ``source`` says who decided:
    :data:`SOURCE_DEMUX` (the refinement chain ran), :data:`SOURCE_CACHE`
    (a flow-cache probe, including sticky group pins), or
    :data:`SOURCE_GROUP` (a cached group anchor whose selection policy
    re-dispatched the message).  ``run_length`` is 1 for per-message
    classification; :func:`classify_batch` sets it to the length of the
    same-flow run the message belonged to.

    Being a ``NamedTuple``, it unpacks like the plain tuple older
    call sites expect: ``path, source, run = classify_ex(...)``.
    """

    path: Optional[Path]
    source: str = SOURCE_DEMUX
    run_length: int = 1


class _Respread:
    """Sentinel: a sticky group's pins were just invalidated; re-classify."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<respread>"


_RESPREAD = _Respread()


def _dispatch_group(group, cached, msg, cache, stats):
    """Resolve a flow-cache hit whose path belongs to a path group.

    Returns the member to use, ``None`` for a discard, or
    :data:`_RESPREAD` when the policy asked for its pins to be dropped
    (the caller re-walks the refinement chain).
    """
    if group.policy.sticky:
        if group.take_respread():
            cache.invalidate_group(group.gid)
            return _RESPREAD
        member = cached  # the pin itself is the policy's placement
    else:
        member = group.dispatch(msg)
        if member is None:
            msg.meta["drop_reason"] = (
                f"path group #{group.gid} has no live member")
            group.note_dispatch_failure()
            if stats is not None:
                stats.dropped += 1
            return None
    if stats is not None:
        stats.classified += 1
        stats.cache_hits += 1
    msg.meta["path"] = member
    observer = member.observer
    if observer is not None:
        observer.on_demux(msg, 1)
    return member


class ClassifierStats:
    """Counters for classification outcomes, used by experiments."""

    __slots__ = ("classified", "dropped", "refinements", "cache_hits")

    def __init__(self) -> None:
        self.classified = 0
        self.dropped = 0
        self.refinements = 0
        self.cache_hits = 0


def classify_ex(router: Router, msg: Msg, service: Optional[Service] = None,
                stats: Optional[ClassifierStats] = None,
                cache=None) -> ClassifyResult:
    """Run the incremental demux chain starting at *router*.

    This is the canonical classifier; :func:`classify` and
    :func:`classify_or_raise` are path-only shims over it.  Returns a
    :class:`ClassifyResult` whose ``path`` is ``None`` when no
    appropriate path exists (the data is to be discarded; the reason is
    recorded in ``msg.meta["drop_reason"]`` for observability).

    When a *cache* (:class:`~repro.core.flowcache.FlowCache`) is
    supplied it is consulted before the refinement chain — an established
    flow classifies in one probe — and successful chain classifications
    populate it.  The cache itself guarantees it never returns a path
    that is not ESTABLISHED.

    **Multipath dispatch happens here, at the demux boundary.**  When the
    classified path belongs to a :class:`~repro.multipath.PathGroup`, the
    group's selection policy picks the member that actually processes the
    message.  A *sticky* policy pins the flow by inserting the selected
    member into the cache (subsequent packets hit the pin directly, until
    the policy asks for a re-spread and the group's pins are bulk
    invalidated); a non-sticky policy caches the demuxed anchor instead,
    so every packet still classifies in one probe but is re-dispatched
    through the policy.

    The chain runs at interrupt time in Scout; callers that model CPU cost
    account for it separately (see :mod:`repro.sim.cpu`).
    """
    if cache is not None:
        cached = cache.lookup(msg)
        if cached is not None:
            group = cached.group
            if group is not None:
                resolved = _dispatch_group(group, cached, msg, cache, stats)
                if resolved is not _RESPREAD:
                    source = (SOURCE_CACHE if group.policy.sticky
                              else SOURCE_GROUP)
                    return ClassifyResult(resolved, source)
                # fall through: the pins were just invalidated; re-walk
                # the chain so the flow is re-placed by the policy.
            else:
                if stats is not None:
                    stats.classified += 1
                    stats.cache_hits += 1
                msg.meta["path"] = cached
                observer = cached.observer
                if observer is not None:
                    observer.on_demux(msg, 1)
                return ClassifyResult(cached, SOURCE_CACHE)
    offset = 0
    current: Router = router
    current_service = service
    hops = 1
    for _ in range(MAX_REFINEMENTS):
        result: DemuxResult = current.demux(msg, current_service, offset)
        if result.path is not None:
            chosen = result.path
            group = getattr(chosen, "group", None)
            if group is not None:
                # Demux landed on a group member (typically the anchor
                # holding the port/flow binding): the selection policy
                # decides which member actually serves the message.
                member = group.dispatch(msg)
                if member is None:
                    msg.meta["drop_reason"] = (
                        f"path group #{group.gid} has no live member")
                    group.note_dispatch_failure()
                    if stats is not None:
                        stats.dropped += 1
                    return ClassifyResult(None, SOURCE_DEMUX)
                if cache is not None:
                    # Sticky policies pin the flow to the chosen member;
                    # others cache the demux anchor so later packets hit
                    # in one probe but are still re-dispatched above.
                    cache.insert(msg, member if group.policy.sticky
                                 else chosen)
                chosen = member
            elif getattr(chosen, "state", None) == DELETED:
                # Liveness guard: a demux map entry can outlive its path
                # (e.g. across a watchdog rebuild).  A dead path is no
                # path — treat it as a refinement miss and discard.
                msg.meta["drop_reason"] = (
                    f"{current.name}: stale demux entry for deleted "
                    f"path #{chosen.pid}")
                if stats is not None:
                    stats.dropped += 1
                return ClassifyResult(None, SOURCE_DEMUX)
            if stats is not None:
                stats.classified += 1
            msg.meta["path"] = chosen
            observer = getattr(chosen, "observer", None)
            if observer is not None:
                observer.on_demux(msg, hops)
            if cache is not None and group is None:
                cache.insert(msg, chosen)
            return ClassifyResult(chosen, SOURCE_DEMUX)
        if result.forward is not None:
            offset += result.consumed
            current, current_service = result.forward
            hops += 1
            if stats is not None:
                stats.refinements += 1
            continue
        msg.meta["drop_reason"] = result.reason or f"{current.name}: no path"
        if stats is not None:
            stats.dropped += 1
        return ClassifyResult(None, SOURCE_DEMUX)
    raise ClassificationError(
        f"classification did not converge after {MAX_REFINEMENTS} "
        f"refinements (last router: {current.name})")


def classify(router: Router, msg: Msg, service: Optional[Service] = None,
             stats: Optional[ClassifierStats] = None,
             cache=None) -> Optional[Path]:
    """Path-only shim over :func:`classify_ex` (the historical surface).

    Returns the path to use, or ``None`` when no appropriate path exists
    (the data is to be discarded; the reason is recorded in
    ``msg.meta["drop_reason"]``).  Callers that care *how* the decision
    was made — demux chain, flow-cache probe, or group re-dispatch — use
    :func:`classify_ex` and read :class:`ClassifyResult`.
    """
    return classify_ex(router, msg, service, stats, cache).path


def classify_or_raise(router: Router, msg: Msg,
                      service: Optional[Service] = None) -> Path:
    """Like :func:`classify` but raises on discard, for callers that treat
    unclassifiable data as an error (tests, mostly)."""
    path = classify(router, msg, service)
    if path is None:
        raise ClassificationError(msg.meta.get("drop_reason", "no path"))
    return path


def classify_batch(router: Router, msgs: Iterable[Msg],
                   service: Optional[Service] = None,
                   stats: Optional[ClassifierStats] = None,
                   cache=None) -> List[ClassifyResult]:
    """Classify a batch of arrivals, amortizing decisions over runs.

    Consecutive messages sharing a flow-cache key form a *run*: each
    message's key is computed exactly once (to find run boundaries), the
    run head takes the ordinary :func:`classify_ex` walk, and followers
    resolve through :meth:`FlowCache.lookup_key
    <repro.core.flowcache.FlowCache.lookup_key>` with the precomputed
    key — one demux decision covers the whole run.

    **Accounting is exact per message.**  Followers bump the same
    counters a per-message :func:`classify` would (``stats.classified``,
    ``stats.cache_hits``, the cache's hit counter and metric mirror, the
    ``annotate`` hook, and each path observer's ``on_demux``), and
    non-sticky group anchors re-dispatch *every* message through the
    selection policy, so round-robin spreads and drop ledgers are
    indistinguishable from classifying the batch one message at a time.
    A follower that cannot ride the head's decision (no cache, the head
    was discarded, the entry vanished, or a sticky re-spread fired
    mid-run) falls back to its own full walk.

    Returns one :class:`ClassifyResult` per message, in arrival order,
    each carrying the length of the run it belonged to.
    """
    arrivals = list(msgs)
    results: List[ClassifyResult] = []
    n = len(arrivals)
    keys = None
    if cache is not None:
        key_of = cache.key_of
        keys = [key_of(m) for m in arrivals]
    i = 0
    while i < n:
        key = keys[i] if keys is not None else None
        j = i + 1
        if key is not None:
            while j < n and keys[j] == key:
                j += 1
        run = j - i
        head_result = classify_ex(router, arrivals[i], service, stats, cache)
        if run > 1:
            head_result = head_result._replace(run_length=run)
        results.append(head_result)
        for k in range(i + 1, j):
            follower = arrivals[k]
            cached = (cache.lookup_key(key, follower)
                      if head_result.path is not None else None)
            if cached is None:
                # No decision to share (head discarded, entry evicted, or
                # the path died mid-run): full per-message walk.
                results.append(classify_ex(router, follower, service, stats,
                                           cache)._replace(run_length=run))
                continue
            group = cached.group
            if group is not None:
                resolved = _dispatch_group(group, cached, follower, cache,
                                           stats)
                if resolved is _RESPREAD:
                    results.append(classify_ex(
                        router, follower, service, stats,
                        cache)._replace(run_length=run))
                    continue
                source = SOURCE_CACHE if group.policy.sticky else SOURCE_GROUP
                results.append(ClassifyResult(resolved, source, run))
                continue
            if stats is not None:
                stats.classified += 1
                stats.cache_hits += 1
            follower.meta["path"] = cached
            observer = cached.observer
            if observer is not None:
                observer.on_demux(follower, 1)
            results.append(ClassifyResult(cached, SOURCE_CACHE, run))
        i = j
    return results
