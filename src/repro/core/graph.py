"""The router graph: build-time configuration of a Scout system.

"The Scout development environment includes a configuration tool that
translates a router graph into C source code that creates and initializes
the runtime view of a router graph when the system boots.  This
configuration tool checks for and rejects any router graph with cyclic
dependencies." (Section 3.1)

:class:`RouterGraph` is that tool's runtime equivalent: it instantiates
routers (``rCreate``), connects services with type checking, rejects
cyclic *initialization* dependencies (cyclic data-flow edges remain legal,
as the paper allows), computes the initialization partial order from the
``<`` service markers, and runs every router's ``init`` hook in that
order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple, Type

from .errors import ConfigurationError, CyclicDependencyError
from .router import Router, RouterLink, Service, connect
from .spec import SpecFile, parse_spec


class RouterGraph:
    """A set of routers plus the edges connecting their services."""

    def __init__(self) -> None:
        self.routers: Dict[str, Router] = {}
        self.links: List[RouterLink] = []
        self.booted = False
        self._init_order: Optional[List[Router]] = None

    # -- construction ---------------------------------------------------------

    def add(self, router: Router) -> Router:
        """Add *router* to the graph (the runtime side of ``rCreate``)."""
        if self.booted:
            raise ConfigurationError(
                "the router graph is configured at build time; "
                "cannot add routers after boot")
        if router.name in self.routers:
            raise ConfigurationError(f"duplicate router name {router.name!r}")
        self.routers[router.name] = router
        return router

    def router(self, name: str) -> Router:
        try:
            return self.routers[name]
        except KeyError:
            known = ", ".join(sorted(self.routers)) or "(none)"
            raise ConfigurationError(
                f"no router named {name!r}; routers: {known}") from None

    def connect(self, a: str, b: str) -> RouterLink:
        """Connect two services named ``"Router.service"``."""
        if self.booted:
            raise ConfigurationError("cannot add edges after boot")
        link = connect(self._resolve(a), self._resolve(b))
        self.links.append(link)
        return link

    def _resolve(self, dotted: str) -> Service:
        router_name, sep, service_name = dotted.partition(".")
        if not sep:
            raise ConfigurationError(
                f"service reference {dotted!r} must look like Router.service")
        return self.router(router_name).service(service_name)

    # -- validation & boot -------------------------------------------------------

    def init_dependencies(self) -> Dict[str, Set[str]]:
        """Map each router name to the set of names it must wait for.

        A service marked ``<`` requires every router connected through it
        to be initialized first.
        """
        deps: Dict[str, Set[str]] = {name: set() for name in self.routers}
        for router in self.routers.values():
            for service in router.services:
                if not service.init_before:
                    continue
                for peer_router, _peer_service in service.peers():
                    if peer_router.name != router.name:
                        deps[router.name].add(peer_router.name)
        return deps

    def init_order(self) -> List[Router]:
        """Topological initialization order (deterministic; raises
        :class:`CyclicDependencyError` on a cycle)."""
        deps = self.init_dependencies()
        remaining = {name: set(waits) for name, waits in deps.items()}
        order: List[Router] = []
        ready = sorted(name for name, waits in remaining.items() if not waits)
        while ready:
            name = ready.pop(0)
            del remaining[name]
            order.append(self.routers[name])
            newly_ready = []
            for other, waits in remaining.items():
                waits.discard(name)
                if not waits and other not in ready:
                    newly_ready.append(other)
            ready.extend(newly_ready)
            ready.sort()
        if remaining:
            raise CyclicDependencyError(self._find_cycle(deps, set(remaining)))
        return order

    @staticmethod
    def _find_cycle(deps: Dict[str, Set[str]], candidates: Set[str]) -> List[str]:
        """Find one concrete cycle among *candidates* for the error message."""
        for start in sorted(candidates):
            stack: List[str] = []
            on_stack: Set[str] = set()

            def visit(name: str) -> Optional[List[str]]:
                if name in on_stack:
                    return stack[stack.index(name):]
                if name not in candidates:
                    return None
                stack.append(name)
                on_stack.add(name)
                for dep in sorted(deps.get(name, ())):
                    found = visit(dep)
                    if found is not None:
                        return found
                stack.pop()
                on_stack.discard(name)
                return None

            cycle = visit(start)
            if cycle:
                return cycle
        return sorted(candidates)  # fallback: report the whole SCC set

    def boot(self) -> List[Router]:
        """Validate the graph and initialize every router in partial order.

        Returns the initialization order actually used.
        """
        order = self.init_order()  # raises on cycles before any init runs
        for router in order:
            router.init()
        self.booted = True
        self._init_order = order
        return order

    # -- introspection ---------------------------------------------------------

    def edges(self) -> List[Tuple[str, str, str, str]]:
        """Edges as ``(router_a, service_a, router_b, service_b)`` tuples."""
        return [
            (link.a.router.name, link.a.name, link.b.router.name, link.b.name)
            for link in self.links
        ]

    def to_dot(self) -> str:
        """Render the graph in Graphviz dot format (documentation aid)."""
        lines = ["digraph router_graph {", "  rankdir=BT;"]
        for name in sorted(self.routers):
            lines.append(f'  "{name}" [shape=box];')
        for a_router, a_service, b_router, b_service in self.edges():
            lines.append(
                f'  "{a_router}" -> "{b_router}" '
                f'[taillabel="{a_service}", headlabel="{b_service}", dir=none];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (f"<RouterGraph routers={len(self.routers)} "
                f"links={len(self.links)} booted={self.booted}>")


class RouterRegistry:
    """Maps spec-file class names to Python router classes.

    The spec loader looks implementation classes up here; subsystems
    register their routers at import time via :func:`register_router`.
    """

    _classes: Dict[str, Type[Router]] = {}

    @classmethod
    def register(cls, klass: Type[Router],
                 name: Optional[str] = None) -> Type[Router]:
        cls._classes[name or klass.__name__] = klass
        return klass

    @classmethod
    def lookup(cls, name: str) -> Type[Router]:
        try:
            return cls._classes[name]
        except KeyError:
            known = ", ".join(sorted(cls._classes)) or "(none)"
            raise ConfigurationError(
                f"no registered router class {name!r}; known: {known}"
            ) from None

    @classmethod
    def known(cls) -> Dict[str, Type[Router]]:
        return dict(cls._classes)


def register_router(name: Optional[str] = None) -> Callable[[Type[Router]], Type[Router]]:
    """Class decorator registering a router implementation by name."""

    def decorate(klass: Type[Router]) -> Type[Router]:
        return RouterRegistry.register(klass, name)

    return decorate


def build_graph(spec: Any,
                overrides: Optional[Dict[str, Dict[str, Any]]] = None,
                boot: bool = True) -> RouterGraph:
    """Build a :class:`RouterGraph` from a spec file.

    Parameters
    ----------
    spec:
        A :class:`SpecFile` or spec-language source text.
    overrides:
        Optional per-router constructor-parameter overrides, merged on top
        of each block's ``params`` clause — how a test injects a simulated
        device where the spec names a real one.
    boot:
        When true (default), validate and initialize the graph.
    """
    if isinstance(spec, str):
        spec = parse_spec(spec)
    if not isinstance(spec, SpecFile):
        raise TypeError("spec must be SpecFile or spec-language text")
    graph = RouterGraph()
    for block in spec.routers:
        klass = RouterRegistry.lookup(block.class_name)
        params = dict(block.params)
        if overrides and block.name in overrides:
            params.update(overrides[block.name])
        router = klass(block.name, **params)
        if block.services:
            _check_declared_services(router, block.services)
        graph.add(router)
    for conn in spec.connections:
        graph.connect(f"{conn.a_router}.{conn.a_service}",
                      f"{conn.b_router}.{conn.b_service}")
    if boot:
        graph.boot()
    return graph


def _check_declared_services(router: Router, declared: Iterable[str]) -> None:
    """Verify a spec block's service list matches the implementation class.

    The spec file is documentation as well as configuration; letting it
    drift from the code would make it lie.
    """
    from .router import ServiceDecl

    for decl_text in declared:
        decl = ServiceDecl.parse(decl_text)
        try:
            service = router.service(decl.name)
        except ConfigurationError:
            raise ConfigurationError(
                f"spec declares service {decl.name!r} that router class "
                f"{type(router).__name__} does not implement") from None
        if service.stype.name != decl.type_name:
            raise ConfigurationError(
                f"spec declares {router.name}.{decl.name}:{decl.type_name} "
                f"but the implementation has type {service.stype.name}")
