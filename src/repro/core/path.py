"""The path object (the paper's ``struct Path``).

A path bundles: the stage sequence with chained interfaces, the four
decoupling queues, the attribute set recording the invariants it was
created with (plus any state stages share anonymously), the ``wakeup``
scheduling callback, and — because the whole point of paths is early,
global knowledge — the per-path resource accounting that admission control
and the EDF deadline computation consume.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from .attributes import Attrs
from .errors import PathStateError
from .queues import BWD_IN, BWD_OUT, FWD_IN, FWD_OUT, PathQueue, QUEUE_ROLE_NAMES
from .stage import BWD, FWD, Stage, run_compiled, run_compiled_batch

_pid_counter = itertools.count(1)

#: Meta key traversal probes read the per-message cost account from.
#: Matches ``repro.net.common.COST_KEY`` (core cannot import net).
_COST_KEY = "cost_us"

#: Path lifecycle states.
CREATING, ESTABLISHED, DELETED = "creating", "established", "deleted"


class PathStats:
    """Per-path resource accounting.

    "As all memory allocation requests are performed on behalf of a given
    path, it is a simple matter of accounting to decide whether a newly
    created path is admissible" (Section 4.4) — and likewise for CPU:
    "it is easy to compute the execution time spent per path".
    """

    __slots__ = ("cycles", "messages_fwd", "messages_bwd", "mem_bytes",
                 "mem_high_watermark", "avg_proc_time_us", "_proc_samples",
                 "drops", "drop_reasons", "progress")

    def __init__(self) -> None:
        self.cycles = 0.0
        self.messages_fwd = 0
        self.messages_bwd = 0
        self.mem_bytes = 0
        self.mem_high_watermark = 0
        self.avg_proc_time_us = 0.0
        self._proc_samples = 0
        #: Total messages discarded on behalf of this path, for any reason.
        self.drops = 0
        #: Discards broken down by category (e.g. "inq_overflow",
        #: "fault_isolation", "early_discard", "fault_injection").
        self.drop_reasons: Dict[str, int] = {}
        #: Monotonic useful-work counter: bumped whenever the path delivers
        #: something to the outside world that is not an output-queue
        #: deposit (wire transmission, inline service).  The watchdog reads
        #: this plus the output queues' enqueued counts as its heartbeat.
        self.progress = 0

    def charge_cycles(self, cycles: float) -> None:
        self.cycles += cycles

    def charge_memory(self, nbytes: int) -> None:
        self.mem_bytes += nbytes
        if self.mem_bytes > self.mem_high_watermark:
            self.mem_high_watermark = self.mem_bytes

    def release_memory(self, nbytes: int) -> None:
        self.mem_bytes = max(0, self.mem_bytes - nbytes)

    def record_drop(self, category: str) -> None:
        self.drops += 1
        self.drop_reasons[category] = self.drop_reasons.get(category, 0) + 1

    def record_proc_time(self, micros: float) -> None:
        """Exponentially weighted average packet processing time — what the
        Section 4.2 measurement transformation maintains."""
        self._proc_samples += 1
        if self._proc_samples == 1:
            self.avg_proc_time_us = micros
        else:
            self.avg_proc_time_us += 0.125 * (micros - self.avg_proc_time_us)


class Path:
    """A live path through the router graph."""

    #: Modeled C footprint (Section 3.6: "the path object itself is about
    #: 300 bytes"): two stage pointers, pid, wakeup pointer, four queue
    #: headers (~48 B each), and the attribute set header.
    MODELED_BYTES = 2 * 8 + 8 + 8 + 4 * 48 + 64

    def __init__(self, attrs: Optional[Attrs] = None,
                 queue_lengths: Optional[Dict[int, Optional[int]]] = None):
        self.pid = next(_pid_counter)
        self.attrs = attrs if attrs is not None else Attrs()
        self.stages: List[Stage] = []
        self.state = CREATING
        self.stats = PathStats()
        #: Observability hook (a :class:`~repro.observe.PathObserver`),
        #: installed at path-create time when the path was created with a
        #: truthy ``PA_TRACE`` attribute.  ``None`` — the default — keeps
        #: every hot path to a single attribute test.
        self.observer: Optional[Any] = None
        #: Scheduling hook: "a path can set the wakeup function pointer to
        #: request that a specific function gets executed when a thread t
        #: is awakened to execute in a path p" (Section 3.2).
        self.wakeup: Optional[Callable[["Path", Any], None]] = None
        #: Compiled fast-path state (Section 4.1's "function pointers in
        #: the interfaces can be updated to point to this optimized code"
        #: taken one step further: the whole chain is flattened into one
        #: tuple executed by a tight loop).  ``chain_generation`` is
        #: bumped by ``Stage.set_deliver``/``wrap_deliver``; a mismatch
        #: with ``_compiled_gen`` triggers transparent recompilation.
        self.chain_generation = 0
        self._compiled: List[Optional[tuple]] = [None, None]
        self._compiled_gen = -1
        #: Third execution tier (interpreted -> compiled -> specialized):
        #: when ``specialize`` is set (path_create's ``PA_SPECIALIZE`` /
        #: ``specialize=`` / ``REPRO_SPECIALIZE`` resolution), each
        #: compiled chain is additionally handed to
        #: :func:`repro.core.specialize.specialize_chain`, which may
        #: ``exec``-generate one fused function for the whole recognized
        #: stage prefix.  The slots are rebuilt by :meth:`compile_chains`,
        #: so the same ``chain_generation`` mismatch that recompiles the
        #: chain also discards a stale specialized function — interposition
        #: deoptimizes before the next message.  ``interpret_only`` forces
        #: tier 0 (pointer-chase recursion) regardless; the differential
        #: harness uses it to pin tiers against each other.
        self.specialize = False
        self.interpret_only = False
        self._specialized: List[Optional[Callable]] = [None, None]
        #: Messages whose traversal ran entirely inside a generated
        #: function (kept off ``PathStats`` so the books stay structurally
        #: identical across tiers).
        self.specialized_msgs = 0
        #: Per-direction traversal probes: ``probe(msg, elapsed_us)``
        #: called after each traversal with the cost the traversal
        #: accumulated on the message's account.  Unlike a
        #: ``wrap_deliver`` interposition this observes at the *path*
        #: boundary, so it composes with every execution tier — the
        #: Section 4.2 proc-time probe uses it without forcing the chain
        #: back to interpretation.
        self._probes: List[List[Callable[[Any, float], None]]] = [[], []]
        #: Flow caches holding entries that point at this path; populated
        #: by :meth:`register_flow_cache`, purged synchronously by
        #: :meth:`delete` so no cache can ever return a deleted path.
        self._flow_caches: List[Any] = []
        #: Multipath membership (a :class:`~repro.multipath.PathGroup`),
        #: or ``None`` for the common single-path case.  The classifier
        #: consults this at the demux boundary: a demux decision landing
        #: on any group member is re-dispatched through the group's
        #: selection policy.  ``group_id`` survives long enough for flow
        #: caches to index pinned entries by group even while membership
        #: is being torn down.
        self.group: Optional[Any] = None
        self.group_id: Optional[int] = None
        #: Teardown callbacks, run (once, in registration order) at the
        #: end of :meth:`delete` — after stages are destroyed and queues
        #: drained, so a hook that re-binds a demux port or returns an
        #: admission grant observes the fully-released state.
        self._delete_hooks: List[Callable[["Path"], None]] = []
        lengths = queue_lengths or {}
        self.q: List[PathQueue] = [
            PathQueue(maxlen=lengths.get(role, 32),
                      name=f"path{self.pid}.{QUEUE_ROLE_NAMES[role]}")
            for role in (FWD_IN, FWD_OUT, BWD_IN, BWD_OUT)
        ]

    # -- structural accessors ---------------------------------------------------

    @property
    def end(self) -> List[Optional[Stage]]:
        """The paper's ``Stage end[2]``: the two extreme stages."""
        if not self.stages:
            return [None, None]
        return [self.stages[0], self.stages[-1]]

    def __len__(self) -> int:
        """Path length = number of stages ("length" in Section 2.5)."""
        return len(self.stages)

    def stage_of(self, router_name: str) -> Stage:
        """Return the (first) stage contributed by the named router."""
        for stage in self.stages:
            if stage.router.name == router_name:
                return stage
        raise KeyError(f"path {self.pid} has no stage from router {router_name!r}")

    def routers(self) -> List[str]:
        """Router names along the path, in creation (FWD) order."""
        return [stage.router.name for stage in self.stages]

    # -- queues ---------------------------------------------------------------------

    def input_queue(self, direction: int) -> PathQueue:
        """The queue messages wait on before traversing in *direction*."""
        return self.q[FWD_IN] if direction == FWD else self.q[BWD_IN]

    def output_queue(self, direction: int) -> PathQueue:
        """The queue messages land on after traversing in *direction*."""
        return self.q[FWD_OUT] if direction == FWD else self.q[BWD_OUT]

    # -- construction (used by path_create) ---------------------------------------------

    def _append_stage(self, stage: Stage) -> None:
        if self.state != CREATING:
            raise PathStateError(
                f"cannot extend path {self.pid} in state {self.state}")
        stage.path = self
        self.stages.append(stage)

    def _link_interfaces(self) -> None:
        """Chain every stage's interfaces (phase 2 of path creation).

        Forward chain: stage[k].end[FWD].next -> stage[k+1].end[FWD].
        Backward chain: stage[k].end[BWD].next -> stage[k-1].end[BWD].
        Back pointers connect each interface to "the next interface in the
        opposite direction": turning a FWD-traveling message around at
        stage k resumes BWD processing at stage k-1.
        """
        for index, stage in enumerate(self.stages):
            fwd_iface, bwd_iface = stage.end[FWD], stage.end[BWD]
            after = self.stages[index + 1] if index + 1 < len(self.stages) else None
            before = self.stages[index - 1] if index > 0 else None
            fwd_iface.next = after.end[FWD] if after else None
            bwd_iface.next = before.end[BWD] if before else None
            fwd_iface.back = before.end[BWD] if before else None
            bwd_iface.back = after.end[FWD] if after else None

    def _establish(self) -> None:
        """Run every stage's establish hook (phase 3), then go live."""
        for stage in self.stages:
            stage.establish(self.attrs)
        self.state = ESTABLISHED

    # -- execution -----------------------------------------------------------------------

    def entry_iface(self, direction: int):
        """The first interface a message traverses in *direction*."""
        if not self.stages:
            raise PathStateError(f"path {self.pid} has no stages")
        stage = self.stages[0] if direction == FWD else self.stages[-1]
        return stage.end[direction]

    # -- compiled fast path ----------------------------------------------------

    def compile_chains(self) -> None:
        """Flatten both directions' interface chains into precomputed
        ``((iface, deliver_fn), ...)`` tuples (phase 4's follow-up: after
        the transformation fixpoint settles the function pointers, the
        pointer chase itself is compiled away).  Either direction may be
        uncompilable (``None``) — delivery then falls back to recursion.
        """
        self._compiled = [self._compile_direction(FWD),
                          self._compile_direction(BWD)]
        if self.specialize and self.observer is None:
            from .specialize import specialize_chain
            self._specialized = [
                specialize_chain(self, FWD, self._compiled[FWD]),
                specialize_chain(self, BWD, self._compiled[BWD])]
        else:
            self._specialized = [None, None]
        self._compiled_gen = self.chain_generation

    def _compile_direction(self, direction: int) -> Optional[tuple]:
        if not self.stages:
            return None
        chain = []
        seen = set()
        iface = self.entry_iface(direction)
        while iface is not None:
            if id(iface) in seen:
                return None  # cyclic wiring: keep the pointer chase
            seen.add(id(iface))
            fn = getattr(iface, "deliver", None)
            if fn is None:
                return None  # a gap in the chain: uncompilable
            if getattr(fn, "_brackets_downstream", False):
                # This function holds the rest of the traversal inside
                # its dynamic extent (fault containment, whole-chain
                # probes) — flattening stops here; it recurses onward.
                if not chain:
                    return None  # entry brackets everything: plain recursion
                chain.append((iface, fn, False, None))
                return tuple(chain)
            stage = iface.stage
            fn_batch = stage.deliver_batch_fn(direction) \
                if stage is not None else None
            chain.append((iface, fn, True, fn_batch))
            iface = iface.next
        return tuple(chain)

    def deliver(self, msg: Any, direction: int = FWD, **kwargs: Any) -> Any:
        """Inject *msg* at the path's entry for *direction* and process it.

        This is the straight-line evaluation of g(m, d): each stage's
        deliver function processes and explicitly forwards.  Generalized
        processing (absorb / turn around / spontaneous messages) happens
        naturally because stages control forwarding themselves.
        """
        if self.state == DELETED:
            raise PathStateError(f"path {self.pid} has been deleted")
        if direction == FWD:
            self.stats.messages_fwd += 1
        else:
            self.stats.messages_bwd += 1
        probes = self._probes[direction]
        if probes:
            before = msg.meta.get(_COST_KEY, 0.0)
            result = self._traverse_one(msg, direction, kwargs)
            elapsed = msg.meta.get(_COST_KEY, 0.0) - before
            for probe in probes:
                probe(msg, elapsed)
            return result
        return self._traverse_one(msg, direction, kwargs)

    def _traverse_one(self, msg: Any, direction: int, kwargs: dict) -> Any:
        observer = self.observer
        if observer is None and not self.interpret_only:
            # The tiered fast path: a generated per-path function when
            # one applies, else one tuple walk instead of a
            # pointer-chasing recursion.  Observed paths keep the
            # recursive route so stage spans nest exactly as before.
            if self._compiled_gen != self.chain_generation:
                self.compile_chains()
            spec = self._specialized[direction]
            if spec is not None:
                out = spec((msg,), kwargs)
                if out is not None:
                    self.specialized_msgs += 1
                    return out[0]
            chain = self._compiled[direction]
            if chain is not None:
                return run_compiled(chain, msg, direction, kwargs)
        if observer is None:
            iface = self.entry_iface(direction)
            return iface.deliver(iface, msg, direction, **kwargs)
        iface = self.entry_iface(direction)
        token = observer.begin_traversal(msg, direction)
        try:
            return iface.deliver(iface, msg, direction, **kwargs)
        finally:
            observer.end_traversal(token)

    def deliver_batch(self, msgs: Any, direction: int = FWD,
                      **kwargs: Any) -> List[Any]:
        """Deliver a whole run of messages (a ``MsgBatch`` or any
        iterable of messages) through the path in *direction*.

        The per-path books stay exact per message — the message counters
        advance by the batch length, every stage still charges and drops
        per message — but the dispatch bookkeeping around the traversal
        (state check, compile check, trampoline setup) is paid **once per
        batch**.  Returns the per-message traversal results in order.

        Exactness fallback rules (DESIGN.md §13):

        * an *observed* path (``PA_TRACE``) traverses per message so the
          recorded spans nest exactly as they would unbatched;
        * an uncompilable direction falls back to per-message recursion;
        * a bracketing stage inside the compiled chain recurses from that
          stage on, per message (handled by ``run_compiled_batch``).
        """
        if self.state == DELETED:
            raise PathStateError(f"path {self.pid} has been deleted")
        batch = list(msgs)
        count = len(batch)
        if direction == FWD:
            self.stats.messages_fwd += count
        else:
            self.stats.messages_bwd += count
        if not count:
            return []
        probes = self._probes[direction]
        if probes:
            befores = [msg.meta.get(_COST_KEY, 0.0) for msg in batch]
            results = self._traverse_batch(batch, count, direction, kwargs)
            for msg, before in zip(batch, befores):
                elapsed = msg.meta.get(_COST_KEY, 0.0) - before
                for probe in probes:
                    probe(msg, elapsed)
            return results
        return self._traverse_batch(batch, count, direction, kwargs)

    def _traverse_batch(self, batch: List[Any], count: int, direction: int,
                        kwargs: dict) -> List[Any]:
        observer = self.observer
        if observer is None and not self.interpret_only:
            if self._compiled_gen != self.chain_generation:
                self.compile_chains()
            spec = self._specialized[direction]
            if spec is not None:
                out = spec(batch, kwargs)
                if out is not None:
                    self.specialized_msgs += count
                    return out
            chain = self._compiled[direction]
            if chain is not None:
                return run_compiled_batch(chain, batch, direction, kwargs)
        if observer is None:
            iface = self.entry_iface(direction)
            return [iface.deliver(iface, msg, direction, **kwargs)
                    for msg in batch]
        # Observed paths keep the recursive per-message route so stage
        # spans stay exact per message — batching never blurs the trace.
        iface = self.entry_iface(direction)
        results = []
        for msg in batch:
            token = observer.begin_traversal(msg, direction)
            try:
                results.append(iface.deliver(iface, msg, direction,
                                             **kwargs))
            finally:
                observer.end_traversal(token)
        return results

    def add_traversal_probe(self, direction: int,
                            probe: Callable[[Any, float], None]) -> None:
        """Attach ``probe(msg, elapsed_us)`` to every traversal in
        *direction*.

        *elapsed_us* is the cost the traversal accumulated on the
        message's own account (its ``cost_us`` meta delta).  Probes fire
        after the traversal completes, outside the stage chain, so they
        never change what the chain compiles — or specializes — to.
        """
        self._probes[direction].append(probe)

    def inject_at(self, stage: Stage, msg: Any, direction: int,
                  **kwargs: Any) -> Any:
        """Inject *msg* mid-path at *stage* (Section 2.4.2's loosened rule:
        "a message may now be injected at any one of these sub-functions").

        A retransmission timer firing inside MFLOW uses this to create a
        message spontaneously inside the path.
        """
        if stage.path is not self:
            raise PathStateError(f"{stage!r} does not belong to path {self.pid}")
        iface = stage.end[direction]
        observer = self.observer
        if observer is None:
            return iface.deliver(iface, msg, direction, **kwargs)
        token = observer.begin_injection(msg, direction, stage.router.name)
        try:
            return iface.deliver(iface, msg, direction, **kwargs)
        finally:
            observer.end_traversal(token)

    # -- drop / progress accounting ---------------------------------------------------------

    def note_drop(self, msg: Any, reason: str, category: str = "drop") -> None:
        """Record that *msg* was discarded on behalf of this path.

        Every discard site — classification failure, queue overflow, fault
        isolation, early discard, fault injection — funnels through here so
        drop accounting is uniform: ``msg.meta["drop_reason"]`` explains the
        individual message, :attr:`PathStats.drops` and
        :attr:`PathStats.drop_reasons` aggregate per path.
        """
        meta = getattr(msg, "meta", None)
        if meta is not None:
            meta["drop_reason"] = reason
        self.stats.record_drop(category)
        if self.observer is not None:
            self.observer.on_drop(msg, reason, category)

    def charge_cycles(self, cycles: float) -> None:
        """Charge CPU cycles to this path's account (the scheduler's
        compute hook), mirrored into the metrics layer when observed."""
        self.stats.charge_cycles(cycles)
        if self.observer is not None:
            self.observer.on_cycles(cycles)

    def register_flow_cache(self, cache: Any) -> None:
        """Record that *cache* holds entries mapping to this path, so
        :meth:`delete` can purge them synchronously (a flow cache must
        never hand out a deleted path)."""
        if cache not in self._flow_caches:
            self._flow_caches.append(cache)

    def purge_flow_caches(self) -> int:
        """Drop every flow-cache entry pointing at this path *without*
        deleting it.  Path pools call this when parking a path: an idle
        pooled path is still ESTABLISHED, so only an explicit purge stops
        the caches from classifying live traffic onto it.  Returns how
        many entries were removed."""
        removed = 0
        for cache in self._flow_caches:
            removed += cache.invalidate_path(self)
        self._flow_caches.clear()
        return removed

    def add_delete_hook(self, hook: Callable[["Path"], None]) -> None:
        """Register ``hook(path)`` to run when this path is deleted.

        Hooks fire exactly once, at the end of :meth:`delete`, in
        registration order.  They are how the layers that *hold* paths —
        admission control (grant reclaim), path pools (drop the pooled
        entry), path groups (membership removal + demux re-binding) —
        observe teardown without the core importing any of them.
        """
        if hook not in self._delete_hooks:
            self._delete_hooks.append(hook)

    def note_progress(self) -> None:
        """Record useful work that does not land on an output queue (wire
        transmission, inline service).  Feeds the watchdog heartbeat."""
        self.stats.progress += 1

    def progress_signature(self) -> int:
        """Monotonic useful-output counter the watchdog samples: output
        queue deposits plus explicit progress marks.  Dropped messages
        deliberately do not count — a path shedding 100% of its input is
        not making progress."""
        return (self.q[FWD_OUT].enqueued + self.q[BWD_OUT].enqueued
                + self.stats.progress)

    def demand_signature(self) -> int:
        """Monotonic offered-work counter: everything ever enqueued on the
        input queues.  Demand advancing while the progress signature stays
        flat is what the watchdog reads as a stall."""
        return self.q[FWD_IN].enqueued + self.q[BWD_IN].enqueued

    # -- lifecycle --------------------------------------------------------------------------

    def delete(self, drop_category: str = "path_teardown") -> None:
        """Destroy the path: run stage destroy hooks in reverse order and
        drop queued work.

        Every message still queued is routed through :meth:`note_drop`
        under *drop_category* (the watchdog passes ``"watchdog_rebuild"``)
        so drop accounting stays consistent across teardown: per-path drop
        totals match queue drop totals and observers close any open
        queue-wait spans instead of leaking them.
        """
        if self.state == DELETED:
            return
        # Purge flow-cache entries first: nothing may classify onto a
        # path whose stages are mid-teardown.
        for cache in self._flow_caches:
            cache.invalidate_path(self)
        self._flow_caches.clear()
        for stage in reversed(self.stages):
            stage.destroy()
        for queue in self.q:
            for item in queue.drain(reason=drop_category):
                self.note_drop(item, f"queued message discarded: "
                                     f"{drop_category}", drop_category)
        self.state = DELETED
        # Teardown hooks run last: ports and sinks are released, so a
        # hook re-binding a demux entry to a surviving group member (or
        # returning an admission grant) sees the final state.
        hooks, self._delete_hooks = self._delete_hooks, []
        for hook in hooks:
            hook(self)

    # -- accounting ----------------------------------------------------------------------------

    def modeled_size(self) -> int:
        """Modeled byte footprint: path object plus all stages+interfaces.

        Reproduces the Section 3.6 claim that a path costs ~300 bytes plus
        ~150 bytes per stage.
        """
        return self.MODELED_BYTES + sum(s.modeled_size() for s in self.stages)

    def __repr__(self) -> str:
        chain = "->".join(self.routers()) or "(empty)"
        return f"<Path #{self.pid} {chain} [{self.state}]>"
