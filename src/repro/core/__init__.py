"""The Scout path architecture: the paper's primary contribution.

This package implements Sections 2 and 3 of *Making Paths Explicit in the
Scout Operating System*: routers and services, the spec-file configuration
language, the router graph with its initialization partial order, path
objects built from stages and chained interfaces, four-phase path creation
with transformation rules, and incremental packet classification.
"""

from .attributes import (
    PA_AVG_PROC_TIME,
    PA_AVG_RTT,
    PA_BATCH,
    PA_FRAME_RATE,
    PA_INQ_LEN,
    PA_MEM_BUDGET,
    PA_NET_PARTICIPANTS,
    PA_OUTQ_LEN,
    PA_PATHNAME,
    PA_PROTID,
    PA_SCHED_POLICY,
    PA_SCHED_PRIORITY,
    PA_SPECIALIZE,
    PA_TRACE,
    Attrs,
    as_attrs,
)
from .classify import (
    SOURCE_CACHE,
    SOURCE_DEMUX,
    SOURCE_GROUP,
    ClassifierStats,
    ClassifyResult,
    classify,
    classify_batch,
    classify_ex,
    classify_or_raise,
)
from .errors import (
    AdmissionError,
    ClassificationError,
    ConfigurationError,
    CyclicDependencyError,
    PathCreationError,
    PathStateError,
    QueueFullError,
    RoutingError,
    ScoutError,
    ServiceTypeError,
    SpecSyntaxError,
)
from .flowcache import FlowCache, flow_key, flow_key_frame, flow_key_ipv4_udp
from .graph import RouterGraph, RouterRegistry, build_graph, register_router
from .interfaces import (
    FsIface,
    Iface,
    NetIface,
    NsIface,
    RtNetIface,
    ServiceType,
    WinIface,
    iface_satisfies,
)
from .message import Msg, MsgBatch
from .path import CREATING, DELETED, ESTABLISHED, Path, PathStats
from .path_create import MAX_PATH_LENGTH, path_create, path_delete
from .queues import (
    BWD_IN,
    BWD_OUT,
    FWD_IN,
    FWD_OUT,
    DeadlineOrderedQueue,
    LifoPathQueue,
    PathQueue,
)
from .router import DemuxResult, NextHop, Router, RouterLink, Service, ServiceDecl, connect
from .spec import Connection, RouterSpec, SpecFile, format_spec, parse_spec
from .stage import (
    BWD,
    FWD,
    Stage,
    brackets_downstream,
    forward,
    opposite,
    propagate_bracket,
    turn_around,
)
from .transform import TransformRegistry, TransformRule, all_of, has_attr, traverses

__all__ = [
    "Attrs", "as_attrs",
    "PA_NET_PARTICIPANTS", "PA_PATHNAME", "PA_PROTID", "PA_SCHED_POLICY",
    "PA_SCHED_PRIORITY", "PA_FRAME_RATE", "PA_INQ_LEN", "PA_OUTQ_LEN",
    "PA_MEM_BUDGET", "PA_AVG_PROC_TIME", "PA_AVG_RTT", "PA_TRACE",
    "PA_BATCH", "PA_SPECIALIZE",
    "Msg", "MsgBatch",
    "Iface", "NetIface", "RtNetIface", "NsIface", "WinIface", "FsIface",
    "ServiceType", "iface_satisfies",
    "Router", "Service", "ServiceDecl", "RouterLink", "NextHop",
    "DemuxResult", "connect",
    "RouterGraph", "RouterRegistry", "build_graph", "register_router",
    "SpecFile", "RouterSpec", "Connection", "parse_spec", "format_spec",
    "Stage", "FWD", "BWD", "opposite", "forward", "turn_around",
    "brackets_downstream", "propagate_bracket",
    "Path", "PathStats", "CREATING", "ESTABLISHED", "DELETED",
    "path_create", "path_delete", "MAX_PATH_LENGTH",
    "PathQueue", "LifoPathQueue", "DeadlineOrderedQueue",
    "FWD_IN", "FWD_OUT", "BWD_IN", "BWD_OUT",
    "TransformRegistry", "TransformRule", "traverses", "has_attr", "all_of",
    "classify", "classify_ex", "classify_batch", "classify_or_raise",
    "ClassifierStats", "ClassifyResult",
    "SOURCE_DEMUX", "SOURCE_CACHE", "SOURCE_GROUP",
    "FlowCache", "flow_key", "flow_key_frame", "flow_key_ipv4_udp",
    "ScoutError", "ConfigurationError", "CyclicDependencyError",
    "ServiceTypeError", "SpecSyntaxError", "PathCreationError",
    "RoutingError", "ClassificationError", "PathStateError",
    "QueueFullError", "AdmissionError",
]
