"""Routers, services, and router-graph edges.

Section 3.1 of the paper: "routers are the unit of program development in
Scout.  A router implements some functionality such as the IP protocol, the
MPEG decompression algorithm, or a driver for a particular SCSI adapter.  A
router implements one or more services that can be used by other
higher-level routers."

At runtime a router is the paper's ``struct Router``: a name, an ``init``
function, a ``createStage`` function, a ``demux`` function, and per-service
link lists.  Python routers subclass :class:`Router` and override the three
behaviour hooks; the service list is declared as class data (mirroring the
``service = {name:type, ...}`` clause of a spec file) or injected by the
spec-file loader.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .attributes import Attrs
from .errors import ConfigurationError, ServiceTypeError
from .interfaces import ServiceType
from .message import Msg


class ServiceDecl:
    """A declared service: ``name:type`` plus the optional ``<`` marker.

    The marker means "the routers connected to that service must be
    initialized before this router can be initialized".
    """

    __slots__ = ("name", "type_name", "init_before")

    def __init__(self, name: str, type_name: str, init_before: bool = False):
        self.name = name
        self.type_name = type_name
        self.init_before = init_before

    @classmethod
    def parse(cls, text: str) -> "ServiceDecl":
        """Parse a ``[<]name:type`` declaration string."""
        text = text.strip()
        init_before = text.startswith("<")
        if init_before:
            text = text[1:].strip()
        name, sep, type_name = text.partition(":")
        if not sep or not name.strip() or not type_name.strip():
            raise ConfigurationError(f"malformed service declaration {text!r}")
        return cls(name.strip(), type_name.strip(), init_before)

    def __repr__(self) -> str:
        marker = "<" if self.init_before else ""
        return f"ServiceDecl({marker}{self.name}:{self.type_name})"


class Service:
    """A service instance on a live router."""

    __slots__ = ("router", "index", "name", "stype", "init_before", "links")

    def __init__(self, router: "Router", index: int, name: str,
                 stype: ServiceType, init_before: bool = False):
        self.router = router
        self.index = index
        self.name = name
        self.stype = stype
        self.init_before = init_before
        self.links: List[RouterLink] = []

    @property
    def connection_count(self) -> int:
        """How many times this service has been connected (the paper's
        ``int c[]`` argument to ``rCreate``)."""
        return len(self.links)

    def sole_link(self) -> "RouterLink":
        """Return the single link on this service.

        Most protocol services are connected exactly once (IP's ``down``
        to ETH's ``up``); a router that assumes so uses this accessor,
        which fails loudly when the assumption is violated.
        """
        if len(self.links) != 1:
            raise ConfigurationError(
                f"service {self.router.name}.{self.name} has "
                f"{len(self.links)} links, expected exactly 1"
            )
        return self.links[0]

    def peers(self) -> List[Tuple["Router", "Service"]]:
        """All (router, service) pairs connected to this service."""
        return [link.peer_of(self) for link in self.links]

    def __repr__(self) -> str:
        return f"<Service {self.router.name}.{self.name}:{self.stype.name}>"


class RouterLink:
    """An edge in the router graph connecting two services."""

    __slots__ = ("a", "b")

    def __init__(self, a: Service, b: Service):
        self.a = a
        self.b = b

    def peer_of(self, side: Union[Service, "Router"]) -> Tuple["Router", Service]:
        """Return the (router, service) on the other end from *side*."""
        if isinstance(side, Router):
            if self.a.router is side:
                return self.b.router, self.b
            if self.b.router is side:
                return self.a.router, self.a
            raise ValueError(f"{side!r} is not an endpoint of {self!r}")
        if side is self.a:
            return self.b.router, self.b
        if side is self.b:
            return self.a.router, self.a
        raise ValueError(f"{side!r} is not an endpoint of {self!r}")

    def __repr__(self) -> str:
        return (f"<RouterLink {self.a.router.name}.{self.a.name} <-> "
                f"{self.b.router.name}.{self.b.name}>")


class NextHop:
    """The paper's ``RouterLink* n`` output of createStage.

    A routing decision: path creation continues at ``router`` entering via
    service ``service``.  ``attrs`` is the (possibly modified) attribute
    set to pass along — e.g. TCP resets ``PA_PROTID`` before forwarding
    creation to IP.
    """

    __slots__ = ("router", "service", "attrs")

    def __init__(self, router: "Router", service: Service,
                 attrs: Optional[Attrs] = None):
        self.router = router
        self.service = service
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"<NextHop {self.router.name}.{self.service.name}>"


class DemuxResult:
    """Outcome of one router's classification step (Section 3.5).

    Exactly one of the three fields is meaningful:

    * ``path``   — a unique classification was made;
    * ``forward``— this router cannot decide; ask ``forward`` (a
      (router, service) pair) to refine, after this router has optionally
      consumed bytes it understands via ``consumed``;
    * neither    — no appropriate path exists; discard the data.
    """

    __slots__ = ("path", "forward", "reason", "consumed")

    def __init__(self, path: Any = None,
                 forward: Optional[Tuple["Router", Service]] = None,
                 reason: str = "", consumed: int = 0):
        self.path = path
        self.forward = forward
        self.reason = reason
        self.consumed = consumed

    @classmethod
    def found(cls, path: Any) -> "DemuxResult":
        return cls(path=path)

    @classmethod
    def refine(cls, router: "Router", service: Service,
               consumed: int = 0) -> "DemuxResult":
        """Ask *router* (entered via *service*) to refine the decision.

        ``consumed`` is how many header bytes this router understood; the
        next classifier peeks past them.  Classification never *pops*
        bytes — the message must stay intact for the path that processes
        it.
        """
        return cls(forward=(router, service), consumed=consumed)

    @classmethod
    def drop(cls, reason: str) -> "DemuxResult":
        return cls(reason=reason)


class Router:
    """Base class for all Scout routers.

    Subclasses declare their services via the ``SERVICES`` class attribute
    (a sequence of ``"[<]name:type"`` strings, exactly the spec-file
    syntax) and override :meth:`init`, :meth:`create_stage`, and
    :meth:`demux` as needed.
    """

    #: Spec-style service declarations, overridden by subclasses.
    SERVICES: Sequence[str] = ()

    #: Modeled C footprint of ``struct Router``: name pointer, three
    #: function pointers, link-list head (Section 3.1's struct).
    MODELED_BYTES = 5 * 8

    def __init__(self, name: str):
        self.name = name
        self.services: List[Service] = []
        self.service_by_name: Dict[str, Service] = {}
        self.initialized = False
        for index, decl_text in enumerate(self.SERVICES):
            decl = ServiceDecl.parse(decl_text)
            self._add_service(index, decl)

    # -- construction -------------------------------------------------------

    def _add_service(self, index: int, decl: ServiceDecl) -> Service:
        stype = ServiceType.lookup(decl.type_name)
        if decl.name in self.service_by_name:
            raise ConfigurationError(
                f"router {self.name}: duplicate service name {decl.name!r}"
            )
        service = Service(self, index, decl.name, stype, decl.init_before)
        self.services.append(service)
        self.service_by_name[decl.name] = service
        return service

    def service(self, name_or_index: Union[str, int]) -> Service:
        """Look a service up by name or index."""
        if isinstance(name_or_index, int):
            try:
                return self.services[name_or_index]
            except IndexError:
                raise ConfigurationError(
                    f"router {self.name}: no service #{name_or_index}"
                ) from None
        try:
            return self.service_by_name[name_or_index]
        except KeyError:
            raise ConfigurationError(
                f"router {self.name}: no service named {name_or_index!r}"
            ) from None

    # -- behaviour hooks (the paper's function pointers) ----------------------

    def init(self) -> None:
        """One-time initialization, called in dependency partial order."""
        self.initialized = True

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Any, Optional[NextHop]]:
        """Create a stage for a path entering through service
        ``enter_service`` (``-1`` when this router starts the path).

        Returns ``(stage, next_hop)``; ``next_hop is None`` terminates the
        path here (leaf router, or invariants too weak to route further).
        Subclasses must override; the base class refuses, which makes a
        router that never carries paths explicit about it.
        """
        raise NotImplementedError(
            f"router {self.name} ({type(self).__name__}) does not support paths"
        )

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        """Classify *msg* arriving at *service* (Section 3.5).

        *offset* is how many header bytes lower routers already consumed;
        classifiers peek relative to it and must not pop.  The default
        rejects everything: a router that receives data it never
        registered a classifier for drops it.
        """
        return DemuxResult.drop(f"{self.name} has no classifier")

    # -- bookkeeping -----------------------------------------------------------

    def modeled_size(self) -> int:
        """Modeled byte footprint of the router object itself."""
        return self.MODELED_BYTES + 16 * len(self.services)

    def __repr__(self) -> str:
        return f"<Router {self.name} ({type(self).__name__})>"


def connect(sa: Service, sb: Service) -> RouterLink:
    """Connect two services with a graph edge, enforcing the type rule.

    "Two services can be connected by an edge only if they are mutually
    compatible" — i.e. each side's provided interface must be identical to
    or more specific than what the other requires.
    """
    if not sa.stype.compatible_with(sb.stype):
        raise ServiceTypeError(
            f"cannot connect {sa.router.name}.{sa.name}:{sa.stype.name} to "
            f"{sb.router.name}.{sb.name}:{sb.stype.name}: "
            f"{sa.stype.provides.__name__} vs required "
            f"{sb.stype.requires.__name__} (or vice versa) incompatible"
        )
    link = RouterLink(sa, sb)
    sa.links.append(link)
    sb.links.append(link)
    return link
