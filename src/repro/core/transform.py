"""Path transformation rules.

Section 2.2: after router-specific knowledge builds a maximum-length path,
"this maximum length path is transformed (optimized) using global
transformation rules, each of which is defined by a <guard,
transformation> pair.  If the guard evaluates to TRUE, the corresponding
transformation is applied, resulting in a new path.  This process repeats
until all guards evaluate to FALSE."

Semantically transformations are no-ops; they improve performance or
resource behaviour by e.g. overwriting interface deliver pointers with
fused code (the UDP-checksum-into-MPEG-read example of Section 4.1) or
installing measurement probes (the packet-processing-time probe of
Section 4.2).

Transformations compose with the compiled fast path automatically: every
``Stage.set_deliver``/``wrap_deliver`` a rule performs bumps the path's
``chain_generation``, so a rule applied *after* path creation (outside
the phase-4 fixpoint) invalidates the flattened chain and the next
``Path.deliver`` recompiles against the new function pointers.  Rules
never need to know the compiled layer exists.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .path import Path

Guard = Callable[[Path], bool]
Transformation = Callable[[Path], None]


class TransformRule:
    """A named ⟨guard, transformation⟩ pair.

    A rule whose transformation does not itself falsify its guard would
    never quiesce; rules therefore record their application in the path's
    attribute set under ``applied_key`` and the effective guard includes
    "not yet applied".  Rules that genuinely re-fire (none in the paper)
    can pass ``once=False``.
    """

    def __init__(self, name: str, guard: Guard, transformation: Transformation,
                 once: bool = True):
        self.name = name
        self._guard = guard
        self._transformation = transformation
        self.once = once
        self.applied_key = f"_rule_applied:{name}"

    def guard(self, path: Path) -> bool:
        if self.once and path.attrs.get(self.applied_key):
            return False
        return self._guard(path)

    def apply(self, path: Path) -> None:
        self._transformation(path)
        if self.once:
            path.attrs[self.applied_key] = True

    def __repr__(self) -> str:
        return f"<TransformRule {self.name}>"


class TransformRegistry:
    """An ordered collection of transformation rules.

    Rule order matters only for determinism; the fixpoint loop applies the
    first rule whose guard holds and rescans, exactly the paper's "repeat
    until all guards evaluate to FALSE".
    """

    #: Hard cap on rule applications per path, so a badly written rule set
    #: fails loudly instead of hanging path creation.
    MAX_APPLICATIONS = 1000

    def __init__(self, rules: Optional[Sequence[TransformRule]] = None):
        self.rules: List[TransformRule] = list(rules or [])

    def add(self, rule: TransformRule) -> TransformRule:
        self.rules.append(rule)
        return rule

    def rule(self, name: str,
             guard: Guard, once: bool = True
             ) -> Callable[[Transformation], TransformRule]:
        """Decorator sugar: ``@registry.rule("fuse-udp-mpeg", guard=...)``."""

        def decorate(transformation: Transformation) -> TransformRule:
            return self.add(TransformRule(name, guard, transformation, once))

        return decorate

    def apply_all(self, path: Path) -> List[str]:
        """Run the fixpoint; returns the names of rules applied, in order."""
        applied: List[str] = []
        for _ in range(self.MAX_APPLICATIONS):
            for rule in self.rules:
                if rule.guard(path):
                    rule.apply(path)
                    applied.append(rule.name)
                    break
            else:
                return applied
        raise RuntimeError(
            f"transformation rules did not quiesce after "
            f"{self.MAX_APPLICATIONS} applications: {applied[-5:]}")

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"<TransformRegistry {[r.name for r in self.rules]}>"


def traverses(*router_names: str) -> Guard:
    """Guard builder: true when the path crosses *router_names* consecutively.

    The common pattern for code-fusion rules ("a path-transformation rule
    that matches for MPEG being run directly on top of UDP").
    """
    wanted = list(router_names)

    def guard(path: Path) -> bool:
        names = path.routers()
        span = len(wanted)
        return any(names[i:i + span] == wanted
                   for i in range(len(names) - span + 1))

    return guard


def has_attr(name: str, value: object = None) -> Guard:
    """Guard builder: true when the path has attribute *name* (optionally
    with a specific *value*)."""

    def guard(path: Path) -> bool:
        if name not in path.attrs:
            return False
        return value is None or path.attrs[name] == value

    return guard


def all_of(*guards: Guard) -> Guard:
    """Conjunction of guards."""

    def guard(path: Path) -> bool:
        return all(g(path) for g in guards)

    return guard
