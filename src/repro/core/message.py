"""x-kernel style messages.

Scout inherited its message abstraction from the x-kernel: a message is a
byte string that protocol routers manipulate almost exclusively by
*pushing* headers on the front (send side) and *popping* them off (receive
side).  Making those two operations cheap is what lets a path traverse many
routers without copying — the Python analogue of the fbuf observation that
data should live in a buffer "already accessible to all the modules along
the path".

``Msg`` therefore stores its contents as a chain of immutable chunks with a
consumed-offset into the first one: ``push`` prepends a chunk (O(1)),
``pop`` consumes bytes off the front without copying the remainder, and
``split``/``join`` support IP fragmentation and reassembly.  A small
``meta`` mapping carries per-message bookkeeping that is *not* wire data
(arrival timestamp, classified path, source device).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional


class Msg:
    """A message flowing along a path.

    Parameters
    ----------
    data:
        Initial contents (payload before any headers are pushed).
    meta:
        Optional out-of-band bookkeeping copied into :attr:`meta`.
    """

    __slots__ = ("_chunks", "_offset", "_length", "meta")

    def __init__(self, data: bytes = b"", meta: Optional[Dict[str, Any]] = None):
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"message data must be bytes-like, got {type(data).__name__}")
        data = bytes(data)
        self._chunks: List[bytes] = [data] if data else []
        self._offset = 0
        self._length = len(data)
        self.meta: Dict[str, Any] = dict(meta) if meta else {}

    # -- size --------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return True  # an empty message is still a message

    # -- header manipulation ------------------------------------------------

    def push(self, header: bytes) -> "Msg":
        """Prepend *header* to the message (send-side header attach)."""
        header = bytes(header)
        if not header:
            return self
        if self._offset:
            # Materialize the partially consumed first chunk so offsets
            # never apply to anything but chunk 0.
            self._chunks[0] = self._chunks[0][self._offset:]
            self._offset = 0
        self._chunks.insert(0, header)
        self._length += len(header)
        return self

    def pop(self, nbytes: int) -> bytes:
        """Remove and return the first *nbytes* bytes (receive-side strip).

        Raises ``ValueError`` if the message is shorter than *nbytes* —
        a protocol router must verify lengths before popping, exactly the
        per-layer length check the paper notes can be merged by a path
        transformation.
        """
        if nbytes < 0:
            raise ValueError("cannot pop a negative number of bytes")
        if nbytes > self._length:
            raise ValueError(
                f"cannot pop {nbytes} bytes from a {self._length}-byte message"
            )
        out = bytearray()
        need = nbytes
        while need:
            chunk = self._chunks[0]
            avail = len(chunk) - self._offset
            take = min(avail, need)
            out += chunk[self._offset : self._offset + take]
            need -= take
            if take == avail:
                self._chunks.pop(0)
                self._offset = 0
            else:
                self._offset += take
        self._length -= nbytes
        return bytes(out)

    def strip(self, nbytes: int) -> None:
        """Remove the first *nbytes* bytes without materializing them.

        Identical post-state to :meth:`pop` — the specialized execution
        tier uses it to coalesce several stages' header strips into one
        operation when nobody needs the stripped bytes.
        """
        if nbytes < 0:
            raise ValueError("cannot strip a negative number of bytes")
        if nbytes > self._length:
            raise ValueError(
                f"cannot strip {nbytes} bytes from a {self._length}-byte message"
            )
        need = nbytes
        while need:
            chunk = self._chunks[0]
            avail = len(chunk) - self._offset
            if need >= avail:
                self._chunks.pop(0)
                self._offset = 0
                need -= avail
            else:
                self._offset += need
                need = 0
        self._length -= nbytes

    def peek(self, nbytes: int, at: int = 0) -> bytes:
        """Return *nbytes* bytes starting at offset *at* without consuming.

        Classifiers use this: demux must inspect headers but leave the
        message intact for the path that will actually process it.
        """
        if nbytes < 0 or at < 0:
            raise ValueError("peek offsets must be non-negative")
        if at + nbytes > self._length:
            raise ValueError(
                f"cannot peek [{at}:{at + nbytes}] of a {self._length}-byte message"
            )
        out = bytearray()
        skip = at  # bytes of live content still to skip before copying
        need = nbytes
        for index, chunk in enumerate(self._chunks):
            start = self._offset if index == 0 else 0
            avail = len(chunk) - start
            if skip >= avail:
                skip -= avail
                continue
            begin = start + skip
            take = min(len(chunk) - begin, need)
            out += chunk[begin : begin + take]
            need -= take
            skip = 0
            if not need:
                break
        return bytes(out)

    # -- whole-message operations --------------------------------------------

    def to_bytes(self) -> bytes:
        """Return the full contents as a single ``bytes`` object."""
        if not self._chunks:
            return b""
        first = self._chunks[0][self._offset:]
        if len(self._chunks) == 1:
            return first
        return first + b"".join(self._chunks[1:])

    def copy(self) -> "Msg":
        """Return an independent copy (chunks are shared, both immutable)."""
        dup = Msg()
        dup._chunks = list(self._chunks)
        dup._offset = self._offset
        dup._length = self._length
        dup.meta = dict(self.meta)
        return dup

    def split(self, nbytes: int) -> "Msg":
        """Remove and return the first *nbytes* bytes as a new ``Msg``.

        This is the fragmentation primitive: IP carves a datagram into
        MTU-sized fragments with repeated ``split`` calls.  ``meta`` is
        copied to the fragment.
        """
        head = Msg(self.pop(nbytes), meta=self.meta)
        return head

    @classmethod
    def join(cls, pieces: Iterable["Msg"], meta: Optional[Dict[str, Any]] = None) -> "Msg":
        """Concatenate *pieces* into one message (reassembly primitive)."""
        out = cls(meta=meta)
        for piece in pieces:
            chunk = piece.to_bytes()
            if chunk:
                out._chunks.append(chunk)
                out._length += len(chunk)
        return out

    # -- accounting -----------------------------------------------------------

    def footprint(self) -> int:
        """Approximate buffer footprint in bytes (sum of live chunk bytes).

        Used by per-path memory accounting: a path is charged for the
        chunks its messages keep alive, including bytes already consumed
        from a partially popped chunk.
        """
        return sum(len(chunk) for chunk in self._chunks)

    def __repr__(self) -> str:
        preview = self.to_bytes()[:16]
        suffix = "..." if self._length > 16 else ""
        return f"Msg(len={self._length}, head={preview!r}{suffix})"


class MsgBatch:
    """An ordered run of messages processed as one unit.

    Fast programmable routers amortize per-packet dispatch costs —
    scheduler wakeups, queue operations, classification — across packet
    batches; ``MsgBatch`` is the container that carries such a run along
    a path.  It deliberately does *not* merge the messages: each ``Msg``
    keeps its own chunks and its own ``meta`` (headers, cost accounting
    and drop reasons stay exact per message), while :attr:`meta` carries
    bookkeeping shared by the whole run (the classified path, the
    decision source, arrival timestamps).

    A batch is ordered: traversing a batch must deliver the same bytes
    in the same order as traversing its messages one by one (the
    property suite in ``tests/core/test_batch_properties.py`` enforces
    this against the compiled batch executor).
    """

    __slots__ = ("msgs", "meta")

    def __init__(self, msgs: Optional[Iterable[Msg]] = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.msgs: List[Msg] = list(msgs) if msgs is not None else []
        self.meta: Dict[str, Any] = dict(meta) if meta else {}

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.msgs)

    def __iter__(self):
        return iter(self.msgs)

    def __getitem__(self, index):
        return self.msgs[index]

    def __bool__(self) -> bool:
        return True  # an empty batch is still a batch, like an empty Msg

    def append(self, msg: Msg) -> None:
        self.msgs.append(msg)

    def extend(self, msgs: Iterable[Msg]) -> None:
        self.msgs.extend(msgs)

    # -- batch restructuring -------------------------------------------------

    def split(self, count: int) -> "MsgBatch":
        """Remove and return the first *count* messages as a new batch.

        The shared meta is copied to the head batch (both halves describe
        the same flow decision).  Splitting more than the batch holds is
        an error, mirroring :meth:`Msg.pop`.
        """
        if count < 0:
            raise ValueError("cannot split a negative number of messages")
        if count > len(self.msgs):
            raise ValueError(
                f"cannot split {count} messages from a "
                f"{len(self.msgs)}-message batch")
        head = MsgBatch(self.msgs[:count], meta=self.meta)
        del self.msgs[:count]
        return head

    @classmethod
    def merge(cls, batches: Iterable["MsgBatch"],
              meta: Optional[Dict[str, Any]] = None) -> "MsgBatch":
        """Concatenate *batches* into one, preserving message order.

        Shared meta is merged first-batch-wins unless an explicit *meta*
        is supplied — merging runs from different flows would otherwise
        silently pick one flow's annotations.
        """
        out = cls(meta=meta)
        for batch in batches:
            if meta is None and not out.meta:
                out.meta = dict(batch.meta)
            out.msgs.extend(batch.msgs)
        return out

    # -- whole-batch accounting ----------------------------------------------

    def total_bytes(self) -> int:
        """Sum of live message lengths (what a wire would carry)."""
        return sum(len(msg) for msg in self.msgs)

    def footprint(self) -> int:
        """Aggregate buffer footprint, for per-path memory accounting."""
        return sum(msg.footprint() for msg in self.msgs)

    def __repr__(self) -> str:
        return (f"MsgBatch(n={len(self.msgs)}, "
                f"bytes={self.total_bytes()})")
