"""Path creation: the four-phase pipeline of Section 3.3.

    "Path creation consists of three phases: (1) create sequence of
    stages, (2) combine stages into path object, and (3) establish
    (initialize) stages.  During a fourth and final phase, path
    transformation rules are applied to the path."

``path_create`` is the library's ``pathCreate(Router r, Attrs a)``;
``path_delete`` is ``pathDelete(Path p)``.  The Scout infrastructure never
creates or destroys paths implicitly — these functions are only ever
called by routers (SHELL, boot-time device routers) or by applications.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from .attributes import (PA_INQ_LEN, PA_OUTQ_LEN, PA_SPECIALIZE, PA_TRACE,
                         Attrs, as_attrs)
from .errors import PathCreationError
from .path import Path
from .queues import BWD_IN, BWD_OUT, FWD_IN, FWD_OUT
from .router import NextHop, Router
from .specialize import default_enabled as _specialize_default
from .transform import TransformRegistry

#: Safety cap on path length; the paper's longest demonstration path has 6
#: stages, so hitting this indicates a routing loop in createStage logic.
MAX_PATH_LENGTH = 64

#: Hook type for admission control: called with the path-under-creation
#: after every stage is appended; raises AdmissionError to abort.
AdmissionHook = Callable[[Path], None]


def path_create(router: Router, attrs: Optional[Mapping[str, Any]] = None,
                transforms: Optional[TransformRegistry] = None,
                admission: Optional[AdmissionHook] = None,
                specialize: Optional[bool] = None) -> Path:
    """Create a path starting at *router* with invariants *attrs*.

    Parameters
    ----------
    router:
        The router on which creation is invoked; contributes the first
        stage and the first routing decision.
    attrs:
        The invariants describing the desired path (arbitrary name/value
        pairs).  ``PA_INQ_LEN``/``PA_OUTQ_LEN`` size the path queues.
    transforms:
        Transformation rules to run in phase 4 (omitted = no rules, the
        paper's "this time does not include the application of any
        transformations" baseline).
    admission:
        Optional admission-control hook consulted as the path grows, so a
        denied path aborts before establish runs.
    specialize:
        Whether the compile phase may additionally ``exec``-generate a
        fused per-path function (the third execution tier, DESIGN.md
        §15).  Resolution order: a ``PA_SPECIALIZE`` attribute wins, then
        this argument, then the ``REPRO_SPECIALIZE`` environment default
        (off).

    Raises
    ------
    PathCreationError
        If the first router refuses to contribute a stage, the chain
        exceeds :data:`MAX_PATH_LENGTH`, or any establish hook fails.
    """
    attrs = as_attrs(attrs)
    path = Path(attrs, queue_lengths=_queue_lengths(attrs))

    # Phase 1: create the sequence of stages, following routing decisions
    # until a router returns no next hop (maximum-length path reached).
    current: Optional[NextHop] = NextHop(router, None, attrs)  # type: ignore[arg-type]
    enter_index = -1
    while current is not None:
        hop_attrs = current.attrs if current.attrs is not None else attrs
        try:
            stage, next_hop = current.router.create_stage(enter_index, hop_attrs)
        except NotImplementedError as exc:
            raise PathCreationError(str(exc)) from exc
        if stage is None:
            if not path.stages:
                raise PathCreationError(
                    f"router {current.router.name} refused to start a path "
                    f"with attrs {attrs.snapshot()!r}")
            break  # router declined: path ends at the previous stage
        path._append_stage(stage)
        if admission is not None:
            admission(path)
        if len(path.stages) > MAX_PATH_LENGTH:
            raise PathCreationError(
                f"path exceeded {MAX_PATH_LENGTH} stages; routing loop "
                f"through {path.routers()[-4:]}")
        current = next_hop
        if current is not None:
            enter_index = current.service.index if current.service else -1

    # Admission grants follow the path's lifetime, not the caller's
    # memory: the grant recorded during phase 1 is returned automatically
    # when the path is deleted — including pooled paths drained behind
    # the creator's back and paths whose establish fails below.
    if admission is not None:
        release = getattr(admission, "release", None)
        if release is not None:
            path.add_delete_hook(release)

    # Phase 2: combine the stages into the path object (chain interfaces).
    path._link_interfaces()

    # Phase 3: establish — per-stage initialization that may depend on the
    # existence of the entire path.
    try:
        path._establish()
    except Exception as exc:
        path.delete()
        raise PathCreationError(
            f"establish failed for path {path.routers()}: {exc}") from exc

    # Phase 4: apply global transformation rules to fixpoint.
    if transforms is not None:
        applied = transforms.apply_all(path)
        if applied:
            path.attrs["_transforms_applied"] = tuple(applied)

    # Phase 5: observability.  A truthy PA_TRACE invariant carries the
    # observatory that instruments the path; running after the transforms
    # means the probes wrap the final (possibly optimized) deliver
    # functions.  Duck-typed so the core stays free of upward imports.
    tracer = attrs.get(PA_TRACE)
    if tracer is not None:
        instrument = getattr(tracer, "instrument", None)
        if instrument is not None:
            instrument(path)

    # Compile: with the transformation fixpoint reached (and any probes
    # wrapped), the deliver pointers are final — flatten each direction's
    # interface chain into the tuple Path.deliver executes as a tight
    # loop.  Later set_deliver/wrap_deliver calls bump the path's
    # generation counter and recompilation happens transparently.
    chosen = attrs.get(PA_SPECIALIZE)
    if chosen is None:
        chosen = specialize
    if chosen is None:
        chosen = _specialize_default()
    path.specialize = bool(chosen)
    path.compile_chains()
    return path


def path_delete(path: Path) -> None:
    """Destroy *path* (the paper's ``pathDelete``)."""
    path.delete()


def _queue_lengths(attrs: Attrs) -> Dict[int, Optional[int]]:
    """Derive per-role queue capacities from creation attributes.

    The input queue bound applies to both directions' inputs and likewise
    for outputs; paths that need asymmetric queues resize them in an
    establish hook.
    """
    lengths: Dict[int, Optional[int]] = {}
    if PA_INQ_LEN in attrs:
        lengths[FWD_IN] = attrs[PA_INQ_LEN]
        lengths[BWD_IN] = attrs[PA_INQ_LEN]
    if PA_OUTQ_LEN in attrs:
        lengths[FWD_OUT] = attrs[PA_OUTQ_LEN]
        lengths[BWD_OUT] = attrs[PA_OUTQ_LEN]
    return lengths
