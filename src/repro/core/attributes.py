"""Path attributes: the invariants that drive path creation.

Section 3.3 of the paper: "A path is created by invoking pathCreate on a
router r.  The kind of path to be created is described by the set of
attributes a.  These attributes are arbitrary name/value pairs that specify
the invariants that hold true for the path being created."

Attributes serve three distinct roles in Scout, all supported here:

1. **Invariants at creation time** — e.g. ``PA_NET_PARTICIPANTS`` names the
   remote address a path talks to, which lets IP freeze its routing
   decision.
2. **Routing forcing / hints** — ``PA_PATHNAME`` forces specific routing
   decisions when no other information is available (the SHELL router uses
   it to steer DISPLAY toward MPEG).
3. **Anonymous shared state on a live path** — "attributes allow to attach
   arbitrary state to a particular path ... this enables stages to exchange
   and share information anonymously" (Section 3.2).  The measured
   average packet processing time in Section 4.2 is such an attribute.

The well-known attribute names used by the demonstration application are
exported as module constants so routers agree on spelling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

#: Remote network participant, value is an ``(ip_addr, udp_port)`` tuple.
PA_NET_PARTICIPANTS = "PA_NET_PARTICIPANTS"

#: Forced routing string, e.g. ``"MPEG"`` (Section 4.1).
PA_PATHNAME = "PA_PATHNAME"

#: Protocol id of the next-higher networking protocol (Section 4.1).
PA_PROTID = "PA_PROTID"

#: Scheduling policy requested for threads executing this path.
PA_SCHED_POLICY = "PA_SCHED_POLICY"

#: Scheduling priority (for round-robin) requested for this path.
PA_SCHED_PRIORITY = "PA_SCHED_PRIORITY"

#: Target playback rate in frames/second for video paths.
PA_FRAME_RATE = "PA_FRAME_RATE"

#: Requested input queue capacity (messages).
PA_INQ_LEN = "PA_INQ_LEN"

#: Requested output queue capacity (messages/frames).
PA_OUTQ_LEN = "PA_OUTQ_LEN"

#: Memory budget granted by admission control, in bytes.
PA_MEM_BUDGET = "PA_MEM_BUDGET"

#: Running estimate of per-packet processing time, maintained by a
#: transformation-rule-installed probe (Section 4.2).
PA_AVG_PROC_TIME = "PA_AVG_PROC_TIME"

#: Running estimate of the network round-trip time, measured by MFLOW.
PA_AVG_RTT = "PA_AVG_RTT"

#: Observability invariant: request tracing + metrics for this path.
#: The value is an object with an ``instrument(path)`` hook (normally an
#: :class:`~repro.observe.Observatory`); path creation invokes it after
#: transformation rules run, so instrumentation wraps the final
#: (possibly optimized) deliver functions.  Kernels accept ``True`` as a
#: convenience and substitute their own observatory before creating the
#: path.
PA_TRACE = "PA_TRACE"

#: Batch limit for the path's thread (messages per scheduler dispatch).
#: 1 (the default) keeps the paper's one-message-per-wakeup behaviour;
#: N > 1 lets the thread drain up to N queued messages per dispatch via
#: the batched execution machinery of DESIGN.md §13.
PA_BATCH = "PA_BATCH"

#: Specialized execution tier opt-in/out for this path (DESIGN.md §15).
#: ``True``/``False`` overrides the ``path_create(specialize=...)``
#: argument, which overrides the ``REPRO_SPECIALIZE`` environment
#: default.  Specialized paths ``exec``-generate one fused function per
#: compiled chain; observed (``PA_TRACE``) paths never specialize.
PA_SPECIALIZE = "PA_SPECIALIZE"


class Attrs:
    """An ordered set of name/value attribute pairs.

    ``Attrs`` behaves like a mapping but adds the operations path creation
    needs: non-destructive extension (routers pass a *possibly modified*
    set of attributes down the chain without disturbing their caller's
    view) and snapshots for auditing which invariants a path was created
    with.
    """

    __slots__ = ("_items",)

    def __init__(self, initial: Optional[Mapping[str, Any]] = None, **kwargs: Any):
        self._items: Dict[str, Any] = {}
        if initial is not None:
            self._items.update(initial)
        self._items.update(kwargs)

    # -- mapping protocol -------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self._items[name]

    def __setitem__(self, name: str, value: Any) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError("attribute names must be non-empty strings")
        self._items[name] = value

    def __delitem__(self, name: str) -> None:
        del self._items[name]

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def get(self, name: str, default: Any = None) -> Any:
        """Return the value for *name*, or *default* when absent."""
        return self._items.get(name, default)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate over ``(name, value)`` pairs in insertion order."""
        return iter(self._items.items())

    def keys(self):
        return self._items.keys()

    def values(self):
        return self._items.values()

    # -- path-creation helpers --------------------------------------------

    def set(self, name: str, value: Any) -> "Attrs":
        """Set *name* in place and return ``self`` (for chaining)."""
        self[name] = value
        return self

    def extended(self, **kwargs: Any) -> "Attrs":
        """Return a copy of this set with *kwargs* added or overridden.

        This is the operation a router uses to pass "the (possibly
        modified) set of attributes" to the next router without mutating
        its caller's invariants — e.g. TCP resetting ``PA_PROTID`` to 6
        before forwarding path creation to IP.
        """
        child = Attrs(self._items)
        child._items.update(kwargs)
        return child

    def without(self, *names: str) -> "Attrs":
        """Return a copy with *names* removed (missing names are ignored)."""
        child = Attrs(self._items)
        for name in names:
            child._items.pop(name, None)
        return child

    def merge(self, other: Optional[Mapping[str, Any]]) -> "Attrs":
        """Return a copy with *other*'s pairs layered on top of this set."""
        child = Attrs(self._items)
        if other is not None:
            child._items.update(other)
        return child

    def snapshot(self) -> Dict[str, Any]:
        """Return a plain-dict copy of the current pairs."""
        return dict(self._items)

    def require(self, name: str) -> Any:
        """Return the value for *name*, raising ``KeyError`` with a
        routing-friendly message when the invariant is missing."""
        try:
            return self._items[name]
        except KeyError:
            raise KeyError(
                f"path attribute {name!r} is required but was not supplied"
            ) from None

    # -- comparison & debugging -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Attrs):
            return self._items == other._items
        if isinstance(other, Mapping):
            return self._items == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._items.items())
        return f"Attrs({body})"


def as_attrs(value: Optional[Mapping[str, Any]]) -> Attrs:
    """Coerce *value* (``None``, mapping, or ``Attrs``) into an ``Attrs``."""
    if value is None:
        return Attrs()
    if isinstance(value, Attrs):
        return value
    return Attrs(value)
