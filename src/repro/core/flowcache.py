"""The demux flow cache: O(1) classification for established flows.

Section 3.5 requires the classifier to be "efficient enough that it can
be used even under the highest loads".  The incremental demux chain is a
handful of dictionary probes, but it is *per-router* work: every arriving
frame walks ETH -> IP -> UDP -> ... even when thousands of identical
frames belong to the same long-lived video flow.  The flow cache collapses
the common case to a single dictionary probe keyed on the exact header
bytes that determine the routing decision — the "flow caching" fast path
surveyed for programmable routers (see PAPERS.md).

Correctness rules (enforced here, exercised by the chaos test):

* the cache **never** returns a path whose state is not ESTABLISHED: a
  stale entry (the path was deleted behind the cache's back) is treated
  as a miss and evicted on the spot;
* inserting a path registers the cache with the path, so
  :meth:`~repro.core.path.Path.delete` invalidates every key pointing at
  it *synchronously* — a watchdog rebuild or ``stop_video`` can never
  leave a dangling entry;
* capacity is bounded; insertion beyond capacity evicts the
  least-recently-used entry (lookups refresh recency).

The cache is policy-free about what constitutes a flow: the owner supplies
``key_of(msg) -> Optional[bytes]`` (return ``None`` for ineligible
traffic, which bypasses the cache entirely) and an optional
``annotate(msg, key)`` hook that reproduces whatever ``msg.meta``
annotations the demux chain would have stashed (the SHELL's reply path
reads ``meta["ip_src"]``, so a cache hit must not lose it).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Set

from .path import ESTABLISHED, Path

#: Frame layout offsets for :func:`flow_key_ipv4_udp` (ETH 14 + IP 20 +
#: UDP 8 — the minimum frame that can carry a keyable flow).
_FLOW_KEY_BYTES = 42
_ETHERTYPE_IPV4 = b"\x08\x00"
_IPPROTO_UDP = 17

#: The validated-fast-receive ``msg.meta`` stamps (DESIGN.md §13) an
#: ``annotate`` hook installs on a flow-cache hit.  A stamp asserts the
#: corresponding layer's checks already passed during classification, so
#: the stage may skip validation; the specialized execution tier
#: (DESIGN.md §15) additionally requires *all* of them per message before
#: running a fused ETH/IP/UDP body.  Kernel and benchmarks share this
#: tuple so the stamp names can never drift apart.
VALIDATED_STAMPS = ("eth_validated", "ip_validated", "udp_validated")


def flow_key(msg: Any) -> Optional[bytes]:
    """Exact-match flow key for non-fragmented IPv4/UDP frames.

    The key covers every header byte the demux chain's routing decision
    depends on — eth dst, IP protocol, IP source/destination, UDP ports —
    and deliberately excludes the bytes that vary per packet of the same
    flow (total length, ident, TTL, checksums, UDP length).  Anything
    else (ARP, ICMP, TCP, fragments, IP options) returns ``None`` and
    takes the full refinement chain, so correctness never depends on the
    cache understanding a protocol.

    This is the single source of truth for "what is a flow": the
    :class:`FlowCache` keys its entries on it, and the shard fabric's
    dispatcher (:mod:`repro.shard.dispatch`) hashes exactly the same
    bytes to pin a flow to a shard — so a flow-cache entry and a shard
    pinning can never disagree about flow identity.
    """
    if len(msg) < _FLOW_KEY_BYTES:
        return None
    head = msg.peek(_FLOW_KEY_BYTES)
    if head[12:14] != _ETHERTYPE_IPV4:
        return None
    if head[14] != 0x45:  # IPv4 with no options (IHL == 5)
        return None
    if head[23] != _IPPROTO_UDP:
        return None
    if (head[20] & 0x3F) or head[21]:  # MF flag or nonzero fragment offset
        return None
    return head[0:6] + head[23:24] + head[26:38]


def flow_key_frame(frame: bytes) -> Optional[bytes]:
    """:func:`flow_key` over raw wire bytes (no :class:`Msg` wrapper).

    The shard dispatcher classifies at the RX boundary, before any
    ``Msg`` exists; slicing the frame directly keeps that peek free of
    per-frame object construction.  Returns exactly what
    :func:`flow_key` would return for ``Msg(frame)``.
    """
    if len(frame) < _FLOW_KEY_BYTES:
        return None
    if frame[12:14] != _ETHERTYPE_IPV4:
        return None
    if frame[14] != 0x45:
        return None
    if frame[23] != _IPPROTO_UDP:
        return None
    if (frame[20] & 0x3F) or frame[21]:
        return None
    return frame[0:6] + frame[23:24] + frame[26:38]


#: Historical name for :func:`flow_key`, kept for existing callers.
flow_key_ipv4_udp = flow_key


class FlowCache:
    """Bounded LRU map from flow keys to established paths.

    Parameters
    ----------
    capacity:
        Maximum number of cached flows; the least recently used entry is
        evicted to admit a new one.
    key_of:
        ``key_of(msg) -> Optional[bytes]``; ``None`` marks the message
        ineligible (the lookup is a miss and the classification result is
        not inserted).  Defaults to :func:`flow_key`.
    annotate:
        Optional ``annotate(msg, key)`` run on every hit to reproduce the
        ``msg.meta`` annotations the skipped demux chain would have made.
    """

    def __init__(self, capacity: int = 128,
                 key_of: Optional[Callable[[Any], Optional[bytes]]] = None,
                 annotate: Optional[Callable[[Any, bytes], None]] = None):
        if capacity < 1:
            raise ValueError("flow cache capacity must be positive")
        self.capacity = capacity
        self.key_of = key_of if key_of is not None else flow_key
        self.annotate = annotate
        self._entries: "OrderedDict[bytes, Path]" = OrderedDict()
        self._keys_of_path: Dict[int, Set[bytes]] = {}
        #: group id -> {pid: path} for entries whose path belongs to a
        #: :class:`~repro.multipath.PathGroup`, so a group re-spread or a
        #: pool drain can drop every pinned member in one call instead of
        #: looping over members it may not even know about.
        self._group_members: Dict[int, Dict[int, Path]] = {}
        # counters
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_hits = 0
        # optional metric mirrors (pre-created Counter objects)
        self._metric_hits = None
        self._metric_misses = None
        self._metric_evictions = None
        self._metric_invalidations = None

    def __len__(self) -> int:
        return len(self._entries)

    # -- the fast path ------------------------------------------------------

    def lookup(self, msg: Any) -> Optional[Path]:
        """Return the established path for *msg*, or ``None`` on a miss.

        A hit refreshes the entry's recency and runs the ``annotate``
        hook.  An entry whose path is no longer ESTABLISHED is evicted
        and reported as a miss — the cache never returns a dead path.
        """
        key = self.key_of(msg)
        if key is None:
            return None
        return self.lookup_key(key, msg)

    def lookup_key(self, key: bytes, msg: Any) -> Optional[Path]:
        """:meth:`lookup` with a precomputed *key*.

        Batch classification (:func:`repro.core.classify.classify_batch`)
        computes every message's key once to group arrivals into runs;
        run followers probe with that key instead of re-slicing the
        header.  Accounting (hits/misses/stale evictions, metric mirrors,
        the ``annotate`` hook, LRU recency) is identical to
        :meth:`lookup`, so batched and per-message counters reconcile
        exactly.
        """
        path = self._entries.get(key)
        if path is None:
            self.misses += 1
            if self._metric_misses is not None:
                self._metric_misses.inc()
            return None
        if path.state != ESTABLISHED:
            # Stale: the path died without invalidating (defense in depth;
            # Path.delete normally purges its keys synchronously).
            self._discard_key(key)
            self.stale_hits += 1
            self.misses += 1
            if self._metric_misses is not None:
                self._metric_misses.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self._metric_hits is not None:
            self._metric_hits.inc()
        if self.annotate is not None:
            self.annotate(msg, key)
        return path

    # -- population ---------------------------------------------------------

    def insert(self, msg: Any, path: Path) -> bool:
        """Cache *path* as the classification of *msg*'s flow.

        Only ESTABLISHED paths are admitted.  Returns True when an entry
        was installed (or refreshed).
        """
        if path.state != ESTABLISHED:
            return False
        key = self.key_of(msg)
        if key is None:
            return False
        previous = self._entries.get(key)
        if previous is not None and previous is not path:
            self._discard_key(key)
        self._entries[key] = path
        self._entries.move_to_end(key)
        self._keys_of_path.setdefault(path.pid, set()).add(key)
        gid = getattr(path, "group_id", None)
        if gid is not None:
            self._group_members.setdefault(gid, {})[path.pid] = path
        path.register_flow_cache(self)
        while len(self._entries) > self.capacity:
            old_key, old_path = self._entries.popitem(last=False)
            self._keys_of_path.get(old_path.pid, set()).discard(old_key)
            self.evictions += 1
            if self._metric_evictions is not None:
                self._metric_evictions.inc()
        return True

    # -- invalidation -------------------------------------------------------

    def invalidate_path(self, path: Path) -> int:
        """Remove every entry pointing at *path*; returns how many."""
        gid = getattr(path, "group_id", None)
        if gid is not None:
            members = self._group_members.get(gid)
            if members is not None:
                members.pop(path.pid, None)
                if not members:
                    self._group_members.pop(gid, None)
        keys = self._keys_of_path.pop(path.pid, None)
        if not keys:
            return 0
        removed = 0
        for key in keys:
            if self._entries.pop(key, None) is not None:
                removed += 1
        self.invalidations += removed
        if removed and self._metric_invalidations is not None:
            self._metric_invalidations.inc(removed)
        return removed

    def invalidate_key(self, key: bytes) -> bool:
        """Remove the single entry for *key*, if present.

        The shard fabric's ``rebalance`` protocol uses this: migrating a
        flow's pinning must unpin exactly that flow on the old shard so
        its next packet re-walks the refinement chain there, without
        disturbing other flows that happen to share the same path.
        """
        if key not in self._entries:
            return False
        self._discard_key(key)
        self.invalidations += 1
        if self._metric_invalidations is not None:
            self._metric_invalidations.inc()
        return True

    def invalidate_group(self, gid: int) -> int:
        """Bulk-drop every entry pinned to a member of path group *gid*.

        This is the re-spread primitive: one call unpins every flow the
        group's selection policy placed, so the next packet of each flow
        re-walks the refinement chain and is re-dispatched.  Pool drains
        use it the same way.  Returns how many entries were removed.
        """
        members = self._group_members.pop(gid, None)
        if not members:
            return 0
        removed = 0
        for path in members.values():
            removed += self.invalidate_path(path)
        return removed

    def clear(self) -> int:
        """Drop every entry (watchdog rebuild / reconfiguration sledge)."""
        removed = len(self._entries)
        self._entries.clear()
        self._keys_of_path.clear()
        self._group_members.clear()
        self.invalidations += removed
        if removed and self._metric_invalidations is not None:
            self._metric_invalidations.inc(removed)
        return removed

    def _discard_key(self, key: bytes) -> None:
        path = self._entries.pop(key, None)
        if path is not None:
            self._keys_of_path.get(path.pid, set()).discard(key)

    # -- observability ------------------------------------------------------

    def bind_metrics(self, registry: Any, name: str = "flow_cache") -> None:
        """Mirror the counters into a metrics registry (``repro.observe``).

        Pre-creates the counter series so the per-packet cost of the
        mirror is a single bound-method call.
        """
        self._metric_hits = registry.counter(f"{name}_hits_total")
        self._metric_misses = registry.counter(f"{name}_misses_total")
        self._metric_evictions = registry.counter(f"{name}_evictions_total")
        self._metric_invalidations = registry.counter(
            f"{name}_invalidations_total")

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stale_hits": self.stale_hits,
        }

    def __repr__(self) -> str:
        return (f"<FlowCache {len(self._entries)}/{self.capacity} "
                f"hits={self.hits} misses={self.misses}>")
