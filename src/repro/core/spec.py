"""The spec-file configuration language.

Section 3.1 of the paper gives the syntax for describing a router::

    router name {
        files = {filename, ...};
        service = {name:type, ...};
    }

A service name may be preceded by ``<`` to indicate that routers connected
to that service must be initialized first.  The paper's configuration tool
"translates a router graph into C source code that creates and initializes
the runtime view of a router graph when the system boots"; our equivalent
(:mod:`repro.core.graph`) builds the live Python objects instead.

Because the paper only shows the per-router clause, we add the two minimal
clauses a whole-graph description needs:

* ``class = PythonClassName;`` inside a router block binds the block to an
  implementation class registered with the graph builder (defaults to the
  router's name);
* ``params = {key: value, ...};`` passes constructor keyword arguments
  (addresses, queue lengths);
* a top-level ``connect A.svc B.svc;`` statement declares a graph edge.

The parser is a conventional hand-written tokenizer + recursive-descent
parser with precise line numbers in every error.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, NamedTuple, Optional

from .errors import SpecSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_-]*)
  | (?P<punct>[{}();=:,<.])
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    kind: str
    text: str
    line: int


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SpecSyntaxError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup
        body = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, body, line))
        line += body.count("\n")
        pos = match.end()
    return tokens


class RouterSpec:
    """One ``router name { ... }`` block."""

    def __init__(self, name: str):
        self.name = name
        self.class_name: str = name
        self.files: List[str] = []
        self.services: List[str] = []   # "[<]name:type" strings
        self.params: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"RouterSpec({self.name!r}, services={self.services})"


class Connection(NamedTuple):
    """A top-level ``connect A.svc B.svc;`` statement."""

    a_router: str
    a_service: str
    b_router: str
    b_service: str


class SpecFile:
    """A parsed spec file: router blocks plus connection statements."""

    def __init__(self) -> None:
        self.routers: List[RouterSpec] = []
        self.connections: List[Connection] = []

    def router(self, name: str) -> RouterSpec:
        for spec in self.routers:
            if spec.name == name:
                return spec
        raise KeyError(f"no router block named {name!r}")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self, expect_kind: Optional[str] = None,
              expect_text: Optional[str] = None) -> Token:
        token = self._peek()
        if token is None:
            raise SpecSyntaxError("unexpected end of spec file")
        if expect_kind is not None and token.kind != expect_kind:
            raise SpecSyntaxError(
                f"expected {expect_kind}, got {token.text!r}", token.line)
        if expect_text is not None and token.text != expect_text:
            raise SpecSyntaxError(
                f"expected {expect_text!r}, got {token.text!r}", token.line)
        self._pos += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self._pos += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> SpecFile:
        spec = SpecFile()
        while self._peek() is not None:
            token = self._next("ident")
            if token.text == "router":
                spec.routers.append(self._router_block())
            elif token.text == "connect":
                spec.connections.append(self._connect_stmt())
            else:
                raise SpecSyntaxError(
                    f"expected 'router' or 'connect', got {token.text!r}",
                    token.line)
        return spec

    def _router_block(self) -> RouterSpec:
        name = self._next("ident").text
        block = RouterSpec(name)
        self._next(expect_text="{")
        while not self._accept("}"):
            clause = self._next("ident")
            self._next(expect_text="=")
            if clause.text == "files":
                block.files = self._string_or_ident_set()
            elif clause.text == "service":
                block.services = self._service_set()
            elif clause.text == "class":
                block.class_name = self._next("ident").text
            elif clause.text == "params":
                block.params = self._param_set()
            else:
                raise SpecSyntaxError(
                    f"unknown clause {clause.text!r} in router {name}",
                    clause.line)
            self._next(expect_text=";")
        return block

    def _string_or_ident_set(self) -> List[str]:
        self._next(expect_text="{")
        items: List[str] = []
        while not self._accept("}"):
            token = self._peek()
            if token is None:
                raise SpecSyntaxError("unterminated set")
            if token.kind == "string":
                items.append(self._unquote(self._next("string")))
            else:
                # filenames like mpeg.c arrive as ident '.' ident
                items.append(self._dotted_name())
            if not self._accept(","):
                self._next(expect_text="}")
                break
        return items

    def _dotted_name(self) -> str:
        parts = [self._next("ident").text]
        while self._accept("."):
            parts.append(self._next("ident").text)
        return ".".join(parts)

    def _service_set(self) -> List[str]:
        self._next(expect_text="{")
        services: List[str] = []
        while not self._accept("}"):
            prefix = "<" if self._accept("<") else ""
            name = self._next("ident").text
            self._next(expect_text=":")
            type_name = self._next("ident").text
            services.append(f"{prefix}{name}:{type_name}")
            if not self._accept(","):
                self._next(expect_text="}")
                break
        return services

    def _param_set(self) -> Dict[str, Any]:
        self._next(expect_text="{")
        params: Dict[str, Any] = {}
        while not self._accept("}"):
            key = self._next("ident").text
            self._next(expect_text=":")
            params[key] = self._value()
            if not self._accept(","):
                self._next(expect_text="}")
                break
        return params

    def _value(self) -> Any:
        token = self._peek()
        if token is None:
            raise SpecSyntaxError("unexpected end of spec file in value")
        if token.kind == "string":
            return self._unquote(self._next("string"))
        if token.kind == "number":
            text = self._next("number").text
            return float(text) if "." in text else int(text)
        if token.kind == "ident":
            word = self._next("ident").text
            lowered = word.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            return word
        raise SpecSyntaxError(f"bad value {token.text!r}", token.line)

    def _connect_stmt(self) -> Connection:
        a_router = self._next("ident").text
        self._next(expect_text=".")
        a_service = self._next("ident").text
        b_router = self._next("ident").text
        self._next(expect_text=".")
        b_service = self._next("ident").text
        self._next(expect_text=";")
        return Connection(a_router, a_service, b_router, b_service)

    _ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"'}

    @classmethod
    def _unquote(cls, token: Token) -> str:
        """Resolve backslash escapes without the ``unicode_escape`` trap
        (which would mojibake any non-ASCII character)."""
        body = token.text[1:-1]
        out = []
        index = 0
        while index < len(body):
            char = body[index]
            if char == "\\" and index + 1 < len(body):
                out.append(cls._ESCAPES.get(body[index + 1],
                                            body[index + 1]))
                index += 2
            else:
                out.append(char)
                index += 1
        return "".join(out)


def parse_spec(text: str) -> SpecFile:
    """Parse spec-language *text* into a :class:`SpecFile`."""
    return _Parser(_tokenize(text)).parse()


def format_spec(spec: SpecFile) -> str:
    """Render *spec* back to spec-language text (round-trip support)."""
    lines: List[str] = []
    for block in spec.routers:
        lines.append(f"router {block.name} {{")
        if block.class_name != block.name:
            lines.append(f"    class = {block.class_name};")
        if block.files:
            rendered_files = ", ".join(_render_filename(f) for f in block.files)
            lines.append("    files = {" + rendered_files + "};")
        if block.services:
            lines.append("    service = {" + ", ".join(block.services) + "};")
        if block.params:
            rendered = ", ".join(
                f"{key}: {_render_value(value)}"
                for key, value in block.params.items())
            lines.append("    params = {" + rendered + "};")
        lines.append("}")
    for conn in spec.connections:
        lines.append(
            f"connect {conn.a_router}.{conn.a_service} "
            f"{conn.b_router}.{conn.b_service};")
    return "\n".join(lines) + "\n"


_BARE_FILENAME_RE = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_-]*(\.[A-Za-z_][A-Za-z0-9_-]*)*$")


def _render_filename(name: str) -> str:
    """Emit a filename bare when the tokenizer can re-read it, else quoted."""
    if _BARE_FILENAME_RE.match(name):
        return name
    return _render_value(name)


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return '"' + str(value).replace("\\", "\\\\").replace('"', '\\"') + '"'
