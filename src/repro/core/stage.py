"""Stages: a path's fixed routing decisions.

Section 3.2: "Scout paths consist of a sequence of stages.  Each router
that is crossed by a path creates one such stage.  Since a path enters a
router at one service and leaves it through another, a stage effectively
connects a pair of services.  That is, it represents a fixed routing
decision."

A stage owns up to two interfaces (the paper's ``Iface end[2]``): one that
processes messages traveling in the forward direction and one for the
backward direction.  Extreme-end stages own only the interface for the
direction that actually enters the path there ("these extreme stages are,
strictly speaking, not part of the path but they are used to connect to
the routers that manage the path queues").
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from .attributes import Attrs
from .interfaces import Iface, NetIface

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for hints only
    from .path import Path
    from .router import Router, Service

#: Direction constants (Section 2.4.1): FWD is the direction in which the
#: path was created, BWD the reverse.
FWD, BWD = 0, 1

DIRECTION_NAMES = ("FWD", "BWD")


def opposite(direction: int) -> int:
    """Return the other direction."""
    return 1 - direction


class Stage:
    """One router's contribution to a path (the paper's ``struct Stage``).

    Parameters
    ----------
    router:
        The router that created this stage.
    enter_service, exit_service:
        The services through which the path enters and leaves the router
        (either may be ``None`` at the extreme ends of the path).
    iface_factory:
        Interface class instantiated for each direction (default
        :class:`NetIface`).
    """

    #: Modeled C footprint (Section 3.6: stages are "on the order of 150
    #: bytes ... including all the interfaces"): two interface pointers,
    #: path and router pointers, two function pointers, the service-pair
    #: record, and per-stage scratch state.
    MODELED_BYTES = 2 * 8 + 2 * 8 + 2 * 8 + 2 * 8 + 40

    def __init__(self, router: "Router",
                 enter_service: Optional["Service"] = None,
                 exit_service: Optional["Service"] = None,
                 iface_factory: Callable[..., Iface] = NetIface):
        self.router = router
        self.path: Optional["Path"] = None
        self.enter_service = enter_service
        self.exit_service = exit_service
        self.end = [iface_factory(stage=self), iface_factory(stage=self)]
        #: Optional vectorized deliver functions, one per direction
        #: (DESIGN.md §13).  A batch function processes a whole run of
        #: messages in one call; any replacement or wrapping of the
        #: scalar deliver function clears the slot, so interposed code
        #: (probes, fault injectors, transformations) always sees every
        #: message individually.
        self._deliver_batch: list = [None, None]
        #: Arbitrary per-stage state (reassembly buffers, sequence numbers).
        self.state: dict = {}

    # -- hooks ----------------------------------------------------------------

    def establish(self, attrs: Attrs) -> None:
        """Initialization that depends on the existence of the entire path.

        Called once the whole path object exists, in stage-creation order
        (phase 3 of path creation).  Default: nothing.
        """

    def destroy(self) -> None:
        """Tear down per-stage resources when the path is deleted."""

    # -- deliver plumbing ---------------------------------------------------------

    def set_deliver(self, direction: int, fn: Callable[..., Any]) -> None:
        """Install the processing function for *direction*.

        This is the mutable function pointer that path transformations
        overwrite: "if a path contains a sequence of interfaces for which
        there is optimized code available, then the function pointers in
        the interfaces can be updated to point to this optimized code."

        Overwriting a pointer invalidates any compiled flattening of the
        chain, so the owning path's generation counter is bumped and the
        next traversal recompiles transparently.
        """
        self.end[direction].deliver = fn
        # A new scalar function invalidates any vectorized shortcut: the
        # batch function was written against the *previous* per-message
        # semantics.
        self._deliver_batch[direction] = None
        if self.path is not None:
            self.path.chain_generation += 1

    def set_deliver_batch(self, direction: int, fn: Callable[..., Any]) -> None:
        """Install a vectorized deliver function for *direction*.

        ``fn(iface, msgs, direction, **kwargs)`` must be observably
        equivalent to calling the scalar deliver function once per
        message in order.  It returns the list of messages to hand to
        the next stage (messages it absorbed or dropped are accounted
        internally, exactly as the scalar function would), or ``None``
        to decline the run — e.g. when not every message carries the
        validated-flow annotation — in which case the compiled loop
        falls back to per-message execution from this stage on (the
        vectorization fallback rule, DESIGN.md §13).

        Install it *after* :meth:`set_deliver` for the same direction:
        installing a scalar function clears the batch slot.
        """
        self._deliver_batch[direction] = fn
        if self.path is not None:
            self.path.chain_generation += 1

    def deliver_batch_fn(self, direction: int) -> Optional[Callable[..., Any]]:
        return self._deliver_batch[direction]

    def deliver_fn(self, direction: int) -> Optional[Callable[..., Any]]:
        return getattr(self.end[direction], "deliver", None)

    def has_pristine_deliver(self, direction: int, func: Callable[..., Any],
                             batch_func: Optional[Callable[..., Any]] = None
                             ) -> bool:
        """True when the installed deliver function for *direction* is the
        un-interposed bound method whose underlying function is *func*,
        and the batch slot is either empty or (when *batch_func* is
        given) the pristine vectorized method.

        This is the recognition test the specialized execution tier runs
        before fusing a stage's body into generated code: any wrapper or
        replacement — probes, fault injectors, transformations — fails
        it, so the fused function can only ever contain semantics that
        are actually installed.  Interposition *after* generation is
        caught separately by the ``chain_generation`` bump the setters
        above perform (the deopt protocol, DESIGN.md §15).
        """
        installed = self.deliver_fn(direction)
        if getattr(installed, "__func__", None) is not func:
            return False
        batch = self._deliver_batch[direction]
        if batch is None:
            return True
        return (batch_func is not None
                and getattr(batch, "__func__", None) is batch_func)

    def wrap_deliver(self, direction: int,
                     wrapper: Callable[[Callable[..., Any]],
                                       Callable[..., Any]]) -> bool:
        """Wrap the installed deliver function for *direction*.

        The profiling probes use this to interpose spans around stage
        processing without knowing anything about interface internals.
        Returns False (and does nothing) when no deliver function is
        installed for that direction — e.g. the unused side of an extreme
        stage.
        """
        inner = self.deliver_fn(direction)
        if inner is None:
            return False
        self.end[direction].deliver = wrapper(inner)
        # The wrapper must see every message: drop the vectorized
        # shortcut for this direction.
        self._deliver_batch[direction] = None
        if self.path is not None:
            self.path.chain_generation += 1
        return True

    # -- accounting -----------------------------------------------------------------

    def note_drop(self, msg: Any, reason: str, category: str = "drop") -> None:
        """Uniform discard bookkeeping for stage deliver functions: stamps
        ``msg.meta["drop_reason"]`` and, when the stage belongs to a live
        path, bumps the path's per-category drop counters."""
        if self.path is not None:
            self.path.note_drop(msg, reason, category)
        else:
            meta = getattr(msg, "meta", None)
            if meta is not None:
                meta["drop_reason"] = reason

    def modeled_size(self) -> int:
        """Modeled byte footprint of this stage including its interfaces."""
        total = self.MODELED_BYTES
        for iface in self.end:
            if iface is not None:
                total += type(iface).modeled_size()
        return total

    def __repr__(self) -> str:
        enter = self.enter_service.name if self.enter_service else "-"
        leave = self.exit_service.name if self.exit_service else "-"
        return f"<Stage {self.router.name} {enter}->{leave}>"


def brackets_downstream(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Mark a deliver function as *bracketing* its downstream call.

    A deliver function is flatten-safe when it tail-returns
    ``forward(...)`` — nothing of it remains on the stack while later
    stages run.  A function that does work *after* the downstream call
    returns, or holds a try/except around it (fault containment,
    whole-traversal probes), relies on the recursive nesting and must not
    be flattened past: :meth:`Path.compile_chains` stops compiling at a
    marked function and lets it recurse through the rest of the chain.

    Wrappers that re-wrap a marked function must propagate the mark
    (see :func:`propagate_bracket`).
    """
    fn._brackets_downstream = True  # type: ignore[attr-defined]
    return fn


def propagate_bracket(inner: Callable[..., Any],
                      outer: Callable[..., Any]) -> Callable[..., Any]:
    """Copy the bracketing mark from *inner* onto *outer* — for wrappers
    (fault injectors, probes) that interpose on an arbitrary deliver
    function and must not let a marked one be flattened."""
    if getattr(inner, "_brackets_downstream", False):
        outer._brackets_downstream = True  # type: ignore[attr-defined]
    return outer


class _Trampoline:
    """Thread-of-control state for compiled chain execution.

    The compiled fast path (:func:`run_compiled`) executes a path's
    deliver functions in a tight loop instead of letting each stage
    recurse through :func:`forward`.  Stage code is unchanged — it still
    calls ``forward(iface, msg, d)`` — so the loop and ``forward``
    cooperate through this module-level state: while the loop is running
    stage *k*, a forward from stage *k*'s interface is *deferred* (the
    message is parked and a sentinel returned) and the loop picks it up
    as the input to stage *k+1*.  Any other forward (turn-arounds,
    cross-path delivery, nested traversals) misses the identity check and
    takes the normal recursive route.

    The simulation is single-threaded, so one module-level instance
    suffices; nested compiled traversals save and restore it.
    """

    __slots__ = ("expected", "direction", "pending")

    def __init__(self) -> None:
        self.expected: Optional[Iface] = None  # iface whose forward defers
        self.direction = -1
        self.pending: Optional[tuple] = None   # parked (msg, kwargs)


_TRAMPOLINE = _Trampoline()


class _Deferred:
    def __repr__(self) -> str:  # pragma: no cover
        return "<forward deferred to compiled loop>"


#: Sentinel returned by :func:`forward` when the compiled loop will carry
#: the message to the next stage instead of recursing.
DEFERRED = _Deferred()


def forward(iface: Iface, msg: Any, direction: int,
            **kwargs: Any) -> Any:
    """Forward *msg* from *iface* to the next interface in its direction.

    When there is no next interface the message has reached the path's
    end; the caller (normally an extreme stage's deliver function) is
    responsible for enqueueing it, so reaching this case from an interior
    stage is a wiring bug and raised as such.

    Under compiled execution (:func:`run_compiled`) a forward from the
    currently executing stage is deferred to the tight loop rather than
    recursing — stage code cannot tell the difference.
    """
    t = _TRAMPOLINE
    if iface is t.expected and direction == t.direction:
        if t.pending is None:
            t.pending = (msg, kwargs)
            return DEFERRED
        # Fan-out: the stage forwards more than one message per call
        # (e.g. IP emitting several fragments).  Flush the earlier one
        # down the rest of the chain recursively so wire order is
        # preserved, then defer the newest.
        earlier_msg, earlier_kwargs = t.pending
        t.pending = None
        t.expected = None
        try:
            nxt = iface.next
            if nxt is not None:
                nxt.deliver(nxt, earlier_msg, direction, **earlier_kwargs)
        finally:
            t.expected = iface
        t.pending = (msg, kwargs)
        return DEFERRED
    nxt = iface.next
    if nxt is None:
        raise RuntimeError(
            f"{iface!r} has no next interface; interior stages must be "
            f"chained before delivery")
    return nxt.deliver(nxt, msg, direction, **kwargs)


def run_compiled(chain: tuple, msg: Any, direction: int,
                 kwargs: dict) -> Any:
    """Execute a precompiled ``((iface, fn, intercept, fn_batch), ...)``
    chain as a tight loop.

    Each stage's deliver function runs exactly as it would recursively;
    its own ``forward`` call is intercepted (see :class:`_Trampoline`)
    and the parked message becomes the next iteration's input.  A stage
    that does *not* forward — absorb, drop, turn-around — terminates the
    loop and its return value is the traversal's result, matching the
    recursive semantics of delivery functions that tail-return
    ``forward(...)``.

    An entry with ``intercept`` false is always last: its function
    brackets the rest of the chain (see :func:`brackets_downstream`) and
    is executed without interception, so its downstream forward recurses
    through the remaining stages inside its dynamic extent.
    """
    t = _TRAMPOLINE
    saved = (t.expected, t.direction, t.pending)
    t.direction = direction
    # The outer finally restores all trampoline state even when a stage
    # function raises mid-loop, so the loop body itself stays bare — on
    # the hot path every statement is paid once per stage.
    try:
        for iface, fn, intercept, _fn_batch in chain:
            if not intercept:
                # Bracketing stage: run it recursively so downstream
                # stages execute inside its frame (containment, probes).
                t.expected = None
                return fn(iface, msg, direction, **kwargs)
            t.expected = iface
            t.pending = None
            result = fn(iface, msg, direction, **kwargs)
            parked = t.pending
            if parked is None:
                t.expected = None
                return result  # absorbed / dropped / turned around / end
            msg, kwargs = parked
        # Only reachable when the final stage forwarded: mirror the
        # recursive path's wiring-bug diagnosis.
        raise RuntimeError(
            f"{chain[-1][0]!r} has no next interface; interior stages must "
            f"be chained before delivery")
    finally:
        t.expected, t.direction, t.pending = saved


def run_compiled_batch(chain: tuple, msgs: Any, direction: int,
                       kwargs: dict) -> list:
    """Execute a precompiled chain for a whole run of messages.

    The trampoline state is saved and restored **once per batch** instead
    of once per message — the batched analogue of :func:`run_compiled`.

    Execution is **stage-major while it can be**: as long as the next
    chain entry carries a vectorized deliver function (see
    :meth:`Stage.set_deliver_batch`) and that function accepts the run,
    the whole run crosses the stage in one call.  At the first stage
    with no batch function — or whose batch function declines by
    returning ``None`` (e.g. a message in the run lacks the
    validated-flow annotation) — execution switches to message-major:
    each surviving message runs to completion through the remaining
    stages, one at a time, in order.  Both regimes preserve arrival
    order and per-message semantics — absorption, turn-arounds, fan-out
    flushes, drop accounting — exactly as delivering each message
    individually would.

    A stage that cannot be flattened (``intercept`` false: fault
    containment, whole-chain probes) falls back to per-message recursion
    exactly as in :func:`run_compiled` — the vectorization fallback rule.

    Returns the list of per-message traversal results, in order.
    Messages consumed inside a vectorized stage (absorbed, dropped, or
    deposited by the stage itself) contribute ``None`` entries.
    """
    t = _TRAMPOLINE
    saved = (t.expected, t.direction, t.pending)
    t.direction = direction
    results = []
    try:
        # Stage-major prologue: drive whole runs through consecutive
        # vectorized stages.  Batch functions never call forward(), so
        # the trampoline must not expect a deferral while they run.
        t.expected = None
        start = 0
        run = msgs
        while start < len(chain):
            iface, fn, intercept, fn_batch = chain[start]
            if fn_batch is None or not intercept:
                break
            out = fn_batch(iface, run, direction, **kwargs)
            if out is None:
                break  # declined: per-message from this stage on
            start += 1
            if len(out) != len(run):
                results.extend([None] * (len(run) - len(out)))
            run = out
            if not run:
                return results  # the whole run was consumed
        else:
            # Every stage vectorized yet messages survived the last one:
            # the final stage forwarded with no next interface.
            raise RuntimeError(
                f"{chain[-1][0]!r} has no next interface; interior "
                f"stages must be chained before delivery")
        remaining = chain[start:] if start else chain
        for msg in run:
            kw = kwargs
            for iface, fn, intercept, _fn_batch in remaining:
                if not intercept:
                    # Bracketing stage: recurse so downstream stages run
                    # inside its frame (containment, probes).
                    t.expected = None
                    results.append(fn(iface, msg, direction, **kw))
                    break
                t.expected = iface
                t.pending = None
                result = fn(iface, msg, direction, **kw)
                parked = t.pending
                if parked is None:
                    t.expected = None
                    results.append(result)  # absorbed / dropped / turned
                    break
                msg, kw = parked
            else:
                raise RuntimeError(
                    f"{chain[-1][0]!r} has no next interface; interior "
                    f"stages must be chained before delivery")
    finally:
        t.expected, t.direction, t.pending = saved
    return results


def turn_around(iface: Iface, msg: Any, direction: int,
                **kwargs: Any) -> Any:
    """Send *msg* back in the opposite direction (Section 2.4.1).

    Follows the interface's ``back`` pointer — "the next interface in the
    opposite direction" — so processing resumes at the neighbouring stage
    on the side the message came from, now traveling the other way.
    """
    back = iface.back
    if back is None:
        raise RuntimeError(f"{iface!r} has no back interface; cannot turn around")
    return back.deliver(back, msg, opposite(direction), **kwargs)
