"""Interfaces and service types.

Section 3.1/3.2 of the paper:

* every router *service* has a type, and a service type "consists of a pair
  of interface types: the first element in this pair specifies what
  interface the service provides whereas the second element specifies the
  interface that the service requires";
* "Scout supports simple single inheritance for interface types ... the
  precise rule used to decide whether a pair of services can be connected
  in a router graph is that the interfaces provided must be identical to or
  more specific than the interfaces required";
* the most primitive interface has just ``next``, ``back``, and ``stage``
  pointers — all real interfaces add members such as ``deliver``.

The Python rendering keeps this structure literally: interface types are
classes (single inheritance enforced), interfaces are instances chained by
``next``/``back``, and ``ServiceType`` holds the provides/requires pair.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Type

from .errors import ServiceTypeError


class Iface:
    """The most primitive interface (paper's ``struct Iface``).

    Attributes
    ----------
    next:
        Next interface when traversing the path in this interface's
        direction.
    back:
        Next interface in the *opposite* direction, used to "turn around"
        the data flow inside a path (Section 2.4.1).
    stage:
        The stage this interface belongs to.
    """

    __slots__ = ("next", "back", "stage")

    #: Modeled C footprint of the bare interface struct: three pointers on
    #: a 64-bit Alpha.  Subclasses add their own member sizes; Section 3.6's
    #: ~150-byte stages include the interfaces, which this accounting
    #: reproduces.
    MODELED_BYTES = 3 * 8

    def __init__(self, stage: Optional[Any] = None):
        self.next: Optional[Iface] = None
        self.back: Optional[Iface] = None
        self.stage = stage

    @classmethod
    def modeled_size(cls) -> int:
        """Modeled struct size in bytes, summed over the inheritance chain."""
        total = 0
        for klass in cls.__mro__:
            total += getattr(klass, "__dict__", {}).get("MODELED_BYTES", 0)
        return total

    def __repr__(self) -> str:
        owner = getattr(self.stage, "router", None)
        owner_name = getattr(owner, "name", "?")
        return f"<{type(self).__name__} of {owner_name}>"


class NetIface(Iface):
    """Asynchronous message-exchange interface (filters and protocols).

    ``deliver(iface, msg, direction)`` hands a message to the stage that
    owns *iface*; the stage processes it and normally forwards to
    ``iface.next`` (or ``iface.back`` when turning the message around).
    """

    __slots__ = ("deliver",)
    MODELED_BYTES = 8  # one function pointer

    def __init__(self, stage: Optional[Any] = None,
                 deliver: Optional[Callable[..., Any]] = None):
        super().__init__(stage)
        self.deliver = deliver


class RtNetIface(NetIface):
    """A realtime-capable network interface.

    Exists to exercise the single-inheritance compatibility rule: a service
    that *provides* ``RtNetIface`` may be connected where ``NetIface`` is
    *required*, but not the other way around.  Adds the deadline hint a
    realtime consumer may attach to deliveries.
    """

    __slots__ = ("deadline_hint",)
    MODELED_BYTES = 8

    def __init__(self, stage: Optional[Any] = None,
                 deliver: Optional[Callable[..., Any]] = None):
        super().__init__(stage, deliver)
        self.deadline_hint: Optional[float] = None


class NsIface(Iface):
    """Name-service interface (ARP's resolver in Figure 6).

    ``resolve(iface, name)`` maps a protocol address to a lower-level
    address (IP address -> Ethernet address).
    """

    __slots__ = ("resolve",)
    MODELED_BYTES = 8

    def __init__(self, stage: Optional[Any] = None,
                 resolve: Optional[Callable[..., Any]] = None):
        super().__init__(stage)
        self.resolve = resolve


class WinIface(Iface):
    """Window-manager interface (mentioned in Section 3.2).

    Provides frame presentation; the DISPLAY router implements it.
    """

    __slots__ = ("present", "query_refresh")
    MODELED_BYTES = 16

    def __init__(self, stage: Optional[Any] = None,
                 present: Optional[Callable[..., Any]] = None,
                 query_refresh: Optional[Callable[..., Any]] = None):
        super().__init__(stage)
        self.present = present
        self.query_refresh = query_refresh


class FsIface(Iface):
    """File-system interface (mentioned in Section 3.2).

    Enough for the Figure 3 web-server graph (HTTP -> VFS -> UFS ->
    SCSI): ``deliver`` moves request/reply messages along the path (file
    paths are message-driven like network paths), while ``read``/``write``
    are the synchronous service-level entry points a non-path caller may
    use.
    """

    __slots__ = ("deliver", "read", "write")
    MODELED_BYTES = 24

    def __init__(self, stage: Optional[Any] = None,
                 deliver: Optional[Callable[..., Any]] = None,
                 read: Optional[Callable[..., Any]] = None,
                 write: Optional[Callable[..., Any]] = None):
        super().__init__(stage)
        self.deliver = deliver
        self.read = read
        self.write = write


def iface_satisfies(provided: Type[Iface], required: Type[Iface]) -> bool:
    """Return True when *provided* is identical to or more specific than
    *required* (the paper's connection rule)."""
    return issubclass(provided, required)


class ServiceType:
    """A named pair ``<provides, requires>`` of interface types.

    The paper's example::

        servicetype net = <NetIface, NetIface>;
    """

    __slots__ = ("name", "provides", "requires")

    _registry: Dict[str, "ServiceType"] = {}

    def __init__(self, name: str, provides: Type[Iface], requires: Type[Iface],
                 register: bool = True):
        if not (isinstance(provides, type) and issubclass(provides, Iface)):
            raise ServiceTypeError(f"{name}: provides must be an Iface subclass")
        if not (isinstance(requires, type) and issubclass(requires, Iface)):
            raise ServiceTypeError(f"{name}: requires must be an Iface subclass")
        self.name = name
        self.provides = provides
        self.requires = requires
        if register:
            ServiceType._registry[name] = self

    @classmethod
    def lookup(cls, name: str) -> "ServiceType":
        """Return the registered service type called *name*.

        Spec files reference service types by name; this is how the
        configuration tool resolves them.
        """
        try:
            return cls._registry[name]
        except KeyError:
            known = ", ".join(sorted(cls._registry)) or "(none)"
            raise ServiceTypeError(
                f"unknown service type {name!r}; known types: {known}"
            ) from None

    @classmethod
    def registered(cls) -> Dict[str, "ServiceType"]:
        """Return a copy of the registry (for introspection and tests)."""
        return dict(cls._registry)

    def compatible_with(self, other: "ServiceType") -> bool:
        """Can a service of this type be connected to one of *other*'s type?

        Both directions must satisfy the provided-vs-required rule: what I
        provide must satisfy what the peer requires, and vice versa.
        """
        return (iface_satisfies(self.provides, other.requires)
                and iface_satisfies(other.provides, self.requires))

    def __repr__(self) -> str:
        return (f"ServiceType({self.name!r}, provides={self.provides.__name__}, "
                f"requires={self.requires.__name__})")


#: The standard service types used by the demonstration graphs.  ``net`` is
#: symmetric exactly as in the paper; ``rtnet`` provides the more specific
#: realtime interface; ``nsProvider``/``nsClient`` model the asymmetric
#: ARP resolver edge of Figure 6; ``win`` and ``fs`` cover DISPLAY and the
#: Figure 3 storage stack; ``dev`` is the device-facing edge of drivers.
NET = ServiceType("net", NetIface, NetIface)
RTNET = ServiceType("rtnet", RtNetIface, NetIface)
NS_PROVIDER = ServiceType("nsProvider", NsIface, Iface)
NS_CLIENT = ServiceType("nsClient", Iface, NsIface)
WIN = ServiceType("win", WinIface, Iface)
WIN_CLIENT = ServiceType("winClient", Iface, WinIface)
FS = ServiceType("fs", FsIface, Iface)
FS_CLIENT = ServiceType("fsClient", Iface, FsIface)
DEV = ServiceType("dev", NetIface, NetIface)
