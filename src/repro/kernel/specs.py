"""Spec-file texts for the paper's two system configurations.

The Scout kernel builds its graph programmatically (it must wire devices
and framebuffers as it goes), but the same configurations are expressible
in the spec-file language — these are the texts, used by documentation,
examples, and the parity tests that keep them truthful.
"""

#: Figure 9: the MPEG appliance (plus ARP and ICMP, which the evaluation
#: uses but the figure omits).
FIG9_SPEC = """
# Figure 9 -- router graph for the MPEG example
router ETH     { class = EthRouter;     service = {up:net};
                 params = {mac: "02:00:00:00:00:01"}; }
router ARP     { class = ArpRouter;     service = {resolver:nsProvider, <down:net}; }
router IP      { class = IpRouter;      service = {up:net, <down:net, <res:nsClient};
                 params = {addr: "10.0.0.1"}; }
router UDP     { class = UdpRouter;     service = {up:net, <down:net}; }
router ICMP    { class = IcmpRouter;    service = {<down:net}; }
router MFLOW   { class = MflowRouter;   service = {up:net, <down:net}; }
router MPEG    { class = MpegRouter;    service = {up:net, <down:net}; }
router DISPLAY { class = DisplayRouter; service = {<down:net}; }
router SHELL   { class = ShellRouter;   service = {<down:net}; }

connect IP.down      ETH.up;
connect IP.res       ARP.resolver;
connect ARP.down     ETH.up;
connect UDP.down     IP.up;
connect ICMP.down    IP.up;
connect MFLOW.down   UDP.up;
connect MPEG.down    MFLOW.up;
connect DISPLAY.down MPEG.up;
connect SHELL.down   UDP.up;
"""

#: Figure 3: the web-server graph (single link layer; the paper's ATM and
#: FDDI boxes illustrate the multiple-lower-network case, which the IP
#: router handles by refusing to freeze the route — see
#: tests/integration/test_http_server.py).
FIG3_SPEC = """
# Figure 3 -- router graph for a web server
router HTTP { class = HttpRouter; service = {<net:net, <files:fsClient}; }
router TCP  { class = TcpRouter;  service = {up:net, <down:net}; }
router IP   { class = IpRouter;   service = {up:net, <down:net, <res:nsClient};
              params = {addr: "10.0.0.1"}; }
router ARP  { class = ArpRouter;  service = {resolver:nsProvider, <down:net}; }
router ETH  { class = EthRouter;  service = {up:net};
              params = {mac: "02:00:00:00:00:01"}; }
router VFS  { class = VfsRouter;  service = {up:fs, <mounts:fsClient}; }
router UFS  { class = UfsRouter;  service = {up:fs, <disk:fsClient}; }
router SCSI { class = ScsiRouter; service = {ops:fs};
              params = {sectors: 2048}; }

connect HTTP.net   TCP.up;
connect HTTP.files VFS.up;
connect TCP.down   IP.up;
connect IP.down    ETH.up;
connect IP.res     ARP.resolver;
connect ARP.down   ETH.up;
connect VFS.mounts UFS.up;
connect UFS.disk   SCSI.ops;
"""
