"""The Linux-like baseline kernel (the paper's comparison system).

This is *not* Linux; it is a model of the structural properties of a
conventional monolithic kernel circa 1996 that the paper's comparison
turns on:

* **no early demux** — every received packet gets its full protocol
  processing at interrupt (softirq) time, regardless of importance;
  "Linux handles ICMP and video packets identically inside the kernel",
  so an ICMP flood steals CPU from everything above it;
* **kernel/user boundary** — the decoder is a user process: packets are
  copied out of the kernel through a syscall, and every blocking receive
  costs a context switch;
* **window-system handoff** — the decoded, dithered frame is copied to
  the display server (two context switches and a full-frame copy per
  frame), the dominant structural cost behind Table 1's gap;
* **single-class scheduling** — all decoder processes run at the same
  round-robin priority; there is no per-stream deadline scheduling.

Everything else — decoder, MFLOW protocol behaviour, framebuffer, cost
model for decode/display proper — is shared with the Scout kernel, so
the comparison isolates structure, exactly as the paper intends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import params
from ..core.queues import PathQueue
from ..display.framebuffer import Framebuffer
from ..mpeg.clips import ClipProfile
from ..mpeg.cost import linux_frame_handoff_us
from ..mpeg.decoder import MpegDecoder
from ..net.addresses import EthAddr, IpAddr
from ..net.headers import IcmpHeader, MflowHeader
from ..net.packets import build_icmp_echo, build_mflow_frame, parse_frame
from ..net.segment import EtherSegment, NetDevice
from ..sim.threads import Compute, Dequeue, WaitSpace, YIELD
from ..sim.world import POLICY_RR, SimWorld

#: Per-packet kernel receive cost at softirq time (beyond the IRQ):
#: generic input queueing plus ETH+IP handling.
_RX_KERNEL_US = (params.LINUX_SOFTIRQ_US + params.ETH_PROC_US
                 + params.IP_PROC_US)


class LinuxSocket:
    """A UDP socket: kernel-side receive buffer + owner bookkeeping."""

    def __init__(self, port: int, maxlen: int = 32):
        self.port = port
        self.queue = PathQueue(maxlen=maxlen, name=f"sock{port}")
        self.drops = 0


class LinuxVideoSession:
    """Handle on one running decoder process."""

    def __init__(self, profile: ClipProfile, socket: LinuxSocket,
                 sink, thread):
        self.profile = profile
        self.socket = socket
        self.sink = sink
        self.thread = thread

    @property
    def frames_presented(self) -> int:
        return self.sink.presented

    @property
    def missed_deadlines(self) -> int:
        return self.sink.missed_deadlines

    def achieved_fps(self) -> float:
        return self.sink.achieved_fps()


class LinuxKernel:
    """The conventional-kernel baseline on the same substrate."""

    def __init__(self, world: SimWorld, segment: EtherSegment,
                 local_mac: str = "02:00:00:00:00:01",
                 local_ip: str = "10.0.0.1",
                 rate_limited_display: bool = True,
                 vsync_hz: float = params.VSYNC_HZ):
        self.world = world
        self.segment = segment
        self.mac = EthAddr(local_mac)
        self.addr = IpAddr(local_ip)
        self.device = NetDevice(self.mac, world.cpu, name="eth0",
                                irq_us=params.LINUX_IRQ_OVERHEAD_US)
        segment.attach(self.device)
        self.framebuffer = Framebuffer(world.engine, world.cpu,
                                       vsync_hz=vsync_hz,
                                       rate_limited=rate_limited_display)
        self.framebuffer.start()
        self.sockets: Dict[int, LinuxSocket] = {}
        self.sessions: List[LinuxVideoSession] = []
        # statistics
        self.icmp_served = 0
        self.rx_no_socket = 0
        self.rx_socket_overflow = 0
        self.rx_other_dropped = 0

        self.device.rx_handler = self._rx

    # ------------------------------------------------------------------
    # Interrupt-time receive: the kernel processes EVERY packet fully,
    # in arrival order, before any user work can run.
    # ------------------------------------------------------------------

    def _rx(self, frame: bytes) -> None:
        cpu = self.world.cpu
        parsed = parse_frame(frame)
        if parsed.ip is None or parsed.ip.dst != self.addr:
            cpu.extend_interrupt(_RX_KERNEL_US)
            self.rx_other_dropped += 1
            return
        if parsed.icmp is not None:
            self._serve_icmp(parsed)
            return
        if parsed.udp is not None:
            cpu.extend_interrupt(_RX_KERNEL_US + params.UDP_PROC_US)
            socket = self.sockets.get(parsed.udp.dport)
            if socket is None:
                self.rx_no_socket += 1
                return
            # Store the payload past ETH+IP+UDP; the app reads it out.
            payload = frame[14 + 20 + 8:]
            if not socket.queue.try_enqueue(payload):
                self.rx_socket_overflow += 1
            return
        cpu.extend_interrupt(_RX_KERNEL_US)
        self.rx_other_dropped += 1

    def _serve_icmp(self, parsed) -> None:
        """Echo served entirely at interrupt level — the kernel answers
        floods at the expense of whatever was running."""
        cpu = self.world.cpu
        cost = (_RX_KERNEL_US + params.LINUX_ICMP_PROC_US
                + params.IP_PROC_US + params.ETH_PROC_US
                + params.LINUX_TX_DRIVER_US)
        cpu.extend_interrupt(cost)
        if parsed.icmp.icmp_type != IcmpHeader.ECHO_REQUEST:
            return
        self.icmp_served += 1
        reply = build_icmp_echo(self.mac, parsed.eth.src, self.addr,
                                parsed.ip.src, parsed.icmp.ident,
                                parsed.icmp.seq, reply=True,
                                payload=parsed.payload)
        self.device.send(reply)

    # ------------------------------------------------------------------
    # The decoder application (user space)
    # ------------------------------------------------------------------

    def open_socket(self, port: int, maxlen: int = 32) -> LinuxSocket:
        if port in self.sockets:
            raise ValueError(f"port {port} already bound")
        socket = LinuxSocket(port, maxlen=maxlen)
        self.sockets[port] = socket
        return socket

    def start_video(self, profile: ClipProfile, remote: Tuple[str, int],
                    local_port: int, fps: Optional[float] = None,
                    inq_len: int = 32, outq_len: int = 32,
                    priority: int = 0) -> LinuxVideoSession:
        socket = self.open_socket(local_port, maxlen=inq_len)
        display_queue = PathQueue(maxlen=outq_len,
                                  name=f"xdisplay{local_port}")
        sink = self.framebuffer.add_sink(
            f"sock{local_port}", display_queue,
            fps if fps is not None else profile.fps)
        thread = self.world.spawn(
            self._decoder_process(profile, socket, display_queue, remote,
                                  local_port),
            name=f"mpeg_play:{local_port}", policy=POLICY_RR,
            priority=priority)
        session = LinuxVideoSession(profile, socket, sink, thread)
        self.sessions.append(session)
        return session

    def _decoder_process(self, profile: ClipProfile, socket: LinuxSocket,
                         display_queue: PathQueue, remote: Tuple[str, int],
                         local_port: int):
        decoder = MpegDecoder(profile)
        next_expected = 0
        remote_ip = IpAddr(remote[0])
        remote_mac = self._resolve(remote_ip)
        while True:
            blocked = socket.queue.is_empty()
            payload = yield Dequeue(socket.queue)
            yield WaitSpace(display_queue)
            # recvfrom(): syscall, copy out of the kernel, and a process
            # switch when the receive actually blocked.
            cost = (params.LINUX_SYSCALL_US
                    + len(payload) * params.LINUX_COPY_US_PER_BYTE)
            if blocked:
                cost += params.LINUX_CSWITCH_US
            # User-space MFLOW: sequencing + window advertisement.
            header = MflowHeader.unpack(payload[:MflowHeader.SIZE])
            body = payload[MflowHeader.SIZE:]
            cost += params.MFLOW_PROC_US
            frame = None
            if not header.is_window_adv and header.seq >= next_expected:
                next_expected = header.seq + 1
                result = decoder.feed(body)
                cost += result.cost_us
                frame = result.frame
                cost += self._send_window_adv(header, socket, remote_ip,
                                              remote_mac, remote[1],
                                              local_port, next_expected)
            if frame is not None and frame.complete:
                # Display: dither (same cost model as Scout) plus the
                # window-system handoff copy and context switches.
                cost += frame.display_cost_us
                cost += linux_frame_handoff_us(frame.pixels)
            yield Compute(cost)
            if frame is not None and frame.complete:
                yield from self._enqueue_frame(display_queue, frame)
            yield YIELD

    def _enqueue_frame(self, display_queue: PathQueue, frame):
        from ..sim.threads import Enqueue

        yield Enqueue(display_queue, frame)

    def _send_window_adv(self, header: MflowHeader, socket: LinuxSocket,
                         remote_ip: IpAddr, remote_mac: EthAddr,
                         remote_port: int, local_port: int,
                         next_expected: int) -> float:
        """sendto() of the advertisement; returns its CPU cost."""
        free = socket.queue.free_slots
        if free is None:
            free = 64
        frame = build_mflow_frame(self.mac, remote_mac, self.addr,
                                  remote_ip, local_port, remote_port,
                                  next_expected + free,
                                  header.timestamp_us, b"",
                                  window=free,
                                  flags=MflowHeader.FLAG_WINDOW_ADV)
        self.device.send(frame)
        return (params.LINUX_SYSCALL_US + params.UDP_PROC_US
                + params.IP_PROC_US + params.ETH_PROC_US
                + params.LINUX_TX_DRIVER_US)

    def _resolve(self, ip: IpAddr) -> EthAddr:
        for endpoint in self.segment.endpoints():
            if getattr(endpoint, "ip", None) == ip:
                return endpoint.mac
        return EthAddr.BROADCAST

    def stats(self) -> Dict[str, float]:
        return {
            "icmp_served": self.icmp_served,
            "rx_no_socket": self.rx_no_socket,
            "rx_socket_overflow": self.rx_socket_overflow,
            "cpu_compute_us": self.world.cpu.compute_us,
            "cpu_interrupt_us": self.world.cpu.interrupt_us,
        }

    def __repr__(self) -> str:
        return f"<LinuxKernel {self.addr} sessions={len(self.sessions)}>"
