"""Standard path transformation rules for the Scout kernel.

Two rules straight out of the paper:

* **fuse-udp-checksum-into-mpeg** (Section 4.1): "it would be
  straight-forward to integrate the (optional) UDP checksum with the
  reading of the MPEG data.  This would require a path-transformation
  rule that matches for MPEG being run directly on top of UDP [through
  MFLOW]."  The rule disables UDP's separate verification pass and
  charges a fused (single-pass) cost inside MPEG's read instead — the
  classic ILP saving: one traversal of the payload instead of two.

* **measure-proc-time** (Section 4.2): "the initial function in the
  ETH-stage of the router is modified to measure processing time and to
  update the path attribute that keeps track of the average processing
  time."  The rule attaches a traversal probe at the path boundary —
  since ETH is the BWD entry stage, the cost delta observed around the
  whole traversal is exactly what wrapping ETH's initial function would
  see, but the probe stays outside the stage chain so the chain remains
  compilable (and specializable, DESIGN.md §15).
"""

from __future__ import annotations

from .. import params
from ..core.attributes import PA_AVG_PROC_TIME
from ..core.stage import BWD, brackets_downstream
from ..core.transform import TransformRegistry, TransformRule, all_of, traverses
from ..mpeg.router import PA_VIDEO_PROFILE
from ..net.common import charge

#: Fused checksum touches the payload once inside the decoder's existing
#: read loop instead of in a separate pass: model it at half the
#: stand-alone per-byte cost.
FUSED_CHECKSUM_FACTOR = 0.5

#: Attribute recording that the fusion rule rewired this path.
PA_CHECKSUM_FUSED = "_checksum_fused"


def _udp_checksum_enabled(path) -> bool:
    try:
        stage = path.stage_of("UDP")
    except KeyError:
        return False
    return getattr(stage, "use_checksum", False)


def make_fuse_checksum_rule() -> TransformRule:
    guard = all_of(traverses("MPEG", "MFLOW", "UDP"), _udp_checksum_enabled)

    def fuse(path) -> None:
        udp_stage = path.stage_of("UDP")
        mpeg_stage = path.stage_of("MPEG")
        udp_stage.use_checksum = False  # drop the separate pass
        original = mpeg_stage.deliver_fn(BWD)

        def fused_decode(iface, msg, direction, **kwargs):
            # The checksum rides along with MPEG's bit-level read.
            charge(msg, len(msg) * params.CHECKSUM_US_PER_BYTE
                   * FUSED_CHECKSUM_FACTOR)
            msg.meta["checksum_fused"] = True
            return original(iface, msg, direction, **kwargs)

        mpeg_stage.set_deliver(BWD, fused_decode)
        path.attrs[PA_CHECKSUM_FUSED] = True

    return TransformRule("fuse-udp-checksum-into-mpeg", guard, fuse)


def make_measure_proc_time_rule() -> TransformRule:
    def guard(path) -> bool:
        return PA_VIDEO_PROFILE in path.attrs and "ETH" in path.routers()

    def install_probe(path) -> None:
        # ETH is the path's BWD entry stage, so a probe at the path
        # boundary observes the same accumulated-cost delta the paper's
        # "initial function in the ETH-stage" modification would — while
        # leaving every deliver pointer untouched, which keeps the chain
        # compilable and specializable.
        def measured(msg, elapsed_us):
            path.stats.record_proc_time(elapsed_us)
            path.attrs[PA_AVG_PROC_TIME] = path.stats.avg_proc_time_us

        path.add_traversal_probe(BWD, measured)

    return TransformRule("measure-proc-time", guard, install_probe)


def make_fault_isolation_rule() -> TransformRule:
    """Per-router fault domains on top of paths (Section 3.6's direction:
    "software-based fault isolation (SFI) could be imposed on top of paths
    by defining each router to be in a separate fault domain").

    Every stage's deliver functions are wrapped so that an exception
    escaping one router's code is confined to that delivery: the message
    is dropped, the fault is recorded on the path, and the rest of the
    system keeps running.  This is semantically transparent for correct
    routers — exactly what a transformation rule is allowed to be.
    """

    def guard(path) -> bool:
        return bool(path.attrs.get(PA_FAULT_ISOLATION))

    def isolate(path) -> None:
        for stage in path.stages:
            for direction in (0, 1):
                original = stage.deliver_fn(direction)
                if original is None:
                    continue

                # Containment catches exceptions thrown by *downstream*
                # routers via the recursive nesting, so the chain below
                # must execute inside this try block — never flattened.
                @brackets_downstream
                def contained(iface, msg, d, _orig=original,
                              _stage=stage, **kwargs):
                    try:
                        return _orig(iface, msg, d, **kwargs)
                    except Exception as exc:  # the fault boundary
                        faults = path.attrs.get("_router_faults")
                        if faults is None:
                            faults = path.attrs["_router_faults"] = []
                        faults.append((_stage.router.name,
                                       f"{type(exc).__name__}: {exc}"))
                        path.note_drop(
                            msg, f"fault in {_stage.router.name}: {exc}",
                            "fault_isolation")
                        return None

                stage.set_deliver(direction, contained)

    return TransformRule("isolate-router-faults", guard, isolate)


#: Request per-router fault domains for a path (Section 3.6's SFI idea).
PA_FAULT_ISOLATION = "PA_FAULT_ISOLATION"


def default_transforms() -> TransformRegistry:
    """The rule set the Scout kernel applies to every created path."""
    return TransformRegistry([
        make_fuse_checksum_rule(),
        make_measure_proc_time_rule(),
        make_fault_isolation_rule(),
    ])
