"""Kernels: the Scout system under test and the Linux-like baseline."""

from .baseline import LinuxKernel, LinuxSocket, LinuxVideoSession
from .hosts import (
    CommandClientHost,
    PingFlooderHost,
    TcpSinkHost,
    VideoSourceHost,
)
from .router import RouterKernel, RouterPort
from .scout import ScoutKernel, VideoSession
from .specs import FIG3_SPEC, FIG9_SPEC
from .transforms import (
    PA_CHECKSUM_FUSED,
    PA_FAULT_ISOLATION,
    default_transforms,
    make_fault_isolation_rule,
    make_fuse_checksum_rule,
    make_measure_proc_time_rule,
)

__all__ = [
    "ScoutKernel", "VideoSession",
    "RouterKernel", "RouterPort",
    "LinuxKernel", "LinuxSocket", "LinuxVideoSession",
    "VideoSourceHost", "PingFlooderHost", "CommandClientHost",
    "TcpSinkHost",
    "default_transforms", "make_fuse_checksum_rule",
    "make_measure_proc_time_rule", "make_fault_isolation_rule",
    "PA_CHECKSUM_FUSED", "PA_FAULT_ISOLATION",
    "FIG9_SPEC", "FIG3_SPEC",
]
