"""The Scout kernel: the Figure 9 configuration, booted and running.

Wires the router graph (DISPLAY / MPEG / MFLOW / SHELL / UDP / IP / ETH
plus ARP and ICMP), attaches the NIC and framebuffer, and implements the
two runtime behaviours that define Scout:

* **interrupt-time classification** — every received frame is classified
  at interrupt level and deposited directly on its path's input queue
  ("since each video path has its own input queue and since the packet
  classifier is run at interrupt time, newly arriving packets are
  immediately placed in the correct queue"), or dropped right there when
  no path wants it (early discard);
* **per-path threads under per-path scheduling** — each path's thread
  dequeues, traverses the path, and pays the accumulated CPU cost; the
  path's ``wakeup`` callback imposes EDF deadlines (or RR priority) on
  every wakeup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import params
from ..core.attributes import (
    PA_BATCH,
    PA_FRAME_RATE,
    PA_INQ_LEN,
    PA_NET_PARTICIPANTS,
    PA_OUTQ_LEN,
    PA_PATHNAME,
    PA_SCHED_POLICY,
    PA_SCHED_PRIORITY,
    PA_SPECIALIZE,
    PA_TRACE,
    Attrs,
)
from ..core.classify import ClassifierStats, classify, classify_batch
from ..core.flowcache import VALIDATED_STAMPS, FlowCache
from ..core.graph import RouterGraph
from ..core.message import Msg
from ..core.path import DELETED, Path
from ..core.path_create import AdmissionHook, path_create
from ..core.stage import BWD
from ..core.transform import TransformRegistry
from ..display.framebuffer import Framebuffer
from ..display.router import DisplayRouter
from ..mpeg.clips import ClipProfile, PACKET_HEADER_SIZE
from ..mpeg.decoder import peek_packet_header
from ..mpeg.router import PA_FRAME_SKIP, PA_VIDEO_PROFILE, MpegRouter
from ..net.addresses import EthAddr, IpAddr
from ..net.arp import ArpRouter
from ..net.common import PA_LOCAL_PORT, PA_UDP_CHECKSUM, charge, take_cost
from ..net.eth import EthRouter
from ..net.headers import EthHeader, IpHeader, UdpHeader, MflowHeader
from ..net.icmp import IcmpRouter
from ..net.ip import PA_IP_CATCHALL, IpRouter
from ..net.mflow import MflowRouter
from ..net.segment import EtherSegment, NetDevice
from ..multipath import MEMBER_REMOVED, PathGroup
from ..net.udp import UdpRouter
from ..observe import Observatory
from ..shell.router import ShellRouter
from ..sim.threads import Compute, Dequeue, DequeueBatch, WaitSpace, YIELD
from ..sim.world import POLICY_EDF, POLICY_RR, SimWorld
from .transforms import default_transforms

#: Byte offset of the MPEG packet header in a full video frame:
#: ETH(14) + IP(20) + UDP(8) + MFLOW(12).
_MPEG_HEADER_OFFSET = (EthHeader.SIZE + IpHeader.SIZE + UdpHeader.SIZE
                       + MflowHeader.SIZE)


class VideoSession:
    """Handle on one running video path."""

    def __init__(self, path: Path, profile: ClipProfile, local_port: int,
                 sink, thread):
        self.path = path
        self.profile = profile
        self.local_port = local_port
        self.sink = sink
        self.thread = thread

    @property
    def frames_presented(self) -> int:
        return self.sink.presented

    @property
    def missed_deadlines(self) -> int:
        return self.sink.missed_deadlines

    def achieved_fps(self) -> float:
        return self.sink.achieved_fps()

    def __repr__(self) -> str:
        return (f"<VideoSession {self.profile.name} path#{self.path.pid} "
                f"presented={self.frames_presented}>")


class VideoSessionGroup:
    """Handle on a fanned-out video: one flow, N parallel MPEG paths.

    The member paths share a local port; the UDP demux anchor is the
    first live member and the group's selection policy (plus frame-number
    affinity, so a frame's packets reassemble on one member) spreads the
    packets.  Presented frames are the sum over members — each member
    drives its own framebuffer sink.
    """

    def __init__(self, group: PathGroup, sessions: List[VideoSession],
                 profile: ClipProfile, local_port: int):
        self.group = group
        self.sessions = sessions
        self.profile = profile
        self.local_port = local_port

    @property
    def paths(self) -> List[Path]:
        return [s.path for s in self.sessions]

    @property
    def frames_presented(self) -> int:
        return sum(s.frames_presented for s in self.sessions)

    @property
    def missed_deadlines(self) -> int:
        return sum(s.missed_deadlines for s in self.sessions)

    def achieved_fps(self) -> float:
        return sum(s.achieved_fps() for s in self.sessions)

    def __repr__(self) -> str:
        return (f"<VideoSessionGroup {self.profile.name} "
                f"gid={self.group.gid} members={len(self.sessions)} "
                f"presented={self.frames_presented}>")


class ScoutKernel:
    """A booted Scout system on the virtual machine."""

    def __init__(self, world: SimWorld, segment: Optional[EtherSegment],
                 local_mac: str = "02:00:00:00:00:01",
                 local_ip: str = "10.0.0.1",
                 rate_limited_display: bool = True,
                 transforms: Optional[TransformRegistry] = None,
                 admission: Optional[AdmissionHook] = None,
                 icmp_priority: int = 1,
                 inline_icmp: bool = False,
                 vsync_hz: float = params.VSYNC_HZ,
                 flow_cache_capacity: int = 128,
                 specialize: Optional[bool] = None,
                 udp_sink: bool = False,
                 display: bool = True,
                 device=None):
        self.world = world
        #: Kernel-wide default for the specialized execution tier
        #: (DESIGN.md §15), handed to every path_create below; a
        #: per-path ``PA_SPECIALIZE`` attribute still overrides it and
        #: ``None`` defers to the ``REPRO_SPECIALIZE`` environment
        #: default.
        self.specialize = specialize
        self.segment = segment
        self.transforms = transforms if transforms is not None \
            else default_transforms()
        self.admission = admission
        self.inline_icmp = inline_icmp
        #: Shared tracing + metrics substrate.  Dormant (no per-packet
        #: work) until some path is created with ``PA_TRACE``.
        self.observatory = Observatory(world.engine)

        # -- devices ------------------------------------------------------
        # The kernel is device-agnostic: by default it builds a
        # simulated NIC on *segment*, but a caller may hand in any
        # object with ``.mac`` and ``.send(frame)`` (the socket backend
        # passes a ``repro.net.sockdev.SocketNetDevice``) and drive
        # :meth:`rx_burst` itself.
        if device is not None:
            self.device = device
        else:
            if segment is None:
                raise ValueError(
                    "ScoutKernel needs either a segment (simulated "
                    "device) or an explicit device=")
            self.device = NetDevice(local_mac, world.cpu, name="eth0")
            segment.attach(self.device)
        self.framebuffer = Framebuffer(world.engine, world.cpu,
                                       vsync_hz=vsync_hz,
                                       rate_limited=rate_limited_display)

        # -- router graph (Figure 9 + ARP + ICMP) --------------------------
        self.graph = RouterGraph()
        self.eth = self.graph.add(EthRouter("ETH", mac=local_mac))
        self.arp = self.graph.add(ArpRouter("ARP"))
        self.ip = self.graph.add(IpRouter("IP", addr=local_ip))
        self.udp = self.graph.add(UdpRouter("UDP"))
        self.icmp = self.graph.add(IcmpRouter("ICMP"))
        self.mflow = self.graph.add(MflowRouter("MFLOW"))
        self.mpeg = self.graph.add(MpegRouter("MPEG"))
        self.display = self.graph.add(DisplayRouter("DISPLAY"))
        self.shell = self.graph.add(ShellRouter("SHELL"))
        self.graph.connect("IP.down", "ETH.up")
        self.graph.connect("IP.res", "ARP.resolver")
        self.graph.connect("ARP.down", "ETH.up")
        self.graph.connect("UDP.down", "IP.up")
        self.graph.connect("ICMP.down", "IP.up")
        self.graph.connect("MFLOW.down", "UDP.up")
        self.graph.connect("MPEG.down", "MFLOW.up")
        self.graph.connect("DISPLAY.down", "MPEG.up")
        self.graph.connect("SHELL.down", "UDP.up")
        #: Optional TEST sink atop UDP: a port-bound message sink whose
        #: paths the shard fabric (and tests) use as generic UDP flow
        #: endpoints.  Off by default so the graph stays the exact
        #: Figure 9 configuration the golden tests pin.
        self.test = None
        if udp_sink:
            from ..net.testrouter import TestRouter
            self.test = self.graph.add(TestRouter("TEST"))
            self.graph.connect("TEST.down", "UDP.up")
        self.eth.attach_device(self.device)
        self.display.attach_framebuffer(self.framebuffer)
        if segment is not None:
            self.arp.learn_from_segment(segment)
        self.graph.boot()
        # Timer-driven protocol machinery (IP reassembly expiry, ARP
        # request retries) runs on the world's virtual-time engine.
        self.ip.use_engine(world.engine)
        self.arp.use_engine(world.engine)

        # -- runtime state ---------------------------------------------------
        self.classifier_stats = ClassifierStats()
        #: Established-flow fast path for interrupt-time classification:
        #: one exact-match probe instead of the ETH->IP->UDP->... chain.
        #: The annotate hook reproduces the meta the skipped demux hops
        #: would have stashed (SHELL reads ``ip_src`` for replies).
        self.flow_cache = FlowCache(capacity=flow_cache_capacity,
                                    annotate=self._annotate_flow_hit)
        self.flow_cache.bind_metrics(self.observatory.metrics)
        self.sessions: List[VideoSession] = []
        self.shell_path: Optional[Path] = None
        #: port -> established sink path (see :meth:`start_udp_sink`).
        self.sink_paths: Dict[int, Path] = {}
        #: Optional per-message discard observer ``fn(msg, category)``,
        #: invoked at every admission-time drop site (unclassified, early
        #: discard, input-queue overflow).  The shard fabric's workers use
        #: it to close each handed-off serial under an exact category;
        #: ``None`` (the default) costs nothing.
        self.drop_hook = None
        #: path pid -> keep-every-Nth modulus for adapter-level early drop.
        self._skip_filters: Dict[int, int] = {}
        self.early_drops = 0
        self.unclassified_drops = 0
        self.inq_overflow_drops = 0
        self.icmp_inline_served = 0

        self.device.rx_handler = self._rx
        #: With ``display=False`` the framebuffer exists but its vsync
        #: interrupt never starts: the engine can then go fully idle
        #: between bursts, which is what lets a shard worker run its
        #: world with ``run_until_idle`` instead of timed slices.  Video
        #: sessions need the vsync loop, so they require ``display=True``.
        self.display_active = display
        if display:
            self.framebuffer.start()

        # -- boot-time paths -------------------------------------------------
        self.icmp_path = self._make_service_path(
            self.icmp, Attrs(), POLICY_RR, icmp_priority, "icmp")
        self.icmp.echo_path = self.icmp_path
        self.frag_path = self._make_service_path(
            self.ip, Attrs({PA_IP_CATCHALL: True}), POLICY_RR, icmp_priority,
            "frag")
        self.ip.frag_path = self.frag_path
        self.ip.reclassify_hook = self._reclassify

        self.shell.transforms = self.transforms
        self.shell.register_command("mpeg_decode", self.display,
                                    self._mpeg_decode_attrs,
                                    self._mpeg_decode_post)

    # ------------------------------------------------------------------
    # Interrupt-time receive: classify early, segregate early.
    # ------------------------------------------------------------------

    def _rx(self, frame: bytes) -> None:
        msg = Msg(frame, meta={"rx_time": self.world.now})
        refinements_before = self.classifier_stats.refinements
        path = classify(self.eth, msg, stats=self.classifier_stats,
                        cache=self.flow_cache)
        # A cache hit adds no refinements, so its modeled interrupt cost
        # is a single probe — the speedup the flow cache exists to buy.
        hops = self.classifier_stats.refinements - refinements_before + 1
        self.world.cpu.extend_interrupt(hops * params.CLASSIFY_PER_HOP_US)
        self._admit(path, msg)

    def rx_burst(self, frames, metas=None) -> int:
        """Interrupt-time receive for a burst of frames (DESIGN.md §13).

        Classification runs through
        :func:`~repro.core.classify.classify_batch`, so consecutive
        frames of one flow share a single demux decision; each frame then
        takes the same admission step (early discard, input-queue
        deposit, memory charge, drop ledger) it would take through
        :meth:`_rx` one at a time.  The modeled interrupt cost is the
        exact sum of the per-frame costs — one probe per cache-riding
        frame, per-hop cost for chain walks — charged in one
        ``extend_interrupt`` call.  Returns how many frames were
        deposited on a path input queue.

        *metas*, when given, is a per-frame sequence of extra ``meta``
        entries stamped onto each message before classification — the
        shard fabric's handoff serials ride in through here so every
        frame's fate can be accounted to the ledger that injected it.
        """
        now = self.world.now
        msgs = [Msg(frame, meta={"rx_time": now}) for frame in frames]
        if metas is not None:
            for msg, extra in zip(msgs, metas):
                if extra:
                    msg.meta.update(extra)
        refinements_before = self.classifier_stats.refinements
        results = classify_batch(self.eth, msgs, stats=self.classifier_stats,
                                 cache=self.flow_cache)
        hops_total = (self.classifier_stats.refinements - refinements_before
                      + len(msgs))
        self.world.cpu.extend_interrupt(
            hops_total * params.CLASSIFY_PER_HOP_US)
        deposited = 0
        for msg, result in zip(msgs, results):
            if self._admit(result.path, msg):
                deposited += 1
        return deposited

    def _admit(self, path: Optional[Path], msg: Msg) -> bool:
        """Post-classification admission, identical for single frames and
        bursts; returns True when the message reached an input queue."""
        if path is None:
            self.unclassified_drops += 1
            msg.meta.setdefault("drop_reason", "no path wants this frame")
            if self.observatory.armed:
                self.observatory.metrics.counter(
                    "kernel_unclassified_drops").inc()
            if self.drop_hook is not None:
                self.drop_hook(msg, "unclassified")
            self.world.cpu.extend_interrupt(params.EARLY_DROP_US)
            return False
        if self._should_early_drop(path, msg):
            self.early_drops += 1
            path.note_drop(msg, "early discard of skipped frame",
                           "early_discard")
            if self.drop_hook is not None:
                self.drop_hook(msg, "early_discard")
            self.world.cpu.extend_interrupt(params.EARLY_DROP_US)
            return False
        self._note_arrival(path)
        if self.inline_icmp and path is self.icmp_path:
            # Ablation: no early segregation for ICMP — serve the request
            # at interrupt level, like a conventional kernel.
            path.deliver(msg, BWD)
            self.world.cpu.extend_interrupt(take_cost(msg))
            self.icmp_inline_served += 1
            return False
        queue = path.input_queue(BWD)
        if not queue.try_enqueue(msg):
            self.inq_overflow_drops += 1
            path.note_drop(msg, "path input queue full", "inq_overflow")
            if self.drop_hook is not None:
                self.drop_hook(msg, "inq_overflow")
            self.world.cpu.extend_interrupt(params.EARLY_DROP_US)
            return False
        path.stats.charge_memory(msg.footprint())
        return True

    def _annotate_flow_hit(self, msg: Msg, key: bytes) -> None:
        """Reproduce the ``msg.meta`` annotations the skipped demux chain
        would have made (ETH, IP and UDP each stash the fields later
        stages and SHELL command handling read).  The key guarantees a
        well-formed non-fragmented IPv4/UDP frame, so fixed offsets are
        safe: ETH src at 6, IP proto at 23, IP src at 26, UDP ports at 34.
        """
        head = msg.peek(38)
        meta = msg.meta
        meta["eth_src"] = EthAddr(head[6:12])
        meta["ip_src"] = IpAddr(head[26:30])
        meta["ip_proto"] = head[23]
        meta["udp_ports"] = (int.from_bytes(head[34:36], "big"),
                             int.from_bytes(head[36:38], "big"))
        # The key matched the exact framing, addressing and port bytes,
        # so every header stage may take its validated fast receive —
        # each stage pops its own flag (DESIGN.md §13) — and a fully
        # stamped message is what the specialized tier's fused functions
        # guard on (DESIGN.md §15).
        for stamp in VALIDATED_STAMPS:
            meta[stamp] = True

    def _note_arrival(self, path: Path) -> None:
        """Maintain the path's average packet inter-arrival time, which
        the input-queue EDF deadline estimate consumes (Section 4.3)."""
        now = self.world.now
        last = path.attrs.get("_last_pkt_arrival_us")
        if last is not None:
            sample = now - last
            previous = path.attrs.get("_pkt_interarrival_us")
            path.attrs["_pkt_interarrival_us"] = sample if previous is None \
                else previous + 0.125 * (sample - previous)
        path.attrs["_last_pkt_arrival_us"] = now

    def _should_early_drop(self, path: Path, msg: Msg) -> bool:
        """Reduced-quality early discard (Section 4.4): packets belonging
        to frames the user asked to skip die at the adapter."""
        modulus = self._skip_filters.get(path.pid)
        if not modulus or modulus <= 1:
            return False
        if len(msg) < _MPEG_HEADER_OFFSET + PACKET_HEADER_SIZE:
            return False
        header = peek_packet_header(
            msg.peek(PACKET_HEADER_SIZE, at=_MPEG_HEADER_OFFSET))
        if header is None:
            return False
        frame_no, _ftype, _flags = header
        return frame_no % modulus != 0

    # ------------------------------------------------------------------
    # Path threads
    # ------------------------------------------------------------------

    def _video_thread_body(self, path: Path):
        inq = path.input_queue(BWD)
        outq = path.output_queue(BWD)
        while path.state != DELETED:
            msg = yield Dequeue(inq)
            # "if the output queue is full already, there is little point
            # in scheduling a thread to process a packet in the input
            # queue" — reserve display space before burning decode CPU.
            yield WaitSpace(outq)
            self._traverse(path, msg)
            cost = take_cost(msg)
            if cost > 0:
                yield Compute(cost)
            path.stats.release_memory(msg.footprint())
            yield YIELD

    def _video_thread_body_batched(self, path: Path, batch_limit: int):
        """Video path thread draining up to *batch_limit* messages per
        scheduler dispatch (DESIGN.md §13).

        One ``DequeueBatch`` replaces up to *batch_limit* dequeue/compute/
        yield rounds; the accumulated per-message costs are paid in a
        single ``Compute`` and memory charges are released per message, so
        the path's accounting matches the per-message body exactly.  One
        output slot is reserved up front; should the display queue fill
        mid-batch, the overflowing deposits take the ledgered
        ``outq_overflow`` drop instead of blocking the batch.
        """
        inq = path.input_queue(BWD)
        outq = path.output_queue(BWD)
        while path.state != DELETED:
            msgs = yield DequeueBatch(inq, batch_limit)
            yield WaitSpace(outq)
            self._traverse_batch(path, msgs)
            cost = 0.0
            for msg in msgs:
                cost += take_cost(msg)
                path.stats.release_memory(msg.footprint())
            if cost > 0:
                yield Compute(cost)
            yield YIELD

    def _service_thread_body(self, path: Path):
        inq = path.input_queue(BWD)
        while path.state != DELETED:
            msg = yield Dequeue(inq)
            self._traverse(path, msg)
            cost = take_cost(msg)
            if cost > 0:
                yield Compute(cost)
            path.stats.release_memory(msg.footprint())
            yield YIELD

    @staticmethod
    def _traverse(path: Path, msg: Msg) -> None:
        entry = msg.meta.pop("entry_router", None)
        if entry is not None:
            path.inject_at(path.stage_of(entry), msg, BWD)
        else:
            path.deliver(msg, BWD)

    @classmethod
    def _traverse_batch(cls, path: Path, msgs: List[Msg]) -> None:
        """Run a dequeued batch through the path.

        The whole batch rides :meth:`~repro.core.path.Path.deliver_batch`
        (one compiled-trampoline save/restore) unless some message needs a
        mid-path injection (a reassembled datagram entering at IP) — those
        cannot vectorize, so the batch falls back to per-message traversal
        to preserve arrival order exactly.
        """
        if any("entry_router" in msg.meta for msg in msgs):
            for msg in msgs:
                cls._traverse(path, msg)
        else:
            # Mark everything but the tail so stages that turn per-packet
            # feedback around (MFLOW window advs, TCP cumulative ACKs) can
            # coalesce it to one message per batch.
            for msg in msgs[:-1]:
                msg.meta["batch_followup"] = True
            path.deliver_batch(msgs, BWD)

    def _make_service_path(self, router, attrs: Attrs, policy: str,
                           priority: int, name: str) -> Path:
        path = path_create(router, attrs, transforms=self.transforms,
                           admission=self.admission,
                           specialize=self.specialize)
        self.world.spawn(self._service_thread_body(path),
                         name=f"{name}-path{path.pid}", policy=policy,
                         priority=priority, path=path)
        return path

    # ------------------------------------------------------------------
    # Reassembled datagrams: rerun the classifier (Section 3.5)
    # ------------------------------------------------------------------

    def _reclassify(self, msg: Msg, header) -> None:
        take_cost(msg)  # the fragment path's thread already paid so far
        whole = msg
        whole.push(header.pack())
        refinements_before = self.classifier_stats.refinements
        path = classify(self.ip, whole, stats=self.classifier_stats)
        hops = self.classifier_stats.refinements - refinements_before + 1
        charge(whole, hops * params.CLASSIFY_PER_HOP_US)
        if path is None or path is self.frag_path:
            self.unclassified_drops += 1
            return
        whole.meta["entry_router"] = "IP"
        if not path.input_queue(BWD).try_enqueue(whole):
            self.inq_overflow_drops += 1
            path.note_drop(whole, "path input queue full", "inq_overflow")

    # ------------------------------------------------------------------
    # Video sessions
    # ------------------------------------------------------------------

    def build_video_attrs(self, profile: ClipProfile,
                          remote: Tuple[str, int],
                          local_port: Optional[int] = None,
                          fps: Optional[float] = None,
                          policy: str = POLICY_EDF,
                          priority: int = 0,
                          inq_len: int = 32,
                          outq_len: int = 32,
                          skip: int = 1,
                          checksum: bool = False,
                          prebuffer: int = 0,
                          deadline_mode: str = "output",
                          trace: bool = False,
                          batch: int = 1,
                          specialize: Optional[bool] = None) -> Attrs:
        """The invariants SHELL (or a test) supplies for an MPEG path."""
        from ..display.router import PA_DEADLINE_MODE, PA_PREBUFFER

        stream_fps = fps if fps is not None else profile.fps
        attrs = Attrs({
            PA_PREBUFFER: prebuffer,
            PA_DEADLINE_MODE: deadline_mode,
            PA_NET_PARTICIPANTS: remote,
            PA_PATHNAME: "MPEG",
            PA_VIDEO_PROFILE: profile,
            PA_LOCAL_PORT: self.udp.allocate_port(local_port),
            # Reduced-quality playback presents every Nth frame, so the
            # display schedule runs at the reduced rate.
            PA_FRAME_RATE: stream_fps / max(1, skip),
            PA_SCHED_POLICY: policy,
            PA_SCHED_PRIORITY: priority,
            PA_INQ_LEN: inq_len,
            PA_OUTQ_LEN: outq_len,
            PA_FRAME_SKIP: skip,
            PA_UDP_CHECKSUM: checksum,
            PA_BATCH: batch,
        })
        if trace:
            attrs[PA_TRACE] = self.observatory
        if specialize is not None:
            attrs[PA_SPECIALIZE] = specialize
        return attrs

    def start_video(self, profile: ClipProfile, remote: Tuple[str, int],
                    early_drop_skipped: bool = True,
                    **attr_kwargs) -> VideoSession:
        """Create an MPEG path + thread; returns the live session."""
        attrs = self.build_video_attrs(profile, remote, **attr_kwargs)
        path = path_create(self.display, attrs, transforms=self.transforms,
                           admission=self.admission,
                           specialize=self.specialize)
        return self._attach_video_path(path, early_drop_skipped)

    def _attach_video_path(self, path: Path,
                           early_drop_skipped: bool = True) -> VideoSession:
        attrs = path.attrs
        profile: ClipProfile = attrs[PA_VIDEO_PROFILE]
        skip = int(attrs.get(PA_FRAME_SKIP, 1))
        if skip > 1 and early_drop_skipped:
            self._skip_filters[path.pid] = skip
        policy = attrs.get(PA_SCHED_POLICY, POLICY_EDF)
        priority = int(attrs.get(PA_SCHED_PRIORITY, 0))
        batch = int(attrs.get(PA_BATCH, 1) or 1)
        body = (self._video_thread_body_batched(path, batch) if batch > 1
                else self._video_thread_body(path))
        thread = self.world.spawn(body,
                                  name=f"video-path{path.pid}",
                                  policy=policy, priority=priority,
                                  path=path)
        sink = self.framebuffer.sinks[f"path{path.pid}"]
        if path.observer is not None:
            path.observer.watch_sink(sink)
        session = VideoSession(path, profile, attrs[PA_LOCAL_PORT], sink,
                               thread)
        self.sessions.append(session)
        return session

    # -- multipath video (one flow class, N parallel paths) -------------

    def frame_affinity(self, msg: Msg):
        """Affinity key for video fan-out: the MPEG frame number.

        A frame spans multiple packets and is damaged unless they all
        reassemble on the same member, so the group keeps every packet of
        a frame on one path; successive frames may land anywhere.
        """
        if len(msg) < _MPEG_HEADER_OFFSET + PACKET_HEADER_SIZE:
            return None
        header = peek_packet_header(
            msg.peek(PACKET_HEADER_SIZE, at=_MPEG_HEADER_OFFSET))
        if header is None:
            return None
        return header[0]  # frame number

    def start_video_group(self, profile: ClipProfile,
                          remote: Tuple[str, int], members: int = 2,
                          group_policy: str = "least_loaded",
                          local_port: Optional[int] = None,
                          early_drop_skipped: bool = True,
                          **attr_kwargs) -> VideoSessionGroup:
        """Fan one video flow across *members* parallel MPEG paths.

        All members share one local port; the first becomes the UDP demux
        anchor (first-live-wins binding) and the classifier re-dispatches
        every arriving packet through the group's selection policy with
        frame-number affinity.  When the anchor dies, a membership hook
        re-binds the port to a survivor and flushes the group's flow-cache
        pins, so failover needs no help from the deleter.
        """
        if members < 1:
            raise ValueError("a video group needs at least one member")
        port = self.udp.allocate_port(local_port)
        group = PathGroup(group_policy,
                          name=f"video-{profile.name}-p{port}",
                          affinity_of=self.frame_affinity)
        if self.observatory.armed:
            group.bind_metrics(self.observatory.metrics)
        sessions: List[VideoSession] = []
        for _ in range(members):
            # Fresh attrs per member: path machinery stamps bookkeeping
            # (applied transforms, deadline probes, arrival EWMAs) onto
            # the path's own attribute set.
            attrs = self.build_video_attrs(profile, remote,
                                           local_port=port, **attr_kwargs)
            path = path_create(self.display, attrs,
                               transforms=self.transforms,
                               admission=self.admission,
                               specialize=self.specialize)
            group.add(path)
            sessions.append(self._attach_video_path(path,
                                                    early_drop_skipped))
        group.on_change(self._rebind_group_anchor(port))
        return VideoSessionGroup(group, sessions, profile, port)

    def _rebind_group_anchor(self, port: int):
        """Membership hook keeping the UDP demux anchor live: when a
        member dies (watchdog rebuild, stop), promote a survivor to hold
        the port binding and drop the group's flow-cache pins."""
        def rebind(group: PathGroup, path: Path, event: str) -> None:
            if event != MEMBER_REMOVED:
                return
            self.flow_cache.invalidate_group(group.gid)
            for survivor in group.live_members():
                # First-live-wins: a no-op while the anchor is alive,
                # a promotion the moment it is not.
                if self.udp.bind_port_to_path(port, survivor):
                    break
        return rebind

    def stop_video_group(self, vgroup: VideoSessionGroup) -> None:
        """Tear down every member; flow-cache pins, port bindings, group
        membership and admission grants all unwind through the delete
        hooks."""
        self.flow_cache.invalidate_group(vgroup.group.gid)
        for session in list(vgroup.sessions):
            self.stop_video(session)

    def set_frame_skip(self, path: Path, modulus: int) -> None:
        """Adjust adapter-level early discard for *path* at runtime: keep
        every *modulus*-th frame (1 restores full quality).  This is the
        knob the degradation governor turns under fault pressure — shedding
        load before any decode CPU is spent on it (Section 4.4)."""
        if modulus <= 1:
            self._skip_filters.pop(path.pid, None)
        else:
            self._skip_filters[path.pid] = int(modulus)
        # Early-discard reconfiguration flushes the flow's fast-path
        # state: the next packet re-walks the full chain and re-caches,
        # so no reconfiguration window can be masked by a hot entry.
        self.flow_cache.invalidate_path(path)

    def frame_skip(self, path: Path) -> int:
        """Current early-discard modulus for *path* (1 = keep everything)."""
        return self._skip_filters.get(path.pid, 1)

    def stop_video(self, session: VideoSession) -> None:
        self._skip_filters.pop(session.path.pid, None)
        # delete() purges every registered flow cache synchronously; the
        # explicit call also covers a path that never saw an insert.
        self.flow_cache.invalidate_path(session.path)
        session.path.delete()
        release = getattr(self.admission, "release", None)
        if release is not None:
            release(session.path)  # return the memory grant to the pool

    # ------------------------------------------------------------------
    # UDP sink paths (the shard fabric's flow endpoints)
    # ------------------------------------------------------------------

    def start_udp_sink(self, local_port: int,
                       remote: Tuple[str, int] = ("10.0.0.2", 7000),
                       batch: int = 1,
                       inq_len: int = 64,
                       outq_len: int = 64,
                       policy: str = POLICY_RR,
                       priority: int = 0,
                       specialize: Optional[bool] = None) -> Path:
        """Create a port-bound TEST sink path plus its service thread.

        Requires the kernel to have been built with ``udp_sink=True``
        (which adds the TEST router atop UDP).  The returned path is a
        generic UDP flow endpoint: arriving frames for *local_port*
        classify to it (flow cache, validated fast receive, and the
        specialized tier all engage exactly as for video paths), traverse
        ETH/IP/UDP, and land in the TEST router's ``received`` list plus
        the path's output queue.  The shard fabric gives every flow one
        of these per shard; ``benchmarks/bench_shard.py`` drives them as
        the warm batched UDP workload.
        """
        if self.test is None:
            raise RuntimeError(
                "this kernel was built without udp_sink=True")
        if local_port in self.sink_paths:
            raise ValueError(f"port {local_port} already has a sink path")
        attrs = Attrs({
            PA_NET_PARTICIPANTS: remote,
            PA_LOCAL_PORT: self.udp.allocate_port(local_port),
            PA_PATHNAME: "UDPSINK",
            PA_SCHED_POLICY: policy,
            PA_SCHED_PRIORITY: priority,
            PA_INQ_LEN: inq_len,
            PA_OUTQ_LEN: outq_len,
            PA_BATCH: batch,
        })
        if specialize is not None:
            attrs[PA_SPECIALIZE] = specialize
        path = path_create(self.test, attrs, transforms=self.transforms,
                           admission=self.admission,
                           specialize=self.specialize)
        body = (self._sink_thread_body_batched(path, batch) if batch > 1
                else self._service_thread_body(path))
        self.world.spawn(body, name=f"sink-path{path.pid}",
                         policy=policy, priority=priority, path=path)
        self.sink_paths[local_port] = path
        return path

    def _sink_thread_body_batched(self, path: Path, batch_limit: int):
        """Service thread draining up to *batch_limit* messages per
        dispatch — the :meth:`_service_thread_body` analogue of the
        batched video body.  No output-queue reservation: the TEST sink
        deposits into the output queue itself and accounts any overflow
        as ``sink_overflows``, so the thread never blocks on a consumer
        that drains out of band."""
        inq = path.input_queue(BWD)
        while path.state != DELETED:
            msgs = yield DequeueBatch(inq, batch_limit)
            self._traverse_batch(path, msgs)
            cost = 0.0
            for msg in msgs:
                cost += take_cost(msg)
                path.stats.release_memory(msg.footprint())
            if cost > 0:
                yield Compute(cost)
            yield YIELD

    def stop_udp_sink(self, local_port: int) -> None:
        """Tear down the sink path bound to *local_port* (flow-cache
        purge, port unbind and queue drains ride the delete hooks)."""
        path = self.sink_paths.pop(local_port, None)
        if path is None:
            return
        self.flow_cache.invalidate_path(path)
        path.delete()
        release = getattr(self.admission, "release", None)
        if release is not None:
            release(path)

    # ------------------------------------------------------------------
    # SHELL
    # ------------------------------------------------------------------

    def start_shell(self, port: int = 5000) -> Path:
        attrs = Attrs({PA_IP_CATCHALL: True, PA_LOCAL_PORT: port,
                       PA_INQ_LEN: 16})
        self.shell_path = self._make_service_path(self.shell, attrs,
                                                  POLICY_RR, 2, "shell")
        return self.shell_path

    def _mpeg_decode_attrs(self, args: Dict[str, str], meta) -> Attrs:
        from ..mpeg.clips import clip_by_name

        profile = clip_by_name(args.get("clip", "Neptune"))
        # "SHELL assumes that the network address of the video source is
        # the same as the address that originated the command request."
        source_ip = args.get("ip") or str(meta.get("ip_src"))
        source_port = int(args["port"])
        return self.build_video_attrs(
            profile, (source_ip, source_port),
            fps=float(args["fps"]) if "fps" in args else None,
            policy=args.get("policy", POLICY_EDF),
            priority=int(args.get("priority", 0)),
            skip=int(args.get("skip", 1)))

    def _mpeg_decode_post(self, path: Path, args: Dict[str, str],
                          msg: Msg) -> None:
        self._attach_video_path(path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "classified": self.classifier_stats.classified,
            "classifier_drops": self.classifier_stats.dropped,
            "classifier_cache_hits": self.classifier_stats.cache_hits,
            "flow_cache_hits": self.flow_cache.hits,
            "flow_cache_misses": self.flow_cache.misses,
            "flow_cache_evictions": self.flow_cache.evictions,
            "flow_cache_invalidations": self.flow_cache.invalidations,
            "early_drops": self.early_drops,
            "inq_overflow_drops": self.inq_overflow_drops,
            "echo_requests": self.icmp.echo_requests,
            "cpu_compute_us": self.world.cpu.compute_us,
            "cpu_interrupt_us": self.world.cpu.interrupt_us,
            "vsyncs": self.framebuffer.vsyncs,
        }

    def __repr__(self) -> str:
        return (f"<ScoutKernel {self.ip.addr} sessions={len(self.sessions)} "
                f"t={self.world.now:.0f}us>")
