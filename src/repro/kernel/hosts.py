"""Remote host agents: the paper's load generators.

These stand in for the other machines on the testbed Ethernet:

* :class:`VideoSourceHost` — the MPEG sender.  Streams a pre-encoded clip
  under MFLOW flow control: it may send sequence numbers below the last
  advertised maximum, measures RTT from its echoed timestamps, and can
  optionally pace itself to the clip's playback rate (a video server
  reading from disk) or push at full speed (the Table 1 max-rate runs).
* :class:`PingFlooderHost` — ``ping -f``: sends an ICMP echo request
  whenever a reply arrives, and at least one every fallback interval
  (classic flood ping's "one hundred times per second" floor).  This is
  why Table 2 behaves the way it does: a kernel that answers floods fast
  gets flooded fast.
* :class:`CommandClientHost` — sends SHELL command packets and records
  the replies.
* :class:`TcpSinkHost` — a TCP receiver: reassembles the byte stream in
  order (buffering out-of-order segments) and sends cumulative ACKs, so
  the local TCP path's retransmission machinery has a live peer to
  converse with under injected faults.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import params
from ..mpeg.clips import EncodedClip
from ..net.addresses import EthAddr, IpAddr
from ..net.headers import MflowHeader
from ..net.packets import (
    build_icmp_echo,
    build_mflow_frame,
    build_tcp_frame,
    build_udp_frame,
    parse_frame,
)
from ..net.segment import HostAgent
from ..sim.engine import Engine


class VideoSourceHost(HostAgent):
    """Streams one encoded clip to the machine under test."""

    def __init__(self, engine: Engine, mac, ip, clip: EncodedClip,
                 dst_mac, dst_ip, dst_port: int, src_port: int = 7200,
                 initial_window: int = 8,
                 pace_fps: Optional[float] = None,
                 lead_frames: int = 4,
                 inter_packet_us: float = 20.0,
                 probe_timeout_us: Optional[float] = None,
                 service_us: float = params.REMOTE_HOST_SERVICE_US):
        super().__init__(engine, EthAddr(mac), IpAddr(ip),
                         service_us=service_us)
        self.clip = clip
        self.dst_mac = EthAddr(dst_mac)
        self.dst_ip = IpAddr(dst_ip)
        self.dst_port = dst_port
        self.src_port = src_port
        self.pace_fps = pace_fps
        self.lead_frames = lead_frames
        self.inter_packet_us = inter_packet_us
        # Flatten the clip into (frame_no, first_of_frame, payload) tuples;
        # the MFLOW sequence number is the flattened index.
        self.packets: List[Tuple[int, bool, bytes]] = []
        for frame in clip.frames:
            for index, payload in enumerate(frame.packets):
                self.packets.append((frame.number, index == 0, payload))
        self.next_seq = 0
        self.max_allowed = initial_window  # may send seq < max_allowed
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._pump_scheduled = False
        self.probe_timeout_us = probe_timeout_us
        self._probe_event = None
        # statistics
        self.packets_sent = 0
        self.window_stalls = 0
        self.window_probes = 0
        self.rtt_samples: List[float] = []

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        self.started_at = self.engine.now
        self._schedule_pump(0.0)

    @property
    def done(self) -> bool:
        return self.next_seq >= len(self.packets)

    def avg_rtt_us(self) -> Optional[float]:
        if not self.rtt_samples:
            return None
        return sum(self.rtt_samples) / len(self.rtt_samples)

    # -- sending -------------------------------------------------------------------

    def _schedule_pump(self, delay: float) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.engine.schedule(delay, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self.done:
            if self.finished_at is None:
                self.finished_at = self.engine.now
            return
        if self.next_seq >= self.max_allowed:
            self.window_stalls += 1
            self._arm_probe()
            return  # resumed by the next window advertisement (or a probe)
        frame_no, first, payload = self.packets[self.next_seq]
        eligible = self._eligible_time(frame_no)
        if eligible > self.engine.now:
            self._schedule_pump(eligible - self.engine.now)
            return
        self._emit_next_packet()
        if not self.done:
            self._schedule_pump(self.inter_packet_us)

    def _emit_next_packet(self) -> None:
        frame_no, first, payload = self.packets[self.next_seq]
        flags = MflowHeader.FLAG_FRAME_START if first else 0
        frame = build_mflow_frame(self.mac, self.dst_mac, self.ip,
                                  self.dst_ip, self.src_port, self.dst_port,
                                  self.next_seq, self.engine.now, payload,
                                  flags=flags)
        self.send(frame)
        self.next_seq += 1
        self.packets_sent += 1
        if self.done:
            self.finished_at = self.engine.now

    # -- window probe (the persist-timer analogue) --------------------------------

    def _arm_probe(self) -> None:
        """While the window stays closed, periodically force one packet
        through anyway.  Advertisements ride on delivered data, so a
        closed window with all advertisements lost — or the receiving
        path torn down and rebuilt by its watchdog — would otherwise
        deadlock: no data means no advertisement means no data."""
        if self._probe_event is None and self.probe_timeout_us:
            self._probe_event = self.engine.schedule(self.probe_timeout_us,
                                                     self._probe)

    def _probe(self) -> None:
        self._probe_event = None
        if self.done:
            return
        if self.next_seq < self.max_allowed:
            return  # window reopened; the normal pump owns sending again
        self.window_probes += 1
        self._emit_next_packet()
        if not self.done:
            self._arm_probe()

    def _eligible_time(self, frame_no: int) -> float:
        """Pacing: frame k's packets may go out ``lead_frames`` early."""
        if self.pace_fps is None or self.started_at is None:
            return 0.0
        due_index = max(0, frame_no - self.lead_frames)
        return self.started_at + due_index * 1_000_000.0 / self.pace_fps

    # -- window advertisements ------------------------------------------------------

    def handle_frame(self, frame: bytes) -> None:
        parsed = parse_frame(frame, expect_mflow=True)
        if parsed.mflow is None or not parsed.mflow.is_window_adv:
            return
        if parsed.mflow.seq > self.max_allowed:
            self.max_allowed = parsed.mflow.seq
        rtt = self.engine.now - parsed.mflow.timestamp_us
        if 0 <= rtt < 10_000_000:
            self.rtt_samples.append(rtt)
        self._schedule_pump(0.0)


class PingFlooderHost(HostAgent):
    """``ping -f``: self-clocking ICMP echo flood."""

    def __init__(self, engine: Engine, mac, ip, dst_mac, dst_ip,
                 ident: int = 99, payload_bytes: int = 56,
                 fallback_us: float = params.PING_FLOOD_FALLBACK_US,
                 self_clocked: bool = True,
                 service_us: float = 5.0):
        super().__init__(engine, EthAddr(mac), IpAddr(ip),
                         service_us=service_us)
        self.dst_mac = EthAddr(dst_mac)
        self.dst_ip = IpAddr(dst_ip)
        self.ident = ident
        self.payload = bytes(payload_bytes)
        self.fallback_us = fallback_us
        #: True = classic ping -f (new request on every reply); False = a
        #: fixed-rate blaster paced purely by ``fallback_us``, used by the
        #: ablation sweeps that need a controlled offered load.
        self.self_clocked = self_clocked
        self.running = False
        self.seq = 0
        self.requests_sent = 0
        self.replies_received = 0
        self.last_send_at = -1e18

    def start(self) -> None:
        self.running = True
        self._send()
        self.engine.schedule(self.fallback_us, self._tick)

    def stop(self) -> None:
        self.running = False

    @property
    def reply_rate(self) -> float:
        if self.requests_sent == 0:
            return 0.0
        return self.replies_received / self.requests_sent

    def _send(self) -> None:
        if not self.running:
            return
        self.seq += 1
        frame = build_icmp_echo(self.mac, self.dst_mac, self.ip, self.dst_ip,
                                self.ident, self.seq & 0xFFFF,
                                payload=self.payload)
        self.send(frame)
        self.requests_sent += 1
        self.last_send_at = self.engine.now

    def _tick(self) -> None:
        if not self.running:
            return
        if not self.self_clocked \
                or self.engine.now - self.last_send_at >= self.fallback_us - 1e-9:
            self._send()
        self.engine.schedule(self.fallback_us, self._tick)

    def handle_frame(self, frame: bytes) -> None:
        if not self.running:
            return
        parsed = parse_frame(frame)
        if parsed.icmp is not None and parsed.icmp.icmp_type == 0:
            self.replies_received += 1
            if self.self_clocked:
                self._send()  # flood: next request rides on each reply


class TcpSinkHost(HostAgent):
    """A remote TCP receiver that ACKs everything it can.

    Listens on one port, delivers payload bytes in sequence order to
    :attr:`received`, buffers out-of-order segments, and answers every
    data segment with a cumulative ACK — the minimal well-behaved peer the
    local TCP sender's retransmission loop needs to recover from loss.
    """

    def __init__(self, engine: Engine, mac, ip, dst_mac, dst_ip,
                 port: int, src_port: int = 80,
                 service_us: float = params.REMOTE_HOST_SERVICE_US):
        super().__init__(engine, EthAddr(mac), IpAddr(ip),
                         service_us=service_us)
        self.dst_mac = EthAddr(dst_mac)
        self.dst_ip = IpAddr(dst_ip)
        self.port = port          # the local port the sender addresses
        self.src_port = src_port  # port our ACKs claim to come from
        self.recv_next = 0
        self.received = bytearray()
        self._pending: Dict[int, bytes] = {}  # seq -> out-of-order payload
        # statistics
        self.segments_received = 0
        self.dup_segments = 0
        self.ooo_segments = 0
        self.checksum_failures = 0
        self.acks_sent = 0

    def handle_frame(self, frame: bytes) -> None:
        parsed = parse_frame(frame)
        if parsed.tcp is None or parsed.tcp.dport != self.port:
            return
        if not parsed.tcp.verify(parsed.payload):
            # Corrupted in flight: drop without ACKing; the sender's
            # retransmission timer resupplies the segment intact.
            self.checksum_failures += 1
            return
        self.segments_received += 1
        payload = parsed.payload
        if len(payload) == 0:
            return  # bare ACK from the sender's receive side
        seq = parsed.tcp.seq
        if seq < self.recv_next:
            self.dup_segments += 1
        elif seq == self.recv_next:
            self.received += payload
            self.recv_next = seq + len(payload)
            while self.recv_next in self._pending:
                buffered = self._pending.pop(self.recv_next)
                self.received += buffered
                self.recv_next += len(buffered)
        else:
            self.ooo_segments += 1
            self._pending.setdefault(seq, payload)
        self._ack(parsed.tcp.sport)

    def _ack(self, sender_port: int) -> None:
        ack = build_tcp_frame(self.mac, self.dst_mac, self.ip, self.dst_ip,
                              self.src_port, sender_port,
                              seq=0, ack=self.recv_next)
        self.acks_sent += 1
        self.send(ack)


class CommandClientHost(HostAgent):
    """Sends SHELL commands and records the textual replies."""

    def __init__(self, engine: Engine, mac, ip, dst_mac, dst_ip,
                 dst_port: int = 5000, src_port: int = 5999,
                 service_us: float = params.REMOTE_HOST_SERVICE_US):
        super().__init__(engine, EthAddr(mac), IpAddr(ip),
                         service_us=service_us)
        self.dst_mac = EthAddr(dst_mac)
        self.dst_ip = IpAddr(dst_ip)
        self.dst_port = dst_port
        self.src_port = src_port
        self.replies: List[str] = []

    def send_command(self, text: str) -> None:
        frame = build_udp_frame(self.mac, self.dst_mac, self.ip, self.dst_ip,
                                self.src_port, self.dst_port,
                                text.encode("utf-8"))
        self.send(frame)

    def handle_frame(self, frame: bytes) -> None:
        parsed = parse_frame(frame)
        if parsed.udp is not None and parsed.udp.dport == self.src_port:
            self.replies.append(parsed.payload.decode("utf-8", "replace"))
