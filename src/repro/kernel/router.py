"""The router kernel: a Scout appliance built around forwarding paths.

Where :class:`~repro.kernel.scout.ScoutKernel` is the paper's end-host
configuration (Figure 9), :class:`RouterKernel` is its router appliance:
N NICs on N segments, one :class:`~repro.net.forward.ForwardRouter`, and
one short forwarding path per ingress port.  The runtime behaviours are
the same two that define Scout — interrupt-time classification deposits
each arriving frame directly on its port's forwarding-path queue, and a
per-path thread does the TTL/route/rewrite work under the world's
scheduler — so a three-hop chain of routers is just three more kernels
in the same sim world.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from .. import params
from ..core.attributes import PA_INQ_LEN, Attrs
from ..core.classify import ClassifierStats, classify
from ..core.message import Msg
from ..core.graph import RouterGraph
from ..core.path import DELETED, Path
from ..core.path_create import path_create
from ..net.addresses import IpAddr
from ..net.common import take_cost
from ..net.eth import EthRouter
from ..net.forward import PA_FWD_INGRESS, ForwardRouter
from ..net.segment import EtherSegment, NetDevice
from ..sim.threads import Compute, Dequeue, YIELD
from ..sim.world import POLICY_RR, SimWorld
from ..core.stage import BWD

#: Distinct MAC prefix for auto-assigned router ports.
_mac_counter = itertools.count(1)


def _auto_mac() -> str:
    n = next(_mac_counter)
    return f"02:00:5e:00:{(n >> 8) & 0xFF:02x}:{n & 0xFF:02x}"


class RouterPort:
    """Bookkeeping for one attached NIC."""

    __slots__ = ("name", "segment", "device", "eth", "ip", "mtu", "path",
                 "thread")

    def __init__(self, name: str, segment: EtherSegment,
                 device: NetDevice, eth: EthRouter, ip: IpAddr, mtu: int):
        self.name = name
        self.segment = segment
        self.device = device
        self.eth = eth
        self.ip = ip
        self.mtu = mtu
        self.path: Optional[Path] = None
        self.thread = None


class RouterKernel:
    """A booted Scout router appliance in a sim world."""

    def __init__(self, world: SimWorld, name: str = "RTR",
                 inq_len: int = 64, priority: int = 1):
        self.world = world
        self.name = name
        self.inq_len = inq_len
        self.priority = priority
        self.graph = RouterGraph()
        self.fwd: ForwardRouter = self.graph.add(ForwardRouter("FWD"))
        self.ports: Dict[str, RouterPort] = {}
        self.classifier_stats = ClassifierStats()
        self.unclassified_drops = 0
        self.inq_overflow_drops = 0
        self._booted = False

    # -- construction ------------------------------------------------------

    def add_port(self, name: str, segment: EtherSegment, ip,
                 mtu: int = params.ETH_MTU,
                 mac: Optional[str] = None) -> RouterPort:
        """Attach one NIC to *segment* before :meth:`boot`."""
        if self._booted:
            raise RuntimeError(f"{self.name}: ports must be added "
                               "before boot")
        if name in self.ports:
            raise ValueError(f"{self.name}: duplicate port {name!r}")
        mac = mac or _auto_mac()
        eth = self.graph.add(
            EthRouter(f"ETH-{name}", mac=mac, mtu=mtu))
        device = NetDevice(mac, self.world.cpu,
                           name=f"{self.name}.{name}")
        # Advertise the port's IP on the device so end hosts'
        # ARP-from-segment learning resolves their gateway.
        device.ip = IpAddr(ip)
        segment.attach(device)
        eth.attach_device(device)
        self.fwd.add_port(name, eth, ip)
        self.graph.connect(f"FWD.{name}", f"ETH-{name}.up")
        port = RouterPort(name, segment, device, eth, IpAddr(ip), mtu)
        self.ports[name] = port
        return port

    def boot(self) -> None:
        """Initialize the graph, learn neighbours, and bring up one
        forwarding path + thread per port."""
        if self._booted:
            return
        self.graph.boot()
        self._booted = True
        for port in self.ports.values():
            self.fwd.learn_arp(port.name, port.segment)
        for port in self.ports.values():
            attrs = Attrs({PA_FWD_INGRESS: port.name,
                           PA_INQ_LEN: self.inq_len})
            port.path = path_create(self.fwd, attrs)
            port.thread = self.world.spawn(
                self._forward_thread_body(port.path),
                name=f"{self.name}-fwd-{port.name}",
                policy=POLICY_RR, priority=self.priority, path=port.path)
            port.device.rx_handler = self._make_rx(port)

    def add_route(self, network, prefix_len: int, port: str,
                  gateway=None):
        return self.fwd.add_route(network, prefix_len, port, gateway)

    # -- interrupt-time receive -------------------------------------------

    def _make_rx(self, port: RouterPort):
        eth = port.eth

        def rx(frame: bytes) -> None:
            msg = Msg(frame, meta={"rx_time": self.world.now})
            before = self.classifier_stats.refinements
            path = classify(eth, msg, stats=self.classifier_stats)
            hops = self.classifier_stats.refinements - before + 1
            self.world.cpu.extend_interrupt(
                hops * params.CLASSIFY_PER_HOP_US)
            if path is None:
                self.unclassified_drops += 1
                self.world.cpu.extend_interrupt(params.EARLY_DROP_US)
                return
            if not path.input_queue(BWD).try_enqueue(msg):
                self.inq_overflow_drops += 1
                path.note_drop(msg, "forwarding queue full",
                               "inq_overflow")
                self.world.cpu.extend_interrupt(params.EARLY_DROP_US)
                return
            path.stats.charge_memory(msg.footprint())

        return rx

    # -- path thread -------------------------------------------------------

    @staticmethod
    def _forward_thread_body(path: Path):
        inq = path.input_queue(BWD)
        while path.state != DELETED:
            msg = yield Dequeue(inq)
            path.deliver(msg, BWD)
            cost = take_cost(msg)
            if cost > 0:
                yield Compute(cost)
            path.stats.release_memory(msg.footprint())
            yield YIELD

    # -- introspection -----------------------------------------------------

    def paths(self) -> List[Path]:
        return [p.path for p in self.ports.values() if p.path is not None]

    def drop_ledger(self) -> Dict[str, int]:
        """Aggregate drop accounting across every forwarding path plus
        the kernel-level classification drops."""
        ledger: Dict[str, int] = {}
        for path in self.paths():
            for category, count in path.stats.drop_reasons.items():
                ledger[category] = ledger.get(category, 0) + count
        if self.unclassified_drops:
            ledger["unclassified"] = self.unclassified_drops
        return ledger

    def stats(self) -> Dict[str, int]:
        stats = dict(self.fwd.stats())
        stats["unclassified_drops"] = self.unclassified_drops
        stats["inq_overflow_drops"] = self.inq_overflow_drops
        return stats

    def __repr__(self) -> str:
        ports = ",".join(f"{p.name}={p.ip}" for p in self.ports.values())
        return f"<RouterKernel {self.name} {ports}>"
