"""The ICMP router: echo request/reply (the Table 2 load generator target).

The Scout kernel creates one wide, low-priority ICMP path at boot
(ICMP -> IP -> ETH).  Echo requests classified to it wait in its input
queue until its (low-priority) thread runs; the reply is generated inside
the path and turned around toward the requester.  Under the Table 2 flood
this is exactly the early segregation the paper demonstrates: video work
never waits behind ICMP work.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .. import params
from ..core.attributes import PA_PROTID, Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward, turn_around
from .common import charge
from .headers import IcmpHeader, IpHeader, IPPROTO_ICMP
from .ip import PA_IP_CATCHALL


class IcmpStage(Stage):
    """ICMP's contribution to the echo path."""

    def __init__(self, router: "IcmpRouter", enter_service, exit_service):
        super().__init__(router, enter_service, exit_service)
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._receive)

    def _send(self, iface, msg: Msg, direction: int, **kwargs):
        charge(msg, params.ICMP_PROC_US / 2)
        return forward(iface, msg, direction, **kwargs)

    def _receive(self, iface, msg: Msg, direction: int, **kwargs):
        router: IcmpRouter = self.router  # type: ignore[assignment]
        charge(msg, params.ICMP_PROC_US)
        if len(msg) < IcmpHeader.SIZE:
            self.note_drop(msg, "short ICMP packet", "malformed")
            return None
        header = IcmpHeader.unpack(msg.peek(IcmpHeader.SIZE))
        msg.pop(IcmpHeader.SIZE)
        if header.icmp_type == IcmpHeader.ECHO_REPLY:
            # Record the reply for whoever is probing (the PMTUD prober
            # polls this table to learn a probe got through).
            router.echo_replies_received += 1
            router.replies_seen[(header.ident, header.seq)] = len(msg)
            return None
        if header.icmp_type == IcmpHeader.DEST_UNREACH:
            return self._receive_unreachable(header, msg)
        if header.icmp_type == IcmpHeader.TIME_EXCEEDED:
            router.time_exceeded_received += 1
            return None
        if header.icmp_type != IcmpHeader.ECHO_REQUEST:
            self.note_drop(msg, f"unhandled ICMP type {header.icmp_type}",
                           "protocol")
            return None
        router.echo_requests += 1
        reply = Msg(IcmpHeader(IcmpHeader.ECHO_REPLY, header.ident,
                               header.seq).pack() + msg.to_bytes())
        # Address the reply to the requester using classifier context.
        if "ip_src" in msg.meta:
            reply.meta["ip_dst_override"] = msg.meta["ip_src"]
        if "eth_src" in msg.meta:
            reply.meta["eth_dst_override"] = msg.meta["eth_src"]
        reply.meta["ip_proto_override"] = IPPROTO_ICMP
        router.echo_replies += 1
        turn_around(iface, reply, direction)
        # Reply traversal cost is paid by this path's thread too.
        charge(msg, reply.meta.get("cost_us", 0.0))
        return None  # the request is fully absorbed

    def _receive_unreachable(self, header: IcmpHeader, msg: Msg):
        """Destination Unreachable: the Fragmentation Needed variant is
        PMTUD's feedback signal (RFC 1191) — the error quotes the
        offending datagram's IP header, whose ``dst`` names the path
        whose MTU estimate must shrink; the next-hop MTU rides in the
        header's last 16 bits (our ``seq`` field)."""
        router: IcmpRouter = self.router  # type: ignore[assignment]
        if header.code != IcmpHeader.CODE_FRAG_NEEDED:
            router.unreachable_received += 1
            return None
        if len(msg) < IpHeader.SIZE:
            self.note_drop(msg, "frag-needed with no quoted header",
                           "malformed")
            return None
        try:
            quoted = IpHeader.unpack(msg.peek(IpHeader.SIZE))
        except ValueError:
            self.note_drop(msg, "frag-needed quotes a bad header",
                           "malformed")
            return None
        router.frag_needed_received += 1
        note = getattr(router.ip_router, "note_frag_needed", None)
        if note is not None:
            note(quoted.dst, header.seq)
        return None


@register_router("IcmpRouter")
class IcmpRouter(Router):
    """The ICMP protocol router."""

    SERVICES = ("<down:net",)

    def __init__(self, name: str):
        super().__init__(name)
        #: The wide echo path, bound by the kernel after boot.
        self.echo_path = None
        #: The IP router below (set at init); PMTUD feedback lands there.
        self.ip_router = None
        self.echo_requests = 0
        self.echo_replies = 0
        self.echo_replies_received = 0
        #: ``(ident, seq) -> payload bytes`` of echo replies seen, for
        #: the PMTUD prober to poll.
        self.replies_seen = {}
        self.frag_needed_received = 0
        self.unreachable_received = 0
        self.time_exceeded_received = 0

    def init(self) -> None:
        super().init()
        down = self.service("down").sole_link()
        ip_router, _service = down.peer_of(self.service("down"))
        self.ip_router = ip_router
        register = getattr(ip_router, "register_proto", None)
        if register is not None:
            register(IPPROTO_ICMP, self, self.service("down"))

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        down = self.service("down")
        if len(down.links) != 1:
            return None, None
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = IcmpStage(self, enter, down)
        hop_attrs = attrs.extended(**{PA_PROTID: IPPROTO_ICMP,
                                      PA_IP_CATCHALL: True})
        return stage, NextHop(peer_router, peer_service, hop_attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        if self.echo_path is None:
            return DemuxResult.drop(f"{self.name}: no echo path bound")
        if len(msg) < offset + IcmpHeader.SIZE:
            return DemuxResult.drop(f"{self.name}: short ICMP packet")
        header = IcmpHeader.unpack(msg.peek(IcmpHeader.SIZE, at=offset))
        if header.icmp_type not in (IcmpHeader.ECHO_REQUEST,
                                    IcmpHeader.ECHO_REPLY,
                                    IcmpHeader.DEST_UNREACH,
                                    IcmpHeader.TIME_EXCEEDED):
            return DemuxResult.drop(
                f"{self.name}: unhandled ICMP type {header.icmp_type}")
        return DemuxResult.found(self.echo_path)
