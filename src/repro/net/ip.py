"""The IP router: routing by local knowledge, fragmentation, reassembly.

IP is the paper's worked example of *local* knowledge in path creation
(Section 2.2): "if IP can determine that the remote host is on the same
Ethernet as the local host" the routing decision can be frozen; otherwise
"IP can not be sure whether data will go out through ATM or FDDI" and the
path must end at IP.  ``create_stage`` implements exactly that rule.

IP is also where the classifier's *best-effort* semantics show up
(Section 3.5): fragments are handed to a short/fat catch-all path that
knows how to reassemble them, and "once the full datagram is available,
the IP protocol can rerun the classifier to find the next path".
"""

from __future__ import annotations

import itertools
import struct
from typing import Callable, Dict, Optional, Tuple

from .. import params
from ..core.attributes import PA_NET_PARTICIPANTS, Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.specialize import StageFragment, register_specializer
from ..core.stage import BWD, FWD, Stage, forward
from .addresses import IpAddr
from .common import PA_ETH_DST, PA_ETHERTYPE, charge, forward_or_deposit
from .headers import (
    ETHERTYPE_IP,
    IP_FLAG_DONT_FRAGMENT,
    IP_FLAG_MORE_FRAGMENTS,
    IpHeader,
)

#: Attribute marking the wide catch-all path that accepts any datagram
#: (used for the fragment-reassembly path).
PA_IP_CATCHALL = "PA_IP_CATCHALL"

def _next_ident16(counter=itertools.count(1)) -> int:
    return next(counter) & 0xFFFF


class _ReassemblyBuffer:
    """Fragments of one datagram, keyed by the RFC 791 reassembly id
    ``(src, dst, proto, ident)`` at the stage."""

    __slots__ = ("pieces", "total_end", "expiry")

    def __init__(self) -> None:
        self.pieces: Dict[int, bytes] = {}   # byte offset -> payload
        self.total_end: Optional[int] = None  # set when the MF=0 piece lands
        self.expiry = None  # engine Event for the reassembly timeout

    def add(self, offset: int, payload: bytes, more_fragments: bool) -> bool:
        """Absorb one fragment; False rejects a corrupting piece.

        Duplicates never shrink coverage: a retransmitted shorter piece
        at a covered offset is ignored in favour of the longer one.  A
        final fragment (MF=0) fixes the datagram's total length once; a
        second final piece claiming a *different* end is a conflicting
        train and is rejected rather than silently moving ``total_end``.
        """
        if not more_fragments:
            end = offset + len(payload)
            if self.total_end is not None and self.total_end != end:
                return False
            self.total_end = end
        existing = self.pieces.get(offset)
        if existing is None or len(payload) > len(existing):
            self.pieces[offset] = payload
        return True

    def complete(self) -> bool:
        if self.total_end is None:
            return False
        covered = 0
        for offset in sorted(self.pieces):
            if offset > covered:
                return False  # gap
            covered = max(covered, offset + len(self.pieces[offset]))
        return covered >= self.total_end

    def assemble(self) -> bytes:
        out = bytearray()
        for offset in sorted(self.pieces):
            piece = self.pieces[offset]
            if offset < len(out):
                piece = piece[len(out) - offset:]  # overlap trim
            out += piece
        return bytes(out[: self.total_end])


class IpStage(Stage):
    """IP's contribution to a path."""

    #: Cap on simultaneously reassembling datagrams per stage; oldest is
    #: evicted first.  This is the memory backstop behind the real
    #: virtual-time reassembly timeout (see ``REASSEMBLY_TIMEOUT_US``).
    MAX_REASSEMBLY = 32

    #: RFC-style reassembly timeout: a datagram whose fragments have not
    #: all arrived within this window is freed (engine-scheduled expiry;
    #: active whenever the router has an engine attached).
    REASSEMBLY_TIMEOUT_US = params.IP_REASSEMBLY_TIMEOUT_US

    def __init__(self, router: "IpRouter", enter_service: Optional[Service],
                 exit_service: Optional[Service], proto: int,
                 remote_ip: Optional[IpAddr], catchall: bool,
                 next_hop_ip: Optional[IpAddr] = None):
        super().__init__(router, enter_service, exit_service)
        self.proto = proto
        self.remote_ip = remote_ip
        #: Where frames for ``remote_ip`` go at the link layer: the peer
        #: itself when on-net, the configured gateway otherwise.
        self.next_hop_ip = next_hop_ip if next_hop_ip is not None \
            else remote_ip
        self.catchall = catchall
        self._buffers: Dict[Tuple[IpAddr, IpAddr, int, int],
                            _ReassemblyBuffer] = {}
        self.fragments_sent = 0
        self.datagrams_reassembled = 0
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._receive)
        self.set_deliver_batch(BWD, self._receive_batch)

    def establish(self, attrs: Attrs) -> None:
        """Resolve the next hop's MAC via the ARP resolver service and
        record it for the ETH stage — the nsClient edge of Figure 6 in
        action.  For an off-net peer behind a configured gateway the
        frozen MAC is the gateway's, not the peer's."""
        router: IpRouter = self.router  # type: ignore[assignment]
        if self.next_hop_ip is not None and self.exit_service is not None:
            # Only a path that actually continues to a link layer needs the
            # next hop's MAC; a path truncated at IP (off-net peer with no
            # gateway) does not.
            attrs[PA_ETH_DST] = router.resolve(self.next_hop_ip)
        attrs[PA_ETHERTYPE] = ETHERTYPE_IP

    # -- send: header push + fragmentation ---------------------------------------

    def _send(self, iface, msg: Msg, direction: int, **kwargs):
        router: IpRouter = self.router  # type: ignore[assignment]
        charge(msg, params.IP_PROC_US)
        # Catch-all paths carry per-message destinations (echo replies).
        dst = msg.meta.get("ip_dst_override") or self.remote_ip
        proto = msg.meta.get("ip_proto_override", self.proto)
        if dst is None:
            self.note_drop(msg, "IP path has no remote participant",
                           "misaddressed")
            return None
        # The learned path MTU (when PMTUD has shrunk it) bounds every
        # datagram to *dst*, so steady-state traffic is sized so that no
        # downstream hop has to fragment it.
        payload_mtu = router.payload_capacity(dst)
        df_flag = IP_FLAG_DONT_FRAGMENT if router.pmtud_enabled else 0
        if len(msg) <= payload_mtu:
            header = IpHeader(IpHeader.SIZE + len(msg), _next_ident16(),
                              proto, router.addr, dst, flags=df_flag)
            msg.push(header.pack())
            return forward(iface, msg, direction, **kwargs)
        return self._send_fragments(iface, msg, direction, payload_mtu,
                                    dst=dst, proto=proto, df_flag=df_flag,
                                    **kwargs)

    def _send_fragments(self, iface, msg: Msg, direction: int,
                        payload_mtu: int, dst: IpAddr, proto: int,
                        df_flag: int = 0, **kwargs):
        router: IpRouter = self.router  # type: ignore[assignment]
        chunk = payload_mtu - (payload_mtu % 8)  # offsets are 8-byte units
        if chunk <= 0:
            # A sub-8-byte payload budget cannot carry a single fragment
            # octet group: without this guard ``msg.split(0)`` never
            # drains the message and the loop below spins forever.
            self.note_drop(
                msg, f"payload MTU {payload_mtu} too small to fragment",
                "mtu_too_small")
            router.mtu_too_small_drops += 1
            return None
        ident = _next_ident16()
        offset = 0
        result = None
        while len(msg) > 0:
            take = min(chunk, len(msg))
            piece = msg.split(take)
            more = len(msg) > 0
            header = IpHeader(
                IpHeader.SIZE + take, ident, proto,
                router.addr, dst,
                flags=(IP_FLAG_MORE_FRAGMENTS if more else 0) | df_flag,
                frag_offset=offset // 8)
            piece.push(header.pack())
            charge(piece, params.IP_FRAG_PER_FRAG_US)
            self.fragments_sent += 1
            offset += take
            result = forward(iface, piece, direction, **kwargs)
        return result

    # -- receive: validation + reassembly -------------------------------------------

    def _receive(self, iface, msg: Msg, direction: int, **kwargs):
        router: IpRouter = self.router  # type: ignore[assignment]
        charge(msg, params.IP_PROC_US)
        if msg.meta.pop("ip_validated", False):
            # Flow-cache hit: the key already re-validated IHL, protocol,
            # non-fragment flags and both addresses (the original chain
            # walk checked dst == ours when the entry was inserted); only
            # the per-packet total length still matters, for trimming
            # link-layer padding.
            router.rx_validated += 1
            payload_len = int.from_bytes(msg.peek(2, at=2), "big") \
                - IpHeader.SIZE
            msg.pop(IpHeader.SIZE)
            if len(msg) > payload_len:
                msg = Msg(msg.to_bytes()[:payload_len], meta=msg.meta)
            return forward_or_deposit(iface, msg, direction, **kwargs)
        if len(msg) < IpHeader.SIZE:
            self.note_drop(msg, "short IP packet", "malformed")
            router.rx_dropped += 1
            return None
        header = IpHeader.unpack(msg.peek(IpHeader.SIZE))
        if header.dst != router.addr:
            self.note_drop(msg, f"IP dst {header.dst} is not {router.addr}",
                           "misaddressed")
            router.rx_dropped += 1
            return None
        msg.pop(IpHeader.SIZE)
        # Trim link-layer padding beyond the IP total length.
        payload_len = header.total_length - IpHeader.SIZE
        if len(msg) > payload_len:
            tail = msg.to_bytes()[:payload_len]
            trimmed = Msg(tail, meta=msg.meta)
            msg = trimmed
        msg.meta["ip_header"] = header
        if header.is_fragment:
            charge(msg, params.IP_FRAG_PER_FRAG_US)
            return self._receive_fragment(iface, header, msg, direction,
                                          **kwargs)
        return forward_or_deposit(iface, msg, direction, **kwargs)

    def _receive_batch(self, iface, msgs, direction: int, **kwargs):
        """Vectorized receive for a validated run (DESIGN.md §13).

        Accepts the run only when every message carries the flow-cache
        ``ip_validated`` annotation and the stage is interior (an
        IP-terminated path deposits per message via the scalar branch).
        Per message this is exactly the scalar fast branch: charge,
        total-length padding trim, header strip.
        """
        if iface.next is None \
                or not all(m.meta.get("ip_validated") for m in msgs):
            return None
        router: IpRouter = self.router  # type: ignore[assignment]
        router.rx_validated += len(msgs)
        cost = params.IP_PROC_US
        size = IpHeader.SIZE
        out = []
        for m in msgs:
            del m.meta["ip_validated"]
            charge(m, cost)
            payload_len = int.from_bytes(m.peek(2, at=2), "big") - size
            m.pop(size)
            if len(m) > payload_len:
                m = Msg(m.to_bytes()[:payload_len], meta=m.meta)
            out.append(m)
        return out

    def _receive_fragment(self, iface, header: IpHeader, msg: Msg,
                          direction: int, **kwargs):
        router: IpRouter = self.router  # type: ignore[assignment]
        # RFC 791 reassembly id: fragment trains from one peer to
        # different destinations or protocols with colliding 16-bit
        # idents must land in distinct buffers.
        key = (header.src, header.dst, header.proto, header.ident)
        buffer = self._buffers.get(key)
        if buffer is None:
            if len(self._buffers) >= self.MAX_REASSEMBLY:
                oldest = next(iter(self._buffers))
                self._evict_buffer(oldest)
            buffer = self._buffers[key] = _ReassemblyBuffer()
            if router.engine is not None:
                # The real RFC reassembly timeout: an engine-scheduled
                # expiry frees the partial datagram in virtual time; the
                # LRU eviction above remains only as a memory backstop.
                buffer.expiry = router.engine.schedule(
                    self.REASSEMBLY_TIMEOUT_US, self._expire_buffer, key)
        if not buffer.add(header.frag_offset * 8, msg.to_bytes(),
                          header.more_fragments):
            self.note_drop(msg, "conflicting final fragment for "
                                f"datagram {header.ident}", "malformed")
            router.rx_dropped += 1
            return None
        if not buffer.complete():
            return None  # absorbed: most fragments produce no output
        self._free_buffer(key)
        self.datagrams_reassembled += 1
        # The assembly copy costs time proportional to the datagram.
        charge(msg, buffer.total_end * params.REASSEMBLY_US_PER_BYTE)
        whole = Msg(buffer.assemble(), meta=msg.meta)
        rebuilt = IpHeader(IpHeader.SIZE + len(whole), header.ident,
                           header.proto, header.src, header.dst)
        whole.meta["ip_header"] = rebuilt
        if self.catchall:
            # Short/fat path's job ends here: rerun the classifier on the
            # assembled datagram so it reaches the path that wants it.
            return router.reclassify(whole, rebuilt)
        return forward_or_deposit(iface, whole, direction, **kwargs)

    def _free_buffer(self, key) -> None:
        """Remove a reassembly buffer and cancel its pending expiry."""
        buffer = self._buffers.pop(key, None)
        if buffer is not None and buffer.expiry is not None:
            buffer.expiry.cancel()
            buffer.expiry = None

    def _evict_buffer(self, key) -> None:
        """LRU memory backstop: free the oldest partial datagram and
        ledger the loss, so eviction accounting reconciles exactly the
        way timeout accounting does."""
        router: IpRouter = self.router  # type: ignore[assignment]
        self._free_buffer(key)
        router.reassembly_evictions += 1
        if self.path is not None:
            placeholder = Msg(b"", meta={})
            self.path.note_drop(
                placeholder,
                f"reassembly buffer evicted for datagram {key[3]} "
                f"from {key[0]}",
                "reassembly_eviction")

    def _expire_buffer(self, key) -> None:
        """Engine callback: the reassembly window for *key* elapsed without
        the datagram completing; free the partial state and account the
        loss against the path."""
        router: IpRouter = self.router  # type: ignore[assignment]
        buffer = self._buffers.pop(key, None)
        if buffer is None:
            return
        buffer.expiry = None
        router.reassembly_timeouts += 1
        if self.path is not None:
            placeholder = Msg(b"", meta={})
            self.path.note_drop(
                placeholder,
                f"reassembly timeout for datagram {key[3]} from {key[0]}",
                "reassembly_timeout")

    def destroy(self) -> None:
        for key in list(self._buffers):
            self._free_buffer(key)


#: One prebound struct for the only per-packet IP field the validated
#: branch still reads: the big-endian total length at header offset 2.
_IP_TOTAL_LENGTH = struct.Struct("!H")


def _specialize_ip(stage: "IpStage", iface, fn, fn_batch, direction: int,
                   terminal: bool) -> Optional[StageFragment]:
    """Fuse the validated receive branch of :meth:`IpStage._receive`.

    The padding-trim case (link-layer padding beyond the IP total length)
    rebinds the message to a freshly copied ``Msg`` with a *copied* meta
    dict — semantics the straight-line fused body deliberately does not
    carry — so padded frames bail to the exact compiled chain per
    message, before any mutation.
    """
    if direction != BWD or terminal or iface.next is None:
        return None
    if not stage.has_pristine_deliver(BWD, IpStage._receive,
                                      IpStage._receive_batch):
        return None
    router = stage.router

    def cost_expr(ctx):
        return "%s.IP_PROC_US" % ctx.bind(params, "params")

    def bail(ctx):
        unpack = ctx.bind(_IP_TOTAL_LENGTH.unpack_from, "ip_len")
        raw = ctx.need_raw()
        lines = ["_plen = %s(%s, %d)[0] - %d"
                 % (unpack, raw, ctx.offset + 2, IpHeader.SIZE),
                 "if len(m) - %d > _plen:" % (ctx.offset + IpHeader.SIZE)]
        lines += ["    " + line for line in ctx.bail_action()]
        return lines

    def epilogue(ctx):
        return ["%s.rx_validated += _live" % ctx.bind(router, "ip_router")]

    return StageFragment(stamps=("ip_validated",), pop=IpHeader.SIZE,
                         cost_expr=cost_expr, bail=bail, epilogue=epilogue)


register_specializer(IpStage, _specialize_ip)


@register_router("IpRouter")
class IpRouter(Router):
    """The IP protocol router."""

    SERVICES = ("up:net", "<down:net", "res:nsClient")

    def __init__(self, name: str, addr: str = "10.0.0.1",
                 prefix_len: int = 24):
        super().__init__(name)
        self.addr = IpAddr(addr)
        self.prefix_len = prefix_len
        self._proto_peers: Dict[int, Tuple[Router, Service]] = {}
        #: The wide reassembly path fragments are classified to.
        self.frag_path = None
        #: Kernel hook receiving reassembled datagrams for reclassification
        #: (set by the Scout kernel; see ScoutKernel._reclassify).
        self.reclassify_hook: Optional[Callable[[Msg, IpHeader], None]] = None
        #: Simulation engine for reassembly-timeout scheduling; ``None``
        #: (the default) means no timers and eviction-only cleanup.
        self.engine = None
        #: Default gateway for off-net destinations.  ``None`` keeps the
        #: strict local-knowledge rule (paths to off-net peers truncate
        #: at IP); a configured gateway re-freezes the routing decision:
        #: there is exactly one way out, via this router.
        self.gateway: Optional[IpAddr] = None
        #: Learned path MTU per destination (total IP packet bytes), fed
        #: by ICMP Fragmentation Needed messages (RFC 1191).
        self.pmtu: Dict[IpAddr, int] = {}
        #: When True, sends carry DF and are sized to the learned PMTU.
        self.pmtud_enabled = False
        # statistics
        self.rx_dropped = 0
        #: Datagrams that took the flow-validated fast receive (DESIGN.md §13).
        self.rx_validated = 0
        self.reassembly_evictions = 0
        self.reassembly_timeouts = 0
        self.pmtu_updates = 0
        self.mtu_too_small_drops = 0

    def use_engine(self, engine) -> None:
        """Attach a virtual-time engine so reassembly buffers expire on the
        RFC timeout rather than relying solely on LRU eviction."""
        self.engine = engine

    # -- wiring ---------------------------------------------------------------------

    def init(self) -> None:
        super().init()
        down = self.service("down").sole_link()
        eth_router, _service = down.peer_of(self.service("down"))
        register = getattr(eth_router, "register_ethertype", None)
        if register is not None:
            register(ETHERTYPE_IP, self, self.service("up"))

    def register_proto(self, proto: int, router: Router,
                       service: Service) -> None:
        """Transport routers (UDP, TCP, ICMP) register their protocol id."""
        self._proto_peers[proto] = (router, service)

    def resolve(self, ip: IpAddr):
        """Resolve *ip* through the connected nsProvider (ARP)."""
        res = self.service("res").sole_link()
        arp_router, _service = res.peer_of(self.service("res"))
        return arp_router.resolve(ip)

    def frame_payload_mtu(self) -> int:
        down = self.service("down").sole_link()
        eth_router, _service = down.peer_of(self.service("down"))
        return eth_router.payload_mtu()

    # -- gateway + path-MTU discovery ------------------------------------------------

    def set_gateway(self, ip) -> None:
        """Route off-net destinations via *ip* (which must be on-net)."""
        gateway = IpAddr(ip)
        if not self.addr.same_network(gateway, self.prefix_len):
            raise ValueError(f"gateway {gateway} is not on "
                             f"{self.addr}/{self.prefix_len}")
        self.gateway = gateway

    def enable_pmtud(self, enabled: bool = True) -> None:
        """Turn on sender-side path-MTU discovery: outgoing datagrams
        carry DF and are sized to the learned per-destination PMTU."""
        self.pmtud_enabled = enabled

    def note_frag_needed(self, dst, mtu: int) -> None:
        """Absorb an ICMP Fragmentation Needed report for *dst*.

        The learned PMTU only ever shrinks (a grown link is rediscovered
        by timeout/probing policies above us, never by believing a larger
        report), and never below the RFC 791 minimum.
        """
        dst = IpAddr(dst)
        mtu = max(int(mtu), params.IP_MIN_MTU)
        current = self.pmtu.get(dst)
        if current is None or mtu < current:
            self.pmtu[dst] = mtu
            self.pmtu_updates += 1

    def path_mtu(self, dst) -> int:
        """Largest IP packet (header + payload) sendable toward *dst*:
        the first-hop link MTU clamped by any learned PMTU."""
        mtu = self.frame_payload_mtu()
        learned = self.pmtu.get(IpAddr(dst))
        if learned is not None:
            mtu = min(mtu, learned)
        return mtu

    def payload_capacity(self, dst=None) -> int:
        """Bytes of transport payload one unfragmented datagram to *dst*
        can carry (``None``: first-hop capacity, no PMTU clamp)."""
        if dst is None:
            return self.frame_payload_mtu() - IpHeader.SIZE
        return self.path_mtu(dst) - IpHeader.SIZE

    # -- path creation ------------------------------------------------------------------

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        catchall = bool(attrs.get(PA_IP_CATCHALL))
        remote_ip: Optional[IpAddr] = None
        if not catchall:
            participants = attrs.get(PA_NET_PARTICIPANTS)
            if participants is None:
                return None, None  # invariants too weak: path ends before IP
            remote_ip = IpAddr(participants[0])
        proto = attrs.get("PA_PROTID", 0)
        down = self.service("down")
        # The local-knowledge routing rule: freeze the decision only when
        # there is exactly one lower network and (for addressed paths) the
        # peer is directly on it.
        if len(down.links) != 1:
            stage = IpStage(self, enter, None, proto, remote_ip, catchall)
            return stage, None  # can't pick among ATM/FDDI/...: path ends
        next_hop_ip = remote_ip
        if remote_ip is not None and not self.addr.same_network(
                remote_ip, self.prefix_len):
            if self.gateway is None:
                stage = IpStage(self, enter, None, proto, remote_ip,
                                catchall)
                return stage, None  # unknown gateway: decision not frozen
            # A configured default gateway restores local knowledge: the
            # only way off this net is via the gateway, so the path can
            # freeze that next hop and continue down to the link layer.
            next_hop_ip = self.gateway
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = IpStage(self, enter, down, proto, remote_ip, catchall,
                        next_hop_ip=next_hop_ip)
        return stage, NextHop(peer_router, peer_service, attrs)

    # -- classification -------------------------------------------------------------------

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        if len(msg) < offset + IpHeader.SIZE:
            return DemuxResult.drop(f"{self.name}: short IP packet")
        try:
            header = IpHeader.unpack(msg.peek(IpHeader.SIZE, at=offset))
        except ValueError as exc:
            return DemuxResult.drop(f"{self.name}: {exc}")
        if header.dst != self.addr:
            return DemuxResult.drop(f"{self.name}: not our address "
                                    f"({header.dst})")
        msg.meta["ip_src"] = header.src
        msg.meta["ip_proto"] = header.proto
        if header.is_fragment:
            if self.frag_path is not None:
                return DemuxResult.found(self.frag_path)
            return DemuxResult.drop(
                f"{self.name}: fragment but no reassembly path configured")
        peer = self._proto_peers.get(header.proto)
        if peer is None:
            return DemuxResult.drop(
                f"{self.name}: no transport for proto {header.proto}")
        return DemuxResult.refine(peer[0], peer[1], consumed=IpHeader.SIZE)

    # -- reassembled-datagram handoff ----------------------------------------------------------

    def reclassify(self, msg: Msg, header: IpHeader) -> None:
        """Hand a freshly reassembled datagram back to the kernel so the
        classifier can run again and route it to its real path."""
        if self.reclassify_hook is not None:
            self.reclassify_hook(msg, header)
        else:
            msg.meta["drop_reason"] = "reassembled datagram with no reclassify hook"
