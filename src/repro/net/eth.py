"""The ETH router: Ethernet framing and the device boundary.

ETH is the bottom of every network path (Figures 3, 6, 9).  On the send
side its stage pushes the Ethernet header and hands the frame to the NIC;
on the receive side the *kernel* (not the router) runs the classifier at
interrupt time and deposits the message on a path's input queue, after
which the path thread enters the path at the ETH stage, which pops the
header and forwards upward.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .. import params
from ..core.attributes import Attrs
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.specialize import StageFragment, register_specializer
from ..core.stage import BWD, FWD, Stage, forward
from ..core.graph import register_router
from .addresses import EthAddr
from .common import PA_ETH_DST, PA_ETHERTYPE, charge
from .headers import EthHeader
from .segment import NetDevice


class EthStage(Stage):
    """ETH's contribution to a path (an extreme stage)."""

    def __init__(self, router: "EthRouter", enter_service: Optional[Service]):
        super().__init__(router, enter_service, None)
        self.dst_mac: Optional[EthAddr] = None
        self.ethertype = 0
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._receive)
        self.set_deliver_batch(BWD, self._receive_batch)

    def establish(self, attrs: Attrs) -> None:
        """Freeze the frame header fields for this path.

        The destination MAC was resolved (via ARP) by the IP stage's
        establish, which recorded it in the path attributes — stages
        sharing state anonymously through attrs, as Section 3.2 describes.
        """
        dst = attrs.get(PA_ETH_DST)
        self.dst_mac = EthAddr(dst) if dst is not None else EthAddr.BROADCAST
        self.ethertype = attrs.get(PA_ETHERTYPE, 0)

    def _send(self, iface, msg: Msg, direction: int, **kwargs) -> None:
        router: EthRouter = self.router  # type: ignore[assignment]
        charge(msg, params.ETH_PROC_US)
        # Catch-all paths (ICMP echo) have no frozen destination; the
        # responding stage supplies a per-message override instead.
        dst = msg.meta.get("eth_dst_override") or self.dst_mac \
            or EthAddr.BROADCAST
        msg.push(EthHeader(dst, router.mac, self.ethertype).pack())
        if not router.transmit(msg):
            self.note_drop(msg, f"frame exceeds {router.name} MTU "
                                f"{router.mtu}", "oversize_frame")
            return
        if self.path is not None:
            # Wire transmission is useful output that never touches an
            # output queue; mark it so the watchdog sees send paths live.
            self.path.note_progress()

    def _receive(self, iface, msg: Msg, direction: int, **kwargs):
        charge(msg, params.ETH_PROC_US)
        if msg.meta.pop("eth_validated", False):
            # Flow-cache hit: the exact-match key already re-validated the
            # frame length and ethertype, and the annotate hook stashed the
            # fields upper stages read — strip the header and go.
            self.router.rx_validated += 1
            msg.pop(EthHeader.SIZE)
            return forward(iface, msg, direction, **kwargs)
        if len(msg) < EthHeader.SIZE:
            self.note_drop(msg, "runt frame", "malformed")
            return None
        msg.meta["eth_header"] = EthHeader.unpack(msg.peek(EthHeader.SIZE))
        msg.pop(EthHeader.SIZE)
        return forward(iface, msg, direction, **kwargs)

    def _receive_batch(self, iface, msgs, direction: int, **kwargs):
        """Vectorized receive for a validated run (DESIGN.md §13).

        Accepts the run only when every message carries the flow-cache
        ``eth_validated`` annotation — then each message needs exactly
        what the scalar fast branch does: the per-stage charge and the
        header strip.  Mixed runs decline so the scalar function keeps
        its per-message drop semantics.
        """
        if not all(m.meta.get("eth_validated") for m in msgs):
            return None
        self.router.rx_validated += len(msgs)
        cost = params.ETH_PROC_US
        size = EthHeader.SIZE
        for m in msgs:
            del m.meta["eth_validated"]
            charge(m, cost)
            m.pop(size)
        return msgs


def _specialize_eth(stage: EthStage, iface, fn, fn_batch, direction: int,
                    terminal: bool) -> Optional[StageFragment]:
    """Fuse the validated receive branch of :meth:`EthStage._receive`:
    per-stage charge, stamp consumption, header strip.  Anything else —
    send side, an interposed function, a chain ending at ETH — declines.
    """
    if direction != BWD or terminal:
        return None
    if not stage.has_pristine_deliver(BWD, EthStage._receive,
                                      EthStage._receive_batch):
        return None
    router = stage.router

    def cost_expr(ctx):
        return "%s.ETH_PROC_US" % ctx.bind(params, "params")

    def epilogue(ctx):
        return ["%s.rx_validated += _live" % ctx.bind(router, "eth_router")]

    return StageFragment(stamps=("eth_validated",), pop=EthHeader.SIZE,
                         cost_expr=cost_expr, epilogue=epilogue)


register_specializer(EthStage, _specialize_eth)


@register_router("EthRouter")
class EthRouter(Router):
    """Driver router for one Ethernet adapter."""

    SERVICES = ("up:net",)

    def __init__(self, name: str, mac: str = "02:00:00:00:00:01",
                 mtu: int = params.ETH_MTU):
        super().__init__(name)
        self.mac = EthAddr(mac)
        self.mtu = mtu
        self.device: Optional[NetDevice] = None
        #: ethertype -> (router, service) registrations from upper layers.
        self._ethertype_peers: dict = {}
        # statistics
        self.tx_frames = 0
        #: Frames refused at transmit because they exceed the link MTU.
        self.tx_oversize = 0
        #: Frames that took the flow-validated fast receive (DESIGN.md §13).
        self.rx_validated = 0

    # -- wiring -----------------------------------------------------------------

    def attach_device(self, device: NetDevice) -> None:
        self.device = device

    def register_ethertype(self, ethertype: int, router: Router,
                           service: Service) -> None:
        """Upper layers (IP, ARP) register the ethertype they speak; both
        routing refinement (demux) and payload dispatch use this table."""
        self._ethertype_peers[ethertype] = (router, service)

    def payload_mtu(self) -> int:
        """Bytes available to the layer above per frame."""
        return self.mtu

    # -- path creation -------------------------------------------------------------

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Stage, Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        return EthStage(self, enter), None  # ETH is always a leaf

    # -- classification ---------------------------------------------------------------

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        if len(msg) < offset + EthHeader.SIZE:
            return DemuxResult.drop(f"{self.name}: runt frame")
        header = EthHeader.unpack(msg.peek(EthHeader.SIZE, at=offset))
        if header.dst != self.mac and not header.dst.is_broadcast:
            return DemuxResult.drop(f"{self.name}: not our MAC ({header.dst})")
        peer = self._ethertype_peers.get(header.ethertype)
        if peer is None:
            return DemuxResult.drop(
                f"{self.name}: no protocol for ethertype 0x{header.ethertype:04x}")
        msg.meta["eth_src"] = header.src
        return DemuxResult.refine(peer[0], peer[1], consumed=EthHeader.SIZE)

    # -- transmission -------------------------------------------------------------------

    def transmit(self, msg: Msg) -> bool:
        """Hand a fully framed message to the adapter.

        Enforces the link MTU the way a real driver does: a frame whose
        payload exceeds it is refused (returns False) rather than put on
        the wire — heterogeneous-MTU topologies depend on this check
        being per-link, not per-host.
        """
        if self.device is None:
            raise RuntimeError(f"{self.name} has no attached device")
        frame = msg.to_bytes()
        if len(frame) > self.mtu + EthHeader.SIZE:
            self.tx_oversize += 1
            msg.meta.setdefault("drop_reason",
                                f"frame exceeds {self.name} MTU {self.mtu}")
            return False
        self.tx_frames += 1
        self.device.send(frame)
        return True
