"""A simplified TCP router.

TCP appears in the paper's Figure 3 web-server graph and in its examples
of attribute rewriting ("when FTP forwards a path create operation to TCP,
it sets PA_PROTID to 21.  If TCP decides to forward path creation to IP,
it resets the value of PA_PROTID to 6").  The reproduction needs TCP as a
*substrate*: enough machinery to build the Figure 3 graph, create paths
through it, move ordered byte-stream data, and acknowledge it — not a
full congestion-controlled implementation, which none of the paper's
experiments exercise.

Supported: per-path sequence numbers, in-order delivery with duplicate
suppression, cumulative ACKs turned around through the path, and the
PA_PROTID rewrite.  Not modeled: handshake, retransmission, congestion
control (documented simplification; see DESIGN.md).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from .. import params
from ..core.attributes import PA_NET_PARTICIPANTS, PA_PROTID, Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward, turn_around
from .common import PA_LOCAL_PORT, charge, forward_or_deposit
from .headers import IPPROTO_TCP, TcpHeader

_ephemeral_ports = itertools.count(32768)


class TcpStage(Stage):
    """TCP's contribution to a path."""

    def __init__(self, router: "TcpRouter", enter_service, exit_service,
                 local_port: int, remote_port: int):
        super().__init__(router, enter_service, exit_service)
        self.local_port = local_port
        self.remote_port = remote_port
        self.send_seq = 0
        self.recv_next = 0
        self.acks_sent = 0
        self.dup_drops = 0
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._receive)

    def establish(self, attrs: Attrs) -> None:
        router: TcpRouter = self.router  # type: ignore[assignment]
        router.bind_port_to_path(self.local_port, self.path)

    def destroy(self) -> None:
        router: TcpRouter = self.router  # type: ignore[assignment]
        router.release_port(self.local_port)

    def _send(self, iface, msg: Msg, direction: int, **kwargs):
        charge(msg, params.TCP_PROC_US)
        header = TcpHeader(self.local_port, self.remote_port,
                           seq=self.send_seq, ack=self.recv_next,
                           flags=TcpHeader.FLAG_ACK)
        self.send_seq += len(msg)
        msg.push(header.pack())
        return forward(iface, msg, direction, **kwargs)

    def _receive(self, iface, msg: Msg, direction: int, **kwargs):
        router: TcpRouter = self.router  # type: ignore[assignment]
        charge(msg, params.TCP_PROC_US)
        if len(msg) < TcpHeader.SIZE:
            msg.meta["drop_reason"] = "short TCP segment"
            return None
        header = TcpHeader.unpack(msg.peek(TcpHeader.SIZE))
        msg.pop(TcpHeader.SIZE)
        if header.seq < self.recv_next:
            self.dup_drops += 1
            msg.meta["drop_reason"] = f"duplicate seq {header.seq}"
            return None
        if header.seq > self.recv_next:
            # Simplified: out-of-order segments are dropped; the peer's
            # (unmodeled) retransmission would resupply them.
            msg.meta["drop_reason"] = (
                f"out-of-order seq {header.seq} != {self.recv_next}")
            return None
        self.recv_next = header.seq + len(msg)
        msg.meta["tcp_header"] = header
        self._acknowledge(iface, msg, direction)
        if len(msg) == 0:
            return None  # bare ACK
        return forward_or_deposit(iface, msg, direction, **kwargs)

    def _acknowledge(self, iface, data_msg: Msg, direction: int) -> None:
        """Turn a cumulative ACK around toward the sender — the paper's
        piggy-back-acknowledgment motivation for bidirectional paths."""
        ack = Msg(TcpHeader(self.local_port, self.remote_port,
                            seq=self.send_seq, ack=self.recv_next,
                            flags=TcpHeader.FLAG_ACK).pack())
        for key in ("ip_dst_override", "udp_dport_override"):
            if key in data_msg.meta:
                ack.meta[key] = data_msg.meta[key]
        charge(ack, params.TCP_PROC_US / 2)
        self.acks_sent += 1
        turn_around(iface, ack, direction)
        charge(data_msg, ack.meta.get("cost_us", 0.0))


@register_router("TcpRouter")
class TcpRouter(Router):
    """The (simplified) TCP protocol router."""

    SERVICES = ("up:net", "<down:net")

    def __init__(self, name: str):
        super().__init__(name)
        self._port_paths: Dict[int, object] = {}
        self._port_peers: Dict[int, Tuple[Router, Service]] = {}

    def init(self) -> None:
        super().init()
        down = self.service("down").sole_link()
        ip_router, _service = down.peer_of(self.service("down"))
        register = getattr(ip_router, "register_proto", None)
        if register is not None:
            register(IPPROTO_TCP, self, self.service("up"))

    def bind_port_to_path(self, port: int, path) -> None:
        self._port_paths[port] = path

    def bind_port(self, port: int, router: Router, service: Service) -> None:
        self._port_peers[port] = (router, service)

    def release_port(self, port: int) -> None:
        self._port_paths.pop(port, None)
        self._port_peers.pop(port, None)

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        participants = attrs.get(PA_NET_PARTICIPANTS)
        if participants is None:
            return None, None
        local_port = attrs.get(PA_LOCAL_PORT) or next(_ephemeral_ports)
        down = self.service("down")
        if len(down.links) != 1:
            return None, None
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = TcpStage(self, enter, down, local_port, participants[1])
        # The paper's example rewrite: whatever PA_PROTID the layer above
        # set (21 for FTP), TCP resets it to 6 for IP.
        hop_attrs = attrs.extended(**{PA_PROTID: IPPROTO_TCP})
        return stage, NextHop(peer_router, peer_service, hop_attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        if len(msg) < offset + TcpHeader.SIZE:
            return DemuxResult.drop(f"{self.name}: short TCP segment")
        header = TcpHeader.unpack(msg.peek(TcpHeader.SIZE, at=offset))
        msg.meta["tcp_ports"] = (header.sport, header.dport)
        path = self._port_paths.get(header.dport)
        if path is not None:
            return DemuxResult.found(path)
        peer = self._port_peers.get(header.dport)
        if peer is not None:
            return DemuxResult.refine(peer[0], peer[1],
                                      consumed=TcpHeader.SIZE)
        return DemuxResult.drop(
            f"{self.name}: no listener on port {header.dport}")
