"""A simplified TCP router with real retransmission.

TCP appears in the paper's Figure 3 web-server graph and in its examples
of attribute rewriting ("when FTP forwards a path create operation to TCP,
it sets PA_PROTID to 21.  If TCP decides to forward path creation to IP,
it resets the value of PA_PROTID to 6").  The reproduction needs TCP as a
*substrate*: enough machinery to build the Figure 3 graph, create paths
through it, move ordered byte-stream data, and acknowledge it — not a
full congestion-controlled implementation, which none of the paper's
experiments exercise.

Supported: per-path sequence numbers, in-order delivery with duplicate
suppression and out-of-order buffering, cumulative ACKs turned around
through the path, timer-driven retransmission with Jacobson RTT
estimation and Karn-style exponential backoff, and the PA_PROTID rewrite.
Not modeled: handshake, congestion control, window-based flow control
(documented simplification; see DESIGN.md).

Retransmission is opt-in: ``TcpRouter.use_engine(engine)`` attaches a
virtual-time engine; without one the router behaves exactly as the
timer-less substrate earlier experiments used (out-of-order segments are
still buffered, but lost segments stay lost).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from .. import params
from ..core.attributes import PA_NET_PARTICIPANTS, PA_PROTID, Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward, turn_around
from .common import PA_LOCAL_PORT, charge, forward_or_deposit
from .headers import IPPROTO_TCP, TcpHeader

_ephemeral_ports = itertools.count(32768)


class _UnackedSegment:
    """One transmitted, not-yet-acknowledged segment."""

    __slots__ = ("seq", "payload", "meta_overrides", "sent_at", "retries")

    def __init__(self, seq: int, payload: bytes, meta_overrides: dict,
                 sent_at: float) -> None:
        self.seq = seq
        self.payload = payload
        self.meta_overrides = meta_overrides
        self.sent_at = sent_at      # virtual send time of the *first* try
        self.retries = 0

    @property
    def seq_end(self) -> int:
        return self.seq + len(self.payload)


class TcpStage(Stage):
    """TCP's contribution to a path."""

    def __init__(self, router: "TcpRouter", enter_service, exit_service,
                 local_port: int, remote_port: int):
        super().__init__(router, enter_service, exit_service)
        self.local_port = local_port
        self.remote_port = remote_port
        self.send_seq = 0
        self.recv_next = 0
        self.acks_sent = 0
        self.acks_coalesced = 0
        self.dup_drops = 0
        # -- retransmission state (active only with an engine attached) --
        #: seq -> segment, insertion-ordered (seq is monotonic).
        self._unacked: Dict[int, _UnackedSegment] = {}
        self._rto_event = None
        #: Jacobson estimator state; None until the first RTT sample.
        self.srtt_us: Optional[float] = None
        self.rttvar_us = 0.0
        #: Current backed-off RTO (reset to the estimate on new ACKs).
        self.rto_us = params.TCP_INITIAL_RTO_US
        # -- receive-side reordering --
        #: seq -> buffered out-of-order message, bounded.
        self._reorder: Dict[int, Msg] = {}
        # statistics
        self.retransmissions = 0
        self.retx_abandoned = 0
        self.rtt_samples = 0
        self.ooo_buffered = 0
        self.ooo_delivered = 0
        self.checksum_failures = 0
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._receive)

    def establish(self, attrs: Attrs) -> None:
        router: TcpRouter = self.router  # type: ignore[assignment]
        router.bind_port_to_path(self.local_port, self.path)

    def destroy(self) -> None:
        router: TcpRouter = self.router  # type: ignore[assignment]
        router.release_port(self.local_port, self.path)
        # A dying demux anchor promotes a live path-group sibling (see
        # UdpStage.destroy).
        group = self.path.group
        if group is not None:
            for sibling in group.live_members():
                if sibling is not self.path and \
                        router.bind_port_to_path(self.local_port, sibling):
                    break
        self._cancel_rto()
        self._unacked.clear()
        self._reorder.clear()

    # -- send side -------------------------------------------------------------

    def _send(self, iface, msg: Msg, direction: int, **kwargs):
        router: TcpRouter = self.router  # type: ignore[assignment]
        charge(msg, params.TCP_PROC_US)
        header = TcpHeader(self.local_port, self.remote_port,
                           seq=self.send_seq, ack=self.recv_next,
                           flags=TcpHeader.FLAG_ACK)
        seq = self.send_seq
        payload = msg.to_bytes()
        self.send_seq += len(payload)
        if router.engine is not None and len(payload) > 0:
            overrides = {key: msg.meta[key]
                         for key in ("ip_dst_override", "udp_dport_override",
                                     "eth_dst_override")
                         if key in msg.meta}
            self._unacked[seq] = _UnackedSegment(
                seq, payload, overrides, router.engine.now)
            self._arm_rto()
        msg.push(header.pack(payload))
        return forward(iface, msg, direction, **kwargs)

    # -- retransmission timer ----------------------------------------------------

    def _arm_rto(self) -> None:
        """Ensure a retransmission timer covers the oldest unacked
        segment.  A single timer suffices: retransmission is go-back-style
        from the cumulative ACK point."""
        router: TcpRouter = self.router  # type: ignore[assignment]
        if router.engine is None or self._rto_event is not None \
                or not self._unacked:
            return
        self._rto_event = router.engine.schedule(self.rto_us, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        """The retransmission timeout fired: resend the oldest unacked
        segment with Karn-style exponential backoff."""
        from ..core.path import DELETED

        router: TcpRouter = self.router  # type: ignore[assignment]
        self._rto_event = None
        if not self._unacked or self.path is None \
                or self.path.state == DELETED:
            return
        segment = next(iter(self._unacked.values()))
        if segment.retries >= params.TCP_MAX_RETRIES:
            self.retx_abandoned += 1
            del self._unacked[segment.seq]
            placeholder = Msg(b"", meta={})
            self.note_drop(
                placeholder,
                f"segment seq {segment.seq} abandoned after "
                f"{segment.retries} retries", "retx_abandoned")
            self._arm_rto()
            return
        segment.retries += 1
        self.retransmissions += 1
        # Karn: back the timer off; never sample RTT from this segment.
        self.rto_us = min(self.rto_us * 2, params.TCP_MAX_RTO_US)
        retx = Msg(segment.payload, meta=dict(segment.meta_overrides))
        charge(retx, params.TCP_PROC_US)
        header = TcpHeader(self.local_port, self.remote_port,
                           seq=segment.seq, ack=self.recv_next,
                           flags=TcpHeader.FLAG_ACK)
        retx.push(header.pack(segment.payload))
        forward(self.end[FWD], retx, FWD)
        self._arm_rto()

    # -- RTT estimation (Jacobson) ------------------------------------------------

    def _sample_rtt(self, sample_us: float) -> None:
        self.rtt_samples += 1
        if self.srtt_us is None:
            self.srtt_us = sample_us
            self.rttvar_us = sample_us / 2
        else:
            self.rttvar_us += 0.25 * (abs(self.srtt_us - sample_us)
                                      - self.rttvar_us)
            self.srtt_us += 0.125 * (sample_us - self.srtt_us)
        self.rto_us = min(max(self.srtt_us + 4 * self.rttvar_us,
                              params.TCP_MIN_RTO_US), params.TCP_MAX_RTO_US)

    def _process_ack(self, ack: int) -> None:
        """Retire every segment the cumulative *ack* covers."""
        router: TcpRouter = self.router  # type: ignore[assignment]
        advanced = False
        for seq in [s for s, seg in self._unacked.items()
                    if seg.seq_end <= ack]:
            segment = self._unacked.pop(seq)
            advanced = True
            if segment.retries == 0 and router.engine is not None:
                # Karn: only never-retransmitted segments yield samples.
                self._sample_rtt(router.engine.now - segment.sent_at)
        if advanced:
            # Restart the timer for the new oldest outstanding segment.
            self._cancel_rto()
            self._arm_rto()

    # -- receive side ----------------------------------------------------------------

    def _receive(self, iface, msg: Msg, direction: int, **kwargs):
        charge(msg, params.TCP_PROC_US)
        if len(msg) < TcpHeader.SIZE:
            self.note_drop(msg, "short TCP segment", "malformed")
            return None
        header = TcpHeader.unpack(msg.peek(TcpHeader.SIZE))
        msg.pop(TcpHeader.SIZE)
        if not header.verify(msg.to_bytes()):
            # Damage in flight: the segment dies here, unacknowledged —
            # the sender's retransmission timer resupplies it.
            self.checksum_failures += 1
            self.note_drop(msg, f"TCP checksum mismatch on seq {header.seq}",
                           "corrupt")
            return None
        if header.flags & TcpHeader.FLAG_ACK:
            self._process_ack(header.ack)
        if len(msg) == 0:
            return None  # bare ACK
        if header.seq < self.recv_next:
            # Duplicate (a retransmission that raced our ACK): drop the
            # payload but re-ACK so the sender's timer stops.
            self.dup_drops += 1
            self.note_drop(msg, f"duplicate seq {header.seq}", "duplicate")
            self._acknowledge(iface, msg, direction)
            return None
        if header.seq > self.recv_next:
            return self._buffer_out_of_order(iface, header, msg, direction)
        self.recv_next = header.seq + len(msg)
        msg.meta["tcp_header"] = header
        result = None
        deliverable: List[Tuple[Msg, TcpHeader]] = [(msg, header)]
        deliverable.extend(self._drain_reorder())
        if msg.meta.pop("batch_followup", False):
            # Batched run (DESIGN.md §13): the ACK is cumulative, so the
            # batch tail's ACK retires everything the run delivered —
            # delayed-ACK coalescing at the batch boundary.  Control ACKs
            # (duplicate re-ACKs, gap dup-ACKs) are never deferred.
            self.acks_coalesced += 1
        else:
            # One cumulative ACK covers the whole contiguous run.
            self._acknowledge(iface, msg, direction)
        for ready, ready_header in deliverable:
            ready.meta["tcp_header"] = ready_header
            result = forward_or_deposit(iface, ready, direction, **kwargs)
        return result

    def _buffer_out_of_order(self, iface, header: TcpHeader, msg: Msg,
                             direction: int):
        """Hold a future segment until the gap before it fills.  The
        buffer is bounded; at capacity the newest arrival is shed (the
        retransmission machinery will resupply it)."""
        if header.seq in self._reorder:
            self.dup_drops += 1
            self.note_drop(msg, f"duplicate buffered seq {header.seq}",
                           "duplicate")
        elif len(self._reorder) >= params.TCP_REORDER_BUFFER:
            self.note_drop(msg, f"reorder buffer full, shed seq {header.seq}",
                           "reorder_overflow")
        else:
            self.ooo_buffered += 1
            msg.meta["tcp_header"] = header
            self._reorder[header.seq] = msg
        # Re-ACK the current cumulative point so the sender learns about
        # the gap promptly (a duplicate ACK, in real-TCP terms).
        self._acknowledge(iface, msg, direction)
        return None

    def _drain_reorder(self) -> List[Tuple[Msg, TcpHeader]]:
        """Pop every buffered segment made contiguous by the last arrival."""
        ready: List[Tuple[Msg, TcpHeader]] = []
        while self.recv_next in self._reorder:
            buffered = self._reorder.pop(self.recv_next)
            buffered_header = buffered.meta["tcp_header"]
            self.recv_next += len(buffered)
            self.ooo_delivered += 1
            ready.append((buffered, buffered_header))
        return ready

    def _acknowledge(self, iface, data_msg: Msg, direction: int) -> None:
        """Turn a cumulative ACK around toward the sender — the paper's
        piggy-back-acknowledgment motivation for bidirectional paths."""
        ack = Msg(TcpHeader(self.local_port, self.remote_port,
                            seq=self.send_seq, ack=self.recv_next,
                            flags=TcpHeader.FLAG_ACK).pack())
        for key in ("ip_dst_override", "udp_dport_override"):
            if key in data_msg.meta:
                ack.meta[key] = data_msg.meta[key]
        charge(ack, params.TCP_PROC_US / 2)
        self.acks_sent += 1
        turn_around(iface, ack, direction)
        charge(data_msg, ack.meta.get("cost_us", 0.0))


@register_router("TcpRouter")
class TcpRouter(Router):
    """The (simplified) TCP protocol router."""

    SERVICES = ("up:net", "<down:net")

    def __init__(self, name: str):
        super().__init__(name)
        self._port_paths: Dict[int, object] = {}
        self._port_peers: Dict[int, Tuple[Router, Service]] = {}
        #: Simulation engine driving retransmission timers; ``None`` (the
        #: default) disables retransmission entirely.
        self.engine = None

    def use_engine(self, engine) -> None:
        """Attach a virtual-time engine, enabling retransmission timers
        on every stage this router contributes."""
        self.engine = engine

    def init(self) -> None:
        super().init()
        down = self.service("down").sole_link()
        ip_router, _service = down.peer_of(self.service("down"))
        register = getattr(ip_router, "register_proto", None)
        if register is not None:
            register(IPPROTO_TCP, self, self.service("up"))

    def bind_port_to_path(self, port: int, path) -> bool:
        """First live binding wins (see ``UdpRouter.bind_port_to_path``):
        same-port connection paths — a listener group's members, warm
        pooled spares — share one demux anchor."""
        current = self._port_paths.get(port)
        if current is not None and current is not path \
                and getattr(current, "state", None) != "deleted":
            return False
        self._port_paths[port] = path
        return True

    def bind_port(self, port: int, router: Router, service: Service) -> None:
        self._port_peers[port] = (router, service)

    def release_port(self, port: int, path=None) -> None:
        if path is None or self._port_paths.get(port) is path:
            self._port_paths.pop(port, None)
        self._port_peers.pop(port, None)

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        participants = attrs.get(PA_NET_PARTICIPANTS)
        if participants is None:
            return None, None
        local_port = attrs.get(PA_LOCAL_PORT) or next(_ephemeral_ports)
        down = self.service("down")
        if len(down.links) != 1:
            return None, None
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = TcpStage(self, enter, down, local_port, participants[1])
        # The paper's example rewrite: whatever PA_PROTID the layer above
        # set (21 for FTP), TCP resets it to 6 for IP.
        hop_attrs = attrs.extended(**{PA_PROTID: IPPROTO_TCP})
        return stage, NextHop(peer_router, peer_service, hop_attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        if len(msg) < offset + TcpHeader.SIZE:
            return DemuxResult.drop(f"{self.name}: short TCP segment")
        header = TcpHeader.unpack(msg.peek(TcpHeader.SIZE, at=offset))
        msg.meta["tcp_ports"] = (header.sport, header.dport)
        path = self._port_paths.get(header.dport)
        if path is not None:
            return DemuxResult.found(path)
        peer = self._port_peers.get(header.dport)
        if peer is not None:
            return DemuxResult.refine(peer[0], peer[1],
                                      consumed=TcpHeader.SIZE)
        return DemuxResult.drop(
            f"{self.name}: no listener on port {header.dport}")
