"""The Internet checksum (RFC 1071 one's-complement sum).

Used by IP (header checksum), UDP (optional payload checksum — the one
Section 4.1 suggests fusing into MPEG's data read via a path
transformation), and ICMP.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement checksum of *data*.

    Odd-length input is zero-padded, per the RFC.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when *data* (including its embedded checksum field) sums to a
    valid one's-complement zero."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
