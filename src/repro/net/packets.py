"""Whole-packet build/parse helpers.

Remote host agents and tests need to construct complete frames without
walking a path; these helpers pack the header stack in one call and parse
it back.  The kernels under test never use them on the receive side —
they run their real protocol routers.
"""

from __future__ import annotations

import itertools
from typing import NamedTuple, Optional

from .addresses import EthAddr, IpAddr
from .headers import (
    ETHERTYPE_IP,
    EthHeader,
    IcmpHeader,
    IP_FLAG_DONT_FRAGMENT,
    IpHeader,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    MflowHeader,
    TcpHeader,
    UdpHeader,
)

def _next_ident(counter=itertools.count(1)) -> int:
    return next(counter) & 0xFFFF


def build_udp_frame(src_mac: EthAddr, dst_mac: EthAddr,
                    src_ip: IpAddr, dst_ip: IpAddr,
                    sport: int, dport: int, payload: bytes,
                    ttl: int = 64, df: bool = False) -> bytes:
    """Build a complete ETH/IP/UDP frame."""
    udp = UdpHeader(sport, dport, UdpHeader.SIZE + len(payload)).pack()
    total = IpHeader.SIZE + len(udp) + len(payload)
    ip = IpHeader(total, _next_ident(), IPPROTO_UDP, src_ip, dst_ip,
                  ttl=ttl,
                  flags=IP_FLAG_DONT_FRAGMENT if df else 0).pack()
    eth = EthHeader(dst_mac, src_mac, ETHERTYPE_IP).pack()
    return eth + ip + udp + payload


def build_mflow_frame(src_mac: EthAddr, dst_mac: EthAddr,
                      src_ip: IpAddr, dst_ip: IpAddr,
                      sport: int, dport: int,
                      seq: int, timestamp_us: float, payload: bytes,
                      window: int = 0, flags: int = 0) -> bytes:
    """Build ETH/IP/UDP/MFLOW — the video source's data packet."""
    mflow = MflowHeader(seq, int(timestamp_us), window=window,
                        flags=flags).pack()
    return build_udp_frame(src_mac, dst_mac, src_ip, dst_ip,
                           sport, dport, mflow + payload)


def build_tcp_frame(src_mac: EthAddr, dst_mac: EthAddr,
                    src_ip: IpAddr, dst_ip: IpAddr,
                    sport: int, dport: int,
                    seq: int, ack: int, payload: bytes = b"",
                    flags: int = TcpHeader.FLAG_ACK) -> bytes:
    """Build a complete ETH/IP/TCP frame."""
    tcp = TcpHeader(sport, dport, seq=seq, ack=ack, flags=flags).pack(payload)
    total = IpHeader.SIZE + len(tcp) + len(payload)
    ip = IpHeader(total, _next_ident(), IPPROTO_TCP, src_ip, dst_ip).pack()
    eth = EthHeader(dst_mac, src_mac, ETHERTYPE_IP).pack()
    return eth + ip + tcp + payload


def build_icmp_echo(src_mac: EthAddr, dst_mac: EthAddr,
                    src_ip: IpAddr, dst_ip: IpAddr,
                    ident: int, seq: int,
                    reply: bool = False, payload: bytes = b"",
                    ttl: int = 64, df: bool = False) -> bytes:
    """Build an ICMP echo request (or reply) frame.

    ``df=True`` builds the PMTUD probe variant: an oversized DF echo
    that a small-MTU hop must refuse with Fragmentation Needed.
    """
    icmp_type = IcmpHeader.ECHO_REPLY if reply else IcmpHeader.ECHO_REQUEST
    icmp = IcmpHeader(icmp_type, ident, seq).pack() + payload
    total = IpHeader.SIZE + len(icmp)
    ip = IpHeader(total, _next_ident(), IPPROTO_ICMP, src_ip, dst_ip,
                  ttl=ttl,
                  flags=IP_FLAG_DONT_FRAGMENT if df else 0).pack()
    eth = EthHeader(dst_mac, src_mac, ETHERTYPE_IP).pack()
    return eth + ip + icmp


class ParsedPacket(NamedTuple):
    """A convenience view of a parsed frame (tests and host agents)."""

    eth: EthHeader
    ip: Optional[IpHeader]
    udp: Optional[UdpHeader]
    icmp: Optional[IcmpHeader]
    mflow: Optional[MflowHeader]
    tcp: Optional[TcpHeader]
    payload: bytes


def parse_frame(frame: bytes, expect_mflow: bool = False) -> ParsedPacket:
    """Parse a frame's header stack as far as it goes."""
    eth = EthHeader.unpack(frame)
    rest = frame[EthHeader.SIZE:]
    ip = udp = icmp = mflow = tcp = None
    if eth.ethertype == ETHERTYPE_IP and len(rest) >= IpHeader.SIZE:
        ip = IpHeader.unpack(rest)
        rest = rest[IpHeader.SIZE:]
        if ip.proto == IPPROTO_UDP and len(rest) >= UdpHeader.SIZE:
            udp = UdpHeader.unpack(rest)
            rest = rest[UdpHeader.SIZE:]
            if expect_mflow and len(rest) >= MflowHeader.SIZE:
                mflow = MflowHeader.unpack(rest)
                rest = rest[MflowHeader.SIZE:]
        elif ip.proto == IPPROTO_ICMP and len(rest) >= IcmpHeader.SIZE:
            icmp = IcmpHeader.unpack(rest)
            rest = rest[IcmpHeader.SIZE:]
        elif ip.proto == IPPROTO_TCP and len(rest) >= TcpHeader.SIZE:
            tcp = TcpHeader.unpack(rest)
            # Trim link padding beyond the IP total length.
            payload_len = max(0, ip.total_length - IpHeader.SIZE
                              - TcpHeader.SIZE)
            rest = rest[TcpHeader.SIZE:TcpHeader.SIZE + payload_len]
    return ParsedPacket(eth, ip, udp, icmp, mflow, tcp, rest)
