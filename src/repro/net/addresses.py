"""Network addresses: Ethernet MACs and IPv4 addresses.

Addresses are small immutable value types with wire (bytes) and
human-readable forms.  Kept deliberately simple — enough for the router
graph's demonstration protocols, not a general netlib.
"""

from __future__ import annotations

import re
from typing import Union


class EthAddr:
    """A 48-bit Ethernet address."""

    __slots__ = ("_octets",)

    _RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")

    BROADCAST: "EthAddr"

    def __init__(self, value: Union[str, bytes, "EthAddr"]):
        if isinstance(value, EthAddr):
            self._octets = value._octets
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise ValueError(f"MAC must be 6 bytes, got {len(value)}")
            self._octets = value
        elif isinstance(value, str):
            if not self._RE.match(value):
                raise ValueError(f"malformed MAC address {value!r}")
            self._octets = bytes(int(part, 16) for part in value.split(":"))
        else:
            raise TypeError(f"cannot make EthAddr from {type(value).__name__}")

    def to_bytes(self) -> bytes:
        return self._octets

    @property
    def is_broadcast(self) -> bool:
        return self._octets == b"\xff" * 6

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EthAddr):
            return self._octets == other._octets
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._octets)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self._octets)

    def __repr__(self) -> str:
        return f"EthAddr('{self}')"


EthAddr.BROADCAST = EthAddr(b"\xff" * 6)


class IpAddr:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, bytes, "IpAddr"]):
        if isinstance(value, IpAddr):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"IPv4 address out of range: {value}")
            self._value = value
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise ValueError(f"IPv4 address must be 4 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address {value!r}")
            octets = []
            for part in parts:
                if not part.isdigit() or not 0 <= int(part) <= 255:
                    raise ValueError(f"malformed IPv4 address {value!r}")
                octets.append(int(part))
            self._value = int.from_bytes(bytes(octets), "big")
        else:
            raise TypeError(f"cannot make IpAddr from {type(value).__name__}")

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def to_int(self) -> int:
        return self._value

    def same_network(self, other: "IpAddr", prefix_len: int = 24) -> bool:
        """True when both addresses share the /prefix_len network.

        This is IP's *local knowledge* routing test from Section 2.2: "if
        IP can determine that the remote host is on the same Ethernet as
        the local host" the routing decision can be frozen into the path.
        """
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ~((1 << (32 - prefix_len)) - 1) & 0xFFFFFFFF
        return (self._value & mask) == (other._value & mask)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IpAddr):
            return self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.to_bytes())

    def __repr__(self) -> str:
        return f"IpAddr('{self}')"
