"""The TEST router of Figure 7: a message source/sink atop the stack.

Used by the path-structure tests and the Section 3.6 microbenchmark: "a
path to transmit and receive UDP packets consists of six stages" — TEST,
UDP, IP, ETH contribute interior stages and the two extreme ends close the
count.  TEST's receive side records what arrived and deposits it on the
path's output queue for the kernel (or test) to observe.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.attributes import Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.specialize import StageFragment, register_specializer
from ..core.stage import BWD, FWD, Stage, forward
from .common import charge


class TestStage(Stage):
    """TEST's contribution: source on FWD, sink on BWD."""

    def __init__(self, router: "TestRouter", enter_service, exit_service):
        super().__init__(router, enter_service, exit_service)
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._sink)
        self.set_deliver_batch(BWD, self._sink_batch)

    def _send(self, iface, msg: Msg, direction: int, **kwargs):
        charge(msg, 1.0)
        return forward(iface, msg, direction, **kwargs)

    def _sink(self, iface, msg: Msg, direction: int, **kwargs):
        router: TestRouter = self.router  # type: ignore[assignment]
        charge(msg, 1.0)
        router.received.append(msg)
        router.bytes_received += len(msg)
        if not self.path.output_queue(direction).try_enqueue(msg):
            router.sink_overflows += 1
        return None

    def _sink_batch(self, iface, msgs, direction: int, **kwargs):
        """Vectorized sink (DESIGN.md §13): absorb the whole run with
        the same per-message recording, charge, and overflow accounting
        as :meth:`_sink`."""
        router: TestRouter = self.router  # type: ignore[assignment]
        received = router.received
        outq = self.path.output_queue(direction)
        for msg in msgs:
            charge(msg, 1.0)
            received.append(msg)
            router.bytes_received += len(msg)
            if not outq.try_enqueue(msg):
                router.sink_overflows += 1
        return []


def _specialize_test_sink(stage: TestStage, iface, fn, fn_batch,
                          direction: int,
                          terminal: bool) -> Optional[StageFragment]:
    """Fuse :meth:`TestStage._sink`: charge, record, per-message enqueue.

    Only valid as the chain's last entry — the sink absorbs everything.
    ``try_enqueue`` stays a per-message call (its drop accounting and
    queue listeners — scheduler wakeups, watchdog liveness — must fire
    exactly as the scalar sink would make them fire).
    """
    if direction != BWD or not terminal:
        return None
    if not stage.has_pristine_deliver(BWD, TestStage._sink,
                                      TestStage._sink_batch):
        return None
    if stage.path is None:
        return None
    router = stage.router
    # Path queues are created once in Path.__init__ and never replaced,
    # so the bound enqueue method is safe to bake in.
    outq = stage.path.output_queue(direction)

    def body(ctx):
        tr = ctx.bind(router, "test_router")
        enq = ctx.bind(outq.try_enqueue, "enqueue")
        return ["meta['cost_us'] = c",
                "%s.received.append(m)" % tr,
                "%s.bytes_received += len(m)" % tr,
                "if not %s(m):" % enq,
                "    %s.sink_overflows += 1" % tr]

    def cost_expr(ctx):
        return "1.0"

    return StageFragment(cost_expr=cost_expr, body=body, terminal=True)


register_specializer(TestStage, _specialize_test_sink)


@register_router("TestRouter")
class TestRouter(Router):
    """A top-of-stack message source/sink."""

    SERVICES = ("<down:net",)

    def __init__(self, name: str):
        super().__init__(name)
        self.received: List[Msg] = []
        self.bytes_received = 0
        self.sink_overflows = 0

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        down = self.service("down")
        if len(down.links) != 1:
            stage = TestStage(self, enter, None)
            return stage, None
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = TestStage(self, enter, down)
        return stage, NextHop(peer_router, peer_service, attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        path = getattr(self, "bound_path", None)
        if path is None:
            return DemuxResult.drop(f"{self.name}: no bound path")
        return DemuxResult.found(path)
