"""A Scout network device over real UDP sockets.

The simulated :class:`~repro.net.segment.NetDevice` delivers frames by
virtual-time events; this device delivers them from an actual socket.
Each UDP **datagram is one Ethernet frame**: peers exchange the same
14-byte-header frames the simulated segment carries, tunneled over
UDP/loopback (the standard trick for running an L2 stack in userspace
without raw-socket privileges).  Everything above the device — ethernet
demux, IP, UDP, the paths themselves — is byte-identical to the
simulated stack, which is what makes the socket backend a *backend* and
not a second implementation.

Receive side: an asyncio datagram endpoint appends frames to a bounded
ring; the Scout serve loop (``repro.api.Scout.serve``) awaits
:meth:`next_burst` and hands each burst to ``kernel.rx_burst`` — the
same interrupt-time classify/admit code the simulated device feeds.
When the ring is full the frame is dropped at the device, and *ledgered*
(``rx_overflow``): socket-backend drops reconcile exactly like simulated
ones (DESIGN.md §18).

Transmit side: ``send(frame)`` resolves the destination MAC against a
peer table learned from received traffic (source MAC → UDP address) or
seeded via :meth:`add_peer`, then ``sendto``.  Frames to unknown MACs
are ledgered (``tx_unroutable``), mirroring a real NIC's inability to
reach a host no switch has seen.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .addresses import EthAddr

__all__ = ["SocketNetDevice"]

_BROADCAST = b"\xff" * 6
_ETH_HEADER = 14


class _SockProtocol(asyncio.DatagramProtocol):
    """Thin adapter: datagrams and errors go straight to the device."""

    def __init__(self, device: "SocketNetDevice"):
        self.device = device

    def connection_made(self, transport) -> None:
        self.device._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.device._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        self.device.drops["sock_error"] = \
            self.device.drops.get("sock_error", 0) + 1

    def connection_lost(self, exc: Optional[Exception]) -> None:
        self.device._transport = None


class SocketNetDevice:
    """A ``NetDevice``-shaped endpoint backed by a real UDP socket.

    Parameters
    ----------
    mac:
        This device's MAC address (frames to other MACs — broadcast
        aside — are counted ``rx_missed`` like the simulated device's
        filter would).
    host, port:
        Bind address.  ``port=0`` lets the OS pick; read
        :attr:`address` after :meth:`open` for the bound tuple.
    rx_ring:
        Receive ring capacity in frames.  Arrivals beyond it are
        dropped at the device and ledgered as ``rx_overflow``.
    """

    def __init__(self, mac, name: str = "sock0",
                 host: str = "127.0.0.1", port: int = 0,
                 rx_ring: int = 512):
        if rx_ring < 1:
            raise ValueError("rx_ring must be at least 1")
        self.mac = EthAddr(mac)
        self.name = name
        self.host = host
        self.port = port
        self.rx_ring = rx_ring
        self.address: Optional[Tuple[str, int]] = None
        self.rx_handler = None  # kept for NetDevice shape; unused here
        # counters, mirroring net.segment.NetDevice
        self.rx_frames = 0
        self.tx_frames = 0
        self.rx_missed = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        #: Socket-level drop ledger: reason -> count.
        self.drops: Dict[str, int] = {}
        self._ring: Deque[bytes] = deque()
        self._rx_waiter: Optional["asyncio.Future"] = None
        self._peers: Dict[bytes, Tuple[str, int]] = {}
        self._transport = None
        self._registry = None

    # -- lifecycle ---------------------------------------------------------

    async def open(self) -> Tuple[str, int]:
        """Bind the socket and start the receive loop; returns the
        bound ``(host, port)``."""
        if self._transport is not None:
            return self.address
        loop = asyncio.get_running_loop()
        await loop.create_datagram_endpoint(
            lambda: _SockProtocol(self),
            local_addr=(self.host, self.port))
        self.address = self._transport.get_extra_info("sockname")[:2]
        return self.address

    def close(self) -> None:
        """Stop receiving and release the socket (idempotent); frames
        already in the ring stay readable via :meth:`next_burst`."""
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()
        self._signal_rx()  # unblock a waiter so serve loops can exit

    @property
    def is_open(self) -> bool:
        return self._transport is not None

    # -- receive -----------------------------------------------------------

    def _on_datagram(self, data: bytes, addr) -> None:
        if len(data) < _ETH_HEADER:
            self._drop("rx_runt")
            return
        # Learn the peer: source MAC -> UDP address, like a switch's CAM.
        self._peers[bytes(data[6:12])] = addr[:2]
        dst = bytes(data[:6])
        if dst != _BROADCAST and dst != self.mac.to_bytes():
            self.rx_missed += 1
            return
        if len(self._ring) >= self.rx_ring:
            self._drop("rx_overflow")
            return
        self.rx_frames += 1
        self.rx_bytes += len(data)
        self._ring.append(bytes(data))
        self._signal_rx()

    def _signal_rx(self) -> None:
        waiter, self._rx_waiter = self._rx_waiter, None
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    async def next_burst(self, limit: int = 64,
                         timeout: Optional[float] = None) -> List[bytes]:
        """Await the next burst of frames (up to *limit*).

        Returns an empty list when *timeout* (wall seconds) elapses
        first, or when the device is closed with an empty ring — both
        are the serve loop's cue to check for shutdown.
        """
        if not self._ring:
            if self._transport is None:
                return []
            loop = asyncio.get_running_loop()
            self._rx_waiter = loop.create_future()
            try:
                if timeout is not None:
                    await asyncio.wait_for(
                        asyncio.shield(self._rx_waiter), timeout)
                else:
                    await self._rx_waiter
            except asyncio.TimeoutError:
                return []
            finally:
                self._rx_waiter = None
        burst: List[bytes] = []
        while self._ring and len(burst) < limit:
            burst.append(self._ring.popleft())
        return burst

    def pending(self) -> int:
        """Frames sitting in the receive ring."""
        return len(self._ring)

    # -- transmit ----------------------------------------------------------

    def send(self, frame: bytes) -> None:
        """Transmit one frame (the ``EthRouter.transmit`` contract)."""
        if self._transport is None:
            self._drop("tx_closed")
            return
        frame = bytes(frame)
        dst = frame[:6]
        if dst == _BROADCAST:
            targets = list(self._peers.values())
            if not targets:
                self._drop("tx_unroutable")
                return
        else:
            addr = self._peers.get(dst)
            if addr is None:
                self._drop("tx_unroutable")
                return
            targets = [addr]
        for addr in targets:
            self._transport.sendto(frame, addr)
        self.tx_frames += 1
        self.tx_bytes += len(frame)

    def add_peer(self, mac, address: Tuple[str, int]) -> None:
        """Pre-seed the MAC -> UDP-address table (the static-ARP
        analogue for L2 reachability)."""
        self._peers[EthAddr(mac).to_bytes()] = tuple(address)[:2]

    def peers(self) -> Dict[str, Tuple[str, int]]:
        return {str(EthAddr(mac)): addr
                for mac, addr in self._peers.items()}

    # -- ledger ------------------------------------------------------------

    def _drop(self, reason: str) -> None:
        self.drops[reason] = self.drops.get(reason, 0) + 1
        if self._registry is not None:
            self._registry.counter(
                "sockdev_drops", device=self.name, reason=reason).inc()

    def drop_ledger(self) -> Dict[str, int]:
        """Socket-level drops by reason (a copy)."""
        return dict(self.drops)

    def bind_metrics(self, registry) -> None:
        """Publish drops as ``sockdev_drops{device,reason}`` counters."""
        self._registry = registry
        for reason, count in self.drops.items():
            counter = registry.counter(
                "sockdev_drops", device=self.name, reason=reason)
            if counter.value < count:
                counter.inc(count - counter.value)

    def stats(self) -> Dict[str, Any]:
        return {
            "rx_frames": self.rx_frames,
            "tx_frames": self.tx_frames,
            "rx_bytes": self.rx_bytes,
            "tx_bytes": self.tx_bytes,
            "rx_missed": self.rx_missed,
            "pending": self.pending(),
            "drops": self.drop_ledger(),
        }

    def __repr__(self) -> str:
        state = "open" if self.is_open else "closed"
        return (f"<SocketNetDevice {self.name} {self.mac} {state} "
                f"addr={self.address} rx={self.rx_frames} "
                f"tx={self.tx_frames}>")
