"""The UDP router: ports, optional checksum, demux by destination port.

UDP's create_stage demonstrates the attribute-rewrite idiom of Section
4.1: it resets ``PA_PROTID`` to 17 before forwarding creation to IP, so IP
knows what protocol id to put in the header without understanding UDP.

The optional payload checksum is the paper's integrated-layer-processing
example: "it would be straight-forward to integrate the (optional) UDP
checksum with the reading of the MPEG data".  The checksum is therefore
implemented as a separate per-byte cost here and the
``fuse-udp-checksum-into-mpeg`` transformation rule (see
:mod:`repro.kernel.transforms`) removes it by folding it into MPEG's read.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from .. import params
from ..core.attributes import PA_NET_PARTICIPANTS, PA_PROTID, Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.specialize import StageFragment, register_specializer
from ..core.stage import BWD, FWD, Stage, forward
from .common import PA_LOCAL_PORT, PA_UDP_CHECKSUM, charge, forward_or_deposit
from .checksum import internet_checksum
from .headers import IPPROTO_UDP, UdpHeader

_ephemeral_ports = itertools.count(49152)


class UdpStage(Stage):
    """UDP's contribution to a path."""

    def __init__(self, router: "UdpRouter", enter_service, exit_service,
                 local_port: int, remote_port: int, use_checksum: bool):
        super().__init__(router, enter_service, exit_service)
        self.local_port = local_port
        self.remote_port = remote_port
        self.use_checksum = use_checksum
        self.checksum_failures = 0
        self.rx_validated = 0
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._receive)
        self.set_deliver_batch(BWD, self._receive_batch)

    def establish(self, attrs: Attrs) -> None:
        """Bind the local port to this path so the classifier can map
        incoming packets straight to it (one live anchor per port; later
        same-port paths — path-group members, warm pooled spares — leave
        an existing live binding alone)."""
        router: UdpRouter = self.router  # type: ignore[assignment]
        if self.local_port not in router._port_peers:
            router.bind_port_to_path(self.local_port, self.path)

    def destroy(self) -> None:
        router: UdpRouter = self.router  # type: ignore[assignment]
        router.release_port(self.local_port, self.path)
        # A dying demux anchor promotes a live path-group sibling, so a
        # group keeps receiving even when the member holding the port
        # binding is torn down (watchdog rebuild, explicit delete).
        group = self.path.group
        if group is not None:
            for sibling in group.live_members():
                if sibling is not self.path and \
                        router.bind_port_to_path(self.local_port, sibling):
                    break

    def _send(self, iface, msg: Msg, direction: int, **kwargs):
        charge(msg, params.UDP_PROC_US)
        checksum = 0
        if self.use_checksum:
            charge(msg, len(msg) * params.CHECKSUM_US_PER_BYTE)
            checksum = internet_checksum(msg.to_bytes())
        dport = msg.meta.get("udp_dport_override") or self.remote_port
        if dport is None:
            self.note_drop(msg, "UDP path has no remote port", "misaddressed")
            return None
        header = UdpHeader(self.local_port, dport,
                           UdpHeader.SIZE + len(msg), checksum)
        msg.push(header.pack())
        return forward(iface, msg, direction, **kwargs)

    def _receive(self, iface, msg: Msg, direction: int, **kwargs):
        router: UdpRouter = self.router  # type: ignore[assignment]
        charge(msg, params.UDP_PROC_US)
        if msg.meta.pop("udp_validated", False):
            # Validated-run fast receive (DESIGN.md §13): a flow-cache hit
            # already matched the exact header bytes — well-formed
            # non-fragmented IPv4/UDP framing, this path's port pair — so
            # re-checking length and dport here would re-derive what the
            # 42-byte key proved.  Strip the header and go; the header
            # object itself is only materialised when a checksum pass
            # still needs its stored sum.
            self.rx_validated += 1
            if not self.use_checksum or msg.meta.get("checksum_fused"):
                msg.pop(UdpHeader.SIZE)
                return forward_or_deposit(iface, msg, direction, **kwargs)
            header = UdpHeader.unpack(msg.peek(UdpHeader.SIZE))
            msg.pop(UdpHeader.SIZE)
        else:
            if len(msg) < UdpHeader.SIZE:
                self.note_drop(msg, "short UDP packet", "malformed")
                router.rx_dropped += 1
                return None
            header = UdpHeader.unpack(msg.peek(UdpHeader.SIZE))
            if header.dport != self.local_port:
                self.note_drop(
                    msg,
                    f"UDP port {header.dport} does not match path port "
                    f"{self.local_port}", "misaddressed")
                router.rx_dropped += 1
                return None
            msg.pop(UdpHeader.SIZE)
        # Separate-pass checksum verification, unless a path transformation
        # fused it into the consumer's data read (Section 4.1's ILP case).
        if self.use_checksum and not msg.meta.get("checksum_fused"):
            charge(msg, len(msg) * params.CHECKSUM_US_PER_BYTE)
            if header.checksum and \
                    internet_checksum(msg.to_bytes()) != header.checksum:
                self.checksum_failures += 1
                self.note_drop(msg, "UDP checksum mismatch", "corrupt")
                return None
        msg.meta["udp_header"] = header
        return forward_or_deposit(iface, msg, direction, **kwargs)

    def _receive_batch(self, iface, msgs, direction: int, **kwargs):
        """Vectorized receive for a validated run (DESIGN.md §13).

        Accepts the run only when every message carries the flow-cache
        ``udp_validated`` annotation, the stage is interior, and no
        checksum pass is configured (checksummed paths verify per
        message).  Per message this is exactly the scalar fast branch:
        charge and header strip.
        """
        if iface.next is None or self.use_checksum \
                or not all(m.meta.get("udp_validated") for m in msgs):
            return None
        self.rx_validated += len(msgs)
        cost = params.UDP_PROC_US
        size = UdpHeader.SIZE
        for m in msgs:
            del m.meta["udp_validated"]
            charge(m, cost)
            m.pop(size)
        return msgs


def _specialize_udp(stage: UdpStage, iface, fn, fn_batch, direction: int,
                    terminal: bool) -> Optional[StageFragment]:
    """Fuse the validated no-checksum receive branch of
    :meth:`UdpStage._receive`: charge, stamp consumption, header strip.
    Checksummed paths verify per message (and materialize the header),
    so they decline — as does a UDP-terminated chain, whose deposit
    semantics belong to the scalar branch.
    """
    if direction != BWD or terminal or iface.next is None \
            or stage.use_checksum:
        return None
    if not stage.has_pristine_deliver(BWD, UdpStage._receive,
                                      UdpStage._receive_batch):
        return None

    def cost_expr(ctx):
        return "%s.UDP_PROC_US" % ctx.bind(params, "params")

    def epilogue(ctx):
        # rx_validated lives on the stage for UDP (per-path, not per
        # router) — mirror the scalar branch exactly.
        return ["%s.rx_validated += _live" % ctx.bind(stage, "udp_stage")]

    return StageFragment(stamps=("udp_validated",), pop=UdpHeader.SIZE,
                         cost_expr=cost_expr, epilogue=epilogue)


register_specializer(UdpStage, _specialize_udp)


@register_router("UdpRouter")
class UdpRouter(Router):
    """The UDP protocol router."""

    SERVICES = ("up:net", "<down:net")

    def __init__(self, name: str):
        super().__init__(name)
        #: local port -> (router, service) that should refine classification.
        self._port_peers: Dict[int, Tuple[Router, Service]] = {}
        #: local port -> path, for ports bound directly to a path.
        self._port_paths: Dict[int, object] = {}
        self.rx_dropped = 0

    # -- wiring -------------------------------------------------------------------

    def init(self) -> None:
        super().init()
        down = self.service("down").sole_link()
        ip_router, _service = down.peer_of(self.service("down"))
        register = getattr(ip_router, "register_proto", None)
        if register is not None:
            register(IPPROTO_UDP, self, self.service("up"))

    def bind_port(self, port: int, router: Router, service: Service) -> None:
        """Route classification refinement for *port* to an upper router."""
        self._port_peers[port] = (router, service)

    def bind_port_to_path(self, port: int, path) -> bool:
        """Bind *port* directly to *path* (no upper refinement needed).

        First live binding wins: when several same-port paths coexist (a
        path group's members, a pool's warm spares) the earliest becomes
        the demux anchor and the rest stand by.  A dead or missing anchor
        is always replaced.  Returns True when *path* holds the binding.
        """
        current = self._port_paths.get(port)
        if current is not None and current is not path \
                and getattr(current, "state", None) != "deleted":
            return False
        self._port_paths[port] = path
        return True

    def release_port(self, port: int, path=None) -> None:
        """Release *port*.  When *path* is given, the direct binding is
        only dropped if *path* owns it — deleting one group member must
        not unbind an anchor that belongs to a sibling."""
        self._port_peers.pop(port, None)
        if path is None or self._port_paths.get(port) is path:
            self._port_paths.pop(port, None)

    def allocate_port(self, requested: Optional[int] = None) -> int:
        if requested is not None:
            return requested
        return next(_ephemeral_ports)

    # -- path creation ----------------------------------------------------------------

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        participants = attrs.get(PA_NET_PARTICIPANTS)
        if participants is None and not attrs.get("PA_IP_CATCHALL"):
            return None, None  # cannot route without a remote participant
        remote_port = participants[1] if participants else None
        local_port = self.allocate_port(attrs.get(PA_LOCAL_PORT))
        down = self.service("down")
        if len(down.links) != 1:
            return None, None
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = UdpStage(self, enter, down, local_port, remote_port,
                         use_checksum=bool(attrs.get(PA_UDP_CHECKSUM)))
        hop_attrs = attrs.extended(**{PA_PROTID: IPPROTO_UDP})
        return stage, NextHop(peer_router, peer_service, hop_attrs)

    # -- classification ----------------------------------------------------------------

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        if len(msg) < offset + UdpHeader.SIZE:
            return DemuxResult.drop(f"{self.name}: short UDP packet")
        header = UdpHeader.unpack(msg.peek(UdpHeader.SIZE, at=offset))
        msg.meta["udp_ports"] = (header.sport, header.dport)
        path = self._port_paths.get(header.dport)
        if path is not None:
            return DemuxResult.found(path)
        peer = self._port_peers.get(header.dport)
        if peer is None:
            return DemuxResult.drop(
                f"{self.name}: no listener on port {header.dport}")
        return DemuxResult.refine(peer[0], peer[1], consumed=UdpHeader.SIZE)
