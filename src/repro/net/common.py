"""Conventions shared by the protocol routers.

**Cost charging.**  Stage deliver functions are logically instantaneous
(the core is simulator-agnostic); they *record* their CPU cost on the
message via :func:`charge`.  The kernel's path thread collects the
accumulated cost after a traversal and yields ``Compute`` for it, so the
virtual CPU pays exactly what the stages declared.

**Classifier context.**  Refining routers stash what they parsed in
``msg.meta`` (e.g. ``ip_src``, ``udp_ports``) so higher routers can
complete classification without re-walking lower headers — the same
whole-header-stack view a real packet classifier compiles.

**Net-specific path attributes.**  Extra ``PA_*`` names used only by the
networking routers live here rather than in :mod:`repro.core.attributes`.
"""

from __future__ import annotations

from ..core.message import Msg

#: Local UDP/TCP port requested for the path (else ephemeral).
PA_LOCAL_PORT = "PA_LOCAL_PORT"

#: Resolved Ethernet destination for the path (set by IP's establish).
PA_ETH_DST = "PA_ETH_DST"

#: Ethertype the layer above ETH speaks (set by IP/ARP during creation).
PA_ETHERTYPE = "PA_ETHERTYPE"

#: Truthy to enable the optional UDP payload checksum on this path.
PA_UDP_CHECKSUM = "PA_UDP_CHECKSUM"

#: Key under which stages accumulate CPU cost on a message.
COST_KEY = "cost_us"


def charge(msg: Msg, us: float) -> None:
    """Record *us* microseconds of CPU cost against *msg*'s traversal."""
    msg.meta[COST_KEY] = msg.meta.get(COST_KEY, 0.0) + us


def take_cost(msg: Msg) -> float:
    """Remove and return the accumulated traversal cost."""
    return msg.meta.pop(COST_KEY, 0.0)


def peek_cost(msg: Msg) -> float:
    """Return the accumulated traversal cost without clearing it."""
    return msg.meta.get(COST_KEY, 0.0)


_forward = None


def forward_or_deposit(iface, msg: Msg, direction: int, **kwargs):
    """Forward *msg* to the next interface, or — when this stage is the
    end of the path — deposit it on the path's output queue.

    This is what lets the same router serve as an interior stage in one
    path (MFLOW below MPEG in Figure 9) and the top of another (an
    MFLOW-terminated measurement path): the extreme stage's deliver is
    responsible for connecting to "the routers that manage the path
    queues", which in the library means the output queue itself.
    """
    global _forward
    if _forward is None:  # resolved lazily: importing at load would cycle
        from ..core.stage import forward as _forward_impl
        _forward = _forward_impl
    if iface.next is not None:
        return _forward(iface, msg, direction, **kwargs)
    stage = iface.stage
    if not stage.path.output_queue(direction).try_enqueue(msg):
        stage.path.note_drop(msg, "path output queue full", "outq_overflow")
    return None
