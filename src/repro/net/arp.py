"""The ARP router: the name-service provider of Figure 6.

ARP exposes a ``resolver`` service of type ``nsProvider``; IP connects its
``res`` (``nsClient``) service to it and calls :meth:`ArpRouter.resolve`
while establishing a path, freezing the Ethernet destination into the
path's attributes.

The cache can be preloaded (the common configuration for experiments) and
learns from a host registry attached to the segment.  Synchronous
:meth:`ArpRouter.resolve` serves path creation — path creation in Scout is
synchronous, and an unresolvable address aborts it, the right failure mode
for a path whose invariants cannot be satisfied.

For robustness experiments there is additionally an asynchronous
:meth:`ArpRouter.request` with a real retry schedule: each attempt
re-consults the cache and the segment's host registry (so a host that
attaches late is found by a later retry), backing off exponentially and
giving up after ``params.ARP_MAX_RETRIES`` attempts.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .. import params
from ..core.errors import PathCreationError
from ..core.graph import register_router
from ..core.router import Router
from .addresses import EthAddr, IpAddr


@register_router("ArpRouter")
class ArpRouter(Router):
    """Address resolution: IP address -> Ethernet address."""

    SERVICES = ("resolver:nsProvider", "<down:net")

    def __init__(self, name: str):
        super().__init__(name)
        self._cache: Dict[IpAddr, EthAddr] = {}
        #: Segment whose host registry retries re-learn from.
        self._segment = None
        #: Engine for retry timers (None disables async requests).
        self.engine = None
        # statistics
        self.hits = 0
        self.misses = 0
        self.requests_sent = 0
        self.request_retries = 0
        self.request_failures = 0

    def use_engine(self, engine) -> None:
        """Attach a virtual-time engine so async requests can retry."""
        self.engine = engine

    # -- table management --------------------------------------------------------

    def add_entry(self, ip, mac) -> None:
        """Preload a static mapping (boot-time configuration)."""
        self._cache[IpAddr(ip)] = EthAddr(mac)

    def learn_from_segment(self, segment) -> None:
        """Populate the cache from every host on an attached segment that
        exposes an ``ip`` attribute (our HostAgent remotes do)."""
        self._segment = segment
        for endpoint in segment.endpoints():
            ip = getattr(endpoint, "ip", None)
            if ip is not None:
                self.add_entry(ip, endpoint.mac)

    # -- the resolver service -------------------------------------------------------

    def resolve(self, ip) -> EthAddr:
        """Resolve *ip*, raising :class:`PathCreationError` on failure.

        Called synchronously from IP's establish: a path whose peer
        cannot be resolved must not come into existence.
        """
        ip = IpAddr(ip)
        mac = self._cache.get(ip)
        if mac is None:
            self.misses += 1
            raise PathCreationError(f"{self.name}: cannot resolve {ip}")
        self.hits += 1
        return mac

    # -- asynchronous request with retries --------------------------------------

    def request(self, ip,
                on_resolved: Callable[[IpAddr, EthAddr], None],
                on_failed: Optional[Callable[[IpAddr], None]] = None) -> None:
        """Resolve *ip* asynchronously, retrying with exponential backoff.

        Each attempt re-consults the cache and then the attached segment's
        host registry, so an answer that appears between attempts (a host
        attaching, a reply finally getting through) is picked up by the
        next retry rather than being lost forever.  After
        ``params.ARP_MAX_RETRIES`` fruitless attempts ``on_failed`` fires.
        """
        if self.engine is None:
            raise RuntimeError(
                f"{self.name}: async request needs use_engine() first")
        ip = IpAddr(ip)
        self.requests_sent += 1
        self._attempt(ip, 0, params.ARP_REQUEST_TIMEOUT_US,
                      on_resolved, on_failed)

    def _attempt(self, ip: IpAddr, tries: int, timeout_us: float,
                 on_resolved, on_failed) -> None:
        mac = self._lookup(ip)
        if mac is not None:
            self.hits += 1
            on_resolved(ip, mac)
            return
        self.misses += 1
        if tries >= params.ARP_MAX_RETRIES:
            self.request_failures += 1
            if on_failed is not None:
                on_failed(ip)
            return
        if tries > 0:
            self.request_retries += 1
        self.engine.schedule(timeout_us, self._attempt, ip, tries + 1,
                             timeout_us * 2, on_resolved, on_failed)

    def _lookup(self, ip: IpAddr) -> Optional[EthAddr]:
        mac = self._cache.get(ip)
        if mac is not None:
            return mac
        if self._segment is not None:
            for endpoint in self._segment.endpoints():
                endpoint_ip = getattr(endpoint, "ip", None)
                if endpoint_ip is not None and IpAddr(endpoint_ip) == ip:
                    self.add_entry(ip, endpoint.mac)
                    return self._cache[ip]
        return None

    def entries(self) -> Dict[IpAddr, EthAddr]:
        return dict(self._cache)
