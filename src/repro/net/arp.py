"""The ARP router: the name-service provider of Figure 6.

ARP exposes a ``resolver`` service of type ``nsProvider``; IP connects its
``res`` (``nsClient``) service to it and calls :meth:`ArpRouter.resolve`
while establishing a path, freezing the Ethernet destination into the
path's attributes.

The cache can be preloaded (the common configuration for experiments) and
learns from a host registry attached to the segment.  A full asynchronous
request/reply exchange is deliberately out of scope: path creation in
Scout is synchronous, and the paper treats address resolution as a solved
sub-problem.  Unresolvable addresses raise, which aborts path creation —
the right failure mode for a path whose invariants cannot be satisfied.
"""

from __future__ import annotations

from typing import Dict

from ..core.errors import PathCreationError
from ..core.graph import register_router
from ..core.router import Router
from .addresses import EthAddr, IpAddr


@register_router("ArpRouter")
class ArpRouter(Router):
    """Address resolution: IP address -> Ethernet address."""

    SERVICES = ("resolver:nsProvider", "<down:net")

    def __init__(self, name: str):
        super().__init__(name)
        self._cache: Dict[IpAddr, EthAddr] = {}
        # statistics
        self.hits = 0
        self.misses = 0

    # -- table management --------------------------------------------------------

    def add_entry(self, ip, mac) -> None:
        """Preload a static mapping (boot-time configuration)."""
        self._cache[IpAddr(ip)] = EthAddr(mac)

    def learn_from_segment(self, segment) -> None:
        """Populate the cache from every host on an attached segment that
        exposes an ``ip`` attribute (our HostAgent remotes do)."""
        for endpoint in segment.endpoints():
            ip = getattr(endpoint, "ip", None)
            if ip is not None:
                self.add_entry(ip, endpoint.mac)

    # -- the resolver service -------------------------------------------------------

    def resolve(self, ip) -> EthAddr:
        """Resolve *ip*, raising :class:`PathCreationError` on failure.

        Called synchronously from IP's establish: a path whose peer
        cannot be resolved must not come into existence.
        """
        ip = IpAddr(ip)
        mac = self._cache.get(ip)
        if mac is None:
            self.misses += 1
            raise PathCreationError(f"{self.name}: cannot resolve {ip}")
        self.hits += 1
        return mac

    def entries(self) -> Dict[IpAddr, EthAddr]:
        return dict(self._cache)
