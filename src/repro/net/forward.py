"""The FWD router: IP forwarding between link-layer ports.

This opens the paper's *other* appliance workload — Scout as a network
router.  A :class:`ForwardRouter` owns N link-layer ports (each an
:class:`~repro.net.eth.EthRouter` with its own NIC, possibly with its own
MTU) and one static :class:`RouteTable`.  Every port gets a short, fat
forwarding path (ETH -> FWD): frames arriving on a port are classified at
interrupt time onto that port's forwarding path, whose thread decrements
TTL, picks the next hop by longest-prefix match, rewrites the header and
transmits out the egress port — fragmenting for a smaller egress MTU, or
refusing with ICMP *Fragmentation Needed* when the sender set DF.  That
refusal is the feedback signal sender-side path-MTU discovery (RFC 1191)
converges on.

The design follows the data-path shape of fast programmable routers: the
per-hop work is a straight line (validate, TTL, lookup, rewrite, queue on
egress) with all policy — routes, ARP bindings, MTUs — frozen into router
state at provisioning time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import params
from ..core.attributes import Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service, ServiceDecl
from ..core.stage import BWD, Stage
from .addresses import EthAddr, IpAddr
from .common import charge
from .headers import (
    ETHERTYPE_IP,
    EthHeader,
    IcmpHeader,
    IP_FLAG_MORE_FRAGMENTS,
    IpHeader,
    IPPROTO_ICMP,
)

#: Path-creation attribute naming the ingress port a forwarding path
#: serves (one path per port).
PA_FWD_INGRESS = "PA_FWD_INGRESS"


class Route:
    """One static route: destination network -> egress port (+ gateway)."""

    __slots__ = ("network", "prefix_len", "port", "gateway")

    def __init__(self, network, prefix_len: int, port: str,
                 gateway=None):
        self.network = IpAddr(network)
        self.prefix_len = int(prefix_len)
        self.port = port
        self.gateway = IpAddr(gateway) if gateway is not None else None

    def matches(self, ip: IpAddr) -> bool:
        if self.prefix_len == 0:
            return True
        return self.network.same_network(ip, self.prefix_len)

    def __repr__(self) -> str:
        via = f" via {self.gateway}" if self.gateway is not None else ""
        return (f"Route({self.network}/{self.prefix_len} "
                f"-> {self.port}{via})")


class RouteTable:
    """A static routing table with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(self, network, prefix_len: int, port: str,
            gateway=None) -> Route:
        route = Route(network, prefix_len, port, gateway)
        self._routes.append(route)
        # Longest prefix first; insertion order breaks ties.
        self._routes.sort(key=lambda r: -r.prefix_len)
        return route

    def lookup(self, ip) -> Optional[Route]:
        ip = IpAddr(ip)
        for route in self._routes:
            if route.matches(ip):
                return route
        return None

    def routes(self) -> List[Route]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)


class ForwardPort:
    """One link-layer attachment of the forwarding router."""

    __slots__ = ("name", "service", "eth", "ip", "arp")

    def __init__(self, name: str, service: Service, eth, ip: IpAddr):
        self.name = name
        self.service = service
        self.eth = eth
        self.ip = IpAddr(ip)
        #: Per-port neighbour table: next-hop IP -> MAC.
        self.arp: Dict[IpAddr, EthAddr] = {}


class ForwardStage(Stage):
    """FWD's contribution to one port's forwarding path.

    The stage absorbs every message: output happens by transmitting on
    an egress port's adapter, never by forwarding along the path.
    """

    def __init__(self, router: "ForwardRouter", enter_service,
                 exit_service, ingress: str):
        super().__init__(router, enter_service, exit_service)
        self.ingress = ingress
        self.set_deliver(BWD, self._forward)

    def establish(self, attrs: Attrs) -> None:
        router: ForwardRouter = self.router  # type: ignore[assignment]
        router.bind_ingress_path(self.ingress, self.path)

    def destroy(self) -> None:
        router: ForwardRouter = self.router  # type: ignore[assignment]
        router.unbind_ingress_path(self.ingress, self.path)

    def _forward(self, iface, msg: Msg, direction: int, **kwargs):
        router: ForwardRouter = self.router  # type: ignore[assignment]
        charge(msg, params.FWD_PROC_US)
        if len(msg) < IpHeader.SIZE:
            self.note_drop(msg, "short IP packet", "malformed")
            return None
        try:
            header = IpHeader.unpack(msg.peek(IpHeader.SIZE))
        except ValueError as exc:
            self.note_drop(msg, str(exc), "malformed")
            return None
        msg.pop(IpHeader.SIZE)
        # Trim link-layer padding beyond the IP total length.
        payload = msg.to_bytes()[:header.total_length - IpHeader.SIZE]
        if header.dst in router.local_ips:
            return self._local(header, payload, msg)
        if header.ttl <= 1:
            router.ttl_drops += 1
            self.note_drop(msg, f"TTL expired for {header.dst}",
                           "ttl_expired")
            router.send_error(self, msg, header, payload,
                              IcmpHeader.TIME_EXCEEDED, 0, 0)
            return None
        route = router.routes.lookup(header.dst)
        if route is None:
            router.no_route_drops += 1
            self.note_drop(msg, f"no route to {header.dst}", "no_route")
            router.send_error(self, msg, header, payload,
                              IcmpHeader.DEST_UNREACH, 0, 0)
            return None
        out = IpHeader(header.total_length, header.ident, header.proto,
                       header.src, header.dst, ttl=header.ttl - 1,
                       flags=header.flags, frag_offset=header.frag_offset)
        if router.emit(self, msg, out, payload, route):
            router.forwarded += 1
            if self.path is not None:
                self.path.note_progress()
        return None

    def _local(self, header: IpHeader, payload: bytes, msg: Msg):
        """Traffic addressed to one of the router's own port IPs: answer
        unfragmented echo requests (so hosts can ping their gateway and
        the control plane can probe hop by hop); absorb everything else.
        """
        router: ForwardRouter = self.router  # type: ignore[assignment]
        router.local_delivered += 1
        if header.proto != IPPROTO_ICMP or header.is_fragment \
                or len(payload) < IcmpHeader.SIZE:
            return None
        icmp = IcmpHeader.unpack(payload[:IcmpHeader.SIZE])
        if icmp.icmp_type != IcmpHeader.ECHO_REQUEST:
            return None
        router.echo_requests += 1
        charge(msg, params.ICMP_PROC_US)
        reply = IcmpHeader(IcmpHeader.ECHO_REPLY, icmp.ident,
                           icmp.seq).pack() + payload[IcmpHeader.SIZE:]
        router.send_ip(self, msg, src=header.dst, dst=header.src,
                       proto=IPPROTO_ICMP, payload=reply)
        return None


@register_router("ForwardRouter")
class ForwardRouter(Router):
    """An IP forwarder with N link-layer ports and a static route table."""

    SERVICES = ()  # ports are added dynamically, one service each

    def __init__(self, name: str = "FWD"):
        super().__init__(name)
        self.ports: Dict[str, ForwardPort] = {}
        self.routes = RouteTable()
        self.local_ips: set = set()
        self._ingress_paths: Dict[str, object] = {}
        # statistics
        self.forwarded = 0
        self.fragments_created = 0
        self.ttl_drops = 0
        self.no_route_drops = 0
        self.arp_miss_drops = 0
        self.frag_needed_sent = 0
        self.time_exceeded_sent = 0
        self.unreachable_sent = 0
        self.errors_suppressed = 0
        self.local_delivered = 0
        self.echo_requests = 0

    # -- wiring -----------------------------------------------------------------

    def add_port(self, name: str, eth_router, ip) -> ForwardPort:
        """Declare a link-layer port *before* the graph is connected; the
        matching graph edge is ``FWD.<name> <-> <eth>.up``."""
        if name in self.ports:
            raise ValueError(f"{self.name}: duplicate port {name!r}")
        service = self._add_service(len(self.services),
                                    ServiceDecl.parse(f"{name}:net"))
        port = ForwardPort(name, service, eth_router, IpAddr(ip))
        self.ports[name] = port
        self.local_ips.add(port.ip)
        return port

    def init(self) -> None:
        super().init()
        for port in self.ports.values():
            register = getattr(port.eth, "register_ethertype", None)
            if register is not None:
                register(ETHERTYPE_IP, self, port.service)

    def port(self, name: str) -> ForwardPort:
        return self.ports[name]

    def add_arp_entry(self, port_name: str, ip, mac) -> None:
        self.ports[port_name].arp[IpAddr(ip)] = EthAddr(mac)

    def learn_arp(self, port_name: str, segment) -> None:
        """Populate a port's neighbour table from a segment's endpoints
        (simulation stand-in for running ARP on every port)."""
        port = self.ports[port_name]
        for endpoint in segment.endpoints():
            ip = getattr(endpoint, "ip", None)
            if ip is not None:
                port.arp[IpAddr(ip)] = EthAddr(endpoint.mac)

    def add_route(self, network, prefix_len: int, port: str,
                  gateway=None) -> Route:
        if port not in self.ports:
            raise ValueError(f"{self.name}: no port {port!r}")
        return self.routes.add(network, prefix_len, port, gateway)

    def bind_ingress_path(self, ingress: str, path) -> None:
        self._ingress_paths[ingress] = path

    def unbind_ingress_path(self, ingress: str, path) -> None:
        if self._ingress_paths.get(ingress) is path:
            self._ingress_paths.pop(ingress, None)

    # -- path creation ----------------------------------------------------------

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        ingress = attrs.get(PA_FWD_INGRESS)
        if ingress is None or ingress not in self.ports:
            return None, None
        port = self.ports[ingress]
        stage = ForwardStage(self, None, port.service, ingress)
        peer_router, peer_service = \
            port.service.sole_link().peer_of(port.service)
        return stage, NextHop(peer_router, peer_service, attrs)

    # -- classification ---------------------------------------------------------

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        if service is None:
            return DemuxResult.drop(f"{self.name}: no ingress service")
        if len(msg) < offset + IpHeader.SIZE:
            return DemuxResult.drop(f"{self.name}: short IP packet")
        path = self._ingress_paths.get(service.name)
        if path is None:
            return DemuxResult.drop(
                f"{self.name}: no forwarding path on port {service.name}")
        return DemuxResult.found(path)

    # -- the forwarding data path ------------------------------------------------

    def emit(self, stage: ForwardStage, msg: Msg, header: IpHeader,
             payload: bytes, route: Route) -> bool:
        """Transmit *header*+*payload* out *route*'s port, fragmenting
        for the egress MTU unless DF forbids it."""
        port = self.ports[route.port]
        egress_mtu = port.eth.payload_mtu()
        if IpHeader.SIZE + len(payload) <= egress_mtu:
            return self._transmit(stage, msg, port, route, header, payload)
        if header.dont_fragment:
            # The PMTUD signal: refuse, and tell the sender how big a
            # packet this hop would have carried.
            stage.note_drop(msg, f"DF datagram exceeds {route.port} "
                                 f"MTU {egress_mtu}", "df_mtu")
            self.frag_needed_sent += 1
            self.send_error(stage, msg, header, payload,
                            IcmpHeader.DEST_UNREACH,
                            IcmpHeader.CODE_FRAG_NEEDED, egress_mtu)
            return False
        return self._emit_fragments(stage, msg, port, route, header,
                                    payload, egress_mtu)

    def _emit_fragments(self, stage: ForwardStage, msg: Msg,
                        port: ForwardPort, route: Route, header: IpHeader,
                        payload: bytes, egress_mtu: int) -> bool:
        chunk = (egress_mtu - IpHeader.SIZE) & ~7
        if chunk <= 0:
            stage.note_drop(msg, f"egress MTU {egress_mtu} too small to "
                                 "fragment", "mtu_too_small")
            return False
        # The arriving packet may itself be a fragment: offsets stay
        # relative to the original datagram and only the last piece of
        # the *last* incoming fragment clears MF.
        base = header.frag_offset * 8
        sent = False
        offset = 0
        while offset < len(payload):
            take = min(chunk, len(payload) - offset)
            more = (offset + take < len(payload)) or header.more_fragments
            piece = IpHeader(
                IpHeader.SIZE + take, header.ident, header.proto,
                header.src, header.dst, ttl=header.ttl,
                flags=IP_FLAG_MORE_FRAGMENTS if more else 0,
                frag_offset=(base + offset) // 8)
            charge(msg, params.FWD_FRAG_PER_FRAG_US)
            self.fragments_created += 1
            sent = self._transmit(stage, msg, port, route, piece,
                                  payload[offset:offset + take]) or sent
            offset += take
        return sent

    def _transmit(self, stage: ForwardStage, msg: Msg, port: ForwardPort,
                  route: Route, header: IpHeader, payload: bytes) -> bool:
        next_hop = route.gateway if route.gateway is not None else header.dst
        mac = port.arp.get(next_hop)
        if mac is None:
            self.arp_miss_drops += 1
            stage.note_drop(msg, f"no ARP entry for {next_hop} on "
                                 f"{port.name}", "arp_miss")
            return False
        frame = Msg(header.pack() + payload)
        frame.push(EthHeader(mac, port.eth.mac, ETHERTYPE_IP).pack())
        charge(msg, params.ETH_PROC_US)
        if not port.eth.transmit(frame):
            stage.note_drop(msg, f"frame exceeds {port.name} MTU",
                            "oversize_frame")
            return False
        return True

    # -- self-originated packets (ICMP errors, echo replies) ---------------------

    def send_ip(self, stage: ForwardStage, msg: Msg, src, dst, proto: int,
                payload: bytes) -> bool:
        """Originate one IP packet from this router and route it."""
        route = self.routes.lookup(dst)
        if route is None:
            self.no_route_drops += 1
            return False
        header = IpHeader(IpHeader.SIZE + len(payload), 0, proto,
                          IpAddr(src), IpAddr(dst))
        return self.emit(stage, msg, header, payload, route)

    def send_error(self, stage: ForwardStage, msg: Msg,
                   offender: IpHeader, payload: bytes,
                   icmp_type: int, code: int, mtu: int) -> bool:
        """Send an ICMP error about *offender* back to its source.

        RFC 1122 suppression: never about a non-first fragment, and
        never about an ICMP error (no error storms about errors).  The
        next-hop MTU (Fragmentation Needed) travels in the ``seq``
        field; the error quotes the offending IP header plus its first
        8 payload bytes.
        """
        if offender.frag_offset != 0:
            self.errors_suppressed += 1
            return False
        if offender.proto == IPPROTO_ICMP and len(payload) >= 1 \
                and payload[0] in (IcmpHeader.DEST_UNREACH,
                                   IcmpHeader.TIME_EXCEEDED):
            self.errors_suppressed += 1
            return False
        charge(msg, params.FWD_ICMP_ERROR_US)
        if icmp_type == IcmpHeader.TIME_EXCEEDED:
            self.time_exceeded_sent += 1
        elif icmp_type == IcmpHeader.DEST_UNREACH \
                and code != IcmpHeader.CODE_FRAG_NEEDED:
            self.unreachable_sent += 1
        quote = offender.pack() \
            + payload[:IcmpHeader.ERROR_QUOTE_BYTES]
        body = IcmpHeader(icmp_type, 0, mtu, code=code).pack() + quote
        # The error originates at the ingress port's address — the hop
        # that refused the packet identifies itself.
        src = self.ports[stage.ingress].ip
        return self.send_ip(stage, msg, src=src, dst=offender.src,
                            proto=IPPROTO_ICMP, payload=body)

    # -- introspection ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "forwarded": self.forwarded,
            "fragments_created": self.fragments_created,
            "ttl_drops": self.ttl_drops,
            "no_route_drops": self.no_route_drops,
            "arp_miss_drops": self.arp_miss_drops,
            "frag_needed_sent": self.frag_needed_sent,
            "time_exceeded_sent": self.time_exceeded_sent,
            "unreachable_sent": self.unreachable_sent,
            "errors_suppressed": self.errors_suppressed,
            "local_delivered": self.local_delivered,
            "echo_requests": self.echo_requests,
        }
