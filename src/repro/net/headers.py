"""Wire formats for the demonstration protocols.

Each header is a small value class with ``pack()`` / ``unpack()`` over
``struct``.  The MFLOW header is our rendering of the paper's flow-control
protocol: a sequence number for ordered-but-unreliable delivery, a
timestamp for RTT measurement ("MFLOW can measure the round-trip latency
by putting a timestamp in its header"), and the advertised window
("MFLOW advertises the maximum sequence number that it is willing to
receive").
"""

from __future__ import annotations

import struct
from typing import ClassVar

from .addresses import EthAddr, IpAddr
from .checksum import internet_checksum

# Ethertypes / protocol numbers
ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

# IP flags
IP_FLAG_MORE_FRAGMENTS = 0x1
IP_FLAG_DONT_FRAGMENT = 0x2


class EthHeader:
    """Ethernet II: dst(6) src(6) ethertype(2)."""

    FORMAT: ClassVar[str] = "!6s6sH"
    SIZE: ClassVar[int] = struct.calcsize(FORMAT)

    __slots__ = ("dst", "src", "ethertype")

    def __init__(self, dst: EthAddr, src: EthAddr, ethertype: int):
        self.dst = dst
        self.src = src
        self.ethertype = ethertype

    def pack(self) -> bytes:
        return struct.pack(self.FORMAT, self.dst.to_bytes(),
                           self.src.to_bytes(), self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthHeader":
        dst, src, ethertype = struct.unpack(cls.FORMAT, data[:cls.SIZE])
        return cls(EthAddr(dst), EthAddr(src), ethertype)

    def __repr__(self) -> str:
        return f"Eth({self.src}->{self.dst} type=0x{self.ethertype:04x})"


class IpHeader:
    """IPv4 without options: 20 bytes."""

    FORMAT: ClassVar[str] = "!BBHHHBBH4s4s"
    SIZE: ClassVar[int] = struct.calcsize(FORMAT)

    __slots__ = ("total_length", "ident", "flags", "frag_offset", "ttl",
                 "proto", "src", "dst")

    def __init__(self, total_length: int, ident: int, proto: int,
                 src: IpAddr, dst: IpAddr, ttl: int = 64,
                 flags: int = 0, frag_offset: int = 0):
        self.total_length = total_length
        self.ident = ident
        self.flags = flags
        self.frag_offset = frag_offset  # in 8-byte units, per the RFC
        self.ttl = ttl
        self.proto = proto
        self.src = src
        self.dst = dst

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & IP_FLAG_MORE_FRAGMENTS)

    @property
    def dont_fragment(self) -> bool:
        """True when the sender forbids in-flight fragmentation (the
        DF bit path-MTU discovery rides on, RFC 1191)."""
        return bool(self.flags & IP_FLAG_DONT_FRAGMENT)

    @property
    def is_fragment(self) -> bool:
        """True for any packet that is part of a fragmented datagram."""
        return self.more_fragments or self.frag_offset != 0

    def pack(self) -> bytes:
        ver_ihl = (4 << 4) | 5
        flags_frag = (self.flags << 13) | (self.frag_offset & 0x1FFF)
        without_cksum = struct.pack(
            self.FORMAT, ver_ihl, 0, self.total_length, self.ident,
            flags_frag, self.ttl, self.proto, 0,
            self.src.to_bytes(), self.dst.to_bytes())
        cksum = internet_checksum(without_cksum)
        return without_cksum[:10] + struct.pack("!H", cksum) + without_cksum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IpHeader":
        (ver_ihl, _tos, total_length, ident, flags_frag, ttl, proto,
         _cksum, src, dst) = struct.unpack(cls.FORMAT, data[:cls.SIZE])
        if ver_ihl >> 4 != 4:
            raise ValueError(f"not an IPv4 header (version {ver_ihl >> 4})")
        header = cls(total_length, ident, proto, IpAddr(src), IpAddr(dst),
                     ttl=ttl, flags=flags_frag >> 13,
                     frag_offset=flags_frag & 0x1FFF)
        return header

    def __repr__(self) -> str:
        frag = f" frag@{self.frag_offset * 8}{'+' if self.more_fragments else ''}" \
            if self.is_fragment else ""
        return f"Ip({self.src}->{self.dst} proto={self.proto}{frag})"


class UdpHeader:
    """UDP: sport(2) dport(2) length(2) checksum(2)."""

    FORMAT: ClassVar[str] = "!HHHH"
    SIZE: ClassVar[int] = struct.calcsize(FORMAT)

    __slots__ = ("sport", "dport", "length", "checksum")

    def __init__(self, sport: int, dport: int, length: int, checksum: int = 0):
        self.sport = sport
        self.dport = dport
        self.length = length
        self.checksum = checksum

    def pack(self) -> bytes:
        return struct.pack(self.FORMAT, self.sport, self.dport,
                           self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        return cls(*struct.unpack(cls.FORMAT, data[:cls.SIZE]))

    def __repr__(self) -> str:
        return f"Udp({self.sport}->{self.dport} len={self.length})"


class IcmpHeader:
    """ICMP echo: type(1) code(1) cksum(2) id(2) seq(2)."""

    FORMAT: ClassVar[str] = "!BBHHH"
    SIZE: ClassVar[int] = struct.calcsize(FORMAT)

    ECHO_REQUEST = 8
    ECHO_REPLY = 0
    #: Destination Unreachable; with :data:`CODE_FRAG_NEEDED` it is the
    #: "Fragmentation Needed and DF set" error PMTUD listens for.  Per
    #: RFC 1191 the next-hop MTU rides in the last two header bytes —
    #: the field this simplified header calls ``seq``.
    DEST_UNREACH = 3
    CODE_FRAG_NEEDED = 4
    #: Time Exceeded (TTL expired in transit at a forwarding hop).
    TIME_EXCEEDED = 11

    #: How much of the offending datagram an ICMP error quotes: the IP
    #: header plus the first 8 payload bytes (RFC 792).
    ERROR_QUOTE_BYTES = 8

    __slots__ = ("icmp_type", "code", "ident", "seq")

    def __init__(self, icmp_type: int, ident: int, seq: int, code: int = 0):
        self.icmp_type = icmp_type
        self.code = code
        self.ident = ident
        self.seq = seq

    def pack(self) -> bytes:
        without = struct.pack(self.FORMAT, self.icmp_type, self.code, 0,
                              self.ident, self.seq)
        cksum = internet_checksum(without)
        return without[:2] + struct.pack("!H", cksum) + without[4:]

    @classmethod
    def unpack(cls, data: bytes) -> "IcmpHeader":
        icmp_type, code, _cksum, ident, seq = struct.unpack(
            cls.FORMAT, data[:cls.SIZE])
        return cls(icmp_type, ident, seq, code=code)

    def __repr__(self) -> str:
        kind = {8: "echo-req", 0: "echo-reply", 3: "dest-unreach",
                11: "time-exceeded"}.get(self.icmp_type,
                                         str(self.icmp_type))
        return f"Icmp({kind} id={self.ident} seq={self.seq})"


class TcpHeader:
    """Simplified TCP: sport(2) dport(2) seq(4) ack(4) flags(2) win(2)
    cksum(2).

    Unlike UDP's optional checksum, the TCP checksum is mandatory: it
    covers the header and the segment payload, so in-flight corruption is
    detected at the receiver and the damaged segment dies there — forcing
    the sender's retransmission machinery to repair the stream.
    """

    FORMAT: ClassVar[str] = "!HHIIHHH"
    SIZE: ClassVar[int] = struct.calcsize(FORMAT)

    FLAG_SYN = 0x02
    FLAG_ACK = 0x10
    FLAG_FIN = 0x01

    __slots__ = ("sport", "dport", "seq", "ack", "flags", "window",
                 "checksum")

    def __init__(self, sport: int, dport: int, seq: int, ack: int = 0,
                 flags: int = 0, window: int = 8192, checksum: int = 0):
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.checksum = checksum

    def _pack_with(self, checksum: int) -> bytes:
        return struct.pack(self.FORMAT, self.sport, self.dport, self.seq,
                           self.ack, self.flags, self.window, checksum)

    def pack(self, payload: bytes = b"") -> bytes:
        """Pack with the checksum computed over header + *payload*."""
        self.checksum = internet_checksum(self._pack_with(0) + payload)
        return self._pack_with(self.checksum)

    def verify(self, payload: bytes = b"") -> bool:
        """True when the embedded checksum matches header + *payload*."""
        return internet_checksum(self._pack_with(0) + payload) \
            == self.checksum

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        sport, dport, seq, ack, flags, window, checksum = struct.unpack(
            cls.FORMAT, data[:cls.SIZE])
        return cls(sport, dport, seq, ack=ack, flags=flags, window=window,
                   checksum=checksum)

    def __repr__(self) -> str:
        return f"Tcp({self.sport}->{self.dport} seq={self.seq} ack={self.ack})"


class MflowHeader:
    """MFLOW: seq(4) timestamp_us(4) window(2) flags(1) pad(1).

    ``flags`` bit 0 marks a window-advertisement (no payload); bit 1 marks
    the first packet of a video frame (ALF framing aid).
    """

    FORMAT: ClassVar[str] = "!IIHBB"
    SIZE: ClassVar[int] = struct.calcsize(FORMAT)

    FLAG_WINDOW_ADV = 0x1
    FLAG_FRAME_START = 0x2

    __slots__ = ("seq", "timestamp_us", "window", "flags")

    def __init__(self, seq: int, timestamp_us: int, window: int = 0,
                 flags: int = 0):
        self.seq = seq & 0xFFFFFFFF
        self.timestamp_us = timestamp_us & 0xFFFFFFFF
        self.window = window
        self.flags = flags

    @property
    def is_window_adv(self) -> bool:
        return bool(self.flags & self.FLAG_WINDOW_ADV)

    @property
    def is_frame_start(self) -> bool:
        return bool(self.flags & self.FLAG_FRAME_START)

    def pack(self) -> bytes:
        return struct.pack(self.FORMAT, self.seq, self.timestamp_us,
                           self.window, self.flags, 0)

    @classmethod
    def unpack(cls, data: bytes) -> "MflowHeader":
        seq, ts, window, flags, _pad = struct.unpack(cls.FORMAT,
                                                     data[:cls.SIZE])
        return cls(seq, ts, window=window, flags=flags)

    def __repr__(self) -> str:
        kind = "wadv" if self.is_window_adv else "data"
        return f"Mflow({kind} seq={self.seq} win={self.window})"
