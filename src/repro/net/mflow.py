"""The MFLOW router: the paper's flow-control protocol (Section 4.1).

"The MFLOW router implements a simple flow-control protocol.  MFLOW
advertises the maximum sequence number that it is willing to receive based
on the sequence number of the last processed packet and the input queue
size.  MFLOW uses sequence numbers to ensure ordered, but not reliable,
delivery of packets to MPEG."

Receive-side behaviour implemented here (the sink; the video *source* is
a remote host agent):

* data packets out of sequence order are never delivered backwards: stale
  or duplicate sequence numbers are dropped, gaps are tolerated (ordered,
  not reliable);
* after each delivered packet the stage *turns a window advertisement
  around* through the same path — bidirectionality (Section 2.4.1) in
  action — advertising ``last_seq + free input-queue slots`` and echoing
  the sender's timestamp so the source can measure RTT ("MFLOW can
  measure the round-trip latency by putting a timestamp in its header").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .. import params
from ..core.attributes import PA_NET_PARTICIPANTS, Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.queues import BWD_IN
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.specialize import StageFragment, register_specializer
from ..core.stage import BWD, FWD, Stage, forward, turn_around
from .common import charge, forward_or_deposit
from .headers import MflowHeader


class MflowStage(Stage):
    """MFLOW's contribution to a path (receive side)."""

    def __init__(self, router: "MflowRouter", enter_service, exit_service,
                 flow_key: Optional[Tuple]):
        super().__init__(router, enter_service, exit_service)
        self.flow_key = flow_key
        self.next_expected = 0
        self.last_delivered_seq = -1
        self.stale_drops = 0
        self.gaps = 0
        self.window_advs_sent = 0
        self.window_advs_coalesced = 0
        self.set_deliver(FWD, self._send)
        self.set_deliver(BWD, self._receive)

    def establish(self, attrs: Attrs) -> None:
        router: MflowRouter = self.router  # type: ignore[assignment]
        if self.flow_key is not None:
            router.register_flow(self.flow_key, self.path)

    def destroy(self) -> None:
        router: MflowRouter = self.router  # type: ignore[assignment]
        if self.flow_key is not None:
            router.unregister_flow(self.flow_key, self.path)
            # A dying demux anchor promotes a live path-group sibling
            # (see UdpStage.destroy).
            group = self.path.group
            if group is not None:
                for sibling in group.live_members():
                    if sibling is not self.path and \
                            router.register_flow(self.flow_key, sibling):
                        break

    # -- send side (window advertisements travel FWD) --------------------------

    def _send(self, iface, msg: Msg, direction: int, **kwargs):
        charge(msg, params.MFLOW_PROC_US / 2)
        return forward(iface, msg, direction, **kwargs)

    # -- receive side ------------------------------------------------------------

    def _receive(self, iface, msg: Msg, direction: int, **kwargs):
        router: MflowRouter = self.router  # type: ignore[assignment]
        charge(msg, params.MFLOW_PROC_US)
        if len(msg) < MflowHeader.SIZE:
            self.note_drop(msg, "short MFLOW packet", "malformed")
            return None
        header = MflowHeader.unpack(msg.peek(MflowHeader.SIZE))
        msg.pop(MflowHeader.SIZE)
        if header.is_window_adv:
            # We are the sink; an advertisement addressed to us is noise.
            self.note_drop(msg, "window advertisement at sink", "protocol")
            return None
        if header.seq < self.next_expected:
            self.stale_drops += 1
            self.note_drop(
                msg, f"stale seq {header.seq} < {self.next_expected}",
                "stale_seq")
            return None
        if header.seq > self.next_expected:
            self.gaps += 1  # ordered but not reliable: tolerate the gap
        self.next_expected = header.seq + 1
        self.last_delivered_seq = header.seq
        msg.meta["mflow_header"] = header
        if msg.meta.pop("batch_followup", False):
            # Batched run (DESIGN.md §13): defer the advertisement to the
            # batch tail.  The tail's advertisement covers the whole run —
            # it advertises ``last_delivered_seq`` plus the input queue's
            # free slots *after* the run drained, which is exactly what
            # per-message advertising would have converged to.
            self.window_advs_coalesced += 1
        else:
            self._advertise_window(iface, header, msg, direction)
        return forward_or_deposit(iface, msg, direction, **kwargs)

    def _advertise_window(self, iface, header: MflowHeader, data_msg: Msg,
                          direction: int) -> None:
        """Turn a window advertisement around toward the source."""
        free = self.path.q[BWD_IN].free_slots
        if free is None:
            free = 64
        adv = MflowHeader(self.last_delivered_seq + 1 + free,
                          header.timestamp_us,  # echoed for RTT measurement
                          window=free,
                          flags=MflowHeader.FLAG_WINDOW_ADV)
        wadv = Msg(adv.pack())
        # Echo replies and advertisements reuse the data packet's source
        # as their destination; addressed paths already know it, catch-all
        # paths read the override.
        for key in ("ip_dst_override", "udp_dport_override"):
            if key in data_msg.meta:
                wadv.meta[key] = data_msg.meta[key]
        charge(wadv, params.MFLOW_PROC_US / 2)
        self.window_advs_sent += 1
        turn_around(iface, wadv, direction)
        # The advertisement's traversal cost lands on the data message's
        # account so the path thread pays for it in one Compute.
        charge(data_msg, wadv.meta.get("cost_us", 0.0))


def _specialize_mflow(stage: MflowStage, iface, fn, fn_batch, direction: int,
                      terminal: bool) -> Optional[StageFragment]:
    """Fuse :meth:`MflowStage._receive` — including every sequencing
    branch, inline.

    MFLOW has no validation stamp: nothing upstream proves anything about
    its header, so the fused body keeps the scalar length check, drop
    reasons, gap/stale accounting, the ``batch_followup`` advertisement
    coalescing, and the call back into :meth:`_advertise_window` for the
    non-coalesced case (which charges the advertisement's traversal onto
    the data message's account — hence the cost flush/reload around it).
    """
    if direction != BWD or terminal or iface.next is None:
        return None
    if not stage.has_pristine_deliver(BWD, MflowStage._receive):
        return None

    def cost_expr(ctx):
        return "%s.MFLOW_PROC_US" % ctx.bind(params, "params")

    def body(ctx):
        st = ctx.bind(stage, "mflow")
        hdr = ctx.bind(MflowHeader, "MflowHeader")
        ifc = ctx.bind(iface, "mflow_iface")
        size = MflowHeader.SIZE
        return [
            "if len(m) < %d:" % size,
            "    meta['cost_us'] = c",
            "    %s.note_drop(m, 'short MFLOW packet', 'malformed')" % st,
            "    continue",
            "_h = %s.unpack(m.peek(%d))" % (hdr, size),
            "m.strip(%d)" % size,
            "if _h.is_window_adv:",
            "    meta['cost_us'] = c",
            "    %s.note_drop(m, 'window advertisement at sink',"
            " 'protocol')" % st,
            "    continue",
            "_seq = _h.seq",
            "_exp = %s.next_expected" % st,
            "if _seq < _exp:",
            "    %s.stale_drops += 1" % st,
            "    meta['cost_us'] = c",
            "    %s.note_drop(m, 'stale seq %%d < %%d' %% (_seq, _exp),"
            " 'stale_seq')" % st,
            "    continue",
            "if _seq > _exp:",
            "    %s.gaps += 1" % st,
            "%s.next_expected = _seq + 1" % st,
            "%s.last_delivered_seq = _seq" % st,
            "meta['mflow_header'] = _h",
            "if meta.pop('batch_followup', False):",
            "    %s.window_advs_coalesced += 1" % st,
            "else:",
            "    meta['cost_us'] = c",
            "    %s._advertise_window(%s, _h, m, %d)"
            % (st, ifc, ctx.direction),
            "    c = meta['cost_us']",
        ]

    return StageFragment(cost_expr=cost_expr, body=body)


register_specializer(MflowStage, _specialize_mflow)


@register_router("MflowRouter")
class MflowRouter(Router):
    """The MFLOW protocol router."""

    SERVICES = ("up:net", "<down:net")

    def __init__(self, name: str):
        super().__init__(name)
        self._flows: Dict[Tuple, object] = {}

    # -- flow registry --------------------------------------------------------------

    def register_flow(self, key: Tuple, path) -> bool:
        """Register *path* as the demux anchor for *key*.

        First live binding wins, mirroring the port maps in UDP/TCP: when
        several same-flow paths coexist (path-group members), the earliest
        stays the anchor; a dead or missing anchor is always replaced.
        Returns True when *path* holds the binding.
        """
        current = self._flows.get(key)
        if current is not None and current is not path \
                and getattr(current, "state", None) != "deleted":
            return False
        self._flows[key] = path
        return True

    def unregister_flow(self, key: Tuple, path=None) -> None:
        """Drop the binding for *key* — but only if *path* owns it, so a
        group member's teardown cannot unbind a sibling's anchor."""
        if path is None or self._flows.get(key) is path:
            self._flows.pop(key, None)

    @staticmethod
    def flow_key(remote_ip, remote_port: int) -> Tuple:
        return (str(remote_ip), int(remote_port))

    # -- path creation ------------------------------------------------------------------

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        participants = attrs.get(PA_NET_PARTICIPANTS)
        if participants is None:
            return None, None
        down = self.service("down")
        if len(down.links) != 1:
            return None, None
        peer_router, peer_service = down.links[0].peer_of(down)
        key = self.flow_key(participants[0], participants[1])
        stage = MflowStage(self, enter, down, key)
        return stage, NextHop(peer_router, peer_service, attrs)

    # -- classification --------------------------------------------------------------------

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        """Refinement entry when UDP maps a port to MFLOW rather than to a
        single path: match the exact flow by the source the lower
        classifiers stashed in the message meta."""
        ip_src = msg.meta.get("ip_src")
        ports = msg.meta.get("udp_ports")
        if ip_src is None or ports is None:
            return DemuxResult.drop(f"{self.name}: missing classifier context")
        key = self.flow_key(ip_src, ports[0])
        path = self._flows.get(key)
        if path is None:
            return DemuxResult.drop(f"{self.name}: no flow for {key}")
        return DemuxResult.found(path)
