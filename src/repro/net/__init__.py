"""Networking substrate: addresses, wire formats, the simulated segment,
and the protocol routers (ETH, ARP, IP, UDP, ICMP, TCP, MFLOW, TEST)."""

from .addresses import EthAddr, IpAddr
from .arp import ArpRouter
from .checksum import internet_checksum, verify_checksum
from .common import (
    COST_KEY,
    PA_ETH_DST,
    PA_ETHERTYPE,
    PA_LOCAL_PORT,
    PA_UDP_CHECKSUM,
    charge,
    peek_cost,
    take_cost,
)
from .eth import EthRouter, EthStage
from .forward import PA_FWD_INGRESS, ForwardRouter, ForwardStage, Route, RouteTable
from .headers import (
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    EthHeader,
    IcmpHeader,
    IpHeader,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    MflowHeader,
    TcpHeader,
    UdpHeader,
)
from .icmp import IcmpRouter
from .ip import PA_IP_CATCHALL, IpRouter, IpStage
from .mflow import MflowRouter, MflowStage
from .packets import (
    ParsedPacket,
    build_icmp_echo,
    build_mflow_frame,
    build_tcp_frame,
    build_udp_frame,
    parse_frame,
)
from .segment import Endpoint, EtherSegment, HostAgent, NetDevice
from .sockdev import SocketNetDevice
from .tcp import TcpRouter, TcpStage
from .testrouter import TestRouter, TestStage
from .udp import UdpRouter, UdpStage

__all__ = [
    "EthAddr", "IpAddr",
    "internet_checksum", "verify_checksum",
    "EthHeader", "IpHeader", "UdpHeader", "IcmpHeader", "TcpHeader",
    "MflowHeader",
    "ETHERTYPE_IP", "ETHERTYPE_ARP",
    "IPPROTO_ICMP", "IPPROTO_TCP", "IPPROTO_UDP",
    "EtherSegment", "Endpoint", "NetDevice", "HostAgent",
    "SocketNetDevice",
    "EthRouter", "EthStage", "ArpRouter", "IpRouter", "IpStage",
    "UdpRouter", "UdpStage", "IcmpRouter", "TcpRouter", "TcpStage",
    "MflowRouter", "MflowStage", "TestRouter", "TestStage",
    "ForwardRouter", "ForwardStage", "Route", "RouteTable",
    "PA_FWD_INGRESS",
    "PA_IP_CATCHALL", "PA_LOCAL_PORT", "PA_ETH_DST", "PA_ETHERTYPE",
    "PA_UDP_CHECKSUM", "COST_KEY",
    "charge", "take_cost", "peek_cost",
    "build_udp_frame", "build_mflow_frame", "build_icmp_echo",
    "build_tcp_frame",
    "parse_frame", "ParsedPacket",
]
